"""TSV keep-out-zone planning and stress monitoring.

Floorplanning around TSVs needs two answers the library provides:

1. *How far must matching-critical circuits stay from each via?*  — the
   keep-out radius per mobility tolerance (Lame stress + piezoresistance).
2. *Did the stress actually land where the model predicts?*  — place the
   PT sensor at candidate sites and compare its process read-out against
   the stress model; the V_t read-out doubles as a stress monitor.

Run:  python examples/tsv_keepout_planner.py
      REPRO_EXAMPLE_FAST=1 python examples/tsv_keepout_planner.py  # fewer sites
"""

import os

import numpy as np

from repro import nominal_65nm, SensingModel, SelfCalibrationEngine, ProcessLut
from repro.circuits.ring_oscillator import Environment
from repro.tsv.geometry import regular_tsv_array
from repro.tsv.keepout import keep_out_radius, placement_is_clear
from repro.tsv.stress import StressModel
from repro.units import celsius_to_kelvin, kelvin_to_celsius

TRUE_TEMP_C = 55.0
CANDIDATE_OFFSETS_UM = (
    (8.0, 25.0) if os.environ.get("REPRO_EXAMPLE_FAST") else (8.0, 15.0, 30.0, 80.0)
)


def main() -> None:
    stress = StressModel()
    array = regular_tsv_array(4, 4, pitch=50e-6, origin=(2.4e-3, 2.4e-3))
    via = array[0]

    print("== keep-out radii per mobility tolerance ==")
    for tolerance in (0.01, 0.02, 0.05, 0.10):
        radius = keep_out_radius(stress, via, tolerance)
        print(f"  {tolerance * 100:4.0f}% tolerance -> {radius * 1e6:6.1f} um")

    print("\n== candidate sensor sites ==")
    technology = nominal_65nm()
    model = SensingModel(technology)
    engine = SelfCalibrationEngine(model, lut=ProcessLut.build(model))
    temp_k = celsius_to_kelvin(TRUE_TEMP_C)

    for offset_um in CANDIDATE_OFFSETS_UM:
        x = via.x - offset_um * 1e-6
        y = via.y
        clear = placement_is_clear(stress, x, y, array, mobility_tolerance=0.05)
        dvtn_s, dvtp_s = stress.effective_vt_shifts_at(x, y, array)

        # What the sensor at that site would report.
        env = Environment(
            temp_k=temp_k, vdd=technology.vdd, dvtn=dvtn_s, dvtp=dvtp_s
        )
        freqs = model.bank.frequencies(env)
        state = engine.run(freqs.psro_n, freqs.psro_p, freqs.tsro)

        print(
            f"  {offset_um:5.1f} um from via: "
            f"{'CLEAR  ' if clear else 'IN KOZ '}"
            f"stress dVtn={dvtn_s * 1e3:+5.2f} mV (sensor {state.dvtn * 1e3:+5.2f}),"
            f" dVtp={dvtp_s * 1e3:+5.2f} mV (sensor {state.dvtp * 1e3:+5.2f}),"
            f" T reads {kelvin_to_celsius(state.temp_k):+.2f} degC"
        )

    # The keep-out rule applies to the sensor itself: deep inside the KOZ
    # the sensing devices are stressed in a way that violates the model's
    # threshold-mobility coupling, so even self-calibration degrades.
    # Outside the KOZ the reading is clean.
    def temp_error_at(offset_um: float) -> float:
        x, y = via.x - offset_um * 1e-6, via.y
        dvtn_s, dvtp_s = stress.effective_vt_shifts_at(x, y, array)
        env = Environment(
            temp_k=temp_k, vdd=technology.vdd, dvtn=dvtn_s, dvtp=dvtp_s
        )
        freqs = model.bank.frequencies(env)
        state = engine.run(freqs.psro_n, freqs.psro_p, freqs.tsro)
        return abs(kelvin_to_celsius(state.temp_k) - TRUE_TEMP_C)

    inside = temp_error_at(8.0)
    outside = temp_error_at(25.0)
    assert outside < 1.0, "a clear placement must read within the accuracy class"
    assert inside > outside, "stress must degrade an in-KOZ placement"
    print(
        f"\nsensor placement matters: temperature error is {inside:.2f} degC"
        f" 8 um from a via (inside the KOZ) vs {outside:.2f} degC at 25 um"
        " (clear) - respect the keep-out zone for the sensor itself"
    )


if __name__ == "__main__":
    main()
