"""Aging prognostics: predicting end-of-life from the sensor's drift log.

Because the self-calibrated sensor re-extracts the die's process point at
every power-on, a deployed device accumulates a *drift log* for free.  BTI
drift follows a power law, so a few noisy log entries suffice to fit the
trajectory and extrapolate when the drift will cross the end-of-life
threshold — field-return analysis without opening a package.

The example simulates a device logging monthly self-checks over two years,
fits dV_tp(t) = a * t^n to the (sensor-noisy) log, and compares the
predicted end-of-life against the aging model's ground truth.

Run:  python examples/aging_prognostics.py
      REPRO_EXAMPLE_FAST=1 python examples/aging_prognostics.py  # CI-sized log
"""

import os

import numpy as np

from repro import PTSensor, nominal_65nm, sample_dies
from repro.core.drift import DriftAnchoredModel
from repro.core.calibration import SelfCalibrationEngine
from repro.circuits.oscillator_bank import build_oscillator_bank, environment_for_die
from repro.units import celsius_to_kelvin
from repro.variation.aging import BtiAgingModel

EOL_DRIFT_V = 0.030  # the product's guard-band budget for V_tp drift
LOG_MONTHS = 12 if os.environ.get("REPRO_EXAMPLE_FAST") else 24
CHECK_TEMP_C = 50.0


def main() -> None:
    technology = nominal_65nm()
    die = sample_dies(technology, count=1, seed=314)[0]
    aging = BtiAgingModel()

    # Power-on at t=0: anchor the drift tracker.
    base = PTSensor(technology, die=die)
    t0 = base.read(CHECK_TEMP_C)
    anchored_model = DriftAnchoredModel.from_time_zero(base.model, t0.dvtn, t0.dvtp)
    engine = SelfCalibrationEngine(anchored_model, lut=None)

    # Monthly self-checks: age the die, re-extract, log the drift.
    months = np.arange(1, LOG_MONTHS + 1)
    logged = []
    for month in months:
        years = month / 12.0
        aged = aging.age_die(die, years)
        bank = build_oscillator_bank(technology, die=aged)
        env = environment_for_die(
            aged, (2.5e-3, 2.5e-3), celsius_to_kelvin(CHECK_TEMP_C), technology.vdd
        )
        freqs = bank.frequencies(env)
        state = engine.run(freqs.psro_n, freqs.psro_p, freqs.tsro)
        logged.append(anchored_model.drift_from(state.dvtn, state.dvtp)[1])
    logged = np.asarray(logged)

    print("sensor drift log (dVtp, mV):")
    for month in (m for m in (1, 6, 12, 18, 24) if m <= LOG_MONTHS):
        truth = aging.vt_drift(month / 12.0)[1]
        print(
            f"  month {month:2d}: logged {logged[month - 1] * 1e3:6.2f}"
            f"  (truth {truth * 1e3:6.2f})"
        )

    # Fit the power law ln(d) = ln(a) + n ln(t) on the log.
    years = months / 12.0
    valid = logged > 1e-4
    coeffs = np.polyfit(np.log(years[valid]), np.log(logged[valid]), 1)
    n_fit, ln_a = coeffs[0], coeffs[1]
    a_fit = float(np.exp(ln_a))
    print(f"\nfitted drift law: dVtp(t) = {a_fit * 1e3:.2f} mV * t^{n_fit:.3f}")
    print(f"model truth     : dVtp(t) = {aging.a_nbti * 1e3:.2f} mV * t^{aging.time_exponent:.3f}")

    eol_predicted = (EOL_DRIFT_V / a_fit) ** (1.0 / n_fit)
    eol_truth = (EOL_DRIFT_V / aging.a_nbti) ** (1.0 / aging.time_exponent)
    print(
        f"\npredicted end-of-life ({EOL_DRIFT_V * 1e3:.0f} mV budget): "
        f"{eol_predicted:.1f} years (truth {eol_truth:.1f} years)"
    )
    assert abs(np.log(eol_predicted / eol_truth)) < np.log(2.0), (
        "EOL prediction off by more than 2x"
    )
    print("prediction within 2x of truth from two years of noisy logs")


if __name__ == "__main__":
    main()
