"""Quickstart: instantiate the self-calibrated PT sensor and read it.

Builds the reference 65 nm-class design, manufactures one Monte-Carlo die,
and runs full conversions across temperature — printing the estimated
temperature, the extracted per-die threshold shifts and the conversion's
energy breakdown, exactly the three outputs the paper's macro publishes.
A final section breaks the read-out path on purpose and shows the stack
monitor degrading gracefully instead of crashing.

Run:  python examples/quickstart.py
      REPRO_EXAMPLE_FAST=1 python examples/quickstart.py   # CI-sized
"""

import os

from repro import PTSensor, nominal_65nm, sample_dies
from repro import faults
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.network.aggregator import StackMonitor
from repro.tsv.bus import TsvSensorBus

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def main() -> None:
    technology = nominal_65nm()

    # The typical (mismatch-free) sensor first.
    sensor = PTSensor(technology)
    print("== typical die ==")
    temps = (27.0, 85.0) if FAST else (-40.0, 27.0, 85.0, 125.0)
    for temp_c in temps:
        reading = sensor.read(temp_c)
        print(
            f"true {temp_c:+7.1f} degC -> sensor {reading.temperature_c:+7.2f} degC"
            f"  (error {reading.temperature_c - temp_c:+.2f} degC,"
            f" {reading.energy.total * 1e12:.0f} pJ,"
            f" {reading.conversion_time * 1e6:.1f} us)"
        )

    # Now a real (Monte-Carlo) die: the sensor also reports how far the
    # die's thresholds sit from typical — with no external calibration.
    die = sample_dies(technology, count=1, seed=42)[0]
    skewed = PTSensor(technology, die=die)
    true_n, true_p = skewed.true_process_shifts()
    reading = skewed.read(65.0)
    print("\n== Monte-Carlo die ==")
    print(f"true process point: dVtn={true_n * 1e3:+.2f} mV, dVtp={true_p * 1e3:+.2f} mV")
    print(
        f"sensor extraction : dVtn={reading.dvtn * 1e3:+.2f} mV,"
        f" dVtp={reading.dvtp * 1e3:+.2f} mV"
    )
    print(
        f"temperature       : true +65.00 degC -> sensor"
        f" {reading.temperature_c:+.2f} degC"
    )
    print("\nenergy breakdown of the last conversion:")
    for label, joules in reading.energy.as_rows():
        print(f"  {label:12s} {joules * 1e12:7.1f} pJ")

    # Finally, break the read-out path on purpose: tier 1's TSV cracks
    # open after the first round.  The monitor serves tier 1's last good
    # reading as "stale" instead of crashing, and flags the snapshot as
    # degraded.  docs/faults.md walks through the full machinery.
    print("\n== degraded mode: tier 1's TSV cracks open ==")
    monitor = StackMonitor(
        {tier: PTSensor(technology, die_id=tier) for tier in range(2)},
        TsvSensorBus(tiers=2),
    )
    plan = FaultPlan(name="quickstart-open", specs=(
        FaultSpec(FaultKind.TSV_OPEN, tier=1, onset_round=1),
    ))
    with faults.inject(plan):
        for round_index in range(3):
            snapshot = monitor.poll({0: 55.0, 1: 48.0})
            served = snapshot.effective_temperatures_c
            print(
                f"round {round_index}: quality={snapshot.quality:8s} "
                + "  ".join(
                    f"tier{t}={served[t]:+5.1f} ({snapshot.tier_quality[t]})"
                    for t in sorted(served)
                )
            )


if __name__ == "__main__":
    main()
