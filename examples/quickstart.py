"""Quickstart: instantiate the self-calibrated PT sensor and read it.

Builds the reference 65 nm-class design, manufactures one Monte-Carlo die,
and runs full conversions across temperature — printing the estimated
temperature, the extracted per-die threshold shifts and the conversion's
energy breakdown, exactly the three outputs the paper's macro publishes.

Run:  python examples/quickstart.py
"""

from repro import PTSensor, nominal_65nm, sample_dies


def main() -> None:
    technology = nominal_65nm()

    # The typical (mismatch-free) sensor first.
    sensor = PTSensor(technology)
    print("== typical die ==")
    for temp_c in (-40.0, 27.0, 85.0, 125.0):
        reading = sensor.read(temp_c)
        print(
            f"true {temp_c:+7.1f} degC -> sensor {reading.temperature_c:+7.2f} degC"
            f"  (error {reading.temperature_c - temp_c:+.2f} degC,"
            f" {reading.energy.total * 1e12:.0f} pJ,"
            f" {reading.conversion_time * 1e6:.1f} us)"
        )

    # Now a real (Monte-Carlo) die: the sensor also reports how far the
    # die's thresholds sit from typical — with no external calibration.
    die = sample_dies(technology, count=1, seed=42)[0]
    skewed = PTSensor(technology, die=die)
    true_n, true_p = skewed.true_process_shifts()
    reading = skewed.read(65.0)
    print("\n== Monte-Carlo die ==")
    print(f"true process point: dVtn={true_n * 1e3:+.2f} mV, dVtp={true_p * 1e3:+.2f} mV")
    print(
        f"sensor extraction : dVtn={reading.dvtn * 1e3:+.2f} mV,"
        f" dVtp={reading.dvtp * 1e3:+.2f} mV"
    )
    print(
        f"temperature       : true +65.00 degC -> sensor"
        f" {reading.temperature_c:+.2f} degC"
    )
    print("\nenergy breakdown of the last conversion:")
    for label, joules in reading.energy.as_rows():
        print(f"  {label:12s} {joules * 1e12:7.1f} pJ")


if __name__ == "__main__":
    main()
