"""Thermal monitoring of a 4-tier TSV 3-D stack — the paper's use case.

A four-tier stack runs a hotspot workload.  The thermal solver computes the
ground-truth junction-temperature field; one PT sensor per tier reads its
local environment; readings travel the TSV daisy chain to the aggregator,
which compares tiers and flags the hottest one.  A second phase steps the
workload (hotspot migrates between tiers) and shows the sensor network
tracking the transient within its accuracy class.

Run:  python examples/stack_thermal_monitoring.py
"""

import numpy as np

from repro import PTSensor, nominal_65nm, sample_dies
from repro.readout.interface import SensorFrame, encode_frame
from repro.thermal.grid import build_stack_grid
from repro.thermal.power import hotspot_power_map
from repro.thermal.solver import steady_state, transient
from repro.tsv.bus import TsvSensorBus
from repro.tsv.geometry import StackDescriptor, TierSpec, regular_tsv_array
from repro.units import kelvin_to_celsius

NX = NY = 16
SENSOR_SITE = (2.5e-3, 2.5e-3)


def build_assembly():
    tiers = [TierSpec(f"tier{i}") for i in range(4)]
    stack = StackDescriptor(
        tiers=tiers,
        tsv_sites=regular_tsv_array(8, 8, pitch=100e-6, origin=(2.1e-3, 2.1e-3)),
    )
    grid = build_stack_grid(
        stack.thermal_layers(NX, NY), stack.die_width, stack.die_height, nx=NX, ny=NY
    )
    technology = nominal_65nm()
    dies = sample_dies(technology, count=len(tiers), seed=7)
    sensors = [
        PTSensor(technology, die=die, location=SENSOR_SITE, die_id=tier_id)
        for tier_id, die in enumerate(dies)
    ]
    return stack, tiers, grid, sensors


def workload(hot_tier: int):
    maps = {}
    for i in range(4):
        hotspots = (
            [(1.2e-3, 1.2e-3, 1.0e-3, 1.0e-3, 2.5)] if i == hot_tier else []
        )
        maps[f"tier{i}.si"] = hotspot_power_map(
            NX, NY, 5e-3, 5e-3, hotspots, background_watts=0.3
        )
    return maps


def read_all_tiers(stack, tiers, field, sensors):
    """One monitoring round: sense, ship over the TSV bus, aggregate."""
    frames = {}
    truth = {}
    for tier_id, (tier, sensor) in enumerate(zip(tiers, sensors)):
        layer = stack.transistor_layer_name(tier)
        true_k = field.at(layer, *SENSOR_SITE)
        truth[tier_id] = kelvin_to_celsius(true_k)
        reading = sensor.read_environment(sensor.physical_environment(true_k))
        frames[tier_id] = encode_frame(
            SensorFrame(
                die_id=tier_id,
                dvtn=reading.dvtn,
                dvtp=reading.dvtp,
                temperature_c=reading.temperature_c,
            )
        )
    report = TsvSensorBus(tiers=len(tiers)).collect(frames)
    return report, truth


def main() -> None:
    stack, tiers, grid, sensors = build_assembly()

    print("== steady state, hotspot on tier0 (farthest from the sink) ==")
    field = steady_state(grid, workload(hot_tier=0))
    report, truth = read_all_tiers(stack, tiers, field, sensors)
    for tier_id, frame in sorted(report.frames.items()):
        print(
            f"tier{tier_id}: sensor {frame.temperature_c:+6.1f} degC"
            f"  (truth {truth[tier_id]:+6.2f})"
            f"  dVtn={frame.dvtn * 1e3:+5.1f} mV dVtp={frame.dvtp * 1e3:+5.1f} mV"
        )
    hottest = max(report.frames, key=lambda t: report.frames[t].temperature_c)
    print(f"aggregator: hottest tier is tier{hottest}")

    print("\n== transient: hotspot migrates tier0 -> tier2 at t=60 ms ==")
    schedule = lambda t: workload(hot_tier=0 if t < 0.060 else 2)
    fields = transient(grid, schedule, dt=0.015, steps=8)
    for step, field in enumerate(fields, start=1):
        report, truth = read_all_tiers(stack, tiers, field, sensors)
        sensed = {t: f.temperature_c for t, f in report.frames.items()}
        worst = max(abs(sensed[t] - truth[t]) for t in sensed)
        print(
            f"t={step * 15:3d} ms  "
            + "  ".join(f"tier{t}={sensed[t]:+6.1f}" for t in sorted(sensed))
            + f"   worst error {worst:.2f} degC"
        )

    errors = [abs(sensed[t] - truth[t]) for t in sensed]
    assert max(errors) < 2.0, "sensor network left its accuracy class"
    print("\nsensor network tracked the migration within 2 degC everywhere")


if __name__ == "__main__":
    main()
