"""Thermal monitoring of a 4-tier TSV 3-D stack — the paper's use case.

A four-tier stack runs a hotspot workload.  The thermal solver computes the
ground-truth junction-temperature field; one PT sensor per tier reads its
local environment; readings travel the TSV daisy chain to the aggregator,
which compares tiers and flags the hottest one.  A second phase steps the
workload (hotspot migrates between tiers) and shows the sensor network
tracking the transient within its accuracy class.  A third phase cracks
one tier's TSV open mid-run and shows the resilient aggregator riding it
out: stale service, quarantine, and revival once the link heals.

Run:  python examples/stack_thermal_monitoring.py
      REPRO_EXAMPLE_FAST=1 python examples/stack_thermal_monitoring.py  # CI-sized
"""

import os

import numpy as np

from repro import PTSensor, nominal_65nm, sample_dies
from repro import faults
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.network.aggregator import StackMonitor
from repro.readout.interface import SensorFrame, encode_frame
from repro.thermal.grid import build_stack_grid
from repro.thermal.power import hotspot_power_map
from repro.thermal.solver import steady_state, transient
from repro.tsv.bus import TsvSensorBus
from repro.tsv.geometry import StackDescriptor, TierSpec, regular_tsv_array
from repro.units import kelvin_to_celsius

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
NX = NY = 8 if FAST else 16
TRANSIENT_STEPS = 4 if FAST else 8
MIGRATE_AT_S = 0.030 if FAST else 0.060
SENSOR_SITE = (2.5e-3, 2.5e-3)


def build_assembly():
    tiers = [TierSpec(f"tier{i}") for i in range(4)]
    stack = StackDescriptor(
        tiers=tiers,
        tsv_sites=regular_tsv_array(8, 8, pitch=100e-6, origin=(2.1e-3, 2.1e-3)),
    )
    grid = build_stack_grid(
        stack.thermal_layers(NX, NY), stack.die_width, stack.die_height, nx=NX, ny=NY
    )
    technology = nominal_65nm()
    dies = sample_dies(technology, count=len(tiers), seed=7)
    sensors = [
        PTSensor(technology, die=die, location=SENSOR_SITE, die_id=tier_id)
        for tier_id, die in enumerate(dies)
    ]
    return stack, tiers, grid, sensors


def workload(hot_tier: int):
    maps = {}
    for i in range(4):
        hotspots = (
            [(1.2e-3, 1.2e-3, 1.0e-3, 1.0e-3, 2.5)] if i == hot_tier else []
        )
        maps[f"tier{i}.si"] = hotspot_power_map(
            NX, NY, 5e-3, 5e-3, hotspots, background_watts=0.3
        )
    return maps


def read_all_tiers(stack, tiers, field, sensors):
    """One monitoring round: sense, ship over the TSV bus, aggregate."""
    frames = {}
    truth = {}
    for tier_id, (tier, sensor) in enumerate(zip(tiers, sensors)):
        layer = stack.transistor_layer_name(tier)
        true_k = field.at(layer, *SENSOR_SITE)
        truth[tier_id] = kelvin_to_celsius(true_k)
        reading = sensor.read_environment(sensor.physical_environment(true_k))
        frames[tier_id] = encode_frame(
            SensorFrame(
                die_id=tier_id,
                dvtn=reading.dvtn,
                dvtp=reading.dvtp,
                temperature_c=reading.temperature_c,
            )
        )
    report = TsvSensorBus(tiers=len(tiers)).collect(frames)
    return report, truth


def main() -> None:
    stack, tiers, grid, sensors = build_assembly()

    print("== steady state, hotspot on tier0 (farthest from the sink) ==")
    field = steady_state(grid, workload(hot_tier=0))
    report, truth = read_all_tiers(stack, tiers, field, sensors)
    for tier_id, frame in sorted(report.frames.items()):
        print(
            f"tier{tier_id}: sensor {frame.temperature_c:+6.1f} degC"
            f"  (truth {truth[tier_id]:+6.2f})"
            f"  dVtn={frame.dvtn * 1e3:+5.1f} mV dVtp={frame.dvtp * 1e3:+5.1f} mV"
        )
    hottest = max(report.frames, key=lambda t: report.frames[t].temperature_c)
    print(f"aggregator: hottest tier is tier{hottest}")

    print(
        f"\n== transient: hotspot migrates tier0 -> tier2"
        f" at t={MIGRATE_AT_S * 1e3:.0f} ms =="
    )
    schedule = lambda t: workload(hot_tier=0 if t < MIGRATE_AT_S else 2)
    fields = transient(grid, schedule, dt=0.015, steps=TRANSIENT_STEPS)
    for step, field in enumerate(fields, start=1):
        report, truth = read_all_tiers(stack, tiers, field, sensors)
        sensed = {t: f.temperature_c for t, f in report.frames.items()}
        worst = max(abs(sensed[t] - truth[t]) for t in sensed)
        print(
            f"t={step * 15:3d} ms  "
            + "  ".join(f"tier{t}={sensed[t]:+6.1f}" for t in sorted(sensed))
            + f"   worst error {worst:.2f} degC"
        )

    errors = [abs(sensed[t] - truth[t]) for t in sensed]
    assert max(errors) < 2.0, "sensor network left its accuracy class"
    print("\nsensor network tracked the migration within 2 degC everywhere")

    # Phase 3: the same stack, but tier 2's TSV cracks open for three
    # rounds.  The resilient StackMonitor (rather than the raw bus of the
    # phases above) serves tier 2's last reading as "stale", quarantines
    # it when the staleness budget runs out, keeps probing, and revives
    # it the round the link heals — no crash, no code changes, just a
    # FaultPlan activated around the polling loop (see docs/faults.md).
    print("\n== fault ride-through: tier2 TSV open for rounds 1-3 ==")
    monitor = StackMonitor(
        {tier_id: sensor for tier_id, sensor in enumerate(sensors)},
        TsvSensorBus(tiers=len(tiers)),
    )
    true_temps = dict(truth)  # last transient field's per-tier truth
    plan = FaultPlan(name="open-tier2", specs=(
        FaultSpec(FaultKind.TSV_OPEN, tier=2, onset_round=1, duration_rounds=3),
    ))
    with faults.inject(plan):
        for round_index in range(6):
            snapshot = monitor.poll(true_temps)
            served = snapshot.effective_temperatures_c
            dead = f" quarantined={snapshot.dead_tiers}" if snapshot.dead_tiers else ""
            print(
                f"round {round_index}: quality={snapshot.quality:8s} "
                + "  ".join(
                    f"tier{t}={served[t]:+6.1f}({snapshot.tier_quality[t][0]})"
                    for t in sorted(served)
                )
                + dead
            )
    final = monitor.history[-1]
    assert final.quality == "fused", "tier2 should have revived by the last round"
    assert not final.dead_tiers
    print("tier2 quarantined while open, revived when the link healed"
          "  (f=fresh, s=stale, l=lost)")


if __name__ == "__main__":
    main()
