"""Catch a thermal runaway early — the streaming plane, in process.

A four-tier stack is polled by the paper's monitoring network while an
injected ``thermal_runaway`` fault (the compounding model from
``repro.faults``) heats one tier.  Every polled reading flows into the
streaming plane of docs/streaming.md: a fan-out hub pushes events to a
subscriber, sealed rollup windows summarise the round history, and the
online EWMA-slope detector raises ``alert.runaway_warning`` while the
tier is still tens of degrees below the absolute warning band the
monitor itself alarms on — the early-warning lead the streaming PR is
about.

Run:  python examples/streaming_monitor.py
      REPRO_EXAMPLE_FAST=1 python examples/streaming_monitor.py  # CI-sized
"""

import os

from repro import faults, nominal_65nm, sample_dies, PTSensor
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.network.aggregator import StackMonitor
from repro.telemetry.rollup import RollupTable
from repro.telemetry.runaway import RunawayDetector, RunawayPolicy
from repro.telemetry.stream import StreamHub
from repro.tsv.bus import TsvSensorBus

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
TIERS = 4
ROUNDS = 18 if FAST else 24
HOT_TIER = 2
ONSET = 4
BASE_C = {0: 52.0, 1: 55.0, 2: 58.0, 3: 56.0}
WARNING_C = 95.0  # the monitor's absolute band — the batch baseline


def build_monitor():
    technology = nominal_65nm()
    dies = sample_dies(technology, count=TIERS, seed=7)
    sensors = {
        tier: PTSensor(technology, die=die, die_id=tier)
        for tier, die in enumerate(dies)
    }
    bus = TsvSensorBus(TIERS)
    return StackMonitor(sensors, bus, warning_c=WARNING_C)


def main() -> None:
    plan = FaultPlan(
        name="runaway-on-tier-2",
        specs=(
            FaultSpec(
                FaultKind.THERMAL_RUNAWAY,
                tier=HOT_TIER,
                onset_round=ONSET,
                severity=2.0,
            ),
        ),
        seed=2012,
    )
    monitor = build_monitor()

    # The streaming plane, wired by hand: the detector publishes alert
    # events into the hub; our subscription sees them the same way a
    # remote NDJSON/binary/SSE subscriber of `python -m repro edge`
    # would (docs/streaming.md).
    hub = StreamHub()
    sub = hub.subscribe(kinds=["alert"])
    detector = RunawayDetector(RunawayPolicy(), hub=hub)
    rollups = RollupTable()

    print(f"plan: {plan.name} (severity 2.0 on tier {HOT_TIER} "
          f"from round {ONSET}); monitor warning band {WARNING_C:.0f} C")
    print(f"{'round':>5}  {'tier2 C':>8}  {'slope':>6}  events")

    alert_round = None
    band_round = None
    # StackMonitor.poll advances the active fault clock itself: one
    # poll = one monitoring round = one round of compounding runaway.
    with faults.inject(plan):
        for round_index in range(ROUNDS):
            snapshot = monitor.poll(dict(BASE_C))
            temps = snapshot.effective_temperatures_c
            detector.observe_reading(0, temps, round_index)
            for temp_c in temps.values():
                rollups.observe(
                    "monitor.temperature_c", temp_c, float(round_index)
                )

            pushed = []
            for event in sub.poll():
                pushed.append(f"{event.data['name']} "
                              f"(tier {event.data['tier']}, "
                              f"{event.data['temp_c']:.1f} C)")
                if alert_round is None and \
                        event.data["name"].endswith("runaway_warning"):
                    alert_round = round_index
            hot = temps.get(HOT_TIER, float("nan"))
            if band_round is None and hot >= WARNING_C:
                band_round = round_index
                pushed.append(f"absolute band crossed ({hot:.1f} C)")
            state = detector.state(0, HOT_TIER) or {}
            print(f"{round_index:>5}  {hot:>8.1f}  "
                  f"{state.get('ewma_slope', 0.0):>6.2f}  {'; '.join(pushed)}")

    rollups.advance(float(ROUNDS))
    windows = rollups.windows("monitor.temperature_c", last=3)
    print("\nsealed rollup windows (monitor.temperature_c, newest last):")
    for window in windows:
        print(f"  [{window.start:>4.0f},{window.end:>4.0f})  "
              f"count {window.count:>2}  min {window.min:>5.1f}  "
              f"mean {window.mean:>5.1f}  p99 {window.p99:>5.1f}")

    assert alert_round is not None, "the early warning never fired"
    assert band_round is None or alert_round < band_round
    lead = "n/a" if band_round is None else f"{band_round - alert_round} rounds"
    print(f"\nearly warning at round {alert_round}; absolute band at "
          f"{band_round if band_round is not None else f'>{ROUNDS - 1}'} "
          f"-> lead {lead}")


if __name__ == "__main__":
    main()
