"""Sensor-driven dynamic thermal management on a 3-D stack.

The complete loop the paper's sensors exist to enable: a four-tier stack
runs a workload hot enough to violate its 85 degC limit, the per-tier PT
sensors feed the stack monitor, and a throttling policy scales tier power
until the sensed temperatures settle under the limit.  Watch the bottom
tier (farthest from the sink) get throttled while the cool tiers keep
their full budget — per-tier sensing is exactly what makes that
selectivity possible.

Run:  python examples/dtm_closed_loop.py
      REPRO_EXAMPLE_FAST=1 python examples/dtm_closed_loop.py  # CI-sized loop
"""

import os

from repro import PTSensor, nominal_65nm, sample_dies
from repro.experiments.exp_e4_dtm import _assembly, _hot_workload
from repro.network.aggregator import StackMonitor
from repro.network.dtm import DtmPolicy, run_closed_loop
from repro.network.scheduler import AdaptiveSampler
from repro.tsv.bus import TsvSensorBus

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
NX = NY = 10 if FAST else 14
STEPS = 30 if FAST else 50
SITE = (2.0e-3, 2.0e-3)


def main() -> None:
    stack, grid = _assembly(NX, NY)
    workload = _hot_workload(stack, NX, NY)

    technology = nominal_65nm()
    dies = sample_dies(technology, count=len(stack.tiers), seed=11)
    first = PTSensor(technology, die=dies[0], location=SITE, die_id=0)
    sensors = {0: first}
    for tier_id, die in enumerate(dies[1:], start=1):
        sensors[tier_id] = PTSensor(
            technology,
            die=die,
            location=SITE,
            die_id=tier_id,
            sensing_model=first.model,
            lut=first.lut,
        )

    policy = DtmPolicy(throttle_c=85.0, release_c=78.0)
    monitor = StackMonitor(
        sensors,
        TsvSensorBus(tiers=len(stack.tiers)),
        warning_c=policy.release_c,
        emergency_c=policy.throttle_c + 15.0,
    )

    trace = run_closed_loop(
        stack,
        grid,
        monitor,
        workload,
        policy,
        dt=0.02,
        steps=STEPS,
        sensor_sites={i: SITE for i in range(len(stack.tiers))},
    )

    print("time    true peak   sensed peak   tier power scales")
    for step in range(0, len(trace.times_s), 5):
        scales = trace.power_scales[step]
        print(
            f"{trace.times_s[step] * 1e3:5.0f} ms   {trace.true_peak_c[step]:6.1f} C"
            f"     {trace.sensed_peak_c[step]:6.1f} C     "
            + " ".join(f"t{t}={s:.2f}" for t, s in sorted(scales.items()))
        )

    print(
        f"\npeak held to {trace.max_true_peak():.1f} degC against the"
        f" {policy.throttle_c:.0f} degC set-point"
        f" (sensing gap <= {trace.worst_sensing_gap():.2f} degC)"
    )
    assert trace.max_true_peak() < policy.throttle_c + 3.0

    # Bonus: what an adaptive sampler would have spent on this trajectory.
    sampler = AdaptiveSampler(resolution_margin_c=1.0)
    intervals = [
        sampler.next_interval(t, peak)
        for t, peak in zip(trace.times_s, trace.sensed_peak_c)
    ]
    mean_rate = sum(1.0 / i for i in intervals) / len(intervals)
    print(
        f"adaptive sampling would average {mean_rate:.0f} conversions/s"
        f" ({min(intervals) * 1e3:.1f}-{max(intervals) * 1e3:.1f} ms intervals)"
    )


if __name__ == "__main__":
    main()
