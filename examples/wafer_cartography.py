"""Wafer cartography without wafer probing.

A wafer's process signature is classically measured with scribe-line
structures at wafer probe — extra test time, a handful of sites.  With the
paper's sensor in every die, every *packaged part* reports its own
(dV_tn, dV_tp) at power-on, and the population reconstructs the wafer's
radial signature for free.

This example processes a wafer with a known centre-to-edge threshold bowl,
lets each die's sensor extract its own process point, fits the radial
signature from the extractions, and compares it against the ground truth.

Run:  python examples/wafer_cartography.py
      REPRO_EXAMPLE_FAST=1 python examples/wafer_cartography.py  # CI-sized wafer
"""

import os

import numpy as np

from repro import PTSensor, nominal_65nm
from repro.variation.wafer import WaferModel, fit_radial_signature, sample_wafer

GRID_DIAMETER = 7 if os.environ.get("REPRO_EXAMPLE_FAST") else 11
READ_TEMP_C = 30.0


def main() -> None:
    technology = nominal_65nm()
    truth = WaferModel()
    wafer = sample_wafer(technology, grid_diameter=GRID_DIAMETER, seed=77, model=truth)
    print(f"wafer: {len(wafer)} dies inside the circular mask")

    # One sensor per die; share the design-time model across the lot.
    first = PTSensor(technology, die=wafer[0].die)
    readings_n = {}
    readings_p = {}
    extraction_errors = []
    for wdie in wafer:
        sensor = PTSensor(
            technology, die=wdie.die, sensing_model=first.model, lut=first.lut
        )
        reading = sensor.read(READ_TEMP_C)
        readings_n[(wdie.row, wdie.col)] = reading.dvtn
        readings_p[(wdie.row, wdie.col)] = reading.dvtp
        true_n, _ = sensor.true_process_shifts()
        extraction_errors.append(abs(reading.dvtn - true_n))

    offset_n, bowl_n = fit_radial_signature(readings_n, GRID_DIAMETER)
    offset_p, bowl_p = fit_radial_signature(readings_p, GRID_DIAMETER)

    print(f"per-die extraction error: worst {max(extraction_errors) * 1e3:.2f} mV")
    print("\nreconstructed wafer signature (dVt = offset + bowl * r^2):")
    print(
        f"  NMOS: bowl {bowl_n * 1e3:+.2f} mV (truth {truth.bowl_dvtn * 1e3:+.2f}),"
        f" offset {offset_n * 1e3:+.2f} mV"
    )
    print(
        f"  PMOS: bowl {bowl_p * 1e3:+.2f} mV (truth {truth.bowl_dvtp * 1e3:+.2f}),"
        f" offset {offset_p * 1e3:+.2f} mV"
    )

    assert abs(bowl_n - truth.bowl_dvtn) < 0.004
    assert abs(bowl_p - truth.bowl_dvtp) < 0.004

    # Render a coarse ASCII wafer map of the NMOS read-out.
    print("\nNMOS threshold map from the sensors (mV, '.' = outside wafer):")
    values = np.full((GRID_DIAMETER, GRID_DIAMETER), np.nan)
    for (row, col), value in readings_n.items():
        values[row, col] = value * 1e3
    for row in range(GRID_DIAMETER):
        cells = []
        for col in range(GRID_DIAMETER):
            v = values[row, col]
            cells.append("   . " if np.isnan(v) else f"{v:+5.0f}")
        print(" ".join(cells))


if __name__ == "__main__":
    main()
