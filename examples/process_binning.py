"""Wafer-lot process binning with the sensor's V_t read-out.

Beyond thermal management, an on-chip process monitor lets every die grade
itself: the extracted (dV_tn, dV_tp) classifies the die into speed bins
(fast / typical / slow) at power-on, with no wafer-probe corner testing.
This example manufactures a 200-die lot, bins each die from its own
sensor's extraction, and scores the binning against ground truth.

Run:  python examples/process_binning.py
      REPRO_EXAMPLE_FAST=1 python examples/process_binning.py   # CI-sized lot
"""

import os
from collections import Counter

from repro import PTSensor, nominal_65nm, sample_dies

LOT_SIZE = 50 if os.environ.get("REPRO_EXAMPLE_FAST") else 200
BIN_EDGE_V = 0.015  # |dVt| below this is "typical"


def speed_bin(dvtn: float, dvtp: float) -> str:
    """Classify a process point into a speed bin.

    Average threshold shift drives speed: low thresholds = fast die.
    """
    average = (dvtn + dvtp) / 2.0
    if average < -BIN_EDGE_V:
        return "fast"
    if average > BIN_EDGE_V:
        return "slow"
    return "typical"


def main() -> None:
    technology = nominal_65nm()
    dies = sample_dies(technology, count=LOT_SIZE, seed=1234)

    # Build one sensor per die; share the design-time model via the first
    # sensor so the lot constructs quickly.
    first = PTSensor(technology, die=dies[0])
    sensors = [first] + [
        PTSensor(
            technology, die=die, sensing_model=first.model, lut=first.lut
        )
        for die in dies[1:]
    ]

    correct = 0
    confusion = Counter()
    true_bins = Counter()
    for die, sensor in zip(dies, sensors):
        true_n, true_p = sensor.true_process_shifts()
        truth = speed_bin(true_n, true_p)
        reading = sensor.read(30.0)  # power-on self-test at ~room temp
        estimate = speed_bin(reading.dvtn, reading.dvtp)
        true_bins[truth] += 1
        confusion[(truth, estimate)] += 1
        if truth == estimate:
            correct += 1

    print(f"lot size: {LOT_SIZE} dies")
    print("true bin populations:", dict(sorted(true_bins.items())))
    print(f"self-binning accuracy: {correct / LOT_SIZE * 100:.1f}%")
    print("\nconfusion (true -> estimated):")
    for (truth, estimate), count in sorted(confusion.items()):
        marker = "" if truth == estimate else "   <-- misbin"
        print(f"  {truth:8s} -> {estimate:8s}: {count:3d}{marker}")

    # Misbins can only happen within a millivolt-class band around the bin
    # edges; far-from-edge dies must never be misclassified.
    for (truth, estimate), count in confusion.items():
        if truth != estimate:
            assert {truth, estimate} != {"fast", "slow"}, (
                "a fast die was binned slow (or vice versa) - extraction is broken"
            )
    print("\nno fast<->slow misbins: extraction error stays millivolt-class")


if __name__ == "__main__":
    main()
