"""Serving demo: many consumers, one stack, one conversion per batch.

A deployed 3-D stack is polled by several independent consumers at once —
a DTM controller chasing the hottest tier, a telemetry scraper walking
every tier, a calibration daemon spot-checking process points.  Served
naively, each query costs its own full conversion.  The serving layer
(`repro.serve`, docs/serving.md) coalesces concurrent queries into
micro-batches answered by one vectorised conversion, caches repeat
queries for the same quantised operating point, and degrades — not
crashes — when a fault plan breaks a tier mid-stream.

The demo runs three phases against one 8-tier service:

1. a burst of mixed queries, showing coalescing (batch sizes > 1);
2. a repeat of the same thermal setpoints, showing the result cache;
3. the same traffic with a drifting sensor injected on tier 2, showing
   per-tier degradation while the rest of the stack serves normally.

Run:  python examples/serving_demo.py
      REPRO_EXAMPLE_FAST=1 python examples/serving_demo.py  # CI-sized
"""

import os

from repro import faults
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.serve import (
    BatchPolicy,
    ReadRequest,
    SensorReadService,
    ServeConfig,
)

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
TIERS = 4 if FAST else 8
BURST = 12 if FAST else 32


def burst(service, label):
    """Submit one mixed burst concurrently and summarise the answers."""
    requests = []
    for i in range(BURST):
        tier = i % TIERS
        temp = 40.0 + 5.0 * (i % 3)
        requests.append(
            ReadRequest.point(tier, temp)
            if i % 4
            else ReadRequest.scan(temp, tiers=tuple(range(0, TIERS, 2)))
        )
    futures = [service.submit(r) for r in requests]
    results = [f.result(timeout=30.0) for f in futures]
    statuses = sorted({r.status.value for r in results})
    hits = sum(r.cache_hits for r in results)
    biggest = max(r.batch_size for r in results)
    print(
        f"  {label}: {len(results)} answers, statuses {statuses}, "
        f"largest batch {biggest}, cache hits {hits}"
    )
    return results


def main() -> None:
    config = ServeConfig(
        tiers=TIERS, batch=BatchPolicy(max_batch=16, max_wait_ms=10.0)
    )
    print(f"== serving an {TIERS}-tier stack "
          f"(max_batch={config.batch.max_batch}, "
          f"max_wait={config.batch.max_wait_ms} ms)")

    with SensorReadService(config=config) as service:
        print("\n-- phase 1: cold burst (coalescing)")
        burst(service, "cold")

        print("\n-- phase 2: same setpoints again (result cache)")
        burst(service, "warm")

        print("\n-- phase 3: tier 2 drifts (graceful degradation)")
        plan = FaultPlan(
            name="demo-drift",
            specs=(
                FaultSpec(FaultKind.SENSOR_DRIFT, tier=2, onset_round=0,
                          severity=3.0),
            ),
        )
        with faults.inject(plan):
            results = burst(service, "faulted")
        degraded = [
            reading.tier
            for result in results
            for reading in result.readings
            if reading.quality != "ok"
        ]
        print(f"  degraded readings all on tier {sorted(set(degraded))} "
              f"({len(degraded)} of "
              f"{sum(len(r.readings) for r in results)} readings)")

        stats = service.stats()
        print(f"\n== service totals: {stats.served} served, "
              f"{stats.batches} batches, histogram {stats.batch_size_histogram}")
        if stats.cache is not None:
            print(f"   cache: {stats.cache.hits} hits / "
                  f"{stats.cache.hits + stats.cache.misses} lookups "
                  f"({stats.cache.hit_rate:.0%})")


if __name__ == "__main__":
    main()
