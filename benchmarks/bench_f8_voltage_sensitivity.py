"""Bench R F8:supply droop sensitivity (full workload).

Regenerates the R-F8 rows; run with -s to see the table.
"""

from repro.experiments import exp_f8_voltage_sensitivity as exp


def test_bench_f8_voltage_sensitivity(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
