"""Bench R-E6 oversampling accuracy/energy trade (full workload, reconstruction extension).

Run with ``-s`` to see the table.
"""

from repro.experiments import exp_e6_averaging as exp


def test_bench_e6_averaging(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
