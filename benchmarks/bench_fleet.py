"""Fleet benchmark: hedged reads must actually clip a slow host's tail.

The acceptance bar of the federation layer (docs/fleet.md):

* **tail reduction** — with one host out of three stalled by 50 ms and
  replication 2, the hedged client's p99 must come in at or below
  0.6x the unhedged client's p99 on the identical request stream.
  Roughly a third of reads have the stalled host as primary; a hedge
  budget that adapts correctly fires before the stall resolves and the
  secondary answers in single-digit milliseconds, so in practice the
  ratio lands well under the gate (~0.3-0.45x);
* **no silent loss** — both arms must answer every request with zero
  non-retryable errors.  Hedging converts tail latency into extra
  attempts, never into failures;
* **honest accounting** — the hedged arm must actually hedge: with the
  stalled host primary for a third of the stream, the hedge and
  hedge-win counters must both be non-zero, and wins can never exceed
  launches.

This is a wall-clock measurement over real localhost edge servers
(spawned worker processes, real sockets), so it is the one benchmark in
the suite whose assertions ride on elapsed time.  The ratio is robust
because the injected stall (50 ms) towers over scheduler noise and both
arms share the same fleet, the same warm caches and the same box.
`python -m repro fleet --bench` exposes the same run on the command
line; ``fleet_hedged_3host`` in ``python -m repro bench --check`` pins
the wall-clock cost of the whole measurement.
"""

import time

from repro.fleet import FleetBenchConfig, run_fleet_bench

MAX_P99_RATIO = 0.6  # hedged p99 vs unhedged p99, the CI gate


def _config():
    # The defaults are the tuned CI shape: 3 hosts x 1 shard,
    # replication 2, a sequential driver, uniform point reads, and a
    # p90/40ms-capped hedge policy sized for the 240-request window.
    return FleetBenchConfig()


def test_hedged_p99_beats_unhedged_under_one_slow_host():
    started = time.perf_counter()
    report = run_fleet_bench(_config())
    wall = time.perf_counter() - started
    print(f"\n{report.render()}\n[wall {wall:.2f}s]")
    assert report.unhedged.non_retryable_errors == 0
    assert report.hedged.non_retryable_errors == 0
    assert report.unhedged.ok == report.unhedged.requests
    assert report.hedged.ok == report.hedged.requests
    # The unhedged arm never races replicas.
    assert report.unhedged.hedges == 0
    # The hedged arm must have exercised the machinery it is named for.
    assert report.hedged.hedges > 0
    assert report.hedged.hedge_wins > 0
    assert report.hedged.hedge_wins <= report.hedged.hedges
    assert report.p99_ratio <= MAX_P99_RATIO, (
        f"hedged p99 is {report.p99_ratio:.2f}x unhedged "
        f"(gate: {MAX_P99_RATIO}x) — the hedge budget is not firing "
        f"inside the injected stall"
    )
