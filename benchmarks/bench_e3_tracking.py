"""Bench R-E3 tracking-mode monitoring energy (full workload, reconstruction extension).

Run with ``-s`` to see the table.
"""

from repro.experiments import exp_e3_tracking as exp


def test_bench_e3_tracking(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
