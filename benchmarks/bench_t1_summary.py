"""Bench R T1:sensor summary table (full workload).

Regenerates the R-T1 rows; run with -s to see the table.
"""

from repro.experiments import exp_t1_summary as exp


def test_bench_t1_summary(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
