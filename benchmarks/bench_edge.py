"""Edge-scaling benchmark: sharding must actually buy throughput.

The acceptance bar of the network edge (docs/edge.md):

* **scaling** — under a saturating arrival stream, 4 shards must serve
  at least 2.5x the throughput of 1 shard, and the 1→2→4 curve must be
  monotonic (a pool that only breaks even would mean the routing or the
  per-shard windows serialise the work).  The bar rose from 2x when the
  loadgen started charging honest per-request wire cost to the shards:
  the binary wire's cheaper codec and coalesced IPC lift the curve
  (see benchmarks/bench_wire.py for the per-message costs);
* **determinism** — the shard-scaling loadgen is a virtual-time
  discrete-event simulation over seeded per-shard stacks, so two runs
  with the same config must produce the same report, byte for byte.

The scaling assertion is on *virtual* (modeled) time, which is immune
to CI-box noise; the wall-clock timing printed alongside is
informational.  `python -m repro edge-bench` is the real-process,
wall-clock smoke of the same question.
"""

import time

from repro.edge import EdgeLoadgenConfig, run_loadgen_edge

REQUESTS = 4000
MIN_SCALING_4SHARD = 2.5


def _config(shard_counts=(1, 2, 4)):
    return EdgeLoadgenConfig(requests=REQUESTS, shard_counts=shard_counts)


def test_four_shards_double_one_shard_throughput():
    started = time.perf_counter()
    report = run_loadgen_edge(_config())
    wall = time.perf_counter() - started
    print(f"\n{report.render()}\n[wall {wall:.2f}s]")
    for point in report.points:
        # Saturation sheds load by *rejecting* (typed backpressure), it
        # never loses work silently.
        assert point.served + point.rejected + point.shed == REQUESTS
        assert point.served > 0
        assert point.errors == 0
    assert report.monotonic, "shard-scaling curve is not monotonic"
    scaling = report.point(4).scaling_vs_one
    assert scaling >= MIN_SCALING_4SHARD, (
        f"4 shards only scale {scaling:.2f}x over 1 shard "
        f"(bar: {MIN_SCALING_4SHARD}x)"
    )


def test_edge_loadgen_report_is_deterministic():
    first = run_loadgen_edge(_config(shard_counts=(1, 2)))
    second = run_loadgen_edge(_config(shard_counts=(1, 2)))
    assert first.to_json() == second.to_json()


def test_partition_covers_the_stream_and_uses_every_shard():
    report = run_loadgen_edge(_config(shard_counts=(4,)))
    point = report.point(4)
    # Per-shard served counts must add up exactly, and the ring must
    # actually spread the 64 stacks over all 4 shards.
    assert sum(point.per_shard_served) == point.served
    assert len(point.per_shard_served) == 4
    assert all(served > 0 for served in point.per_shard_served)
