"""Bench R F7:energy vs resolution (full workload).

Regenerates the R-F7 rows; run with -s to see the table.
"""

from repro.experiments import exp_f7_energy_resolution as exp


def test_bench_f7_energy_resolution(benchmark):
    result = benchmark(exp.run)
    print()
    print(result.render())
