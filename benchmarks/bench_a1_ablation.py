"""Bench R A1:self calibration ablation (full workload).

Regenerates the R-A1 rows; run with -s to see the table.
"""

from repro.experiments import exp_a1_ablation as exp


def test_bench_a1_ablation(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
