"""Bench R T2:scheme comparison table (full workload).

Regenerates the R-T2 rows; run with -s to see the table.
"""

from repro.experiments import exp_t2_comparison as exp


def test_bench_t2_comparison(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
