"""Bench R F2:process sensitivity matrix (full workload).

Regenerates the R-F2 rows; run with -s to see the table.
"""

from repro.experiments import exp_f2_process_sensitivity as exp


def test_bench_f2_process_sensitivity(benchmark):
    result = benchmark(exp.run)
    print()
    print(result.render())
