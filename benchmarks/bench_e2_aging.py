"""Bench R-E2 aging: drift-anchored self-calibration (full workload, reconstruction extension).

Run with ``-s`` to see the table.
"""

from repro.experiments import exp_e2_aging as exp


def test_bench_e2_aging(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
