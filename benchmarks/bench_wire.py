"""Wire-cost benchmark: the fast wire must actually be fast.

The acceptance bars of the PR that introduced the binary frame format
and batch-coalesced worker IPC (docs/edge.md, "Wire formats"):

* **codec** — one binary ``read`` exchange (request decode + answer
  encode, the per-message work the edge event loop does) must cost at
  most half of its NDJSON equivalent, and the binary wire bytes must be
  smaller;
* **IPC coalescing** — under a burst of routed reads, the supervisor
  must put at least 3x fewer messages on the worker pipes than the
  one-message-per-read wire it replaced (measured with the real
  :class:`~repro.edge.supervisor.ShardPool` via the
  ``edge.ipc_messages`` / ``edge.ipc_batch`` telemetry);
* **edge CPU** — served through the real server over real sockets, the
  per-request wire CPU (``edge.cpu_us_per_request``: decode + encode,
  shard time excluded) must be lower on the binary wire than on NDJSON.

The codec assertion is pure compute (no sockets, no processes); the
other two spawn real shard workers, so they are smokes with a meter,
not microsecond-precise — their bars are deliberately coarse.

These measured costs calibrate the ``WIRE_COSTS`` table that the
virtual-time loadgen charges per request (``repro.edge.loadgen``).
"""

import time

from repro import telemetry
from repro.edge import protocol
from repro.edge.client import EdgeClient
from repro.edge.server import EdgeConfig, EdgeServerThread
from repro.edge.sharding import shard_seed
from repro.edge.supervisor import ShardPool
from repro.edge.worker import WorkerConfig
from repro.serve.requests import ReadRequest

CODEC_MESSAGES = 2000
MIN_CODEC_ADVANTAGE = 2.0  # NDJSON cost / binary cost per exchange
MIN_IPC_COALESCING = 3.0  # routed reads per pipe message
ROOT_SEED = 2012


# ----------------------------------------------------------------- payloads


def _read_payload(rid: int) -> dict:
    """The hot inbound message: one routed point read."""
    return {
        "v": protocol.PROTOCOL_VERSION,
        "id": rid,
        "op": "read",
        "stack": 7,
        "request": protocol.request_to_wire(
            ReadRequest.point(1, 45.0), deadline_ms=250.0
        ),
    }


def _answer_payload(rid: int) -> dict:
    """One served answer from the deployed request mix.

    Mirrors the kind mix of the edge benchmark stream
    (``repro.edge.bench._request_stream``): point/vt answers carry one
    reading, scans two, polls four.
    """
    kind = rid % 10
    n_readings = {8: 2, 9: 4}.get(kind, 1)
    return {
        "id": rid,
        "ok": True,
        "shard": 2,
        "result": {
            "status": "ok",
            "batch_size": 8,
            "cache_hits": 3,
            "error": None,
            "latency_ms": 1.25,
            "readings": [
                {
                    "tier": tier,
                    "temperature_c": 45.03125 + 0.5 * tier,
                    "dvtn": 0.0123,
                    "dvtp": -0.0045,
                    "converged": True,
                    "quality": "ok",
                    "cache_hit": False,
                    "conversion_time": 8.0e-4,
                    "energy_j": 1.1e-9,
                }
                for tier in range(n_readings)
            ],
        },
    }


def _decode_frame(blob: bytes) -> dict:
    _version, kind, _length = protocol.decode_frame_header(
        blob[: protocol.FRAME_HEADER_SIZE]
    )
    return protocol.decode_frame_body(kind, blob[protocol.FRAME_HEADER_SIZE :])


def _encode_cost_s(encode, payloads, repeats: int = 3) -> float:
    """Best-of-``repeats`` per-message encode cost in seconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for payload in payloads:
            encode(payload)
        best = min(best, time.perf_counter() - started)
    return best / len(payloads)


def _decode_cost_s(encode, decode, payloads, repeats: int = 3) -> float:
    """Best-of-``repeats`` per-message decode cost in seconds."""
    blobs = [encode(p) for p in payloads]
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for blob in blobs:
            decode(blob)
        best = min(best, time.perf_counter() - started)
    return best / len(payloads)


def _metric(name: str):
    for record in telemetry.get().registry.snapshot():
        if record["name"] == name:
            return record
    return None


def _counter_value(name: str) -> float:
    record = _metric(name)
    return 0.0 if record is None else float(record["value"])


def _histogram_totals(name: str):
    record = _metric(name)
    if record is None:
        return 0.0, 0.0
    return float(record["sum"]), float(record["count"])


# -------------------------------------------------------------------- tests


def test_binary_exchange_at_least_twice_as_cheap_as_ndjson():
    requests = [_read_payload(i) for i in range(CODEC_MESSAGES)]
    answers = [_answer_payload(i) for i in range(CODEC_MESSAGES)]

    # The server's per-exchange work: decode the inbound read, encode
    # the outbound answer.  (The client does the mirror image.)
    ndjson = _decode_cost_s(protocol.encode, protocol.decode_line, requests)
    ndjson += _encode_cost_s(protocol.encode, answers)
    binary = _decode_cost_s(protocol.encode_frame, _decode_frame, requests)
    binary += _encode_cost_s(protocol.encode_frame, answers)

    advantage = ndjson / binary
    print(
        f"\nwire codec per exchange: ndjson {ndjson*1e6:.2f} us, "
        f"binary {binary*1e6:.2f} us ({advantage:.2f}x cheaper)"
    )
    assert advantage >= MIN_CODEC_ADVANTAGE, (
        f"binary exchange only {advantage:.2f}x cheaper than NDJSON "
        f"(bar: {MIN_CODEC_ADVANTAGE}x)"
    )


def test_binary_wire_bytes_are_smaller():
    request, answer = _read_payload(1), _answer_payload(1)
    assert len(protocol.encode_frame(request)) < len(protocol.encode(request))
    assert len(protocol.encode_frame(answer)) < len(protocol.encode(answer))
    # And the frames round-trip to the same payloads (floats included —
    # IEEE-754 doubles on the wire, no text round-off).
    assert _decode_frame(protocol.encode_frame(request)) == request
    decoded = _decode_frame(protocol.encode_frame(answer))
    assert decoded["result"]["readings"] == answer["result"]["readings"]


def test_supervisor_coalesces_reads_into_few_pipe_messages():
    reads = 48
    workers = [
        WorkerConfig(shard_index=i, seed=shard_seed(ROOT_SEED, i), tiers=2)
        for i in range(2)
    ]
    # A generous linger so a burst submitted faster than the flushers
    # drain it coalesces; window-full still flushes immediately.
    pool = ShardPool(workers, window=64, ipc_batch=16, ipc_linger_s=0.002)
    messages_before = _counter_value("edge.ipc_messages")
    batched_before, _ = _histogram_totals("edge.ipc_batch")
    pool.start(health_checks=False)
    try:
        wire = protocol.request_to_wire(ReadRequest.point(0, 45.0))
        futures = [pool.submit_read(i, wire) for i in range(reads)]
        answers = [f.result(timeout=30.0) for f in futures]
    finally:
        pool.close()
    assert all(a.get("ok") for a in answers)

    messages = _counter_value("edge.ipc_messages") - messages_before
    batched, _ = _histogram_totals("edge.ipc_batch")
    batched -= batched_before
    assert batched == reads, "every routed read must ride a coalesced message"
    coalescing = reads / messages if messages else 0.0
    print(
        f"\nipc coalescing: {reads} reads in {messages:.0f} pipe messages "
        f"({coalescing:.1f} reads/message)"
    )
    assert coalescing >= MIN_IPC_COALESCING, (
        f"only {coalescing:.1f} reads per pipe message "
        f"(bar: {MIN_IPC_COALESCING})"
    )


def test_edge_cpu_per_request_lower_on_binary_wire():
    reads = 120
    config = EdgeConfig(shards=1, port=0, tiers=2, root_seed=ROOT_SEED)
    costs = {}
    with EdgeServerThread(config) as edge:
        for wire in ("ndjson", "binary"):
            sum_before, count_before = _histogram_totals("edge.cpu_us_per_request")
            with EdgeClient(edge.host, edge.port, wire=wire) as client:
                for i in range(reads):
                    result = client.read(i % 8, ReadRequest.point(i % 2, 45.0))
                    assert result.ok
            cpu_sum, cpu_count = _histogram_totals("edge.cpu_us_per_request")
            served = cpu_count - count_before
            assert served == reads
            costs[wire] = (cpu_sum - sum_before) / served
    print(
        f"\nedge.cpu_us_per_request: ndjson {costs['ndjson']:.2f} us, "
        f"binary {costs['binary']:.2f} us"
    )
    assert costs["binary"] < costs["ndjson"], (
        f"binary wire CPU {costs['binary']:.2f} us/request is not below "
        f"NDJSON's {costs['ndjson']:.2f} us/request"
    )
