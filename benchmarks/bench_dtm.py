"""DTM benchmark gates: placement at scale, live control, decision rate.

The acceptance bars of the PR that introduced ``repro.dtm``
(docs/dtm.md):

* **placement engine >= 10x scalar greedy at >= 100k placements** — the
  batch engine must sweep a six-slot greedy walk over a 100k+ candidate
  evaluation budget at least an order of magnitude faster than the
  original scalar path would (priced per-evaluation on a subsample at
  its *cheapest* trial length, so the measured speedup is a floor), and
  its site choices must match the exact walk bit for bit on a small
  parity sweep;

* **the live loop never trails the batch controller** — a real edge
  server plus :class:`~repro.dtm.service.DtmService` fed an injected
  runaway must issue its first throttle no later than the round the
  post-hoc batch controller (:func:`batch_alarm_round` at the throttle
  threshold) would flag on the same sensed trace;

* **the decision table is never the bottleneck** — the server-side
  decision hot path must clear a coarse CI floor; its absolute timing
  also feeds ``dtm_decisions_1stack`` in ``python -m repro bench --check``.
"""

from repro.dtm.bench import (
    measure_decision_rate,
    run_live_vs_batch,
    run_placement_bench,
)

MIN_SPEEDUP = 10.0
MIN_SWEEP = 100_000
MIN_DECISIONS_PER_S = 20_000.0  # coarse CI floor; ~260k/s on a dev host


def test_placement_engine_is_10x_scalar_on_a_100k_sweep():
    report = run_placement_bench()
    print(f"\n{report.render()}")
    assert report.scored >= MIN_SWEEP, (
        f"sweep scored only {report.scored} placements "
        f"(gate needs >= {MIN_SWEEP})"
    )
    assert report.parity_ok, "engine greedy diverged from the exact scalar walk"
    assert report.tournament_ok, "tournament finished worse than greedy"
    assert report.speedup >= MIN_SPEEDUP, (
        f"engine speedup {report.speedup:.1f}x is under the "
        f"{MIN_SPEEDUP:.0f}x bar (engine {report.engine_s:.3f} s vs "
        f"scalar extrapolated {report.scalar_extrapolated_s:.1f} s)"
    )


def test_live_first_throttle_never_later_than_batch():
    report = run_live_vs_batch()
    print(f"\n{report.render()}")
    assert report.service_errors == 0, report
    assert report.batch_round is not None, (
        "the injected trace never crossed the throttle threshold — "
        "the race compared nothing"
    )
    assert report.live_no_later, (
        f"live first throttle at round {report.live_round} trails the "
        f"batch controller's round {report.batch_round}"
    )


def test_decision_table_clears_the_rate_floor():
    report = measure_decision_rate()
    print(f"\n{report.render()}")
    assert report.per_second >= MIN_DECISIONS_PER_S, (
        f"decision rate {report.per_second:,.0f}/s is under the "
        f"{MIN_DECISIONS_PER_S:,.0f}/s floor"
    )
