"""Benchmark-suite configuration.

Each bench regenerates one reconstructed table/figure (R-F1..R-A1, see
DESIGN.md) at full workload and prints the paper-style rows, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the whole evaluation.
"""
