"""Bench R-E4 sensor-driven DTM closed loop (full workload, reconstruction extension).

Run with ``-s`` to see the table.
"""

from repro.experiments import exp_e4_dtm as exp


def test_bench_e4_dtm(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
