"""Telemetry overhead benchmark: instrumentation must not slow the hot path.

Two contracts, from the telemetry layer's acceptance bar:

* **disabled mode** (the default) costs one attribute check per span site
  — ``span()`` hands back the shared no-op singleton, so the population
  sweep must not regress against the uninstrumented baseline;
* **null-sink mode** (telemetry on, export discarded) may add only the
  per-*call* bookkeeping of the batch engine — a handful of counter
  increments per ``read_population``, amortised over thousands of
  conversions.

Wall-clock ratios on shared CI boxes are noisy, so the timing assertion
uses a generous bound (25 %) while the printed number documents the real
overhead (measured well under 2 % on a quiet machine); the structural
assertions (no-op span identity, handle caching) are exact.
"""

import time

from repro import telemetry
from repro.batch import read_population
from repro.experiments.common import population_sensors, reference_setup
from repro.analysis.sweeps import temperature_axis
from repro.telemetry import NullSink
from repro.telemetry.spans import NULL_SPAN

N_DIES = 50
N_TEMPS = 5
MAX_OVERHEAD_RATIO = 1.25
REPEATS = 5


def _workload():
    setup = reference_setup()
    sensors = population_sensors(N_DIES)
    temps_c = temperature_axis(
        setup.config.temp_min_c, setup.config.temp_max_c, points=N_TEMPS
    )
    return sensors, temps_c


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_disabled_mode_is_structurally_free():
    """While disabled, span sites get the shared no-op and handles are cached."""
    assert not telemetry.enabled()
    assert telemetry.span("core.conversion", die_id=0) is NULL_SPAN
    # Instrument handles are get-or-create: import-time bindings stay hot.
    assert telemetry.counter("core.conversions") is telemetry.counter(
        "core.conversions"
    )


def test_null_sink_overhead_bounded():
    """Null-sink telemetry tracks the uninstrumented batch sweep closely."""
    sensors, temps_c = _workload()

    def sweep():
        return read_population(sensors, temps_c, deterministic=True)

    sweep()  # warm caches (LUT, capacitance memo) outside the timed region
    disabled = _best_of(sweep)
    with telemetry.get().capture(sink=NullSink(), reset=False):
        enabled = _best_of(sweep)

    overhead = enabled / disabled - 1.0
    print(
        f"\nread_population {N_DIES}x{N_TEMPS}: disabled {disabled * 1e3:.2f} ms, "
        f"null-sink {enabled * 1e3:.2f} ms, overhead {overhead * 100:+.2f}%"
    )
    assert enabled < disabled * MAX_OVERHEAD_RATIO
