"""Bench R-E5 sensor placement and reconstruction (full workload, reconstruction extension).

Run with ``-s`` to see the table.
"""

from repro.experiments import exp_e5_placement as exp


def test_bench_e5_placement(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
