"""Bench R-E7 sensor-driven adaptive body bias (full workload, reconstruction extension).

Run with ``-s`` to see the table.
"""

from repro.experiments import exp_e7_body_bias as exp


def test_bench_e7_body_bias(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
