"""Bench R F3:Vt extraction error over MC dies (full workload).

Regenerates the R-F3 rows; run with -s to see the table.
"""

from repro.experiments import exp_f3_vt_extraction as exp


def test_bench_f3_vt_extraction(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
