"""Reshard benchmark: elasticity must be cheap and quiet.

The acceptance bars of live resharding (docs/edge.md, "Elastic
scaling"):

* **remap cost** — growing the ring N → N+1 must move at most
  ``1.5 / (N+1)`` of the key space (consistent hashing's ~1/(N+1)
  bound with measurement headroom).  A naive modulo router would move
  ~N/(N+1) of the keys and fail this by an order of magnitude;
* **tail latency under reshard** — p99 of client reads issued *while*
  the pool grows a shard must stay within ``3x`` the steady-state p99.
  The reshard path keeps serving: the new ring is published atomically,
  departing work drains, racers see retryable errors and re-route.

The remap gate is pure ring math (fast, exact).  The latency gate runs
a real two-shard server (fork start method) and times client reads
through a live ``scale_to(3)``.  ``python -m repro bench`` pins the
wall-clock of the same reshape as ``edge_reshard_2to4``.
"""

import threading
import time

from repro.edge import (
    EdgeClient,
    EdgeConfig,
    EdgeServerThread,
    HashRing,
    RetryPolicy,
    remapped_fraction,
)
from repro.serve import ReadRequest

TIERS = 4
MAX_P99_BLOWUP = 3.0
STEADY_SAMPLES = 150
# Keep sampling until the during-reshard window holds this many reads:
# with ~40 samples p99 is literally the second-worst read and one
# fork()-collision blip fails the gate; at 120+ the estimate is stable.
MIN_DURING_SAMPLES = 120
# Absolute floor on the steady baseline: on a quiet box steady p99 can
# dip under 5 ms, making the 3x bar tighter than the fixed cost of a
# worker fork — the gate is about reshard overhead, not machine speed.
STEADY_FLOOR_MS = 5.0
WARMUP_READS = 30


def test_grow_remap_fraction_bounded():
    """Grow N → N+1 moves ≤ 1.5/(N+1) of the keys, for every small N."""
    for shards in (1, 2, 3, 4, 6, 8):
        old = HashRing(range(shards))
        new = old.successor(range(shards + 1))
        fraction = remapped_fraction(old, new)
        bound = 1.5 / (shards + 1)
        assert fraction <= bound, (
            f"grow {shards}->{shards + 1} remapped {fraction:.3f} "
            f"of the key space (bar: {bound:.3f})"
        )
        if shards > 1:
            assert fraction > 0.0  # the new shard does take ownership


def _p99(samples):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.99 * (len(ordered) - 1)))]


def test_reshard_p99_within_3x_steady_state():
    config = EdgeConfig(
        shards=2, tiers=TIERS, root_seed=2012, start_method="fork", window=64
    )
    retry = RetryPolicy(attempts=10, backoff_s=0.01, max_backoff_s=0.1)
    with EdgeServerThread(config) as edge:
        pool = edge.server.pool
        with EdgeClient(edge.host, edge.port, retry=retry) as client:

            def timed_read(stack):
                started = time.perf_counter()
                result = client.read(stack, ReadRequest.point(stack % TIERS, 45.0))
                assert result.ok
                return (time.perf_counter() - started) * 1e3

            for stack in range(WARMUP_READS):
                timed_read(stack)
            steady = [timed_read(i % 24) for i in range(STEADY_SAMPLES)]

            reshard = threading.Thread(target=lambda: pool.scale_to(3))
            reshard.start()
            during = []
            while reshard.is_alive() or len(during) < MIN_DURING_SAMPLES:
                during.append(timed_read(len(during) % 24))
            reshard.join()

        steady_p99 = max(_p99(steady), STEADY_FLOOR_MS)
        reshard_p99 = _p99(during)
        print(
            f"\nsteady p99 {steady_p99:.2f} ms, during-reshard p99 "
            f"{reshard_p99:.2f} ms over {len(during)} reads "
            f"(bar {MAX_P99_BLOWUP:.1f}x)"
        )
        assert pool.shard_indices == [0, 1, 2]
        assert reshard_p99 <= MAX_P99_BLOWUP * steady_p99, (
            f"p99 during reshard {reshard_p99:.2f} ms exceeds "
            f"{MAX_P99_BLOWUP}x steady-state ({steady_p99:.2f} ms)"
        )


def test_shrink_keeps_serving_and_remap_stays_small():
    """The shrink direction of the same gate: 3 → 2 moves ≤ 1.5/3."""
    old = HashRing(range(3))
    new = old.successor(range(2))
    assert remapped_fraction(old, new) <= 1.5 / 3
