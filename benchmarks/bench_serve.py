"""Serving-path benchmark: micro-batching must beat scalar serving.

The acceptance bar of the serving subsystem (docs/serving.md):

* **throughput** — with batch-32 coalescing and the result cache, the
  modeled stack-occupancy time of the batched service must be at least
  5x smaller than serving the same request stream naively (one request
  per readout, no coalescing, no cache);
* **determinism** — the virtual-time load generator is a discrete-event
  simulation, so two runs with the same seed must produce the same
  report, byte for byte (latency percentiles included);
* **coalescing** — under a saturating closed loop the mean batch size
  must actually approach the configured bound (batching that never
  happens would also "win" the latency race).

The speedup assertion is on *virtual* (modeled) time, which is immune to
CI-box noise; the wall-clock timing printed alongside is informational.
"""

import time

from repro.serve import BatchPolicy, LoadgenConfig, ServeConfig, run_loadgen

REQUESTS = 600
CLIENTS = 64
MIN_SPEEDUP = 5.0
MIN_MEAN_BATCH = 16.0


def _config():
    return LoadgenConfig(
        requests=REQUESTS,
        clients=CLIENTS,
        think_time_s=0.001,
        serve=ServeConfig(tiers=8, batch=BatchPolicy(max_batch=32, max_wait_ms=2.0)),
    )


def test_microbatching_beats_scalar_serving_5x():
    started = time.perf_counter()
    report = run_loadgen(_config())
    wall = time.perf_counter() - started
    print(f"\n{report.render()}\n[wall {wall:.2f}s]")
    assert report.errors == 0 and report.rejected == 0
    assert report.served == REQUESTS
    assert report.mean_batch_size >= MIN_MEAN_BATCH
    assert report.speedup_vs_scalar >= MIN_SPEEDUP, (
        f"micro-batched serving only {report.speedup_vs_scalar:.2f}x faster "
        f"than naive scalar serving (bar: {MIN_SPEEDUP}x)"
    )


def test_loadgen_report_is_deterministic():
    first = run_loadgen(_config())
    second = run_loadgen(_config())
    assert first.to_json() == second.to_json()
    assert first.latency_ms == second.latency_ms
    assert first.batch_histogram == second.batch_histogram


def test_cache_contributes_under_setpoint_locality():
    report = run_loadgen(_config())
    assert report.cache is not None
    assert report.cache.hits > 0
    assert 0.0 < report.cache_hit_rate <= 1.0
