"""Population-sweep benchmark: the batch engine vs the scalar loop.

The acceptance workload for the batch engine is a 200-die x 9-temperature
bank-frequency sweep — the inner kernel of every population experiment
(R-F3/F4/E6).  ``test_batch_speedup_and_equivalence`` pins both halves of
the contract at once: the batch path must be at least 10x faster than the
scalar loop on the same workload, and numerically equivalent to rtol 1e-9.
"""

import time

import numpy as np

from repro.analysis.sweeps import temperature_axis
from repro.batch import read_population, ring_frequency_batch
from repro.batch.population import population_bank_frequencies, population_grid
from repro.experiments.common import population_sensors, reference_setup
from repro.units import ZERO_CELSIUS_IN_KELVIN, celsius_to_kelvin

N_DIES = 200
N_TEMPS = 9
MIN_SPEEDUP = 10.0
EQUIVALENCE_RTOL = 1e-9


def _workload():
    setup = reference_setup()
    sensors = population_sensors(N_DIES)
    temps_c = temperature_axis(
        setup.config.temp_min_c, setup.config.temp_max_c, points=N_TEMPS
    )
    return sensors, temps_c


def _scalar_sweep(sensors, temps_c):
    out = np.empty((len(sensors), temps_c.size, 4))
    for i, sensor in enumerate(sensors):
        for j, temp_c in enumerate(temps_c):
            env = sensor.physical_environment(celsius_to_kelvin(float(temp_c)))
            f = sensor.bank.frequencies(env)
            out[i, j] = (f.psro_n, f.psro_p, f.tsro, f.reference)
    return out


def _batch_sweep(sensors, temps_c):
    reference = sensors[0]
    grid = population_grid(
        sensors, temps_c + ZERO_CELSIUS_IN_KELVIN, reference.technology.vdd
    )
    bank = population_bank_frequencies(sensors, grid)
    ref_ring = ring_frequency_batch(
        reference.bank.reference.stage,
        reference.bank.reference.stages,
        reference.technology,
        grid,
        vtn_offset=np.array([s.bank.reference.vtn_offset for s in sensors]).reshape(
            -1, 1
        ),
        vtp_offset=np.array([s.bank.reference.vtp_offset for s in sensors]).reshape(
            -1, 1
        ),
    )
    return np.stack([bank.psro_n, bank.psro_p, bank.tsro, ref_ring], axis=-1)


def test_bench_population_sweep_batch(benchmark):
    sensors, temps_c = _workload()
    frequencies = benchmark(_batch_sweep, sensors, temps_c)
    assert frequencies.shape == (N_DIES, N_TEMPS, 4)
    assert np.all(frequencies > 0.0)


def test_bench_population_read_batch(benchmark):
    sensors, temps_c = _workload()
    readings = benchmark(read_population, sensors, temps_c, deterministic=True)
    assert readings.converged.all()


def test_batch_speedup_and_equivalence():
    sensors, temps_c = _workload()

    started = time.perf_counter()
    scalar = _scalar_sweep(sensors, temps_c)
    scalar_seconds = time.perf_counter() - started

    batch_seconds = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        batch = _batch_sweep(sensors, temps_c)
        batch_seconds = min(batch_seconds, time.perf_counter() - started)

    np.testing.assert_allclose(batch, scalar, rtol=EQUIVALENCE_RTOL)
    speedup = scalar_seconds / batch_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"batch sweep only {speedup:.1f}x faster than scalar "
        f"({batch_seconds*1e3:.1f} ms vs {scalar_seconds*1e3:.1f} ms); "
        f"need >= {MIN_SPEEDUP:.0f}x"
    )
