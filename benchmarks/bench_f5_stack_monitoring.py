"""Bench R F5:per tier 3D stack monitoring (full workload).

Regenerates the R-F5 rows; run with -s to see the table.
"""

from repro.experiments import exp_f5_stack_monitoring as exp


def test_bench_f5_stack_monitoring(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
