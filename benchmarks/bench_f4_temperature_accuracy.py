"""Bench R F4:temperature inaccuracy before/after (full workload).

Regenerates the R-F4 rows; run with -s to see the table.
"""

from repro.experiments import exp_f4_temperature_accuracy as exp


def test_bench_f4_temperature_accuracy(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
