"""Microbenchmarks of the sensor's hot paths.

Not a paper figure — these time the reproduction's own primitives (one full
conversion, one process extraction, one thermal steady-state solve) so
regressions in the library's performance are visible independently of the
experiment workloads.
"""

from repro.circuits.ring_oscillator import Environment
from repro.core.decoupler import extract_process
from repro.experiments.common import build_sensor, die_population, reference_setup
from repro.thermal.grid import build_stack_grid
from repro.thermal.power import uniform_power_map
from repro.thermal.solver import steady_state
from repro.tsv.geometry import StackDescriptor, TierSpec
from repro.units import celsius_to_kelvin


def test_bench_single_conversion(benchmark):
    die = die_population(1)[0]
    sensor = build_sensor(die)
    reading = benchmark(sensor.read, 65.0)
    assert reading.converged


def test_bench_process_extraction(benchmark):
    setup = reference_setup()
    temp_k = celsius_to_kelvin(25.0)
    f_n, f_p = setup.model.process_frequencies(0.015, -0.010, temp_k)
    dvtn, dvtp = benchmark(
        extract_process, setup.model, f_n, f_p, temp_k, lut=setup.lut
    )
    assert abs(dvtn - 0.015) < 1e-4
    assert abs(dvtp + 0.010) < 1e-4


def test_bench_thermal_steady_state(benchmark):
    stack = StackDescriptor(tiers=[TierSpec(f"tier{i}") for i in range(4)])
    nx = ny = 20
    grid = build_stack_grid(
        stack.thermal_layers(nx, ny), stack.die_width, stack.die_height, nx=nx, ny=ny
    )
    power = {f"tier{i}.si": uniform_power_map(nx, ny, 0.8) for i in range(4)}
    field = benchmark(steady_state, grid, power)
    assert field.peak("tier0.si") > grid.ambient_k


def test_bench_oscillator_bank_evaluation(benchmark):
    setup = reference_setup()
    env = Environment(temp_k=celsius_to_kelvin(65.0), vdd=setup.technology.vdd)
    freqs = benchmark(setup.model.bank.frequencies, env)
    assert freqs.tsro > 0.0
