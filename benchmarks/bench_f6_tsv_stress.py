"""Bench R F6:TSV stress vs sensor (full workload).

Regenerates the R-F6 rows; run with -s to see the table.
"""

from repro.experiments import exp_f6_tsv_stress as exp


def test_bench_f6_tsv_stress(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
