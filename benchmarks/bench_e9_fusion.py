"""Bench R-E9 Kalman fusion of cheap conversions (full workload, extension).

Run with ``-s`` to see the table.
"""

from repro.experiments import exp_e9_fusion as exp


def test_bench_e9_fusion(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
