"""Bench R-E8 electrothermal runaway boundary (full workload, reconstruction extension).

Run with ``-s`` to see the table.
"""

from repro.experiments import exp_e8_runaway as exp


def test_bench_e8_runaway(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
