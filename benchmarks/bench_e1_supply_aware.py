"""Bench R-E1 supply-aware calibration under droop (full workload, reconstruction extension).

Run with ``-s`` to see the table.
"""

from repro.experiments import exp_e1_supply_aware as exp


def test_bench_e1_supply_aware(benchmark):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    print()
    print(result.render())
