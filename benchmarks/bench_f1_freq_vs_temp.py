"""Bench R F1:RO frequency vs temperature per corner (full workload).

Regenerates the R-F1 rows; run with -s to see the table.
"""

from repro.experiments import exp_f1_freq_vs_temp as exp


def test_bench_f1_freq_vs_temp(benchmark):
    result = benchmark(exp.run)
    print()
    print(result.render())
