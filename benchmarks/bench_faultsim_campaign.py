"""Faultsim overhead benchmark: the faults layer must be free when idle.

Two contracts, from the fault subsystem's acceptance bar:

* **no active plan** (the default) costs one module-global read per
  injection seam — sensor reads and bus collections check
  ``active_injector()`` and move on, so an uninstrumented polling loop
  must not regress;
* **zero-fault plan active** consumes no randomness and perturbs
  nothing, so a campaign's control plan must track the bare loop — the
  golden bit-identity test (tests/test_faults.py) proves the values
  match; this file pins the time.

Wall-clock ratios on shared CI boxes are noisy, so the timing assertion
uses a generous bound (25 %) while the printed number documents the real
overhead (measured in the noise — often negative — on a quiet machine);
the structural assertions are exact.
"""

import time

from repro import faults
from repro.faults import FaultInjector, FaultPlan
from repro.faults.campaign import CampaignConfig, _build_stack, run_plan

TIERS = 8
ROUNDS = 6
REPEATS = 3
MAX_OVERHEAD_RATIO = 1.25


def _config():
    return CampaignConfig(tiers=TIERS, rounds=ROUNDS)


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _bare_loop(config):
    monitor = _build_stack(config)
    for r in range(config.rounds):
        monitor.poll({t: config.truth_c(t, r) for t in range(config.tiers)})


def test_idle_seams_are_structurally_free():
    """With no plan active the seams see None and touch nothing else."""
    assert faults.active_injector() is None
    with faults.inject(FaultPlan()) as injector:
        assert faults.active_injector() is injector
    assert faults.active_injector() is None


def test_empty_plan_consumes_no_randomness():
    injector = FaultInjector(FaultPlan())
    before = injector._rng.bit_generator.state
    for tier in range(TIERS):
        injector.filter_frame(tier, 0x5A5A5A5A5A, hops=tier)
        injector.advance()
    assert injector._rng.bit_generator.state == before


def test_zero_fault_campaign_tracks_uninstrumented_loop():
    config = _config()
    plan = FaultPlan(name="zero-fault")

    _bare_loop(config)  # warm the shared design cache for both sides
    bare = _best_of(lambda: _bare_loop(config))
    smoke = _best_of(lambda: run_plan(plan, config))

    ratio = smoke / bare
    print(
        f"\nzero-fault faultsim overhead: bare {bare*1e3:.1f} ms, "
        f"campaign {smoke*1e3:.1f} ms, ratio {ratio:.3f}"
    )
    assert ratio < MAX_OVERHEAD_RATIO, (
        f"zero-fault campaign is {ratio:.2f}x the uninstrumented loop "
        f"(limit {MAX_OVERHEAD_RATIO}x)"
    )
