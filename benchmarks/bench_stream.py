"""Streaming-plane benchmark: fan-out must stay cheap, bounded and honest.

The acceptance bars of the PR that introduced server-push streaming
(docs/streaming.md):

* **publish never blocks** — delivering to 10k live bounded subscribers
  is pure appends; per-delivery cost must stay under a coarse CI bar
  and must scale linearly (not quadratically) with subscriber count;
* **bounded memory, typed loss** — a slow consumer's queue never grows
  past its bound; the overflow is dropped oldest-first, counted
  exactly, and surfaced as a synthesized ``backpressure`` notice on the
  next poll (the same closed error vocabulary the wire uses);
* **early warning beats the batch baseline** — the streaming EWMA-slope
  detector must flag an injected ``thermal_runaway`` no later than the
  post-hoc absolute-band baseline at every swept severity, and the
  virtual-time 10k-subscriber sweep must be bit-deterministic.

The fan-out assertions run against the real
:class:`~repro.telemetry.stream.StreamHub`; the scale/detection gates
run the seeded virtual-time sweep (no sockets, no sleeps).  The absolute
per-delivery cost also feeds ``stream_fanout_10k`` in
``python -m repro bench --check``.
"""

import time

from repro.edge.stream_loadgen import (
    StreamLoadgenConfig,
    run_loadgen_stream,
    runaway_trajectory,
)
from repro.telemetry.runaway import (
    RunawayPolicy,
    batch_alarm_round,
    streaming_alert_round,
)
from repro.telemetry.stream import StreamHub

SUBSCRIBERS = 10_000
QUEUE = 64
MAX_DELIVERY_US = 25.0  # coarse CI bar per subscriber delivery
MAX_LINEARITY_RATIO = 4.0  # per-delivery cost at 10k vs 1k subscribers


def _hub_with_subscribers(count: int, queue: int = QUEUE):
    hub = StreamHub()
    subs = [hub.subscribe(kinds=["metric"], queue=queue) for _ in range(count)]
    return hub, subs


def _publish_cost_us_per_delivery(subscribers: int, events: int = 20) -> float:
    hub, _subs = _hub_with_subscribers(subscribers)
    started = time.perf_counter()
    for i in range(events):
        hub.publish("metric", {"name": "bench.fanout", "value": float(i)})
    elapsed = time.perf_counter() - started
    return elapsed / (events * subscribers) * 1e6


def test_fanout_at_10k_subscribers_stays_cheap():
    cost_us = _publish_cost_us_per_delivery(SUBSCRIBERS)
    print(
        f"\nfan-out: {cost_us:.2f} us/delivery across "
        f"{SUBSCRIBERS} subscribers"
    )
    assert cost_us <= MAX_DELIVERY_US, (
        f"per-delivery cost {cost_us:.2f} us exceeds the "
        f"{MAX_DELIVERY_US} us bar"
    )


def test_fanout_cost_is_linear_in_subscribers():
    at_1k = _publish_cost_us_per_delivery(1_000)
    at_10k = _publish_cost_us_per_delivery(SUBSCRIBERS)
    ratio = at_10k / at_1k
    print(
        f"\nper-delivery cost: {at_1k:.2f} us at 1k, {at_10k:.2f} us at 10k "
        f"({ratio:.2f}x)"
    )
    assert ratio <= MAX_LINEARITY_RATIO, (
        f"per-delivery cost grew {ratio:.2f}x from 1k to 10k subscribers "
        f"— fan-out is no longer linear (bar: {MAX_LINEARITY_RATIO}x)"
    )


def test_slow_consumer_drops_are_bounded_counted_and_typed():
    hub = StreamHub()
    sub = hub.subscribe(queue=8)
    published = 30
    for i in range(published):
        hub.publish("metric", {"name": "bench.slow", "value": float(i)})

    # Bounded: the queue never grew past its bound; the overflow was
    # dropped oldest-first and counted exactly.
    assert sub.pending == 8
    assert sub.dropped == published - 8

    # Typed: the first poll after loss opens with a backpressure notice
    # carrying the exact drop count, then the surviving (newest) events.
    events = sub.poll()
    assert events[0].kind == "notice"
    assert events[0].data == {"code": "backpressure", "dropped": published - 8}
    values = [event.data["value"] for event in events[1:]]
    assert values == [float(i) for i in range(published - 8, published)]

    # The publisher saw full queues but never stalled or raised; a fresh
    # fast consumer alongside is unaffected.
    fast = hub.subscribe(queue=64)
    hub.publish("metric", {"name": "bench.slow", "value": -1.0})
    assert fast.pending == 1 and fast.dropped == 0


def test_streaming_detection_never_later_than_batch():
    config = StreamLoadgenConfig()
    policy = RunawayPolicy()
    rows = []
    for severity in config.severities:
        temps = runaway_trajectory(config, severity)
        batch = batch_alarm_round(temps, policy.batch_alarm_c)
        stream = streaming_alert_round(temps, policy)
        rows.append((severity, batch, stream))
        assert stream is not None, f"no streaming alert at severity {severity}"
        assert batch is None or stream <= batch, (
            f"streaming alert at round {stream} is later than the batch "
            f"baseline {batch} at severity {severity}"
        )
    print("\ndetection (severity, batch@, stream@):", rows)


def test_loadgen_10k_sweep_is_sustained_and_deterministic():
    # queue=64: the slow tail (drain 60/s vs 200/s published) overflows
    # within the first virtual second, so the drop path is exercised.
    config = StreamLoadgenConfig(subscribers=SUBSCRIBERS, duration_s=1.0, queue=QUEUE)
    report = run_loadgen_stream(config)
    again = run_loadgen_stream(config)
    assert report.to_json() == again.to_json(), "sweep is not deterministic"

    # Sustained: per-subscriber occupancy never exceeded the bound, the
    # slow tail shed load (counted), and the healthy majority lost
    # almost nothing.
    assert report.peak_queue_depth <= config.queue
    assert report.dropped > 0
    # Every slow subscriber sheds; a handful of borderline "healthy"
    # ones may drop transiently under burst arrivals, but loss stays
    # confined to a small tail of the population.
    assert report.dropping_subscribers >= report.slow_subscribers
    assert report.dropping_subscribers <= report.subscribers * 0.10
    assert report.drop_fraction < 0.05
    assert report.subscriber_memory_bytes == config.queue * config.cost.event_bytes
    assert report.detector_no_worse
    print(f"\n{report.render()}")
