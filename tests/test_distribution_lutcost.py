"""Tests for distribution rendering and the LUT cost analysis."""

import numpy as np
import pytest

from repro.analysis.distribution import ascii_histogram, quantile_summary
from repro.core.lut_cost import (
    compare_implementations,
    lut_storage,
    seed_only_extraction,
)
from repro.core.decoupler import ProcessLut
from repro.core.sensing_model import SensingModel
from repro.device.technology import nominal_65nm


class TestAsciiHistogram:
    def test_counts_sum_preserved(self):
        values = list(np.random.default_rng(0).normal(0, 1, 100))
        text = ascii_histogram(values, bins=8)
        counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()]
        assert sum(counts) == 100

    def test_title_included(self):
        text = ascii_histogram([1.0, 2.0, 3.0], bins=2, title="demo")
        assert text.splitlines()[0] == "demo"

    def test_scale_applied_to_edges(self):
        text = ascii_histogram([0.001, 0.002], bins=2, scale=1e3)
        assert "+1.00" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_histogram([], bins=4)
        with pytest.raises(ValueError):
            ascii_histogram([1.0], bins=1)

    def test_quantile_summary(self):
        text = quantile_summary(np.linspace(-1, 1, 101), quantiles=(0.5,))
        assert "p50=+0.000" in text
        with pytest.raises(ValueError):
            quantile_summary([])


class TestLutCost:
    @pytest.fixture(scope="class")
    def model(self):
        return SensingModel(nominal_65nm())

    def test_storage_bill(self):
        cost = lut_storage(9, bits_per_entry=16)
        assert cost.entries == 162
        assert cost.total_bits == 2592
        assert cost.total_bytes == pytest.approx(324.0)

    def test_storage_validation(self):
        with pytest.raises(ValueError):
            lut_storage(1)
        with pytest.raises(ValueError):
            lut_storage(9, bits_per_entry=2)

    def test_seed_only_exact_on_grid_points(self, model):
        lut = ProcessLut.build(model, points=9)
        i, j = 3, 5
        got = seed_only_extraction(lut, lut.f_n_grid[i, j], lut.f_p_grid[i, j])
        assert got[0] == pytest.approx(lut.dvtn_axis[i], abs=1e-5)
        assert got[1] == pytest.approx(lut.dvtp_axis[j], abs=1e-5)

    def test_seed_only_error_shrinks_with_resolution(self, model):
        coarse, _, _ = compare_implementations(model, 5, probe_points=5)
        fine, _, _ = compare_implementations(model, 17, probe_points=5)
        assert fine < coarse / 5.0

    def test_newton_exact_at_any_resolution(self, model):
        _, newton_err, _ = compare_implementations(model, 5, probe_points=5)
        assert newton_err < 1e-5

    def test_reference_design_point_justified(self, model):
        """The shipped 9x9 LUT: even seed-only would be sub-mV; the ROM is
        a few hundred bytes — the quantitative basis for the config."""
        seed_err, _, cost = compare_implementations(model, 9, probe_points=5)
        assert seed_err < 1e-3
        assert cost.total_bytes < 1024
