"""Tests for the self-calibration engine."""

import pytest

from repro.config import SensorConfig
from repro.core.calibration import SelfCalibrationEngine
from repro.core.decoupler import ProcessLut
from repro.core.errors import CalibrationError
from repro.core.sensing_model import SensingModel
from repro.device.technology import nominal_65nm
from repro.units import celsius_to_kelvin


@pytest.fixture(scope="module")
def model():
    return SensingModel(nominal_65nm())


@pytest.fixture(scope="module")
def engine(model):
    return SelfCalibrationEngine(model, lut=ProcessLut.build(model))


def measurements(model, dvtn, dvtp, temp_c):
    temp_k = celsius_to_kelvin(temp_c)
    f_n, f_p = model.process_frequencies(dvtn, dvtp, temp_k)
    f_t = model.tsro_frequency(dvtn, dvtp, temp_k)
    return f_n, f_p, f_t


class TestConvergence:
    def test_typical_die_room_temperature(self, model, engine):
        f_n, f_p, f_t = measurements(model, 0.0, 0.0, 27.0)
        state = engine.run(f_n, f_p, f_t)
        assert state.converged
        assert state.temp_k == pytest.approx(celsius_to_kelvin(27.0), abs=0.05)
        assert abs(state.dvtn) < 1e-4
        assert abs(state.dvtp) < 1e-4

    @pytest.mark.parametrize("temp_c", [-40.0, 0.0, 65.0, 125.0])
    def test_skewed_die_across_range(self, model, engine, temp_c):
        f_n, f_p, f_t = measurements(model, 0.025, -0.020, temp_c)
        state = engine.run(f_n, f_p, f_t)
        assert state.converged
        assert state.temp_k == pytest.approx(celsius_to_kelvin(temp_c), abs=0.1)
        assert state.dvtn == pytest.approx(0.025, abs=5e-4)
        assert state.dvtp == pytest.approx(-0.020, abs=5e-4)

    def test_joint_fix_with_no_external_reference(self, model, engine):
        """The scheme's claim: process AND temperature from the three
        frequencies alone, starting from a deliberately wrong prior."""
        f_n, f_p, f_t = measurements(model, -0.030, 0.015, 110.0)
        state = engine.run(f_n, f_p, f_t, initial_temp_k=250.0)
        assert state.temp_k == pytest.approx(celsius_to_kelvin(110.0), abs=0.1)

    def test_round_counter_reported(self, model, engine):
        f_n, f_p, f_t = measurements(model, 0.0, 0.0, 27.0)
        state = engine.run(f_n, f_p, f_t)
        assert 1 <= state.rounds_used <= model.config.calibration_rounds

    def test_cold_extreme_needs_more_rounds(self, model, engine):
        f_n, f_p, f_t = measurements(model, 0.0, 0.0, -40.0)
        cold = engine.run(f_n, f_p, f_t)
        f_n, f_p, f_t = measurements(model, 0.0, 0.0, 27.0)
        warm = engine.run(f_n, f_p, f_t)
        assert cold.rounds_used >= warm.rounds_used


class TestFailureModes:
    def test_insufficient_rounds_raises(self, model):
        strict = SelfCalibrationEngine(
            model, lut=ProcessLut.build(model), convergence_k=1e-6
        )
        f_n, f_p, f_t = measurements(model, 0.02, 0.02, -40.0)
        with pytest.raises(CalibrationError):
            strict.run(f_n, f_p, f_t, rounds=2)

    def test_single_round_mode_returns_unconverged(self, model, engine):
        f_n, f_p, f_t = measurements(model, 0.02, 0.02, -40.0)
        state = engine.run(f_n, f_p, f_t, rounds=1)
        assert not state.converged
        # Still a usable (coarser) estimate.
        assert abs(state.temp_k - celsius_to_kelvin(-40.0)) < 10.0
