"""Tests for the process-variation substrate."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.device.technology import nominal_65nm
from repro.variation.corners import monte_carlo_corner, sample_global_shifts
from repro.variation.mismatch import (
    mismatch_sigma_vt,
    sample_mismatch,
    stage_average_mismatch,
)
from repro.variation.montecarlo import sample_dies
from repro.variation.spatial import make_spatial_field


@pytest.fixture
def tech():
    return nominal_65nm()


class TestGlobalShifts:
    def test_shape(self):
        rng = np.random.default_rng(0)
        shifts = sample_global_shifts(rng, 50)
        assert shifts.shape == (50, 2)

    def test_sigma_matches_request(self):
        rng = np.random.default_rng(1)
        shifts = sample_global_shifts(rng, 20000, sigma_vtn=0.02, sigma_vtp=0.01)
        assert np.std(shifts[:, 0]) == pytest.approx(0.02, rel=0.05)
        assert np.std(shifts[:, 1]) == pytest.approx(0.01, rel=0.05)

    def test_correlation_positive(self):
        rng = np.random.default_rng(2)
        shifts = sample_global_shifts(rng, 20000)
        rho = np.corrcoef(shifts[:, 0], shifts[:, 1])[0, 1]
        assert 0.4 < rho < 0.8

    def test_rejects_bad_correlation(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            sample_global_shifts(rng, 10, correlation=1.0)

    def test_rejects_zero_count(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            sample_global_shifts(rng, 0)


class TestMonteCarloCorner:
    def test_fast_die_has_high_mobility(self):
        corner = monte_carlo_corner(-0.02, -0.02)
        assert corner.mun_scale > 1.0
        assert corner.mup_scale > 1.0

    def test_slow_die_has_low_mobility(self):
        corner = monte_carlo_corner(0.02, 0.02)
        assert corner.mun_scale < 1.0

    def test_mobility_floor(self):
        corner = monte_carlo_corner(1.0, 1.0)
        assert corner.mun_scale == pytest.approx(0.5)


class TestMismatch:
    def test_pelgrom_scaling(self, tech):
        small = mismatch_sigma_vt(tech.nmos, tech.avt_n)
        big = mismatch_sigma_vt(
            tech.nmos.scaled(width_scale=4.0), tech.avt_n
        )
        assert big == pytest.approx(small / 2.0)

    def test_sigma_mv_class(self, tech):
        sigma = mismatch_sigma_vt(tech.nmos, tech.avt_n)
        assert 1e-3 < sigma < 30e-3

    def test_sample_statistics(self, tech):
        rng = np.random.default_rng(5)
        sigma = mismatch_sigma_vt(tech.nmos, tech.avt_n)
        samples = sample_mismatch(rng, tech.nmos, tech.avt_n, count=20000)
        assert np.std(samples) == pytest.approx(sigma, rel=0.05)
        assert abs(np.mean(samples)) < sigma / 10.0

    def test_stage_averaging_shrinks_sigma(self, tech):
        rng = np.random.default_rng(6)
        averaged = [
            stage_average_mismatch(rng, tech.nmos, tech.avt_n, stages=16)
            for _ in range(2000)
        ]
        device_sigma = mismatch_sigma_vt(tech.nmos, tech.avt_n)
        assert np.std(averaged) == pytest.approx(device_sigma / 4.0, rel=0.1)

    def test_rejects_bad_avt(self, tech):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            sample_mismatch(rng, tech.nmos, 0.0)


class TestSpatialField:
    def test_sigma_matches_request(self):
        rng = np.random.default_rng(8)
        field = make_spatial_field(rng, sigma=0.004, gradient=0.0)
        assert field.sigma == pytest.approx(0.004, rel=1e-6)

    def test_gradient_tilts_field(self):
        rng = np.random.default_rng(9)
        field = make_spatial_field(rng, sigma=0.0, gradient=0.010)
        corner_low = field.at(0.0, 0.0)
        corner_high = field.at(field.die_width, field.die_height)
        assert corner_high - corner_low == pytest.approx(0.010, rel=0.05)

    def test_sampling_is_continuous(self):
        rng = np.random.default_rng(10)
        field = make_spatial_field(rng, sigma=0.005)
        a = field.at(2.0e-3, 2.0e-3)
        b = field.at(2.0e-3 + 1e-6, 2.0e-3)
        assert abs(a - b) < 1e-4

    def test_out_of_die_clamps(self):
        rng = np.random.default_rng(11)
        field = make_spatial_field(rng, sigma=0.005)
        assert field.at(-1.0, -1.0) == pytest.approx(field.at(0.0, 0.0))

    def test_correlation_length_smooths(self):
        rng_short = np.random.default_rng(12)
        rng_long = np.random.default_rng(12)
        short = make_spatial_field(rng_short, correlation_length=0.2e-3, sigma=0.004)
        long = make_spatial_field(rng_long, correlation_length=3.0e-3, sigma=0.004)

        def roughness(field):
            return float(np.mean(np.abs(np.diff(field.values, axis=0))))

        assert roughness(short) > roughness(long)

    @settings(max_examples=10, deadline=None)
    @given(sigma=st.floats(min_value=0.0, max_value=0.02))
    def test_any_sigma_is_reproduced(self, sigma):
        rng = np.random.default_rng(13)
        field = make_spatial_field(rng, sigma=sigma, gradient=0.0)
        assert field.sigma == pytest.approx(sigma, abs=1e-9)


class TestDiePopulation:
    def test_reproducible(self, tech):
        a = sample_dies(tech, 5, seed=99)
        b = sample_dies(tech, 5, seed=99)
        for die_a, die_b in zip(a, b):
            assert die_a.corner.dvtn == die_b.corner.dvtn
            assert die_a.mismatch_seed == die_b.mismatch_seed
            np.testing.assert_array_equal(die_a.field_n.values, die_b.field_n.values)

    def test_different_seeds_differ(self, tech):
        a = sample_dies(tech, 3, seed=1)
        b = sample_dies(tech, 3, seed=2)
        assert a[0].corner.dvtn != b[0].corner.dvtn

    def test_vt_shifts_combine_global_and_local(self, tech):
        die = sample_dies(tech, 1, seed=3)[0]
        dvtn, dvtp = die.vt_shifts_at(2.5e-3, 2.5e-3)
        local_n = die.field_n.at(2.5e-3, 2.5e-3)
        assert dvtn == pytest.approx(die.corner.dvtn + local_n)
        assert dvtp == pytest.approx(die.corner.dvtp + die.field_p.at(2.5e-3, 2.5e-3))

    def test_mismatch_rng_streams_independent(self, tech):
        dies = sample_dies(tech, 2, seed=4)
        a = dies[0].mismatch_rng().normal()
        b = dies[1].mismatch_rng().normal()
        assert a != b

    def test_mismatch_rng_fresh_per_call(self, tech):
        die = sample_dies(tech, 1, seed=5)[0]
        assert die.mismatch_rng().normal() == die.mismatch_rng().normal()
