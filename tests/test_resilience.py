"""Edge-case tests for the aggregator's resilience policy layer.

Covers the paths a clean-run test suite never exercises: the retry
budget running out mid-round, faults switching on *between* retries of
the same round, quarantine/revival cycling on a flapping link, and the
graceful-degradation quality flags — with telemetry counters asserted
alongside the snapshots, since operators watch the counters.
"""

import pytest

from repro import faults, telemetry
from repro.core.sensing_model import SensingModel
from repro.core.sensor import PTSensor
from repro.device.technology import nominal_65nm
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.network.aggregator import ResiliencePolicy, StackMonitor
from repro.tsv.bus import TsvSensorBus
from repro.variation.montecarlo import sample_dies


@pytest.fixture(scope="module")
def tech():
    return nominal_65nm()


@pytest.fixture(scope="module")
def model(tech):
    return SensingModel(tech)


def make_monitor(tech, model, tiers=3, policy=None, bus=None, seed=55):
    dies = sample_dies(tech, tiers, seed=seed)
    sensors = {
        tier: PTSensor(tech, die=die, die_id=tier, sensing_model=model)
        for tier, die in enumerate(dies)
    }
    return StackMonitor(
        sensors, bus or TsvSensorBus(tiers=tiers), policy=policy
    )


def temps(tiers=3):
    return {t: 50.0 + 2.0 * t for t in range(tiers)}


class TestPolicyValidation:
    def test_defaults_reproduce_historical_monitor(self):
        policy = ResiliencePolicy()
        assert policy.retry_limit == 2
        assert policy.dead_after == 3
        assert policy.revive_after == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retry_limit": -1},
            {"backoff_base_s": -1e-6},
            {"backoff_factor": 0.5},
            {"dead_after": 0},
            {"revive_after": 0},
            {"max_stale_rounds": -1},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            ResiliencePolicy(**kwargs)

    def test_backoff_is_exponential(self):
        policy = ResiliencePolicy(backoff_base_s=1e-6, backoff_factor=3.0)
        assert policy.backoff_s(0) == pytest.approx(1e-6)
        assert policy.backoff_s(2) == pytest.approx(9e-6)


class TestRetryBudgetExhaustion:
    """A permanently-corrupting link must drain the budget, then miss."""

    def _plan(self, tier=1):
        # Odd-weight burst: parity catches every attempt, so every retry
        # fails too and the budget drains completely.
        return FaultPlan(specs=(
            FaultSpec(FaultKind.BUS_BIT_FLIPS, tier=tier, severity=3.0),
        ))

    def test_budget_drains_and_tier_misses(self, tech, model):
        policy = ResiliencePolicy(retry_limit=2)
        monitor = make_monitor(tech, model, policy=policy)
        with telemetry.capture():
            with faults.inject(self._plan()):
                snap = monitor.poll(temps())
            assert snap.retries_used == 2
            assert snap.parity_faults == 3  # initial attempt + 2 retries
            assert 1 not in snap.temperatures_c
            assert monitor.states[1].consecutive_parity_misses == 1
            assert telemetry.counter("network.monitor.retries").value == 2
            assert telemetry.counter("network.monitor.parity_misses").value == 1

    def test_backoff_accounted_per_retry(self, tech, model):
        policy = ResiliencePolicy(
            retry_limit=3, backoff_base_s=1e-6, backoff_factor=2.0
        )
        monitor = make_monitor(tech, model, policy=policy)
        with faults.inject(self._plan()):
            snap = monitor.poll(temps())
        # 1us + 2us + 4us across the three re-polls.
        assert snap.backoff_s == pytest.approx(7e-6)

    def test_zero_budget_fails_immediately(self, tech, model):
        monitor = make_monitor(
            tech, model, policy=ResiliencePolicy(retry_limit=0)
        )
        with faults.inject(self._plan()):
            snap = monitor.poll(temps())
        assert snap.retries_used == 0
        assert snap.tier_quality[1] == "lost"  # no stored reading yet

    def test_healthy_tiers_unaffected_by_neighbour_retries(self, tech, model):
        monitor = make_monitor(tech, model)
        with faults.inject(self._plan(tier=1)):
            snap = monitor.poll(temps())
        assert snap.tier_quality[0] == "fresh"
        assert snap.tier_quality[2] == "fresh"
        assert snap.quality == "degraded"


class TestFaultOnsetDuringRepoll:
    """Fault windows are per-round: a retry within the round still sees
    the same fault state, and onset at round N hits round N's first
    attempt — never a retry of round N-1."""

    def test_onset_waits_for_its_round(self, tech, model):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.BUS_BIT_FLIPS, tier=1, onset_round=1,
                      severity=3.0),
        ))
        monitor = make_monitor(tech, model)
        with faults.inject(plan):
            clean = monitor.poll(temps())
            faulted = monitor.poll(temps())
        assert clean.parity_faults == 0 and clean.retries_used == 0
        assert faulted.parity_faults > 0
        assert 1 not in faulted.temperatures_c

    def test_second_fault_catches_the_retry(self, tech, model):
        # Tier 1's burst forces retries; tier 2's frame-drop window is
        # already open, so the re-poll round-trips tier 2 through the
        # injector again — the drop probability re-applies per attempt.
        plan = FaultPlan(
            seed=99,
            specs=(
                FaultSpec(FaultKind.BUS_BIT_FLIPS, tier=1, severity=3.0),
                FaultSpec(FaultKind.FRAME_DROP, tier=2, severity=1.0),
            ),
        )
        monitor = make_monitor(tech, model)
        with faults.inject(plan):
            snap = monitor.poll(temps())
        assert 1 not in snap.temperatures_c  # parity, budget exhausted
        assert 2 not in snap.temperatures_c  # dropped on every attempt
        assert snap.tier_quality[1] == "lost"
        assert snap.tier_quality[2] == "lost"
        assert snap.temperatures_c.keys() == {0}

    def test_fault_expiry_frees_the_tier(self, tech, model):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.BUS_BIT_FLIPS, tier=1, onset_round=0,
                      duration_rounds=1, severity=3.0),
        ))
        monitor = make_monitor(tech, model)
        with faults.inject(plan):
            during = monitor.poll(temps())
            after = monitor.poll(temps())
        assert 1 not in during.temperatures_c
        assert 1 in after.temperatures_c
        assert monitor.states[1].consecutive_misses == 0


class TestQuarantineRevivalCycling:
    """A flapping link cycles quarantine -> probation -> revival ->
    re-quarantine; counters must record every transition."""

    def _flapping_monitor(self, tech, model, revive_after):
        policy = ResiliencePolicy(dead_after=2, revive_after=revive_after)
        bus = TsvSensorBus(tiers=3, stuck_tiers={1})
        return make_monitor(tech, model, policy=policy, bus=bus), bus

    def test_full_cycle_with_counters(self, tech, model):
        monitor, bus = self._flapping_monitor(tech, model, revive_after=2)
        with telemetry.capture():
            # Two misses -> quarantine.
            monitor.poll(temps())
            snap = monitor.poll(temps())
            assert snap.dead_tiers == [1]
            assert telemetry.counter(
                "network.monitor.dead_tier_events"
            ).value == 1

            # Link back: first clean probe is probation, not revival.
            bus.stuck_tiers.discard(1)
            snap = monitor.poll(temps())
            assert snap.dead_tiers == [1]
            assert snap.revived_tiers == []
            assert 1 not in snap.temperatures_c  # untrusted during probation
            assert telemetry.counter(
                "network.monitor.probation_frames"
            ).value == 1

            # Second consecutive clean probe completes revival.
            snap = monitor.poll(temps())
            assert snap.revived_tiers == [1]
            assert snap.dead_tiers == []
            assert 1 in snap.temperatures_c
            assert telemetry.counter(
                "network.monitor.tier_revivals"
            ).value == 1

            # Link flaps again: two misses -> second quarantine.
            bus.stuck_tiers.add(1)
            monitor.poll(temps())
            snap = monitor.poll(temps())
            assert snap.dead_tiers == [1]
            assert telemetry.counter(
                "network.monitor.dead_tier_events"
            ).value == 2

    def test_miss_resets_probation_streak(self, tech, model):
        monitor, bus = self._flapping_monitor(tech, model, revive_after=2)
        monitor.poll(temps())
        monitor.poll(temps())
        assert not monitor.states[1].alive
        bus.stuck_tiers.discard(1)
        monitor.poll(temps())  # probation probe #1
        bus.stuck_tiers.add(1)
        monitor.poll(temps())  # miss: streak broken
        assert monitor.states[1].clean_probes == 0
        bus.stuck_tiers.discard(1)
        monitor.poll(temps())  # probation restarts at #1
        snap = monitor.poll(temps())
        assert snap.revived_tiers == [1]

    def test_probation_updates_stored_reading(self, tech, model):
        monitor, bus = self._flapping_monitor(tech, model, revive_after=3)
        monitor.poll(temps())
        monitor.poll(temps())
        bus.stuck_tiers.discard(1)
        hot = dict(temps())
        hot[1] = 80.0
        monitor.poll(hot)
        # Probation data is genuine: the stored reading follows it even
        # though the tier is not yet trusted.
        assert monitor.states[1].temperature_c == pytest.approx(80.0, abs=2.0)
        assert not monitor.states[1].alive


class TestGracefulDegradation:
    def test_stale_service_within_budget(self, tech, model):
        policy = ResiliencePolicy(dead_after=10, max_stale_rounds=2)
        bus = TsvSensorBus(tiers=3)
        monitor = make_monitor(tech, model, policy=policy, bus=bus)
        with telemetry.capture():
            fused = monitor.poll(temps())
            assert fused.quality == "fused"
            assert fused.fused_temperature_c == pytest.approx(52.0, abs=1.0)

            bus.stuck_tiers.add(1)
            first = monitor.poll(temps())
            second = monitor.poll(temps())
            third = monitor.poll(temps())
        for snap in (first, second):
            assert snap.quality == "degraded"
            assert snap.fused_temperature_c is None
            assert snap.tier_quality[1] == "stale"
            assert snap.effective_temperatures_c[1] == pytest.approx(
                52.0, abs=2.0
            )
        # Past the staleness budget the tier is lost, not served.
        assert third.tier_quality[1] == "lost"
        assert 1 not in third.effective_temperatures_c
        assert telemetry.counter("network.monitor.stale_served").value == 2
        assert telemetry.counter("network.monitor.degraded_rounds").value == 3

    def test_recovery_restores_fused_quality(self, tech, model):
        bus = TsvSensorBus(tiers=3)
        monitor = make_monitor(tech, model, bus=bus)
        bus.stuck_tiers.add(2)
        assert monitor.poll(temps()).quality == "degraded"
        bus.stuck_tiers.discard(2)
        snap = monitor.poll(temps())
        assert snap.quality == "fused"
        assert snap.fused_temperature_c is not None

    def test_out_of_range_sensor_degrades_not_crashes(self, tech, model):
        monitor = make_monitor(tech, model)
        with telemetry.capture():
            hot = dict(temps())
            hot[0] = 400.0  # far beyond the macro's [-40, 125] range
            snap = monitor.poll(hot)
        assert snap.tier_quality[0] == "lost"
        assert snap.quality == "degraded"
        assert telemetry.counter("network.monitor.read_failures").value >= 1
