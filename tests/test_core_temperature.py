"""Tests for the process-corrected temperature estimator."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.errors import TemperatureRangeError
from repro.core.sensing_model import SensingModel
from repro.core.temperature import estimate_temperature, estimate_temperature_clamped
from repro.device.technology import nominal_65nm
from repro.units import celsius_to_kelvin


@pytest.fixture(scope="module")
def model():
    return SensingModel(nominal_65nm())


class TestEstimate:
    def test_exact_round_trip_typical(self, model):
        truth = celsius_to_kelvin(65.0)
        f_t = model.tsro_frequency(0.0, 0.0, truth)
        assert estimate_temperature(model, f_t, 0.0, 0.0) == pytest.approx(
            truth, abs=1e-3
        )

    def test_round_trip_on_skewed_die(self, model):
        truth = celsius_to_kelvin(-10.0)
        f_t = model.tsro_frequency(0.03, -0.02, truth)
        assert estimate_temperature(model, f_t, 0.03, -0.02) == pytest.approx(
            truth, abs=1e-3
        )

    def test_process_correction_matters(self, model):
        """Feeding the wrong process point biases the estimate by degrees."""
        truth = celsius_to_kelvin(65.0)
        f_t = model.tsro_frequency(0.03, 0.03, truth)
        wrong = estimate_temperature_clamped(model, f_t, 0.0, 0.0)
        assert abs(wrong - truth) > 3.0

    def test_out_of_range_raises(self, model):
        f_hot = model.tsro_frequency(0.0, 0.0, celsius_to_kelvin(200.0))
        with pytest.raises(TemperatureRangeError):
            estimate_temperature(model, f_hot, 0.0, 0.0)

    def test_rejects_nonpositive_frequency(self, model):
        with pytest.raises(ValueError):
            estimate_temperature(model, 0.0, 0.0, 0.0)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(temp_c=st.floats(min_value=-40.0, max_value=125.0))
    def test_round_trip_property(self, model, temp_c):
        truth = celsius_to_kelvin(temp_c)
        f_t = model.tsro_frequency(0.0, 0.0, truth)
        assert estimate_temperature(model, f_t, 0.0, 0.0) == pytest.approx(
            truth, abs=1e-2
        )


class TestClamped:
    def test_clamps_high(self, model):
        f_hot = model.tsro_frequency(0.0, 0.0, celsius_to_kelvin(250.0))
        est = estimate_temperature_clamped(model, f_hot, 0.0, 0.0)
        assert est == pytest.approx(celsius_to_kelvin(125.0) + 15.0)

    def test_clamps_low(self, model):
        f_cold = model.tsro_frequency(0.0, 0.0, celsius_to_kelvin(-90.0))
        est = estimate_temperature_clamped(model, f_cold, 0.0, 0.0)
        assert est == pytest.approx(celsius_to_kelvin(-40.0) - 15.0)

    def test_passthrough_in_range(self, model):
        truth = celsius_to_kelvin(30.0)
        f_t = model.tsro_frequency(0.0, 0.0, truth)
        assert estimate_temperature_clamped(model, f_t, 0.0, 0.0) == pytest.approx(
            truth, abs=1e-3
        )
