"""The network edge: wire protocol, routing, failure paths, determinism.

Three layers of coverage:

* pure units — NDJSON framing, typed errors, request/result round-trips,
  shard seeds and consistent-hash routing (no processes involved);
* one shared live server (4 spawn-started shards, chaos enabled) — the
  protocol surface end to end: all four request kinds, malformed lines,
  unknown ops, oversized payloads, mid-batch disconnects, the HTTP
  adapter, and a staged shard crash with recovery;
* the golden cross-process guarantee — a 4-shard edge deployment answers
  bit-identically to an in-process replay of each shard's embedded
  service, partitioned by the same hash ring.
"""

import json
import socket
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.edge import (
    EdgeClient,
    EdgeConfig,
    EdgeDeployment,
    EdgeError,
    EdgeServerThread,
    HashRing,
    RetryPolicy,
    ShardPool,
    WorkerConfig,
    shard_seed,
)
from repro.edge import protocol
from repro.serve import ReadRequest, SensorReadService

TIERS = 4
SHARDS = 4
ROOT_SEED = 2012
MAX_LINE = 8192


# ------------------------------------------------------------------ units


class TestProtocolFraming:
    def test_encode_decode_round_trip(self):
        payload = {"id": "r1", "op": "read", "stack": 7}
        line = protocol.encode(payload)
        assert line.endswith(b"\n")
        assert protocol.decode_line(line[:-1]) == payload

    def test_decode_rejects_non_json(self):
        with pytest.raises(EdgeError) as info:
            protocol.decode_line(b"not json at all")
        assert info.value.code == protocol.MALFORMED
        assert not info.value.retryable

    def test_decode_rejects_non_object(self):
        with pytest.raises(EdgeError) as info:
            protocol.decode_line(b"[1, 2, 3]")
        assert info.value.code == protocol.MALFORMED

    def test_error_codes_are_a_closed_vocabulary(self):
        with pytest.raises(ValueError):
            EdgeError("made_up_code", "nope")

    def test_retryable_defaults_follow_the_code(self):
        assert EdgeError(protocol.BACKPRESSURE, "x").retryable
        assert EdgeError(protocol.SHARD_DOWN, "x").retryable
        assert not EdgeError(protocol.INVALID, "x").retryable
        assert not EdgeError(protocol.MALFORMED, "x").retryable

    def test_error_wire_round_trip(self):
        error = EdgeError(protocol.BACKPRESSURE, "window full")
        back = EdgeError.from_wire(error.to_wire())
        assert (back.code, back.message, back.retryable) == (
            error.code,
            error.message,
            error.retryable,
        )

    def test_unknown_wire_code_degrades_to_internal(self):
        error = EdgeError.from_wire({"code": "martian", "message": "?"})
        assert error.code == protocol.INTERNAL

    def test_every_error_code_has_an_http_status(self):
        assert set(protocol.HTTP_STATUS) == set(protocol.ERROR_CODES)
        assert all(400 <= s <= 599 for s in protocol.HTTP_STATUS.values())


class TestRequestWireRoundTrip:
    @pytest.mark.parametrize(
        "request_",
        [
            ReadRequest.point(1, 55.0),
            ReadRequest.point(0, 40.0, vdd=1.05, assume_vdd=1.0),
            ReadRequest.vt(2, 60.0),
            ReadRequest.scan(35.0, tiers=(0, 2)),
            ReadRequest.poll({0: 30.0, 1: 45.5, 3: 72.25}),
        ],
        ids=["point", "point-vdd", "vt", "scan", "poll"],
    )
    def test_round_trip_preserves_fields(self, request_):
        wire = protocol.request_to_wire(request_)
        back = protocol.wire_to_request(json.loads(json.dumps(wire)), now=0.0)
        assert back.kind == request_.kind
        assert back.temp_c == request_.temp_c
        assert back.tier == request_.tier
        assert back.tiers == request_.tiers
        assert back.temps_c == request_.temps_c
        assert back.vdd == request_.vdd
        assert back.assume_vdd == request_.assume_vdd

    def test_deadline_is_relative_and_reanchored(self):
        wire = protocol.request_to_wire(ReadRequest.point(0, 50.0), deadline_ms=250.0)
        assert wire["deadline_ms"] == 250.0
        request = protocol.wire_to_request(wire, now=100.0)
        assert request.deadline_s == pytest.approx(100.25)

    def test_service_local_deadline_never_crosses_the_wire(self):
        request = ReadRequest.point(0, 50.0, deadline_s=12345.0)
        assert "deadline_s" not in protocol.request_to_wire(request)

    @pytest.mark.parametrize(
        "payload",
        [
            {"kind": "warp", "temp_c": 25.0},
            {"kind": "point", "tier": 0, "deadline_ms": -5},
            {"kind": "point", "tier": 0, "temps_c": "hot"},
            {"kind": "scan", "tiers": "all"},
        ],
        ids=["unknown-kind", "negative-deadline", "bad-temps", "bad-tiers"],
    )
    def test_invalid_requests_are_typed(self, payload):
        with pytest.raises(EdgeError) as info:
            protocol.wire_to_request(payload, now=0.0)
        assert info.value.code == protocol.INVALID
        assert not info.value.retryable


class TestSharding:
    def test_shard_seed_is_deterministic(self):
        assert shard_seed(ROOT_SEED, 3) == shard_seed(ROOT_SEED, 3)

    def test_shard_seeds_are_distinct(self):
        seeds = [shard_seed(ROOT_SEED, i) for i in range(16)]
        assert len(set(seeds)) == 16
        assert shard_seed(ROOT_SEED, 0) != shard_seed(ROOT_SEED + 1, 0)

    def test_negative_shard_rejected(self):
        with pytest.raises(ValueError):
            shard_seed(ROOT_SEED, -1)

    def test_ring_routes_deterministically_into_the_shard_set(self):
        ring = HashRing(range(SHARDS))
        again = HashRing(range(SHARDS))
        for stack in range(200):
            owner = ring.route(stack)
            assert owner in range(SHARDS)
            assert again.route(stack) == owner

    def test_ring_spreads_stacks_across_shards(self):
        ring = HashRing(range(SHARDS))
        counts = {s: 0 for s in range(SHARDS)}
        for stack in range(1000):
            counts[ring.route(stack)] += 1
        assert all(count > 100 for count in counts.values())

    def test_growing_the_ring_remaps_a_minority(self):
        small, grown = HashRing(range(4)), HashRing(range(5))
        moved = sum(
            1 for stack in range(1000) if small.route(stack) != grown.route(stack)
        )
        # Consistent hashing: ~1/5 of the space moves; modular routing
        # would move ~4/5.  Allow slack for ring-point luck.
        assert moved < 500

    def test_ring_rejects_empty_shard_set(self):
        with pytest.raises(ValueError):
            HashRing([])


# ------------------------------------------------------- one live server


@pytest.fixture(scope="module")
def edge():
    config = EdgeConfig(
        shards=SHARDS,
        tiers=TIERS,
        root_seed=ROOT_SEED,
        max_line_bytes=MAX_LINE,
        enable_chaos=True,
        health_interval_s=0.2,
        health_timeout_s=2.0,
        respawn_backoff_s=0.05,
    )
    server = EdgeServerThread(config).start()
    yield server
    server.stop(drain=True)


@pytest.fixture()
def client(edge):
    with EdgeClient(edge.host, edge.port) as c:
        yield c


def _raw_connection(edge):
    sock = socket.create_connection((edge.host, edge.port), timeout=30.0)
    return sock, sock.makefile("rb")


class TestEdgeRequestSurface:
    def test_all_four_kinds_round_trip(self, client):
        point = client.read(3, ReadRequest.point(1, 55.0))
        assert point.ok and point.reading_for(1).temperature_c == pytest.approx(
            55.0, abs=1.5
        )
        vt = client.read(3, ReadRequest.vt(0, 60.0))
        assert vt.ok and abs(vt.readings[0].dvtn) < 0.2
        scan = client.read(5, ReadRequest.scan(35.0))
        assert scan.ok and len(scan.readings) == TIERS
        poll = client.read(9, ReadRequest.poll({t: 30.0 + 5 * t for t in range(TIERS)}))
        assert poll.ok and [r.tier for r in poll.readings] == list(range(TIERS))

    def test_answering_shard_matches_the_public_ring(self, client):
        ring = HashRing(range(SHARDS))
        for stack in range(12):
            result = client.read(stack, ReadRequest.point(0, 42.0))
            assert result.shard == ring.route(stack)

    def test_ping_reports_shard_health(self, client):
        answer = client.ping()
        assert answer["pong"] == "edge"
        assert len(answer["shards"]) == SHARDS

    def test_stats_come_from_every_shard(self, client):
        client.read(0, ReadRequest.point(0, 50.0))
        shards = client.stats()["shards"]
        assert sorted(s["shard"] for s in shards) == list(range(SHARDS))
        assert sum(s["served"] for s in shards) >= 1


class TestEdgeErrorPaths:
    def test_malformed_line_is_answered_and_connection_survives(self, edge):
        # The first byte decides the connection's protocol, so a
        # malformed *NDJSON* line still opens with '{'.
        sock, reader = _raw_connection(edge)
        try:
            sock.sendall(b"{this is not json\n")
            answer = json.loads(reader.readline())
            assert answer["ok"] is False
            assert answer["error"]["code"] == protocol.MALFORMED
            sock.sendall(protocol.encode({"id": "after", "op": "ping"}))
            answer = json.loads(reader.readline())
            assert answer["id"] == "after" and answer["ok"] is True
        finally:
            sock.close()

    def test_unknown_op_is_typed(self, client):
        answer = client.raw({"op": "teleport"})
        assert answer["ok"] is False
        assert answer["error"]["code"] == protocol.UNKNOWN_OP
        assert answer["error"]["retryable"] is False

    def test_unknown_request_kind_is_typed(self, client):
        answer = client.raw(
            {"op": "read", "stack": 0, "request": {"kind": "warp", "temp_c": 25.0}}
        )
        assert answer["ok"] is False
        assert answer["error"]["code"] == protocol.INVALID

    def test_read_without_request_object_is_invalid(self, client):
        answer = client.raw({"op": "read", "stack": 0})
        assert answer["error"]["code"] == protocol.INVALID

    def test_non_integer_stack_is_invalid(self, client):
        answer = client.raw(
            {
                "op": "read",
                "stack": "seven",
                "request": protocol.request_to_wire(ReadRequest.point(0, 40.0)),
            }
        )
        assert answer["error"]["code"] == protocol.INVALID

    def test_oversized_line_is_answered_and_connection_survives(self, edge):
        sock, reader = _raw_connection(edge)
        try:
            huge = b'{"pad": "' + b"x" * (2 * MAX_LINE) + b'"}\n'
            sock.sendall(huge)
            answer = json.loads(reader.readline())
            assert answer["ok"] is False
            assert answer["error"]["code"] == protocol.OVERSIZED
            sock.sendall(protocol.encode({"id": "small", "op": "ping"}))
            answer = json.loads(reader.readline())
            assert answer["id"] == "small" and answer["ok"] is True
        finally:
            sock.close()

    def test_client_disconnect_mid_batch_does_not_wedge_the_server(self, edge):
        sock, _reader = _raw_connection(edge)
        wire = protocol.request_to_wire(ReadRequest.point(0, 61.0))
        for i in range(8):
            sock.sendall(
                protocol.encode(
                    {"id": f"orphan{i}", "op": "read", "stack": i, "request": wire}
                )
            )
        sock.close()  # walk away with every answer still in flight
        with EdgeClient(edge.host, edge.port) as fresh:
            result = fresh.read(0, ReadRequest.point(0, 47.0))
            assert result.ok
            assert all(s["state"] == "healthy" for s in fresh.ping()["shards"])


class TestEdgeHttpAdapter:
    def test_post_read(self, edge):
        conn = HTTPConnection(edge.host, edge.port, timeout=30.0)
        try:
            body = json.dumps(
                {
                    "id": "h1",
                    "stack": 4,
                    "request": protocol.request_to_wire(ReadRequest.point(2, 58.0)),
                }
            )
            conn.request("POST", "/v1/read", body=body)
            response = conn.getresponse()
            answer = json.loads(response.read())
            assert response.status == 200
            assert answer["ok"] is True
            readings = answer["result"]["readings"]
            assert readings[0]["tier"] == 2
            assert abs(readings[0]["temperature_c"] - 58.0) < 1.5
        finally:
            conn.close()

    def test_post_read_error_maps_to_http_status(self, edge):
        conn = HTTPConnection(edge.host, edge.port, timeout=30.0)
        try:
            body = json.dumps({"stack": 0, "request": {"kind": "warp"}})
            conn.request("POST", "/v1/read", body=body)
            response = conn.getresponse()
            answer = json.loads(response.read())
            assert response.status == protocol.HTTP_STATUS[protocol.INVALID]
            assert answer["error"]["code"] == protocol.INVALID
        finally:
            conn.close()

    def test_healthz(self, edge):
        conn = HTTPConnection(edge.host, edge.port, timeout=30.0)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200
            assert payload["status"] == "ok"
            assert len(payload["shards"]) == SHARDS
        finally:
            conn.close()

    def test_metrics_exposition(self, edge):
        conn = HTTPConnection(edge.host, edge.port, timeout=30.0)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            text = response.read().decode("utf-8")
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            assert "repro_edge_connections" in text
            assert "repro_edge_requests" in text
        finally:
            conn.close()

    def test_unknown_route_is_404(self, edge):
        conn = HTTPConnection(edge.host, edge.port, timeout=30.0)
        try:
            conn.request("GET", "/v2/teleport")
            response = conn.getresponse()
            answer = json.loads(response.read())
            assert response.status == 404
            assert answer["error"]["code"] == protocol.UNKNOWN_OP
        finally:
            conn.close()


class TestAsyncClient:
    def test_pipelined_concurrent_reads(self, edge):
        import asyncio

        from repro.edge import AsyncEdgeClient

        async def go():
            async with AsyncEdgeClient(edge.host, edge.port) as client:
                results = await asyncio.gather(
                    *[
                        client.read(s, ReadRequest.point(s % TIERS, 40.0 + s))
                        for s in range(10)
                    ]
                )
                pong = await client.ping()
            return results, pong

        results, pong = asyncio.run(go())
        assert all(r.ok for r in results)
        ring = HashRing(range(SHARDS))
        assert [r.shard for r in results] == [ring.route(s) for s in range(10)]
        assert pong["ok"] is True


class TestShardCrashRecovery:
    def test_crash_in_flight_is_retryable_and_the_shard_respawns(self, edge):
        ring = HashRing(range(SHARDS))
        victim = ring.route(0)
        patient = EdgeClient(
            edge.host,
            edge.port,
            retry=RetryPolicy(attempts=10, backoff_s=0.1, max_backoff_s=1.0),
        )
        try:
            before = {
                s["shard"]: s["restarts"] for s in patient.ping()["shards"]
            }
            answer = patient.raw({"op": "chaos", "shard": victim, "kind": "exit"})
            assert answer["ok"] is True
            # The very next read to the dead shard either rides the retry
            # loop to success or — if retries outpace the respawn — fails
            # *typed and retryable*, never hangs.
            try:
                result = patient.read(0, ReadRequest.point(0, 52.0))
                assert result.ok
            except EdgeError as error:
                assert error.retryable
                time.sleep(2.0)
                assert patient.read(0, ReadRequest.point(0, 52.0)).ok
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                shards = {
                    s["shard"]: s for s in patient.ping()["shards"]
                }
                if (
                    shards[victim]["restarts"] > before[victim]
                    and shards[victim]["state"] == "healthy"
                ):
                    break
                time.sleep(0.2)
            else:
                pytest.fail("crashed shard was not respawned to healthy in time")
            # The respawned shard serves the same seeded stack.
            assert patient.read(0, ReadRequest.point(0, 52.0)).ok
        finally:
            patient.close()


class TestGoldenCrossProcessDeterminism:
    """A sharded edge deployment is bit-identical to in-process serving.

    Shard i's worker builds its die stack from ``shard_seed(root, i)``;
    replaying the same requests against an in-process
    :class:`SensorReadService` built from the same
    :class:`WorkerConfig` must reproduce every answer bit for bit —
    across a process boundary, either wire format (JSON text floats and
    IEEE-754 doubles both round-trip exactly), the batch-coalesced
    worker pipes, and a respawnable worker.
    """

    @pytest.mark.parametrize("wire", ["ndjson", "binary"])
    def test_edge_matches_in_process_replay(self, edge, wire):
        with EdgeClient(edge.host, edge.port, wire=wire) as client:
            self._assert_matches_in_process_replay(edge, client)

    def _assert_matches_in_process_replay(self, edge, client):
        requests = []
        for stack in range(24):
            requests.append((stack, ReadRequest.point(stack % TIERS, 30.0 + stack)))
            if stack % 3 == 0:
                requests.append((stack, ReadRequest.vt(stack % TIERS, 45.0)))
            if stack % 5 == 0:
                requests.append((stack, ReadRequest.scan(38.5)))

        remote = {}
        ring = HashRing(range(SHARDS))
        for key, (stack, request) in enumerate(requests):
            result = client.read(stack, request)
            assert result.ok
            remote[key] = result

        by_shard = {}
        for key, (stack, request) in enumerate(requests):
            by_shard.setdefault(ring.route(stack), []).append((key, request))
        deployment = EdgeDeployment.from_edge_config(edge.config)
        for shard_index, batch in sorted(by_shard.items()):
            with SensorReadService(
                config=deployment.serve_config(shard_index)
            ) as local:
                for key, request in batch:
                    local_result = local.read(request)
                    remote_result = remote[key]
                    assert remote_result.shard == shard_index
                    assert len(local_result.readings) == len(remote_result.readings)
                    for mine, theirs in zip(
                        local_result.readings, remote_result.readings
                    ):
                        assert mine.tier == theirs.tier
                        # Bitwise: JSON floats round-trip exactly.
                        assert mine.temperature_c == theirs.temperature_c
                        assert mine.dvtn == theirs.dvtn
                        assert mine.dvtp == theirs.dvtp

    def test_distinct_shards_serve_distinct_stacks(self, client):
        """Different shard seeds ⇒ different die populations."""
        ring = HashRing(range(SHARDS))
        by_shard = {}
        for stack in range(64):
            shard = ring.route(stack)
            if shard not in by_shard:
                by_shard[shard] = client.read(
                    stack, ReadRequest.vt(0, 50.0)
                ).readings[0].dvtn
            if len(by_shard) == SHARDS:
                break
        assert len(set(by_shard.values())) == len(by_shard)

# --------------------------------------------------- binary frame format


class TestBinaryFrameCodec:
    """Pure units: the length-prefixed binary frames (no processes)."""

    def _round_trip(self, payload):
        blob = protocol.encode_frame(payload)
        _version, kind, length = protocol.decode_frame_header(
            blob[: protocol.FRAME_HEADER_SIZE]
        )
        body = blob[protocol.FRAME_HEADER_SIZE :]
        assert len(body) == length
        return kind, protocol.decode_frame_body(kind, body)

    def test_hot_read_rides_the_packed_frame(self):
        payload = {
            "v": protocol.PROTOCOL_VERSION,
            "id": 7,
            "op": "read",
            "stack": 12,
            "request": protocol.request_to_wire(
                ReadRequest.point(1, 55.0), deadline_ms=250.0
            ),
        }
        kind, back = self._round_trip(payload)
        assert kind == protocol.FRAME_READ
        assert back == payload
        assert len(protocol.encode_frame(payload)) < len(protocol.encode(payload))

    @pytest.mark.parametrize(
        "request_",
        [
            ReadRequest.vt(2, 60.0),
            ReadRequest.scan(35.0, tiers=(0, 2)),
            ReadRequest.poll({0: 30.0, 1: 45.5, 3: 72.25}),
        ],
        ids=["vt", "scan", "poll"],
    )
    def test_every_request_kind_round_trips_packed(self, request_):
        payload = {
            "v": protocol.PROTOCOL_VERSION,
            "id": 1,
            "op": "read",
            "stack": 3,
            "request": protocol.request_to_wire(request_),
        }
        kind, back = self._round_trip(payload)
        assert kind == protocol.FRAME_READ
        assert back == payload

    def test_error_frame_round_trips_packed(self):
        payload = {
            "id": 9,
            "ok": False,
            "error": EdgeError(protocol.BACKPRESSURE, "window full").to_wire(),
        }
        kind, back = self._round_trip(payload)
        assert kind == protocol.FRAME_ERROR
        assert back["error"]["code"] == protocol.BACKPRESSURE
        assert back["error"]["retryable"] is True
        assert back["id"] == 9

    def test_string_ids_fall_back_to_the_json_body(self):
        payload = {
            "v": protocol.PROTOCOL_VERSION,
            "id": "c1",
            "op": "read",
            "stack": 0,
            "request": protocol.request_to_wire(ReadRequest.point(0, 40.0)),
        }
        kind, back = self._round_trip(payload)
        assert kind == protocol.FRAME_JSON
        assert back == payload

    def test_control_ops_ride_the_json_body(self):
        kind, back = self._round_trip({"id": 3, "op": "ping"})
        assert kind == protocol.FRAME_JSON
        assert back == {"id": 3, "op": "ping"}

    def test_short_header_is_malformed(self):
        with pytest.raises(EdgeError) as info:
            protocol.decode_frame_header(b"\xb7\x01")
        assert info.value.code == protocol.MALFORMED

    def test_bad_magic_is_malformed(self):
        header = protocol.FRAME_HEADER.pack(0x42, protocol.BINARY_VERSION, 0, 0)
        with pytest.raises(EdgeError) as info:
            protocol.decode_frame_header(header)
        assert info.value.code == protocol.MALFORMED

    def test_wrong_version_is_invalid_but_length_still_parses(self):
        header = protocol.FRAME_HEADER.pack(protocol.BINARY_MAGIC, 99, 0, 123)
        with pytest.raises(EdgeError) as info:
            protocol.decode_frame_header(header)
        assert info.value.code == protocol.INVALID
        # The header layout holds across versions: a peer may still skip
        # the declared body and keep the connection.
        assert protocol.FRAME_HEADER.unpack(header)[3] == 123

    def test_truncated_body_is_malformed(self):
        blob = protocol.encode_frame(
            {
                "id": 1,
                "op": "read",
                "stack": 0,
                "request": protocol.request_to_wire(ReadRequest.point(0, 40.0)),
            }
        )
        body = blob[protocol.FRAME_HEADER_SIZE : -4]
        with pytest.raises(EdgeError) as info:
            protocol.decode_frame_body(protocol.FRAME_READ, body)
        assert info.value.code == protocol.MALFORMED


def _send_frames(sock, *payloads):
    sock.sendall(b"".join(protocol.encode_frame(p) for p in payloads))


def _recv_frame(reader):
    header = reader.read(protocol.FRAME_HEADER_SIZE)
    _version, kind, length = protocol.decode_frame_header(header)
    return protocol.decode_frame_body(kind, reader.read(length))


class TestBinaryWireLive:
    """The server's binary face over real sockets (hostile inputs too)."""

    def test_read_and_ping_on_one_binary_connection(self, edge):
        sock, reader = _raw_connection(edge)
        try:
            _send_frames(
                sock,
                {
                    "v": protocol.PROTOCOL_VERSION,
                    "id": 1,
                    "op": "read",
                    "stack": 3,
                    "request": protocol.request_to_wire(ReadRequest.point(1, 55.0)),
                },
                {"id": 2, "op": "ping"},
            )
            answers = {a["id"]: a for a in (_recv_frame(reader), _recv_frame(reader))}
            assert answers[1]["ok"] is True
            assert answers[1]["result"]["readings"][0]["tier"] == 1
            assert answers[2]["ok"] is True and answers[2]["pong"] == "edge"
        finally:
            sock.close()

    def test_binary_answers_match_ndjson_bit_for_bit(self, edge, client):
        request = ReadRequest.point(1, 58.25)
        over_json = client.read(6, request)
        with EdgeClient(edge.host, edge.port, wire="binary") as binary:
            over_frames = binary.read(6, request)
        assert over_frames.shard == over_json.shard
        for mine, theirs in zip(over_frames.readings, over_json.readings):
            assert mine.temperature_c == theirs.temperature_c
            assert mine.dvtn == theirs.dvtn
            assert mine.dvtp == theirs.dvtp

    def test_bad_magic_mid_stream_is_answered_then_closed(self, edge):
        sock, reader = _raw_connection(edge)
        try:
            _send_frames(sock, {"id": 1, "op": "ping"})
            assert _recv_frame(reader)["ok"] is True
            # Garbage where a header should be: no resync point exists,
            # so the server answers typed and hangs up.
            sock.sendall(b"\x00" * protocol.FRAME_HEADER_SIZE)
            answer = _recv_frame(reader)
            assert answer["ok"] is False
            assert answer["error"]["code"] == protocol.MALFORMED
            assert reader.read() == b""  # server closed the connection
        finally:
            sock.close()

    def test_wrong_version_is_answered_and_connection_survives(self, edge):
        sock, reader = _raw_connection(edge)
        try:
            body = b"x" * 16
            sock.sendall(
                protocol.FRAME_HEADER.pack(protocol.BINARY_MAGIC, 99, 0, len(body))
                + body
            )
            answer = _recv_frame(reader)
            assert answer["ok"] is False
            assert answer["error"]["code"] == protocol.INVALID
            # The declared body was skipped; the connection still serves.
            _send_frames(sock, {"id": 2, "op": "ping"})
            assert _recv_frame(reader)["id"] == 2
        finally:
            sock.close()

    def test_oversized_declared_length_is_answered_and_survives(self, edge):
        sock, reader = _raw_connection(edge)
        try:
            body = b"y" * (2 * MAX_LINE)
            sock.sendall(
                protocol.FRAME_HEADER.pack(
                    protocol.BINARY_MAGIC,
                    protocol.BINARY_VERSION,
                    protocol.FRAME_JSON,
                    len(body),
                )
                + body
            )
            answer = _recv_frame(reader)
            assert answer["ok"] is False
            assert answer["error"]["code"] == protocol.OVERSIZED
            _send_frames(sock, {"id": 2, "op": "ping"})
            assert _recv_frame(reader)["id"] == 2
        finally:
            sock.close()

    def test_truncated_header_at_eof_closes_quietly(self, edge):
        sock, reader = _raw_connection(edge)
        try:
            sock.sendall(bytes([protocol.BINARY_MAGIC]) + b"\x01\x00")
            sock.shutdown(socket.SHUT_WR)
            assert reader.read() == b""  # no answer, just a clean close
        finally:
            sock.close()

    def test_ndjson_line_on_a_binary_connection_is_rejected_typed(self, edge):
        # The first byte pins the connection's protocol; a '{' where a
        # frame header should be is a bad magic byte.
        sock, reader = _raw_connection(edge)
        try:
            _send_frames(sock, {"id": 1, "op": "ping"})
            assert _recv_frame(reader)["ok"] is True
            sock.sendall(protocol.encode({"id": "late", "op": "ping"}))
            answer = _recv_frame(reader)
            assert answer["ok"] is False
            assert answer["error"]["code"] == protocol.MALFORMED
            assert reader.read() == b""
        finally:
            sock.close()

    def test_binary_frame_on_an_ndjson_connection_is_rejected_typed(self, edge):
        # The mirror image: a connection that opened with '{' stays
        # NDJSON; a frame is just a malformed line once a newline shows.
        sock, reader = _raw_connection(edge)
        try:
            sock.sendall(protocol.encode({"id": "first", "op": "ping"}))
            assert json.loads(reader.readline())["ok"] is True
            sock.sendall(protocol.encode_frame({"id": 2, "op": "ping"}) + b"\n")
            answer = json.loads(reader.readline())
            assert answer["ok"] is False
            assert answer["error"]["code"] == protocol.MALFORMED
            # The NDJSON face resyncs on newlines: still serving.
            sock.sendall(protocol.encode({"id": "again", "op": "ping"}))
            assert json.loads(reader.readline())["id"] == "again"
        finally:
            sock.close()


# --------------------------------------------------------- HTTP keep-alive


def _read_http_response(reader):
    status_line = reader.readline().decode("latin-1")
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = reader.readline().decode("latin-1")
        if line in ("\r\n", "\n", ""):
            break
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = reader.read(int(headers.get("content-length", 0)))
    return status, headers, body


class TestHttpKeepAlive:
    def test_many_exchanges_reuse_one_connection(self, edge):
        conn = HTTPConnection(edge.host, edge.port, timeout=30.0)
        try:
            socks = set()
            for _ in range(3):
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                response.read()
                assert response.status == 200
                assert response.headers["Connection"] == "keep-alive"
                socks.add(id(conn.sock))
            assert len(socks) == 1, "keep-alive must not reconnect per request"
        finally:
            conn.close()

    def test_pipelined_requests_on_one_socket(self, edge):
        sock, reader = _raw_connection(edge)
        try:
            request = b"GET /healthz HTTP/1.1\r\nHost: edge\r\n\r\n"
            sock.sendall(request * 2)  # both in flight before any answer
            for _ in range(2):
                status, headers, body = _read_http_response(reader)
                assert status == 200
                assert headers["connection"] == "keep-alive"
                assert json.loads(body)["status"] == "ok"
        finally:
            sock.close()

    def test_connection_close_header_is_honored(self, edge):
        sock, reader = _raw_connection(edge)
        try:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\nHost: edge\r\nConnection: close\r\n\r\n"
            )
            status, headers, _body = _read_http_response(reader)
            assert status == 200
            assert headers["connection"] == "close"
            assert reader.read() == b""
        finally:
            sock.close()

    def test_http_10_defaults_to_close(self, edge):
        sock, reader = _raw_connection(edge)
        try:
            sock.sendall(b"GET /healthz HTTP/1.0\r\nHost: edge\r\n\r\n")
            status, headers, _body = _read_http_response(reader)
            assert status == 200
            assert headers["connection"] == "close"
            assert reader.read() == b""
        finally:
            sock.close()

    def test_oversized_content_length_is_answered_then_closed(self, edge):
        # The unread body would poison the stream, so the typed answer
        # (not a reset) is followed by a close.
        sock, reader = _raw_connection(edge)
        try:
            sock.sendall(
                b"POST /v1/read HTTP/1.1\r\nHost: edge\r\n"
                + f"Content-Length: {4 * MAX_LINE}\r\n\r\n".encode()
            )
            status, headers, body = _read_http_response(reader)
            assert status == protocol.HTTP_STATUS[protocol.OVERSIZED]
            assert json.loads(body)["error"]["code"] == protocol.OVERSIZED
            assert headers["connection"] == "close"
            assert reader.read() == b""
        finally:
            sock.close()


# ------------------------------------- idle timeout and status caching


@pytest.fixture(scope="module")
def tiny_edge():
    """A 1-shard server with a short idle timeout and status caching."""
    config = EdgeConfig(
        shards=1,
        tiers=2,
        root_seed=ROOT_SEED,
        idle_timeout_s=1.0,
        status_cache_s=30.0,
        health_interval_s=0.2,
    )
    server = EdgeServerThread(config).start()
    yield server
    server.stop(drain=True)


class TestIdleTimeoutAndStatusCache:
    def test_idle_connection_is_closed_after_the_timeout(self, tiny_edge):
        sock, reader = _raw_connection(tiny_edge)
        try:
            sock.settimeout(10.0)
            sock.sendall(protocol.encode({"id": "warm", "op": "ping"}))
            assert json.loads(reader.readline())["ok"] is True
            started = time.monotonic()
            assert reader.readline() == b""  # server hangs up on the idler
            elapsed = time.monotonic() - started
            assert 0.5 <= elapsed < 8.0
        finally:
            sock.close()

    def test_status_bodies_are_served_from_the_cache(self, tiny_edge):
        conn = HTTPConnection(tiny_edge.host, tiny_edge.port, timeout=30.0)
        try:
            conn.request("GET", "/metrics")
            first = conn.getresponse().read()
            # Serve a read (moves the live counters), then scrape again:
            # within status_cache_s the rendered body must not change.
            with EdgeClient(tiny_edge.host, tiny_edge.port) as client:
                assert client.read(0, ReadRequest.point(0, 45.0)).ok
            conn.request("GET", "/metrics")
            second = conn.getresponse().read()
            assert first == second
            conn.request("GET", "/healthz")
            cached_health = conn.getresponse().read()
            conn.request("GET", "/healthz")
            assert conn.getresponse().read() == cached_health
        finally:
            conn.close()


# --------------------------------------------- client failure semantics


class _TruncatingServer(threading.Thread):
    """Accepts connections, then dies mid-response: a fragment, no newline."""

    def __init__(self):
        super().__init__(daemon=True)
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.port = self.listener.getsockname()[1]

    def run(self):
        while True:
            try:
                conn, _addr = self.listener.accept()
            except OSError:
                return
            with conn:
                try:
                    conn.recv(65536)
                    conn.sendall(b'{"id": "c1", "ok": tr')  # cut mid-answer
                except OSError:
                    pass

    def stop(self):
        self.listener.close()


class TestClientPartialResponse:
    def test_truncated_response_is_a_typed_retryable_closed_error(self):
        server = _TruncatingServer()
        server.start()
        try:
            client = EdgeClient(
                "127.0.0.1",
                server.port,
                retry=RetryPolicy(attempts=2, backoff_s=0.01),
            )
            with client, pytest.raises(EdgeError) as info:
                client.read(0, ReadRequest.point(0, 45.0))
            # Never a JSON decode crash: the fragment at EOF maps to the
            # typed, retryable `closed` error (both attempts truncated).
            assert info.value.code == protocol.CLOSED
            assert info.value.retryable is True
        finally:
            server.stop()


# ------------------------------------------------- coalesced worker IPC


class TestCoalescedWorkerIpc:
    def test_bad_item_in_a_coalesced_batch_fails_alone(self):
        workers = [
            WorkerConfig(shard_index=0, seed=shard_seed(ROOT_SEED, 0), tiers=2)
        ]
        pool = ShardPool(workers, ipc_batch=8, ipc_linger_s=0.05)
        pool.start(health_checks=False)
        try:
            good = protocol.request_to_wire(ReadRequest.point(0, 45.0))
            bad = {"kind": "warp", "temp_c": 25.0}
            futures = [
                pool.submit_read(0, good),
                pool.submit_read(0, bad),
                pool.submit_read(0, good),
            ]
            answers = [f.result(timeout=30.0) for f in futures]
        finally:
            pool.close()
        assert answers[0]["ok"] is True
        assert answers[2]["ok"] is True
        assert answers[1]["ok"] is False
        assert answers[1]["error"]["code"] == protocol.INVALID

    def test_single_message_ipc_still_serves(self):
        # ipc_batch=1 is the uncoalesced wire: exactly the old behavior.
        workers = [
            WorkerConfig(shard_index=0, seed=shard_seed(ROOT_SEED, 0), tiers=2)
        ]
        pool = ShardPool(workers, ipc_batch=1, ipc_linger_s=0.0)
        pool.start(health_checks=False)
        try:
            wire = protocol.request_to_wire(ReadRequest.point(0, 45.0))
            answers = [
                pool.submit_read(i, wire).result(timeout=30.0) for i in range(4)
            ]
        finally:
            pool.close()
        assert all(a["ok"] for a in answers)
