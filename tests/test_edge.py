"""The network edge: wire protocol, routing, failure paths, determinism.

Three layers of coverage:

* pure units — NDJSON framing, typed errors, request/result round-trips,
  shard seeds and consistent-hash routing (no processes involved);
* one shared live server (4 spawn-started shards, chaos enabled) — the
  protocol surface end to end: all four request kinds, malformed lines,
  unknown ops, oversized payloads, mid-batch disconnects, the HTTP
  adapter, and a staged shard crash with recovery;
* the golden cross-process guarantee — a 4-shard edge deployment answers
  bit-identically to an in-process replay of each shard's embedded
  service, partitioned by the same hash ring.
"""

import json
import socket
import time
from http.client import HTTPConnection

import pytest

from repro.edge import (
    EdgeClient,
    EdgeConfig,
    EdgeError,
    EdgeServerThread,
    HashRing,
    RetryPolicy,
    shard_seed,
)
from repro.edge import protocol
from repro.serve import ReadRequest, SensorReadService

TIERS = 4
SHARDS = 4
ROOT_SEED = 2012
MAX_LINE = 8192


# ------------------------------------------------------------------ units


class TestProtocolFraming:
    def test_encode_decode_round_trip(self):
        payload = {"id": "r1", "op": "read", "stack": 7}
        line = protocol.encode(payload)
        assert line.endswith(b"\n")
        assert protocol.decode_line(line[:-1]) == payload

    def test_decode_rejects_non_json(self):
        with pytest.raises(EdgeError) as info:
            protocol.decode_line(b"not json at all")
        assert info.value.code == protocol.MALFORMED
        assert not info.value.retryable

    def test_decode_rejects_non_object(self):
        with pytest.raises(EdgeError) as info:
            protocol.decode_line(b"[1, 2, 3]")
        assert info.value.code == protocol.MALFORMED

    def test_error_codes_are_a_closed_vocabulary(self):
        with pytest.raises(ValueError):
            EdgeError("made_up_code", "nope")

    def test_retryable_defaults_follow_the_code(self):
        assert EdgeError(protocol.BACKPRESSURE, "x").retryable
        assert EdgeError(protocol.SHARD_DOWN, "x").retryable
        assert not EdgeError(protocol.INVALID, "x").retryable
        assert not EdgeError(protocol.MALFORMED, "x").retryable

    def test_error_wire_round_trip(self):
        error = EdgeError(protocol.BACKPRESSURE, "window full")
        back = EdgeError.from_wire(error.to_wire())
        assert (back.code, back.message, back.retryable) == (
            error.code,
            error.message,
            error.retryable,
        )

    def test_unknown_wire_code_degrades_to_internal(self):
        error = EdgeError.from_wire({"code": "martian", "message": "?"})
        assert error.code == protocol.INTERNAL

    def test_every_error_code_has_an_http_status(self):
        assert set(protocol.HTTP_STATUS) == set(protocol.ERROR_CODES)
        assert all(400 <= s <= 599 for s in protocol.HTTP_STATUS.values())


class TestRequestWireRoundTrip:
    @pytest.mark.parametrize(
        "request_",
        [
            ReadRequest.point(1, 55.0),
            ReadRequest.point(0, 40.0, vdd=1.05, assume_vdd=1.0),
            ReadRequest.vt(2, 60.0),
            ReadRequest.scan(35.0, tiers=(0, 2)),
            ReadRequest.poll({0: 30.0, 1: 45.5, 3: 72.25}),
        ],
        ids=["point", "point-vdd", "vt", "scan", "poll"],
    )
    def test_round_trip_preserves_fields(self, request_):
        wire = protocol.request_to_wire(request_)
        back = protocol.wire_to_request(json.loads(json.dumps(wire)), now=0.0)
        assert back.kind == request_.kind
        assert back.temp_c == request_.temp_c
        assert back.tier == request_.tier
        assert back.tiers == request_.tiers
        assert back.temps_c == request_.temps_c
        assert back.vdd == request_.vdd
        assert back.assume_vdd == request_.assume_vdd

    def test_deadline_is_relative_and_reanchored(self):
        wire = protocol.request_to_wire(ReadRequest.point(0, 50.0), deadline_ms=250.0)
        assert wire["deadline_ms"] == 250.0
        request = protocol.wire_to_request(wire, now=100.0)
        assert request.deadline_s == pytest.approx(100.25)

    def test_service_local_deadline_never_crosses_the_wire(self):
        request = ReadRequest.point(0, 50.0, deadline_s=12345.0)
        assert "deadline_s" not in protocol.request_to_wire(request)

    @pytest.mark.parametrize(
        "payload",
        [
            {"kind": "warp", "temp_c": 25.0},
            {"kind": "point", "tier": 0, "deadline_ms": -5},
            {"kind": "point", "tier": 0, "temps_c": "hot"},
            {"kind": "scan", "tiers": "all"},
        ],
        ids=["unknown-kind", "negative-deadline", "bad-temps", "bad-tiers"],
    )
    def test_invalid_requests_are_typed(self, payload):
        with pytest.raises(EdgeError) as info:
            protocol.wire_to_request(payload, now=0.0)
        assert info.value.code == protocol.INVALID
        assert not info.value.retryable


class TestSharding:
    def test_shard_seed_is_deterministic(self):
        assert shard_seed(ROOT_SEED, 3) == shard_seed(ROOT_SEED, 3)

    def test_shard_seeds_are_distinct(self):
        seeds = [shard_seed(ROOT_SEED, i) for i in range(16)]
        assert len(set(seeds)) == 16
        assert shard_seed(ROOT_SEED, 0) != shard_seed(ROOT_SEED + 1, 0)

    def test_negative_shard_rejected(self):
        with pytest.raises(ValueError):
            shard_seed(ROOT_SEED, -1)

    def test_ring_routes_deterministically_into_the_shard_set(self):
        ring = HashRing(range(SHARDS))
        again = HashRing(range(SHARDS))
        for stack in range(200):
            owner = ring.route(stack)
            assert owner in range(SHARDS)
            assert again.route(stack) == owner

    def test_ring_spreads_stacks_across_shards(self):
        ring = HashRing(range(SHARDS))
        counts = {s: 0 for s in range(SHARDS)}
        for stack in range(1000):
            counts[ring.route(stack)] += 1
        assert all(count > 100 for count in counts.values())

    def test_growing_the_ring_remaps_a_minority(self):
        small, grown = HashRing(range(4)), HashRing(range(5))
        moved = sum(
            1 for stack in range(1000) if small.route(stack) != grown.route(stack)
        )
        # Consistent hashing: ~1/5 of the space moves; modular routing
        # would move ~4/5.  Allow slack for ring-point luck.
        assert moved < 500

    def test_ring_rejects_empty_shard_set(self):
        with pytest.raises(ValueError):
            HashRing([])


# ------------------------------------------------------- one live server


@pytest.fixture(scope="module")
def edge():
    config = EdgeConfig(
        shards=SHARDS,
        tiers=TIERS,
        root_seed=ROOT_SEED,
        max_line_bytes=MAX_LINE,
        enable_chaos=True,
        health_interval_s=0.2,
        health_timeout_s=2.0,
        respawn_backoff_s=0.05,
    )
    server = EdgeServerThread(config).start()
    yield server
    server.stop(drain=True)


@pytest.fixture()
def client(edge):
    with EdgeClient(edge.host, edge.port) as c:
        yield c


def _raw_connection(edge):
    sock = socket.create_connection((edge.host, edge.port), timeout=30.0)
    return sock, sock.makefile("rb")


class TestEdgeRequestSurface:
    def test_all_four_kinds_round_trip(self, client):
        point = client.read(3, ReadRequest.point(1, 55.0))
        assert point.ok and point.reading_for(1).temperature_c == pytest.approx(
            55.0, abs=1.5
        )
        vt = client.read(3, ReadRequest.vt(0, 60.0))
        assert vt.ok and abs(vt.readings[0].dvtn) < 0.2
        scan = client.read(5, ReadRequest.scan(35.0))
        assert scan.ok and len(scan.readings) == TIERS
        poll = client.read(9, ReadRequest.poll({t: 30.0 + 5 * t for t in range(TIERS)}))
        assert poll.ok and [r.tier for r in poll.readings] == list(range(TIERS))

    def test_answering_shard_matches_the_public_ring(self, client):
        ring = HashRing(range(SHARDS))
        for stack in range(12):
            result = client.read(stack, ReadRequest.point(0, 42.0))
            assert result.shard == ring.route(stack)

    def test_ping_reports_shard_health(self, client):
        answer = client.ping()
        assert answer["pong"] == "edge"
        assert len(answer["shards"]) == SHARDS

    def test_stats_come_from_every_shard(self, client):
        client.read(0, ReadRequest.point(0, 50.0))
        shards = client.stats()["shards"]
        assert sorted(s["shard"] for s in shards) == list(range(SHARDS))
        assert sum(s["served"] for s in shards) >= 1


class TestEdgeErrorPaths:
    def test_malformed_line_is_answered_and_connection_survives(self, edge):
        # The first byte decides the connection's protocol, so a
        # malformed *NDJSON* line still opens with '{'.
        sock, reader = _raw_connection(edge)
        try:
            sock.sendall(b"{this is not json\n")
            answer = json.loads(reader.readline())
            assert answer["ok"] is False
            assert answer["error"]["code"] == protocol.MALFORMED
            sock.sendall(protocol.encode({"id": "after", "op": "ping"}))
            answer = json.loads(reader.readline())
            assert answer["id"] == "after" and answer["ok"] is True
        finally:
            sock.close()

    def test_unknown_op_is_typed(self, client):
        answer = client.raw({"op": "teleport"})
        assert answer["ok"] is False
        assert answer["error"]["code"] == protocol.UNKNOWN_OP
        assert answer["error"]["retryable"] is False

    def test_unknown_request_kind_is_typed(self, client):
        answer = client.raw(
            {"op": "read", "stack": 0, "request": {"kind": "warp", "temp_c": 25.0}}
        )
        assert answer["ok"] is False
        assert answer["error"]["code"] == protocol.INVALID

    def test_read_without_request_object_is_invalid(self, client):
        answer = client.raw({"op": "read", "stack": 0})
        assert answer["error"]["code"] == protocol.INVALID

    def test_non_integer_stack_is_invalid(self, client):
        answer = client.raw(
            {
                "op": "read",
                "stack": "seven",
                "request": protocol.request_to_wire(ReadRequest.point(0, 40.0)),
            }
        )
        assert answer["error"]["code"] == protocol.INVALID

    def test_oversized_line_is_answered_and_connection_survives(self, edge):
        sock, reader = _raw_connection(edge)
        try:
            huge = b'{"pad": "' + b"x" * (2 * MAX_LINE) + b'"}\n'
            sock.sendall(huge)
            answer = json.loads(reader.readline())
            assert answer["ok"] is False
            assert answer["error"]["code"] == protocol.OVERSIZED
            sock.sendall(protocol.encode({"id": "small", "op": "ping"}))
            answer = json.loads(reader.readline())
            assert answer["id"] == "small" and answer["ok"] is True
        finally:
            sock.close()

    def test_client_disconnect_mid_batch_does_not_wedge_the_server(self, edge):
        sock, _reader = _raw_connection(edge)
        wire = protocol.request_to_wire(ReadRequest.point(0, 61.0))
        for i in range(8):
            sock.sendall(
                protocol.encode(
                    {"id": f"orphan{i}", "op": "read", "stack": i, "request": wire}
                )
            )
        sock.close()  # walk away with every answer still in flight
        with EdgeClient(edge.host, edge.port) as fresh:
            result = fresh.read(0, ReadRequest.point(0, 47.0))
            assert result.ok
            assert all(s["state"] == "healthy" for s in fresh.ping()["shards"])


class TestEdgeHttpAdapter:
    def test_post_read(self, edge):
        conn = HTTPConnection(edge.host, edge.port, timeout=30.0)
        try:
            body = json.dumps(
                {
                    "id": "h1",
                    "stack": 4,
                    "request": protocol.request_to_wire(ReadRequest.point(2, 58.0)),
                }
            )
            conn.request("POST", "/v1/read", body=body)
            response = conn.getresponse()
            answer = json.loads(response.read())
            assert response.status == 200
            assert answer["ok"] is True
            readings = answer["result"]["readings"]
            assert readings[0]["tier"] == 2
            assert abs(readings[0]["temperature_c"] - 58.0) < 1.5
        finally:
            conn.close()

    def test_post_read_error_maps_to_http_status(self, edge):
        conn = HTTPConnection(edge.host, edge.port, timeout=30.0)
        try:
            body = json.dumps({"stack": 0, "request": {"kind": "warp"}})
            conn.request("POST", "/v1/read", body=body)
            response = conn.getresponse()
            answer = json.loads(response.read())
            assert response.status == protocol.HTTP_STATUS[protocol.INVALID]
            assert answer["error"]["code"] == protocol.INVALID
        finally:
            conn.close()

    def test_healthz(self, edge):
        conn = HTTPConnection(edge.host, edge.port, timeout=30.0)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200
            assert payload["status"] == "ok"
            assert len(payload["shards"]) == SHARDS
        finally:
            conn.close()

    def test_metrics_exposition(self, edge):
        conn = HTTPConnection(edge.host, edge.port, timeout=30.0)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            text = response.read().decode("utf-8")
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            assert "repro_edge_connections" in text
            assert "repro_edge_requests" in text
        finally:
            conn.close()

    def test_unknown_route_is_404(self, edge):
        conn = HTTPConnection(edge.host, edge.port, timeout=30.0)
        try:
            conn.request("GET", "/v2/teleport")
            response = conn.getresponse()
            answer = json.loads(response.read())
            assert response.status == 404
            assert answer["error"]["code"] == protocol.UNKNOWN_OP
        finally:
            conn.close()


class TestAsyncClient:
    def test_pipelined_concurrent_reads(self, edge):
        import asyncio

        from repro.edge import AsyncEdgeClient

        async def go():
            async with AsyncEdgeClient(edge.host, edge.port) as client:
                results = await asyncio.gather(
                    *[
                        client.read(s, ReadRequest.point(s % TIERS, 40.0 + s))
                        for s in range(10)
                    ]
                )
                pong = await client.ping()
            return results, pong

        results, pong = asyncio.run(go())
        assert all(r.ok for r in results)
        ring = HashRing(range(SHARDS))
        assert [r.shard for r in results] == [ring.route(s) for s in range(10)]
        assert pong["ok"] is True


class TestShardCrashRecovery:
    def test_crash_in_flight_is_retryable_and_the_shard_respawns(self, edge):
        ring = HashRing(range(SHARDS))
        victim = ring.route(0)
        patient = EdgeClient(
            edge.host,
            edge.port,
            retry=RetryPolicy(attempts=10, backoff_s=0.1, max_backoff_s=1.0),
        )
        try:
            before = {
                s["shard"]: s["restarts"] for s in patient.ping()["shards"]
            }
            answer = patient.raw({"op": "chaos", "shard": victim, "kind": "exit"})
            assert answer["ok"] is True
            # The very next read to the dead shard either rides the retry
            # loop to success or — if retries outpace the respawn — fails
            # *typed and retryable*, never hangs.
            try:
                result = patient.read(0, ReadRequest.point(0, 52.0))
                assert result.ok
            except EdgeError as error:
                assert error.retryable
                time.sleep(2.0)
                assert patient.read(0, ReadRequest.point(0, 52.0)).ok
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                shards = {
                    s["shard"]: s for s in patient.ping()["shards"]
                }
                if (
                    shards[victim]["restarts"] > before[victim]
                    and shards[victim]["state"] == "healthy"
                ):
                    break
                time.sleep(0.2)
            else:
                pytest.fail("crashed shard was not respawned to healthy in time")
            # The respawned shard serves the same seeded stack.
            assert patient.read(0, ReadRequest.point(0, 52.0)).ok
        finally:
            patient.close()


class TestGoldenCrossProcessDeterminism:
    """A sharded edge deployment is bit-identical to in-process serving.

    Shard i's worker builds its die stack from ``shard_seed(root, i)``;
    replaying the same requests against an in-process
    :class:`SensorReadService` built from the same
    :class:`WorkerConfig` must reproduce every answer bit for bit —
    across a process boundary, a JSON wire and a respawnable worker.
    """

    def test_edge_matches_in_process_replay(self, edge, client):
        requests = []
        for stack in range(24):
            requests.append((stack, ReadRequest.point(stack % TIERS, 30.0 + stack)))
            if stack % 3 == 0:
                requests.append((stack, ReadRequest.vt(stack % TIERS, 45.0)))
            if stack % 5 == 0:
                requests.append((stack, ReadRequest.scan(38.5)))

        remote = {}
        ring = HashRing(range(SHARDS))
        for key, (stack, request) in enumerate(requests):
            result = client.read(stack, request)
            assert result.ok
            remote[key] = result

        by_shard = {}
        for key, (stack, request) in enumerate(requests):
            by_shard.setdefault(ring.route(stack), []).append((key, request))
        configs = {w.shard_index: w for w in edge.config.worker_configs()}
        for shard_index, batch in sorted(by_shard.items()):
            with SensorReadService(
                config=configs[shard_index].serve_config()
            ) as local:
                for key, request in batch:
                    local_result = local.read(request)
                    remote_result = remote[key]
                    assert remote_result.shard == shard_index
                    assert len(local_result.readings) == len(remote_result.readings)
                    for mine, theirs in zip(
                        local_result.readings, remote_result.readings
                    ):
                        assert mine.tier == theirs.tier
                        # Bitwise: JSON floats round-trip exactly.
                        assert mine.temperature_c == theirs.temperature_c
                        assert mine.dvtn == theirs.dvtn
                        assert mine.dvtp == theirs.dvtp

    def test_distinct_shards_serve_distinct_stacks(self, client):
        """Different shard seeds ⇒ different die populations."""
        ring = HashRing(range(SHARDS))
        by_shard = {}
        for stack in range(64):
            shard = ring.route(stack)
            if shard not in by_shard:
                by_shard[shard] = client.read(
                    stack, ReadRequest.vt(0, 50.0)
                ).readings[0].dvtn
            if len(by_shard) == SHARDS:
                break
        assert len(set(by_shard.values())) == len(by_shard)
