"""Tests for the analytic MOSFET model."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.device.mosfet import (
    MosfetParams,
    drain_current,
    gate_capacitance,
    inversion_coefficient,
    saturation_current,
    specific_current,
    subthreshold_swing,
    threshold_voltage,
    transconductance,
)
from repro.device.technology import nominal_65nm


@pytest.fixture
def nmos():
    return nominal_65nm().nmos


@pytest.fixture
def pmos():
    return nominal_65nm().pmos


class TestParams:
    def test_rejects_bad_polarity(self, nmos):
        with pytest.raises(ValueError):
            MosfetParams(
                polarity="x",
                vt0=0.4,
                n_slope=1.3,
                mu0=0.02,
                cox=1.7e-2,
                width=1e-6,
                length=60e-9,
                dvt_dt=-1e-3,
                mobility_exponent=1.4,
                lambda_c=0.3,
            )

    def test_rejects_negative_vt(self, nmos):
        with pytest.raises(ValueError):
            MosfetParams(
                polarity="n",
                vt0=-0.4,
                n_slope=1.3,
                mu0=0.02,
                cox=1.7e-2,
                width=1e-6,
                length=60e-9,
                dvt_dt=-1e-3,
                mobility_exponent=1.4,
                lambda_c=0.3,
            )

    def test_vt_shift(self, nmos):
        shifted = nmos.with_vt_shift(0.02)
        assert shifted.vt0 == pytest.approx(nmos.vt0 + 0.02)

    def test_mobility_scale(self, nmos):
        scaled = nmos.with_mobility_scale(1.1)
        assert scaled.mu0 == pytest.approx(nmos.mu0 * 1.1)
        with pytest.raises(ValueError):
            nmos.with_mobility_scale(0.0)

    def test_geometry_scaling(self, nmos):
        scaled = nmos.scaled(width_scale=4.0, length_scale=2.0)
        assert scaled.width == pytest.approx(4.0 * nmos.width)
        assert scaled.length == pytest.approx(2.0 * nmos.length)


class TestThresholdAndTemperature:
    def test_threshold_decreases_with_temperature(self, nmos):
        assert threshold_voltage(nmos, 400.0) < threshold_voltage(nmos, 300.0)

    def test_threshold_at_reference(self, nmos):
        assert threshold_voltage(nmos, nmos.temp_ref) == pytest.approx(nmos.vt0)

    def test_specific_current_grows_with_temperature(self, nmos):
        # U_T^2 growth beats the mobility decay (exponent < 2).
        assert specific_current(nmos, 400.0) > specific_current(nmos, 300.0)

    def test_subthreshold_swing_around_90mv_dec(self, nmos):
        swing = subthreshold_swing(nmos, 300.0)
        assert 0.075 < swing < 0.095


class TestDrainCurrent:
    def test_on_current_magnitude_realistic(self, nmos):
        # ~100-1000 uA/um on-current class at full drive for a 65 nm LP NMOS.
        device = nmos.scaled(width_scale=1.0 / (nmos.width / 1e-6))  # 1 um wide
        i_on = drain_current(device, 1.2, 1.2, 300.0)
        assert 100e-6 < i_on < 1000e-6

    def test_off_current_small(self, nmos):
        i_off = drain_current(nmos, 0.0, 1.2, 300.0)
        assert i_off < 1e-9

    def test_subthreshold_exponential_slope(self, nmos):
        # Deep in weak inversion, one swing of gate drive changes the
        # current ~10x (the EKV interpolation approaches the ideal
        # exponential only well below threshold).
        swing = subthreshold_swing(nmos, 300.0)
        v1 = nmos.vt0 - 0.30
        i1 = saturation_current(nmos, v1, 300.0)
        i2 = saturation_current(nmos, v1 + swing, 300.0)
        assert i2 / i1 == pytest.approx(10.0, rel=0.15)

    def test_zero_vds_zero_current(self, nmos):
        assert drain_current(nmos, 1.0, 0.0, 300.0) == pytest.approx(0.0, abs=1e-15)

    def test_vectorised_matches_scalar(self, nmos):
        vgs = np.linspace(0.0, 1.2, 7)
        vec = drain_current(nmos, vgs, 0.6, 300.0)
        scal = [drain_current(nmos, float(v), 0.6, 300.0) for v in vgs]
        np.testing.assert_allclose(vec, scal, rtol=1e-12)

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        vgs=st.floats(min_value=-0.2, max_value=1.4),
        temp=st.floats(min_value=230.0, max_value=400.0),
    )
    def test_current_nonnegative(self, nmos, vgs, temp):
        assert drain_current(nmos, vgs, 0.6, temp) >= 0.0

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        v1=st.floats(min_value=0.0, max_value=1.2),
        dv=st.floats(min_value=1e-3, max_value=0.2),
    )
    def test_monotone_in_vgs(self, nmos, v1, dv):
        i1 = saturation_current(nmos, v1, 300.0)
        i2 = saturation_current(nmos, v1 + dv, 300.0)
        assert i2 > i1

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        v1=st.floats(min_value=0.05, max_value=0.6),
        dv=st.floats(min_value=1e-3, max_value=0.3),
    )
    def test_monotone_in_vds(self, nmos, v1, dv):
        i1 = drain_current(nmos, 1.0, v1, 300.0)
        i2 = drain_current(nmos, 1.0, v1 + dv, 300.0)
        assert i2 >= i1


class TestZtcBehaviour:
    """The zero-temperature-coefficient crossover the PSRO bias exploits."""

    def test_subthreshold_current_increases_with_temperature(self, nmos):
        lo = saturation_current(nmos, 0.3, 250.0)
        hi = saturation_current(nmos, 0.3, 390.0)
        assert hi > lo

    def test_strong_inversion_current_decreases_with_temperature(self, nmos):
        lo = saturation_current(nmos, 1.2, 250.0)
        hi = saturation_current(nmos, 1.2, 390.0)
        assert hi < lo

    def test_ztc_point_exists_between(self, nmos):
        # Somewhere between weak and strong inversion the TC changes sign.
        biases = np.linspace(0.3, 1.2, 50)
        tc = [
            saturation_current(nmos, float(v), 390.0)
            - saturation_current(nmos, float(v), 250.0)
            for v in biases
        ]
        assert tc[0] > 0.0 and tc[-1] < 0.0


class TestSmallSignal:
    def test_transconductance_positive(self, nmos):
        assert transconductance(nmos, 0.8, 300.0) > 0.0

    def test_gm_peaks_above_threshold(self, nmos):
        gm_below = transconductance(nmos, 0.2, 300.0)
        gm_above = transconductance(nmos, 0.9, 300.0)
        assert gm_above > gm_below


class TestCapacitance:
    def test_gate_capacitance_scales_with_area(self, nmos):
        big = nmos.scaled(width_scale=2.0, length_scale=3.0)
        assert gate_capacitance(big) == pytest.approx(6.0 * gate_capacitance(nmos))

    def test_overhang_must_be_at_least_one(self, nmos):
        with pytest.raises(ValueError):
            gate_capacitance(nmos, overhang_factor=0.9)

    def test_femtofarad_class(self, nmos):
        assert 1e-17 < gate_capacitance(nmos) < 1e-14


class TestInversionCoefficient:
    def test_weak_inversion_below_one(self, nmos):
        assert inversion_coefficient(nmos, nmos.vt0 - 0.2, 300.0) < 1.0

    def test_strong_inversion_above_ten(self, nmos):
        assert inversion_coefficient(nmos, nmos.vt0 + 0.5, 300.0) > 10.0

    def test_pmos_model_same_shape(self, pmos):
        weak = inversion_coefficient(pmos, pmos.vt0 - 0.2, 300.0)
        strong = inversion_coefficient(pmos, pmos.vt0 + 0.5, 300.0)
        assert weak < 1.0 < strong
