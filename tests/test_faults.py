"""Tests for the fault-injection subsystem: plans, injector, campaign.

The load-bearing guarantees:

* the **empty plan is golden** — activating it leaves every reading and
  frame bit-identical to not touching the faults layer at all;
* the **schedule is deterministic** — same seed + same plan replays the
  same faults, flips, and scores on every run;
* every fault kind perturbs exactly its documented seam.
"""

import dataclasses

import pytest

from repro import faults
from repro.circuits.ring_oscillator import Environment
from repro.core.sensing_model import SensingModel
from repro.core.sensor import PTSensor
from repro.device.technology import nominal_65nm
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.faults.campaign import (
    CampaignConfig,
    builtin_plans,
    run_campaign,
    run_plan,
)
from repro.faults.models import (
    ResistiveDriftModel,
    burst_flip_count,
    thermal_runaway_offset_c,
)
from repro.network.aggregator import StackMonitor
from repro.readout.interface import decode_frame
from repro.tsv.bus import TsvSensorBus
from repro.variation.montecarlo import sample_dies


@pytest.fixture(scope="module")
def tech():
    return nominal_65nm()


@pytest.fixture(scope="module")
def model(tech):
    return SensingModel(tech)


def make_sensors(tech, model, count=3, seed=77):
    dies = sample_dies(tech, count, seed=seed)
    return {
        tier: PTSensor(tech, die=die, die_id=tier, sensing_model=model)
        for tier, die in enumerate(dies)
    }


class TestPlanAlgebra:
    def test_spec_window(self):
        spec = FaultSpec(FaultKind.SENSOR_STUCK, tier=1, onset_round=3,
                         duration_rounds=4)
        assert not spec.active_at(2)
        assert spec.active_at(3)
        assert spec.active_at(6)
        assert not spec.active_at(7)
        assert spec.rounds_active(5) == 2

    def test_permanent_fault_never_expires(self):
        spec = FaultSpec(FaultKind.SENSOR_DRIFT, tier=0, onset_round=2)
        assert spec.active_at(10_000)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.TSV_OPEN, tier=-1)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.TSV_OPEN, tier=0, onset_round=-1)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.TSV_OPEN, tier=0, duration_rounds=0)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.FRAME_DROP, tier=0, severity=-0.5)

    def test_plan_queries(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.TSV_OPEN, tier=2, onset_round=1,
                      duration_rounds=2),
            FaultSpec(FaultKind.SENSOR_DRIFT, tier=0, onset_round=4),
        ))
        assert not plan.empty
        assert plan.tiers_faulted() == {0, 2}
        assert [s.kind for s in plan.active(1)] == [FaultKind.TSV_OPEN]
        assert plan.active_for_tier(0, 5) == (plan.specs[1],)
        assert plan.faulted_tier_rounds(6) == {2: [1, 2], 0: [4, 5]}

    def test_describe_mentions_every_spec(self):
        plan = builtin_plans(tiers=8)[-1]  # pile-up
        text = plan.describe()
        for spec in plan.specs:
            assert spec.kind.value in text


class TestGoldenEmptyPlan:
    """The zero-fault plan must be indistinguishable from no plan."""

    def test_sensor_reads_bit_identical(self, tech, model):
        a = PTSensor(tech, die_id=0, sensing_model=model, seed=5)
        b = PTSensor(tech, die_id=0, sensing_model=model, seed=5)
        bare = [a.read(40.0 + i) for i in range(5)]
        with faults.inject(FaultPlan()):
            planned = [b.read(40.0 + i) for i in range(5)]
        assert bare == planned  # dataclass equality: every field, no tolerance

    def test_monitor_rounds_bit_identical(self, tech, model):
        def run_rounds(plan):
            monitor = StackMonitor(
                make_sensors(tech, model), TsvSensorBus(tiers=3)
            )
            temps = {t: 50.0 + 3.0 * t for t in range(3)}
            if plan is None:
                return [monitor.poll(temps) for _ in range(4)]
            with faults.inject(plan):
                return [monitor.poll(temps) for _ in range(4)]

        bare = run_rounds(None)
        golden = run_rounds(FaultPlan())
        for x, y in zip(bare, golden):
            assert x == y

    def test_empty_plan_hooks_return_same_objects(self, tech, model):
        injector = FaultInjector(FaultPlan())
        env = Environment(temp_k=300.0, vdd=1.2)
        assert injector.perturb_environment(0, env) is env
        assert injector.filter_frame(0, 0xABC, hops=2) == 0xABC
        assert injector.true_temperature_c(3, 55.0) == 55.0

    def test_empty_plan_consumes_no_randomness(self):
        injector = FaultInjector(FaultPlan())
        before = injector._rng.bit_generator.state
        for tier in range(4):
            injector.filter_frame(tier, 0x123456789, hops=tier)
        injector.advance()
        assert injector._rng.bit_generator.state == before


class TestInjectorSeams:
    def test_open_tsv_swallows_frames(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(FaultKind.TSV_OPEN, tier=1),
        )))
        assert injector.filter_frame(1, 0xFF, hops=1) is None
        assert injector.filter_frame(0, 0xFF, hops=0) == 0xFF

    def test_burst_flips_change_exact_bit_count(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(FaultKind.BUS_BIT_FLIPS, tier=0, severity=3.0),
        )))
        word = injector.filter_frame(0, 0, hops=1)
        assert bin(word).count("1") == burst_flip_count(3.0) == 3

    def test_supply_droop_sags_rail_only(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(FaultKind.SUPPLY_DROOP, tier=0, severity=0.1),
        )))
        env = Environment(temp_k=300.0, vdd=1.2)
        sagged = injector.perturb_environment(0, env)
        assert sagged.vdd == pytest.approx(1.1)
        assert sagged.temp_k == env.temp_k

    def test_thermal_runaway_compounds_with_age(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(FaultKind.THERMAL_RUNAWAY, tier=0, severity=2.0),
        )))
        env = Environment(temp_k=300.0, vdd=1.2)
        first = injector.perturb_environment(0, env).temp_k
        injector.advance(3)
        later = injector.perturb_environment(0, env).temp_k
        assert later > first > env.temp_k
        assert later - env.temp_k == pytest.approx(
            thermal_runaway_offset_c(2.0, 3)
        )

    def test_stuck_sensor_latches_first_faulted_reading(self, tech, model):
        sensor = PTSensor(tech, die_id=0, sensing_model=model, seed=9)
        with faults.inject(FaultPlan(specs=(
            FaultSpec(FaultKind.SENSOR_STUCK, tier=0, onset_round=0),
        ))) as injector:
            first = sensor.read(40.0)
            injector.advance()
            second = sensor.read(90.0)
        assert second.temperature_c == first.temperature_c

    def test_sensor_drift_grows_linearly(self, tech, model):
        sensor = PTSensor(tech, die_id=0, sensing_model=model, seed=9)
        clean = sensor.read(50.0, deterministic=True).temperature_c
        with faults.inject(FaultPlan(specs=(
            FaultSpec(FaultKind.SENSOR_DRIFT, tier=0, severity=1.5),
        ))) as injector:
            at_zero = sensor.read(50.0, deterministic=True).temperature_c
            injector.advance(2)
            at_two = sensor.read(50.0, deterministic=True).temperature_c
        assert at_zero == pytest.approx(clean + 1.5)
        assert at_two == pytest.approx(clean + 4.5)

    def test_faults_target_only_their_tier(self, tech, model):
        sensors = make_sensors(tech, model)
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.SENSOR_DRIFT, tier=1, severity=5.0),
        ))
        clean = {t: s.read(50.0, deterministic=True).temperature_c
                 for t, s in sensors.items()}
        with faults.inject(plan):
            faulted = {t: s.read(50.0, deterministic=True).temperature_c
                       for t, s in sensors.items()}
        assert faulted[0] == clean[0]
        assert faulted[2] == clean[2]
        assert faulted[1] == pytest.approx(clean[1] + 5.0)

    def test_inject_restores_previous_injector(self):
        outer = FaultPlan(name="outer")
        inner = FaultPlan(name="inner")
        assert faults.active_injector() is None
        with faults.inject(outer) as oi:
            assert faults.active_injector() is oi
            with faults.inject(inner) as ii:
                assert faults.active_injector() is ii
            assert faults.active_injector() is oi
        assert faults.active_injector() is None


class TestDriftModel:
    def test_ber_rises_with_age_and_severity(self):
        m = ResistiveDriftModel()
        assert m.bit_error_rate(400.0, 30) > m.bit_error_rate(400.0, 5)
        assert m.bit_error_rate(400.0, 10) > m.bit_error_rate(4.0, 10)

    def test_ber_clamped_to_coin_flip(self):
        assert ResistiveDriftModel().bit_error_rate(1e9, 1000) == 0.5

    def test_healthy_link_ber_floor(self):
        assert ResistiveDriftModel().bit_error_rate(0.0, 100) == pytest.approx(
            1e-12
        )


class TestCampaign:
    @pytest.fixture(scope="class")
    def config(self):
        return CampaignConfig(tiers=3, rounds=8, seed=11)

    def test_zero_fault_plan_is_clean(self, config):
        outcome = run_plan(FaultPlan(name="zero-fault", seed=11), config)
        assert outcome.faults_total == 0
        assert outcome.misdetection_rate == 0.0
        assert outcome.degraded_rounds == 0
        assert outcome.mean_abs_error_c < 2.0

    def test_schedule_is_deterministic(self, config):
        plan = FaultPlan(name="p", seed=11, specs=(
            FaultSpec(FaultKind.FRAME_DROP, tier=1, onset_round=2,
                      severity=0.5),
        ))
        first = run_plan(plan, config)
        second = run_plan(plan, config)
        assert first == second  # float-exact: same seed, same schedule

    def test_open_tsv_detected_at_onset(self, config):
        plan = FaultPlan(name="open", seed=11, specs=(
            FaultSpec(FaultKind.TSV_OPEN, tier=2, onset_round=3),
        ))
        outcome = run_plan(plan, config)
        assert outcome.faults_detected == 1
        assert outcome.detection_latency_rounds == 0.0
        assert outcome.degraded_rounds > 0

    def test_builtin_catalogue_leads_with_the_control(self):
        plans = builtin_plans(tiers=4, seed=3)
        assert plans[0].empty
        assert len({p.name for p in plans}) == len(plans)
        for plan in plans:
            for spec in plan.specs:
                assert 0 <= spec.tier < 4

    def test_run_campaign_scores_every_plan(self):
        report = run_campaign(
            plans=builtin_plans(tiers=2, seed=5)[:3], tiers=2, rounds=6, seed=5
        )
        assert len(report.outcomes) == 3
        rendered = report.render()
        for outcome in report.outcomes:
            assert outcome.plan.name in rendered

    def test_campaign_report_json_round_trips(self):
        import json

        report = run_campaign(plans=[FaultPlan(name="z", seed=5)], tiers=2,
                              rounds=4, seed=5)
        payload = json.loads(report.to_json())
        assert payload["tiers"] == 2
        assert payload["outcomes"][0]["plan"] == "z"


class TestFaultsimCli:
    def test_faultsim_smoke(self, capsys):
        from repro.__main__ import main

        code = main([
            "faultsim", "--tiers", "2", "--rounds", "4",
            "--plan", "zero-fault", "open-tsv",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "zero-fault" in out and "open-tsv" in out

    def test_faultsim_rejects_unknown_plan(self, capsys):
        from repro.__main__ import main

        code = main(["faultsim", "--plan", "no-such-plan"])
        assert code == 2
        assert "unknown plan" in capsys.readouterr().err
