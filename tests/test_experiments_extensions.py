"""Shape tests for the extension experiments (R-E1..R-E4), fast mode."""

import pytest

from repro.experiments import (
    exp_e1_supply_aware,
    exp_e2_aging,
    exp_e3_tracking,
    exp_e4_dtm,
)


class TestE1SupplyAware:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_e1_supply_aware.run(fast=True)

    def test_aware_flat_across_droop(self, result):
        assert result.worst_aware_band() < 2.0

    def test_paper_engine_degrades_with_droop(self, result):
        assert result.worst_paper_band() > 3.0 * result.worst_aware_band()

    def test_vdd_readout_millivolt_class(self, result):
        assert all(row.aware_vdd_band_mv < 20.0 for row in result.rows)

    def test_renders(self, result):
        assert "R-E1" in result.render()


class TestE2Aging:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_e2_aging.run(fast=True)

    def test_anchored_tracks_drift_exactly(self, result):
        assert result.drift_tracking_error_mv() < 0.5

    def test_anchored_holds_accuracy_class(self, result):
        assert all(row.anchored_temp_band_c < 2.0 for row in result.rows)

    def test_factory_trim_goes_stale(self, result):
        aged = [row for row in result.rows if row.years >= 1.0]
        assert all(
            row.stale_trim_temp_band_c > 3.0 * row.anchored_temp_band_c
            for row in aged
        )

    def test_naive_underestimates_drift(self, result):
        aged = [row for row in result.rows if row.years >= 1.0]
        assert all(
            row.detected_dvtp_drift_mv < row.injected_dvtp_drift_mv for row in aged
        )


class TestE3Tracking:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_e3_tracking.run(fast=True)

    def test_big_energy_saving(self, result):
        assert result.energy_saving_factor() > 5.0

    def test_accuracy_class_preserved(self, result):
        assert all(row.temp_band_c < 2.5 for row in result.rows)

    def test_fast_fraction_grows_with_interval(self, result):
        fractions = [row.fast_fraction for row in result.rows]
        assert fractions == sorted(fractions)


class TestE4Dtm:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_e4_dtm.run(fast=True)

    def test_open_loop_violates(self, result):
        assert result.open_peak_c > result.policy.throttle_c + 5.0

    def test_closed_loop_caps_peak(self, result):
        assert result.closed_peak_c() < result.policy.throttle_c + 5.0

    def test_loop_actually_throttled(self, result):
        assert result.closed_trace.throttled_steps > 0

    def test_only_hot_tier_throttled(self, result):
        final = result.closed_trace.power_scales[-1]
        assert final[0] < 1.0  # the hotspot tier
        assert final[3] == pytest.approx(1.0)  # the cool top tier
