"""Tests for physical constants and unit helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestTemperatureConversion:
    def test_zero_celsius(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_room_temperature(self):
        assert units.kelvin_to_celsius(300.0) == pytest.approx(26.85)

    def test_round_trip(self):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(65.0)) == pytest.approx(65.0)

    def test_below_absolute_zero_rejected(self):
        with pytest.raises(ValueError):
            units.celsius_to_kelvin(-300.0)

    def test_nonpositive_kelvin_rejected(self):
        with pytest.raises(ValueError):
            units.kelvin_to_celsius(0.0)

    @given(st.floats(min_value=-270.0, max_value=1000.0))
    def test_round_trip_property(self, temp_c):
        back = units.kelvin_to_celsius(units.celsius_to_kelvin(temp_c))
        assert back == pytest.approx(temp_c, abs=1e-9)


class TestThermalVoltage:
    def test_value_at_300k(self):
        # kT/q at 300 K is the canonical 25.85 mV.
        assert units.thermal_voltage(300.0) == pytest.approx(0.025852, rel=1e-3)

    def test_scales_linearly_with_temperature(self):
        assert units.thermal_voltage(600.0) == pytest.approx(
            2.0 * units.thermal_voltage(300.0)
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.thermal_voltage(-1.0)


class TestDb:
    def test_10x_is_10db(self):
        assert units.db(10.0) == pytest.approx(10.0)

    def test_unity_is_zero(self):
        assert units.db(1.0) == pytest.approx(0.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.db(0.0)


def test_prefixes_are_consistent():
    assert units.MILLI * units.KILO == pytest.approx(1.0)
    assert units.MICRO * units.MEGA == pytest.approx(1.0)
    assert units.NANO * units.GIGA == pytest.approx(1.0)
    assert math.isclose(units.PICO, 1e-12)
    assert math.isclose(units.FEMTO, 1e-15)
