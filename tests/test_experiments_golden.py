"""Golden equivalence: R-E4/R-E5 numbers survive the engine re-point.

The experiments now run through ``repro.dtm`` — E5's greedy placement on
the batch :class:`PlacementEngine`, E4's controller through the typed
``decide``/``apply_action`` verb layer with decisions recorded into a
:class:`DtmTable`.  These tests recompute each study against the
original scalar arithmetic — a verbatim point-at-a-time greedy walk over
``reconstruction_error_scalar`` for E5, the seed in-line
multiplicative-decrease/additive-increase update for E4 — and demand
the reported numbers are unchanged (bit-exact where the float paths are
operation-identical, last-ulp tolerance where BLAS order may differ).
"""

import pytest

from repro.dtm import DtmTable, apply_action
from repro.experiments import exp_e4_dtm, exp_e5_placement
from repro.experiments.common import die_population, reference_setup
from repro.core.sensor import PTSensor
from repro.network.aggregator import StackMonitor
from repro.network.dtm import DtmPolicy, run_closed_loop
from repro.network.placement import (
    candidate_grid,
    observer_error_scalar,
    reconstruction_error_scalar,
)
from repro.thermal.solver import steady_state, transient
from repro.tsv.bus import TsvSensorBus
from repro.units import kelvin_to_celsius


# ----------------------------------------------------------------- R-E5


def _greedy_scalar_reference(fields, layer, candidates, sensor_budget, probe_grid):
    """The original point-at-a-time greedy walk (pre-engine semantics)."""
    chosen = []
    remaining = list(candidates)
    trace = []
    worst = float("inf")
    for _ in range(sensor_budget):
        best_site, best_err = None, float("inf")
        for site in remaining:
            trial = chosen + [site]
            err = max(
                reconstruction_error_scalar(f, layer, trial, probe_grid)
                for f in fields
            )
            if err < best_err:
                best_site, best_err = site, err
        chosen.append(best_site)
        remaining.remove(best_site)
        worst = best_err
        trace.append(worst)
    return chosen, trace, worst


class TestE5Golden:
    @pytest.fixture(scope="class")
    def setup(self):
        """The exact fast-mode inputs `exp_e5_placement.run(fast=True)` uses."""
        nx = ny = 12
        stack, grid = exp_e5_placement._assembly(nx, ny)
        training = exp_e5_placement._training_workloads(stack, nx, ny)
        basis_fields = [steady_state(grid, w) for w in training]
        mixture_power = {
            layer: 0.5 * training[0][layer]
            + 0.3 * training[2][layer]
            + 0.2 * training[3][layer]
            for layer in training[0]
        }
        from repro.thermal.power import hotspot_power_map

        w, h = stack.die_width, stack.die_height
        novel_power = {
            "tier0.si": hotspot_power_map(
                nx, ny, w, h, [(0.9e-3, 3.1e-3, 1e-3, 1e-3, 1.8)], 0.35
            ),
            "tier1.si": training[0]["tier1.si"],
        }
        return {
            "stack": stack,
            "basis": basis_fields,
            "mixture": steady_state(grid, mixture_power),
            "novel": steady_state(grid, novel_power),
        }

    def test_rows_match_the_scalar_reference(self, setup):
        result = exp_e5_placement.run(fast=True)
        w, h = setup["stack"].die_width, setup["stack"].die_height
        candidates = candidate_grid(w, h, per_axis=4)
        sites, _, _ = _greedy_scalar_reference(
            setup["basis"], exp_e5_placement.LAYER, candidates,
            sensor_budget=6, probe_grid=8,
        )
        assert result.chosen_sites == sites
        for row in result.rows:
            chosen = sites[: row.budget]
            layer = exp_e5_placement.LAYER
            # Nearest-sensor rows are operation-identical float paths.
            assert row.nearest_mix_c == reconstruction_error_scalar(
                setup["mixture"], layer, chosen, 8
            )
            assert row.nearest_novel_c == reconstruction_error_scalar(
                setup["novel"], layer, chosen, 8
            )
            # Observer rows solve a ridge system; BLAS order differs in
            # the vectorized path, so pin to last-ulp tolerance.
            assert row.observer_mix_c == pytest.approx(
                observer_error_scalar(
                    setup["mixture"], layer, chosen, setup["basis"], 8
                ),
                abs=1e-9, rel=1e-12,
            )
            assert row.observer_novel_c == pytest.approx(
                observer_error_scalar(
                    setup["novel"], layer, chosen, setup["basis"], 8
                ),
                abs=1e-9, rel=1e-12,
            )


# ----------------------------------------------------------------- R-E4


def _reference_update(policy, scale, reading_c):
    """The seed controller arithmetic, verbatim (pre-verb-layer)."""
    if reading_c >= policy.throttle_c:
        return max(policy.floor, scale * policy.decrease_factor)
    if reading_c < policy.release_c:
        return min(1.0, scale + policy.increase_step)
    return scale


def _e4_setup(nx, policy):
    """One fresh E4 fast-mode assembly + monitor (deterministic build)."""
    setup = reference_setup()
    stack, grid = exp_e4_dtm._assembly(nx, nx)
    workload = exp_e4_dtm._hot_workload(stack, nx, nx)
    sensors = {
        tier_id: PTSensor(
            setup.technology,
            config=setup.config,
            die=die,
            location=exp_e4_dtm.SENSOR_SITE,
            die_id=tier_id,
            sensing_model=setup.model,
            lut=setup.lut,
        )
        for tier_id, die in enumerate(die_population(len(stack.tiers)))
    }
    monitor = StackMonitor(
        sensors,
        TsvSensorBus(tiers=len(stack.tiers)),
        warning_c=policy.release_c,
        emergency_c=policy.throttle_c + 15.0,
    )
    return stack, grid, monitor, workload


def _reference_closed_loop(stack, grid, monitor, base_power, policy, dt, steps):
    """A verbatim copy of the seed loop, driven by `_reference_update`."""
    tiers = list(stack.tiers)
    scales = {tier_id: 1.0 for tier_id in range(len(tiers))}
    sites = {i: exp_e4_dtm.SENSOR_SITE for i in range(len(tiers))}
    trace = []
    state_field = None
    for step in range(1, steps + 1):
        scaled_power = {}
        for tier_id, tier in enumerate(tiers):
            layer = stack.transistor_layer_name(tier)
            scaled_power[layer] = base_power[layer] * scales[tier_id]
        state_field = transient(
            grid, lambda t: scaled_power, dt=dt, steps=1, initial=state_field
        )[0]
        true_temps = {}
        for tier_id, tier in enumerate(tiers):
            layer = stack.transistor_layer_name(tier)
            x, y = sites[tier_id]
            true_temps[tier_id] = kelvin_to_celsius(state_field.at(layer, x, y))
        snapshot = monitor.poll(true_temps)
        for tier_id, reading in snapshot.temperatures_c.items():
            scales[tier_id] = _reference_update(policy, scales[tier_id], reading)
        true_peak = max(
            kelvin_to_celsius(state_field.peak(stack.transistor_layer_name(t)))
            for t in tiers
        )
        sensed_peak = max(snapshot.temperatures_c.values())
        trace.append((step * dt, true_peak, sensed_peak, dict(scales)))
    return trace


class TestE4Golden:
    NX = 10
    STEPS = 48
    DT = 0.02

    def test_trace_matches_the_seed_arithmetic(self):
        policy = DtmPolicy(throttle_c=85.0, release_c=78.0)
        stack, grid, monitor, workload = _e4_setup(self.NX, policy)
        reference = _reference_closed_loop(
            stack, grid, monitor, workload, policy, self.DT, self.STEPS
        )
        # A second, independently-built assembly for the verb-layer run
        # (fresh monitor state; the build is deterministic).
        stack2, grid2, monitor2, workload2 = _e4_setup(self.NX, policy)
        decisions = []
        trace = run_closed_loop(
            stack2, grid2, monitor2, workload2, policy,
            dt=self.DT, steps=self.STEPS,
            sensor_sites={i: exp_e4_dtm.SENSOR_SITE for i in range(len(stack2.tiers))},
            decision_sink=lambda tier, rnd, action: decisions.append(
                (tier, rnd, action)
            ),
        )
        assert len(trace.times_s) == len(reference) == self.STEPS
        for i, (t, true_peak, sensed_peak, scales) in enumerate(reference):
            assert trace.times_s[i] == t
            assert trace.true_peak_c[i] == true_peak  # bit-exact
            assert trace.sensed_peak_c[i] == sensed_peak
            assert trace.power_scales[i] == scales
        assert decisions, "the hot workload must emit verbs"
        # Replaying the decision stream through apply_action reproduces
        # the trajectory's final scales exactly — the same contract the
        # live DtmTable enforces on the server.
        replayed = {}
        for tier, _, action in decisions:
            replayed[tier] = apply_action(policy, replayed.get(tier, 1.0), action)
        final = trace.power_scales[-1]
        for tier, scale in replayed.items():
            assert final[tier] == scale
        rounds = {}
        for tier, rnd, _ in decisions:
            assert rnd > rounds.get(tier, -1), "verb rounds must be increasing"
            rounds[tier] = rnd

    def test_run_records_decisions_into_a_table(self):
        result = exp_e4_dtm.run(fast=True)
        # run() replays the verb stream into a DtmTable and raises on
        # divergence; reaching here means the replay matched.  Spot-check
        # the public outcome is still the study's shape.
        assert result.closed_peak_c() < result.policy.throttle_c + 5.0
        assert result.closed_trace.throttled_steps > 0

    def test_decide_equals_reference_update_on_a_grid(self):
        policy = DtmPolicy()
        import numpy as np

        from repro.network.dtm import decide

        rng = np.random.default_rng(11)
        for scale, reading in zip(
            rng.uniform(0.05, 1.0, 2000), rng.uniform(50.0, 120.0, 2000)
        ):
            assert decide(policy, float(scale), float(reading))[1] == \
                _reference_update(policy, float(scale), float(reading))

    def test_table_replay_matches_update_path(self):
        policy = DtmPolicy()
        table = DtmTable(policy)
        scale = 1.0
        from repro.network.dtm import decide

        readings = [88.0, 92.0, 101.0, 83.0, 70.0, 60.0, 55.0, 90.0]
        for rnd, reading in enumerate(readings):
            action, scale = decide(policy, scale, reading)
            if action is not None:
                assert table.apply(0, 0, rnd, action).scale == scale
        assert table.scale(0, 0) == scale
