"""Tests for the unified telemetry layer and its instrumentation seams.

Covers the registry/span/sink primitives, the instrumented subsystems
(core conversions, TSV bus, stack monitor, thermal LU cache, batch
engine, experiment runner), the harmonised environment-style read
signatures, and the JSONL round trip through the summary tooling.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.batch import read_population
from repro.circuits.ring_oscillator import Environment
from repro.core.tracking import TrackingPolicy, TrackingSensor
from repro.experiments.common import build_sensor, die_population, reference_setup
from repro.network.aggregator import StackMonitor
from repro.telemetry import (
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    NullSink,
    TelemetryError,
)
from repro.telemetry.registry import RESERVOIR_CAPACITY
from repro.telemetry.spans import NULL_SPAN
from repro.telemetry.summary import (
    TelemetryFileError,
    load_summary,
    load_summary_file,
    render_summary,
)
from repro.tsv.bus import TsvSensorBus
from repro.units import celsius_to_kelvin


class TestRegistry:
    def test_counter_counts_and_resets(self):
        registry = MetricsRegistry()
        counter = registry.counter("test.events", unit="events")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("test.events").inc(-1)

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("test.level")
        assert gauge.value is None
        gauge.set(3)
        gauge.set(7.5)
        assert gauge.value == 7.5

    def test_histogram_moments_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("test.rounds")
        for value in [1, 2, 3, 4]:
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 10.0
        assert histogram.mean == 2.5
        state = histogram.snapshot()
        assert state["min"] == 1.0 and state["max"] == 4.0

    def test_histogram_reservoir_stays_bounded(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("test.big")
        histogram.observe_many(range(10 * RESERVOIR_CAPACITY))
        assert histogram.count == 10 * RESERVOIR_CAPACITY
        assert len(histogram._reservoir) < RESERVOIR_CAPACITY
        # Quantiles stay sane after decimation.
        p50 = histogram.quantile(0.5)
        assert 0.3 * 10 * RESERVOIR_CAPACITY < p50 < 0.7 * 10 * RESERVOIR_CAPACITY

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("test.a") is registry.counter("test.a")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("test.a")
        with pytest.raises(TelemetryError):
            registry.gauge("test.a")

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("nodots", "Upper.case", "trailing.", ".leading", "a b.c"):
            with pytest.raises(TelemetryError):
                registry.counter(bad)

    def test_snapshot_records_are_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("test.a", unit="x").inc(2)
        registry.histogram("test.b").observe(1.0)
        records = registry.snapshot()
        assert [r["name"] for r in records] == ["test.a", "test.b"]
        for record in records:
            assert record["type"] == "metric"
            json.dumps(record)  # must not raise


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        assert not telemetry.enabled()
        span = telemetry.span("test.op", a=1)
        assert span is NULL_SPAN
        with span as live:
            live.set(b=2)  # no-op, no error

    def test_span_records_duration_and_attrs(self):
        with telemetry.capture() as sink:
            with telemetry.span("test.op", a=1) as span:
                span.set(b=2)
        [record] = sink.spans_named("test.op")
        assert record["attrs"] == {"a": 1, "b": 2}
        assert record["duration_s"] >= 0.0
        assert record["parent"] is None

    def test_span_nesting_tracks_parent(self):
        with telemetry.capture() as sink:
            with telemetry.span("test.outer"):
                with telemetry.span("test.inner"):
                    pass
        [inner] = sink.spans_named("test.inner")
        assert inner["parent"] == "test.outer"

    def test_span_marks_exceptions(self):
        with telemetry.capture() as sink:
            with pytest.raises(RuntimeError):
                with telemetry.span("test.fails"):
                    raise RuntimeError("boom")
        [record] = sink.spans_named("test.fails")
        assert record["attrs"]["error"] == "RuntimeError"

    def test_capture_restores_previous_state(self):
        assert not telemetry.enabled()
        with telemetry.capture():
            assert telemetry.enabled()
        assert not telemetry.enabled()
        assert isinstance(telemetry.get().sink, (NullSink, type(telemetry.get().sink)))


class TestJsonlRoundTrip:
    def test_jsonl_sink_and_summary(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        sink = JsonlSink(path)
        with telemetry.capture(sink=sink):
            with telemetry.span("test.op"):
                pass
            telemetry.counter("test.events").inc(3)
        sink.close()
        summary = load_summary_file(path)
        assert summary.spans["test.op"].count == 1
        assert summary.metrics["test.events"]["value"] == 3
        rendered = render_summary(summary)
        assert "test.op" in rendered and "test.events" in rendered

    def test_jsonl_sink_is_thread_safe(self, tmp_path):
        """Concurrent emitters must produce whole, parseable lines.

        The sink serialises *inside* its lock, so records written from
        many threads can neither interleave mid-line nor be snapshotted
        while another thread still owns them.
        """
        import json
        import threading

        path = str(tmp_path / "concurrent.jsonl")
        sink = JsonlSink(path)
        per_thread, threads = 200, 8

        def emitter(worker):
            for i in range(per_thread):
                sink.emit_metric({"worker": worker, "i": i, "type": "metric"})

        workers = [
            threading.Thread(target=emitter, args=(w,)) for w in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        sink.flush()
        sink.close()
        with open(path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert len(records) == per_thread * threads
        for worker in range(threads):
            seen = sorted(r["i"] for r in records if r["worker"] == worker)
            assert seen == list(range(per_thread))

    def test_malformed_line_raises(self):
        with pytest.raises(TelemetryFileError):
            load_summary(['{"type": "metric"', ""])

    def test_unknown_record_type_raises(self):
        with pytest.raises(TelemetryFileError):
            load_summary(['{"type": "mystery"}'])


class TestCoreInstrumentation:
    def test_conversion_emits_span_and_metrics(self):
        sensor = build_sensor(die_population(2)[0])
        with telemetry.capture() as sink:
            reading = sensor.read(55.0)
        [span] = sink.spans_named("core.conversion")
        assert span["attrs"]["rounds_used"] == reading.rounds_used
        assert span["attrs"]["converged"] == reading.converged
        assert span["attrs"]["energy_pj"] == pytest.approx(
            reading.energy.total * 1e12
        )
        assert telemetry.counter("core.conversions").value == 1
        rounds = telemetry.histogram("core.calibration_rounds")
        assert rounds.count == 1 and rounds.sum == reading.rounds_used

    def test_tracking_mode_counters(self):
        tracker = TrackingSensor(
            build_sensor(die_population(2)[1]),
            TrackingPolicy(recalibration_interval=100),
        )
        with telemetry.capture():
            tracker.read(40.0)  # power-on full
            tracker.read(41.0)
            tracker.read(42.0)
        assert telemetry.counter("core.tracking.full_reads").value == 1
        assert telemetry.counter("core.tracking.fast_reads").value == 2


class TestEnvironmentCallForms:
    """The harmonised environment-style read signature across paths."""

    def test_sensor_read_accepts_environment(self):
        die = die_population(4)[2]
        a = build_sensor(die)
        b = build_sensor(die)
        env = b.physical_environment(celsius_to_kelvin(61.0))
        direct = a.read(61.0, deterministic=True)
        via_env = b.read(env, deterministic=True)
        assert via_env.temperature_c == direct.temperature_c
        assert via_env.counts_n == direct.counts_n

    def test_sensor_read_rejects_vdd_alongside_environment(self):
        sensor = build_sensor()
        env = sensor.physical_environment(celsius_to_kelvin(50.0))
        with pytest.raises(ValueError):
            sensor.read(env, vdd=1.2)

    def test_tracking_read_accepts_environment(self):
        die = die_population(4)[3]
        a = TrackingSensor(build_sensor(die))
        b = TrackingSensor(build_sensor(die))
        env = build_sensor(die).physical_environment(celsius_to_kelvin(45.0))
        direct = a.read(45.0)
        via_env = b.read(env)
        assert via_env.temperature_c == direct.temperature_c
        assert via_env.mode == direct.mode == "full"

    def test_read_population_accepts_environment_sweep(self):
        setup = reference_setup()
        sensors_a = [build_sensor(die) for die in die_population(3)]
        sensors_b = [build_sensor(die) for die in die_population(3)]
        temps_c = [30.0, 60.0, 90.0]
        envs = [
            Environment(temp_k=celsius_to_kelvin(t), vdd=setup.technology.vdd)
            for t in temps_c
        ]
        direct = read_population(sensors_a, temps_c, deterministic=True)
        via_env = read_population(sensors_b, envs, deterministic=True)
        np.testing.assert_allclose(via_env.temperature_c, direct.temperature_c)
        np.testing.assert_array_equal(via_env.counts_n, direct.counts_n)

    def test_read_population_rejects_conflicting_vdd(self):
        sensors = [build_sensor(die) for die in die_population(2)]
        envs = [Environment(temp_k=330.0, vdd=1.2)]
        with pytest.raises(ValueError):
            read_population(sensors, envs, vdd=1.0)

    def test_read_population_rejects_process_carrying_environments(self):
        sensors = [build_sensor(die) for die in die_population(2)]
        envs = [Environment(temp_k=330.0, vdd=1.2, dvtn=0.01)]
        with pytest.raises(ValueError):
            read_population(sensors, envs)


class TestBatchInstrumentation:
    def test_population_conversions_counted(self):
        sensors = [build_sensor(die) for die in die_population(3)]
        with telemetry.capture() as sink:
            read_population(sensors, [30.0, 70.0], deterministic=True, repeats=2)
        assert telemetry.counter("batch.population_conversions").value == 3 * 2 * 2
        assert telemetry.counter("batch.read_population_calls").value == 1
        assert telemetry.histogram("batch.calibration_rounds").count == 12
        [span] = sink.spans_named("batch.read_population")
        assert span["attrs"]["conversions"] == 12


class _FaultInjectingBus(TsvSensorBus):
    """A clean bus that corrupts chosen tiers' frames exactly once."""

    def __init__(self, tiers, faulty_tiers):
        super().__init__(tiers=tiers)
        self._faulty = set(faulty_tiers)

    def collect(self, frames_by_tier, rng=None):
        corrupted = dict(frames_by_tier)
        for tier in sorted(self._faulty):
            if tier in corrupted:
                corrupted[tier] ^= 1  # break the parity bit
                self._faulty.discard(tier)
        return super().collect(corrupted, rng=rng)


def _stack_sensors(count, seed=77):
    from repro.core.sensor import PTSensor
    from repro.variation.montecarlo import sample_dies

    setup = reference_setup()
    dies = sample_dies(setup.technology, count, seed=seed)
    return {
        tier: PTSensor(
            setup.technology,
            config=setup.config,
            die=die,
            die_id=tier,
            sensing_model=setup.model,
            lut=setup.lut,
        )
        for tier, die in enumerate(dies)
    }


class TestMonitorInstrumentation:
    def test_injected_parity_faults_fully_accounted(self):
        """The acceptance scenario: 8 tiers, injected faults, exact books."""
        tiers = 8
        faulty = {1, 4, 6}
        sensors = _stack_sensors(tiers)
        monitor = StackMonitor(
            sensors, _FaultInjectingBus(tiers, faulty), retry_limit=2
        )
        temps = {t: 50.0 + t for t in range(tiers)}
        with telemetry.capture() as sink:
            snapshot = monitor.poll(temps)
        # Every tier reported despite the faults (one clean retry round).
        assert len(snapshot.temperatures_c) == tiers
        assert snapshot.retries_used == 1
        assert snapshot.parity_faults == len(faulty)
        # Counters match the injected fault count exactly.
        assert telemetry.counter("network.bus.parity_errors").value == len(faulty)
        assert telemetry.counter("network.monitor.retries").value == 1
        assert telemetry.counter("network.monitor.parity_misses").value == 0
        assert telemetry.counter("network.monitor.silent_misses").value == 0
        # Spans for every poll: one per conversion (8 + 3 retried), one per
        # bus attempt, one per round.
        assert len(sink.spans_named("core.conversion")) == tiers + len(faulty)
        assert len(sink.spans_named("network.bus_collect")) == 2
        [round_span] = sink.spans_named("network.poll_round")
        assert round_span["attrs"]["parity_faults"] == len(faulty)
        # Conversion spans are children of the polling round.
        assert all(
            span["parent"] == "network.poll_round"
            for span in sink.spans_named("core.conversion")
        )

    def test_exhausted_retries_count_as_parity_misses(self):
        tiers = 3

        class AlwaysCorrupting(TsvSensorBus):
            def collect(self, frames_by_tier, rng=None):
                corrupted = {t: w ^ 1 if t == 0 else w for t, w in frames_by_tier.items()}
                return super().collect(corrupted, rng=rng)

        monitor = StackMonitor(
            _stack_sensors(tiers), AlwaysCorrupting(tiers=tiers), retry_limit=1
        )
        with telemetry.capture():
            monitor.poll({t: 50.0 for t in range(tiers)})
        state = monitor.states[0]
        assert state.consecutive_misses == 1
        assert state.consecutive_parity_misses == 1
        assert state.consecutive_silent_misses == 0
        assert telemetry.counter("network.monitor.parity_misses").value == 1
        assert telemetry.counter("network.monitor.silent_misses").value == 0


class TestThermalMigration:
    def test_cache_stats_back_compat_reads_registry(self):
        from repro.thermal.solver import (
            clear_factorization_caches,
            factorization_cache_stats,
            steady_state,
        )
        from repro.thermal.grid import build_stack_grid
        from repro.thermal.power import uniform_power_map
        from repro.tsv.geometry import StackDescriptor, TierSpec

        stack = StackDescriptor(tiers=[TierSpec("t0")])
        nx = ny = 6
        grid = build_stack_grid(
            stack.thermal_layers(nx, ny), stack.die_width, stack.die_height,
            nx=nx, ny=ny,
        )
        power = {"t0.si": uniform_power_map(nx, ny, 0.5)}
        clear_factorization_caches()
        steady_state(grid, power)
        steady_state(grid, power)
        stats = factorization_cache_stats()
        assert stats["steady_misses"] == 1 and stats["steady_hits"] == 1
        # The same numbers live in the telemetry registry.
        assert telemetry.counter("thermal.lu_cache.steady.hits").value == 1
        assert telemetry.counter("thermal.lu_cache.steady.misses").value == 1
        clear_factorization_caches()


class TestRunnerInstrumentation:
    def test_run_experiment_entry_point(self):
        from repro.experiments.runner import run_experiment

        result = run_experiment("R-T2", fast=True)
        assert result.render()
        with pytest.raises(KeyError):
            run_experiment("R-XX")

    def test_run_all_emits_spans_and_gauge(self):
        from repro.experiments.runner import run_all

        with telemetry.capture() as sink:
            result = run_all(fast=True, only=["R-T2", "R-F1"], jobs=2)
        assert result.all_ok
        assert len(sink.spans_named("experiments.run")) == 2
        assert len(sink.spans_named("experiments.run_all")) == 1
        assert telemetry.gauge("experiments.jobs").value == 2
        assert telemetry.counter("experiments.runs").value == 2
        assert telemetry.counter("experiments.failures").value == 0


class TestCli:
    def test_report_with_telemetry_and_summary(self, tmp_path):
        from repro.__main__ import main

        report = str(tmp_path / "report.md")
        jsonl = str(tmp_path / "telemetry.jsonl")
        assert main([
            "report", "--fast", "--only", "R-T2",
            "--output", report, "--telemetry", jsonl,
        ]) == 0
        summary = load_summary_file(jsonl)
        # The metric snapshot covers the whole catalogue: at least six
        # names across the four instrumented subsystems of the acceptance
        # bar, regardless of which experiments ran.
        assert len(summary.metrics) >= 6
        assert {"core", "network", "thermal", "batch"} <= summary.subsystems
        assert main(["telemetry", "summary", jsonl]) == 0

    def test_summary_on_missing_file(self, tmp_path):
        from repro.__main__ import main

        assert main(["telemetry", "summary", str(tmp_path / "nope.jsonl")]) == 2

    def test_summary_on_malformed_file(self, tmp_path):
        from repro.__main__ import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n", encoding="utf-8")
        assert main(["telemetry", "summary", str(bad)]) == 1


class TestFrameNamingDeprecation:
    def test_old_constructor_keywords_warn(self):
        from repro.readout.interface import SensorFrame

        with pytest.warns(DeprecationWarning):
            frame = SensorFrame(
                die_id=1, vtn_shift=0.01, vtp_shift=-0.02, temperature_c=50.0
            )
        assert frame.dvtn == pytest.approx(0.01)
        assert frame.dvtp == pytest.approx(-0.02)

    def test_old_attributes_warn_and_alias(self):
        from repro.readout.interface import SensorFrame

        frame = SensorFrame(die_id=1, dvtn=0.01, dvtp=-0.02, temperature_c=50.0)
        with pytest.warns(DeprecationWarning):
            assert frame.vtn_shift == frame.dvtn
        with pytest.warns(DeprecationWarning):
            assert frame.vtp_shift == frame.dvtp

    def test_new_names_do_not_warn(self):
        import warnings

        from repro.readout.interface import SensorFrame, decode_frame, encode_frame

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            frame = SensorFrame(die_id=2, dvtn=0.003, dvtp=0.001, temperature_c=42.0)
            decoded = decode_frame(encode_frame(frame))
            assert decoded.dvtn == pytest.approx(0.003, abs=1e-4)

    def test_mixing_old_and_new_rejected(self):
        from repro.readout.interface import SensorFrame

        with pytest.raises(TypeError):
            SensorFrame(die_id=1, dvtn=0.0, vtn_shift=0.0, dvtp=0.0,
                        temperature_c=20.0)
