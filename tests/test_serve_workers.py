"""Worker-count determinism guarantees of the micro-batching service.

Pins the contract documented in docs/serving.md ("Workers and
determinism"):

* deterministic mode consumes **no** rng — answers are pure functions of
  (sensor, temperature, vdd), hence bit-identical for any worker count
  and any batch composition;
* noisy mode with ``workers=1`` preserves rng-draw order (arrival
  order), hence bit-identical run-to-run even when batch boundaries
  shift;
* noisy mode with ``workers>1`` reassigns draws across concurrently
  executing batches — values move run-to-run, statistics do not.
"""

import numpy as np

from repro.serve import BatchPolicy, ReadRequest, SensorReadService, ServeConfig

TIERS = 4


def _serve_points(workers, deterministic, max_wait_ms=2.0, n=160):
    config = ServeConfig(
        tiers=TIERS,
        seed=2012,
        deterministic=deterministic,
        workers=workers,
        cache_capacity=0,  # caching would mask rng-order effects
        batch=BatchPolicy(max_batch=8, max_wait_ms=max_wait_ms),
    )
    temps = [25.0 + (i % 7) * 9.5 for i in range(n)]
    with SensorReadService(config=config) as service:
        pendings = [
            service.submit(ReadRequest.point(i % TIERS, temps[i]))
            for i in range(n)
        ]
        values = [p.result(30.0).readings[0].temperature_c for p in pendings]
    return temps, values


class TestDeterministicModeBitIdentity:
    def test_worker_count_is_invisible(self):
        _, one = _serve_points(workers=1, deterministic=True)
        _, four = _serve_points(workers=4, deterministic=True)
        assert one == four  # bitwise: no rng is consumed in deterministic mode

    def test_batch_composition_is_invisible(self):
        _, waiting = _serve_points(workers=1, deterministic=True, max_wait_ms=2.0)
        _, eager = _serve_points(workers=1, deterministic=True, max_wait_ms=0.0)
        assert waiting == eager

    def test_matches_scalar_replay(self):
        """A fresh single-worker service replays the same answers."""
        _, first = _serve_points(workers=1, deterministic=True)
        _, second = _serve_points(workers=1, deterministic=True)
        assert first == second


class TestNoisyModeWorkerOrdering:
    def test_single_worker_is_reproducible(self):
        """workers=1 preserves arrival-order rng consumption bit-for-bit."""
        _, a = _serve_points(workers=1, deterministic=False)
        _, b = _serve_points(workers=1, deterministic=False)
        assert a == b

    def test_single_worker_survives_batch_boundary_shifts(self):
        """Draw order follows arrival order, not batch boundaries."""
        _, waiting = _serve_points(workers=1, deterministic=False, max_wait_ms=2.0)
        _, eager = _serve_points(workers=1, deterministic=False, max_wait_ms=0.0)
        assert waiting == eager

    def test_multi_worker_preserves_statistics(self):
        """workers=4 may reassign draws, but accuracy must not move."""
        temps, one = _serve_points(workers=1, deterministic=False)
        _, four = _serve_points(workers=4, deterministic=False)
        err_one = float(np.mean(np.abs(np.array(one) - np.array(temps))))
        err_four = float(np.mean(np.abs(np.array(four) - np.array(temps))))
        # Same noise streams, same per-request draw counts: the two mean
        # absolute errors estimate the same quantity.
        assert abs(err_one - err_four) < 0.05
        # And every answer stays inside the sensor's accuracy class.
        assert float(np.max(np.abs(np.array(four) - np.array(temps)))) < 1.5
