"""Tests for the event-driven digital back-end and its cross-validation
against the behavioural read-out models."""

import pytest

from repro.circuits.digital import WindowCounter
from repro.circuits.oscillator_bank import BankFrequencies
from repro.config import SensorConfig
from repro.core.sensing_model import SensingModel
from repro.device.technology import nominal_65nm
from repro.digital.conversion_fsm import simulate_conversion
from repro.digital.elements import GatedOscillator, RippleCounterSim
from repro.digital.simulator import EventSimulator
from repro.readout.counter import PeriodTimer
from repro.units import celsius_to_kelvin


class TestEventSimulator:
    def test_time_ordering(self):
        sim = EventSimulator()
        log = []
        sim.schedule(3e-9, lambda: log.append("c"))
        sim.schedule(1e-9, lambda: log.append("a"))
        sim.schedule(2e-9, lambda: log.append("b"))
        sim.run_until(1e-8)
        assert log == ["a", "b", "c"]

    def test_ties_broken_by_schedule_order(self):
        sim = EventSimulator()
        log = []
        sim.schedule(1e-9, lambda: log.append("first"))
        sim.schedule(1e-9, lambda: log.append("second"))
        sim.run_until(1e-8)
        assert log == ["first", "second"]

    def test_callbacks_can_reschedule(self):
        sim = EventSimulator()
        hits = []

        def tick():
            hits.append(sim.now)
            if len(hits) < 5:
                sim.schedule(1e-9, tick)

        sim.schedule(0.0, tick)
        sim.run_until(1e-8)
        assert len(hits) == 5
        assert hits[-1] == pytest.approx(4e-9)

    def test_horizon_respected(self):
        sim = EventSimulator()
        log = []
        sim.schedule(5e-9, lambda: log.append("late"))
        sim.run_until(4e-9)
        assert not log
        assert sim.pending() == 1
        assert sim.now == pytest.approx(4e-9)

    def test_rejects_past(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        sim.run_until(1.0)
        with pytest.raises(ValueError):
            sim.run_until(0.5)

    def test_runaway_guard(self):
        sim = EventSimulator()

        def forever():
            sim.schedule(1e-12, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sim.run_until(1.0, max_events=1000)


class TestGatedOscillator:
    def test_edge_count_matches_window(self):
        sim = EventSimulator()
        edges = []
        osc = GatedOscillator(sim, period=1e-9, on_edge=lambda: edges.append(sim.now))
        osc.enable()
        sim.run_until(10.4e-9)
        # First edge at 0.5 ns (phase 0.5), then every 1 ns: 0.5..9.5 = 10.
        assert len(edges) == 10

    def test_disable_stops_edges(self):
        sim = EventSimulator()
        count = [0]
        osc = GatedOscillator(sim, period=1e-9, on_edge=lambda: count.__setitem__(0, count[0] + 1))
        osc.enable()
        sim.run_until(3.6e-9)
        osc.disable()
        seen = count[0]
        sim.run_until(10e-9)
        assert count[0] == seen

    def test_reenable_restarts_phase(self):
        sim = EventSimulator()
        times = []
        osc = GatedOscillator(
            sim, period=1e-9, on_edge=lambda: times.append(sim.now), initial_phase=0.25
        )
        osc.enable()
        sim.run_until(1e-9)
        osc.disable()
        sim.run_until(5e-9)
        osc.enable()
        sim.run_until(5.3e-9)
        assert times[-1] == pytest.approx(5.25e-9)

    def test_validation(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            GatedOscillator(sim, period=0.0, on_edge=lambda: None)
        with pytest.raises(ValueError):
            GatedOscillator(sim, period=1e-9, on_edge=lambda: None, initial_phase=1.0)


class TestRippleCounterSim:
    def clocked(self, bits, increments, clk_to_q=10e-12):
        sim = EventSimulator()
        counter = RippleCounterSim(sim, bits=bits, clk_to_q=clk_to_q)
        for i in range(increments):
            sim.schedule(i * 1e-9, counter.clock)
        sim.run_until(increments * 1e-9 + counter.worst_case_settle_time())
        return counter

    def test_counts_correctly(self):
        assert self.clocked(8, 13).value() == 13

    def test_wraps_at_width(self):
        assert self.clocked(4, 18).value() == 2

    def test_toggle_count_near_two_per_increment(self):
        counter = self.clocked(12, 1000)
        assert counter.total_toggles() == pytest.approx(2000, rel=0.01)

    def test_reset(self):
        counter = self.clocked(8, 7)
        counter.reset()
        assert counter.value() == 0
        assert counter.total_toggles() == 0

    def test_settle_time_scales_with_bits(self):
        sim = EventSimulator()
        small = RippleCounterSim(sim, bits=4, clk_to_q=50e-12)
        big = RippleCounterSim(sim, bits=16, clk_to_q=50e-12)
        assert big.worst_case_settle_time() == 4.0 * small.worst_case_settle_time()

    def test_validation(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            RippleCounterSim(sim, bits=0)
        with pytest.raises(ValueError):
            RippleCounterSim(sim, bits=4, clk_to_q=0.0)


class TestConversionCrossValidation:
    """The point of the package: event level == behavioural level."""

    @pytest.fixture(scope="class")
    def setup(self):
        technology = nominal_65nm()
        config = SensorConfig()
        model = SensingModel(technology, config)
        return model, config

    @pytest.mark.parametrize("temp_c", [-40.0, 27.0, 125.0])
    def test_counts_match_behavioural(self, setup, temp_c):
        model, config = setup
        env = model.environment(0.0, 0.0, celsius_to_kelvin(temp_c))
        freqs = model.bank.frequencies(env)
        result = simulate_conversion(freqs, config)
        window = WindowCounter(config.psro_window, config.psro_counter_bits)
        timer = PeriodTimer(
            config.tsro_periods, config.ref_clock_hz, config.tsro_counter_bits
        )
        assert abs(result.counts_n - window.count(freqs.psro_n)) <= 1
        assert abs(result.counts_p - window.count(freqs.psro_p)) <= 1
        assert abs(result.counts_ref - timer.count(freqs.tsro)) <= 1

    def test_period_budget_exact(self, setup):
        model, config = setup
        freqs = model.bank.frequencies(model.environment(0.0, 0.0, 300.0))
        result = simulate_conversion(freqs, config)
        assert result.tsro_periods_seen == config.tsro_periods

    def test_energy_rule_validated(self, setup):
        """The behavioural '2 toggles per increment' rule holds at event level."""
        model, config = setup
        freqs = model.bank.frequencies(model.environment(0.0, 0.0, 300.0))
        result = simulate_conversion(freqs, config)
        increments = result.counts_n + result.counts_p + result.counts_ref
        assert result.counter_toggles == pytest.approx(2.0 * increments, rel=0.02)

    def test_phase_sweep_moves_counts_by_one(self, setup):
        model, config = setup
        freqs = model.bank.frequencies(model.environment(0.0, 0.0, 300.0))
        counts = {
            simulate_conversion(freqs, config, phase_n=phase).counts_n
            for phase in (0.01, 0.25, 0.5, 0.75, 0.99)
        }
        assert max(counts) - min(counts) <= 1

    def test_conversion_time_matches_config(self, setup):
        model, config = setup
        freqs = model.bank.frequencies(model.environment(0.0, 0.0, 300.0))
        result = simulate_conversion(freqs, config)
        assert result.conversion_time == pytest.approx(
            config.conversion_time(freqs.tsro), rel=0.05
        )

    def test_synthetic_frequencies(self):
        """Deterministic artificial frequencies, exact expectations."""
        config = SensorConfig(psro_window=1e-6, tsro_periods=10, ref_clock_hz=100e6)
        freqs = BankFrequencies(
            psro_n=100e6, psro_p=200e6, tsro=10e6, reference=300e6
        )
        result = simulate_conversion(freqs, config)
        assert result.counts_n == 100
        assert result.counts_p == 200
        # 10 periods at 10 MHz = 1 us -> 100 ref ticks (within one tick).
        assert abs(result.counts_ref - 100) <= 1
