"""Tests for the stage delay models."""

import pytest

from repro.circuits.inverter import (
    BalancedStage,
    NmosSensingStage,
    PmosSensingStage,
    StarvedStage,
)
from repro.device.technology import nominal_65nm


@pytest.fixture
def tech():
    return nominal_65nm()


def delays_of(stage, tech, vdd=1.2, temp_k=300.0, dvtn=0.0, dvtp=0.0):
    nmos = tech.nmos.with_vt_shift(dvtn)
    pmos = tech.pmos.with_vt_shift(dvtp)
    load = stage.load_capacitance(tech)
    return stage.delays(nmos, pmos, vdd, temp_k, load)


class TestBalancedStage:
    def test_delays_positive_and_picosecond_class(self, tech):
        t_rise, t_fall = delays_of(BalancedStage(), tech)
        assert 0.0 < t_rise < 1e-9
        assert 0.0 < t_fall < 1e-9

    def test_roughly_balanced(self, tech):
        t_rise, t_fall = delays_of(BalancedStage(), tech)
        assert 0.3 < t_rise / t_fall < 3.0

    def test_load_includes_parasitics(self, tech):
        stage = BalancedStage()
        assert stage.load_capacitance(tech) > stage.input_capacitance(tech)


class TestNmosSensingStage:
    def test_fall_edge_dominates(self, tech):
        t_rise, t_fall = delays_of(NmosSensingStage(), tech)
        assert t_fall > 3.0 * t_rise

    def test_fall_delay_tracks_vtn(self, tech):
        _, fall_typ = delays_of(NmosSensingStage(), tech)
        _, fall_slow = delays_of(NmosSensingStage(), tech, dvtn=0.02)
        assert fall_slow > fall_typ * 1.02

    def test_fall_delay_ignores_vtp(self, tech):
        _, fall_typ = delays_of(NmosSensingStage(), tech)
        _, fall_skew = delays_of(NmosSensingStage(), tech, dvtp=0.02)
        assert fall_skew == pytest.approx(fall_typ, rel=1e-6)

    def test_sensing_gate_not_in_input_capacitance(self, tech):
        """The sensing pair sits at DC bias; only switch+PMOS load the input."""
        stage = NmosSensingStage()
        bigger_sense = NmosSensingStage(sense_units=stage.sense_units * 4)
        assert stage.input_capacitance(tech) == pytest.approx(
            bigger_sense.input_capacitance(tech)
        )

    def test_near_ztc_bias(self, tech):
        """Total stage delay moves <1% across the full temperature range."""
        stage = NmosSensingStage()
        cold = sum(delays_of(stage, tech, temp_k=233.15))
        hot = sum(delays_of(stage, tech, temp_k=398.15))
        mid = sum(delays_of(stage, tech, temp_k=300.0))
        assert abs(hot - cold) / mid < 0.02


class TestPmosSensingStage:
    def test_rise_edge_dominates(self, tech):
        t_rise, t_fall = delays_of(PmosSensingStage(), tech)
        assert t_rise > 3.0 * t_fall

    def test_rise_delay_tracks_vtp(self, tech):
        rise_typ, _ = delays_of(PmosSensingStage(), tech)
        rise_slow, _ = delays_of(PmosSensingStage(), tech, dvtp=0.02)
        assert rise_slow > rise_typ * 1.02

    def test_rise_delay_ignores_vtn(self, tech):
        rise_typ, _ = delays_of(PmosSensingStage(), tech)
        rise_skew, _ = delays_of(PmosSensingStage(), tech, dvtn=0.02)
        assert rise_skew == pytest.approx(rise_typ, rel=1e-6)

    def test_near_ztc_bias(self, tech):
        stage = PmosSensingStage()
        cold = sum(delays_of(stage, tech, temp_k=233.15))
        hot = sum(delays_of(stage, tech, temp_k=398.15))
        mid = sum(delays_of(stage, tech, temp_k=300.0))
        assert abs(hot - cold) / mid < 0.02


class TestStarvedStage:
    def test_both_edges_slow(self, tech):
        t_rise, t_fall = delays_of(StarvedStage(), tech)
        bal_rise, bal_fall = delays_of(BalancedStage(), tech)
        assert t_rise > 10.0 * bal_rise
        assert t_fall > 10.0 * bal_fall

    def test_strong_temperature_dependence(self, tech):
        """Delay shrinks by >10x from cold to hot (weak-inversion bias)."""
        stage = StarvedStage()
        cold = sum(delays_of(stage, tech, temp_k=233.15))
        hot = sum(delays_of(stage, tech, temp_k=398.15))
        assert cold / hot > 10.0

    def test_strong_vtn_dependence(self, tech):
        _, fall_typ = delays_of(StarvedStage(), tech)
        _, fall_slow = delays_of(StarvedStage(), tech, dvtn=0.02)
        assert fall_slow / fall_typ > 1.3

    def test_limiter_geometry_is_large(self, tech):
        footer, header = StarvedStage().limiting_devices(tech.nmos, tech.pmos)
        # Mismatch budget demands large gate area (see stage docstring).
        assert footer.width * footer.length > 50.0 * tech.nmos.width * tech.nmos.length
        assert header.width * header.length > 50.0 * tech.pmos.width * tech.pmos.length


class TestSupplyDependence:
    @pytest.mark.parametrize(
        "stage", [BalancedStage(), NmosSensingStage(), PmosSensingStage()]
    )
    def test_lower_vdd_slows_stage(self, tech, stage):
        nominal = sum(delays_of(stage, tech, vdd=1.2))
        droop = sum(delays_of(stage, tech, vdd=1.08))
        assert droop > nominal
