"""repro.dtm offline halves: verbs, the decision table, the batch engine.

No sockets here — the live loop has ``test_dtm_edge.py``.  This file
pins (1) the controller verb layer (``decide`` / ``apply_action``) to the
original ``DtmPolicy.update`` arithmetic, (2) the server-side
:class:`DtmTable` semantics — round idempotence, exact accounting, the
bounded decision log — and (3) the :class:`PlacementEngine` batch scorer
against the scalar placement reference: scores bit-equal to
``reconstruction_error``, greedy bit-equal to ``greedy_placement``, and
the seeded tournament deterministic and never worse than greedy.
"""

import numpy as np
import pytest

from repro.dtm import (
    DtmDecision,
    DtmPolicy,
    DtmTable,
    FloorplanSpec,
    PlacementEngine,
    RELEASE,
    THROTTLE,
    apply_action,
    decide,
)
from repro.network.placement import (
    candidate_grid,
    greedy_placement,
    reconstruction_error,
)
from repro.thermal.grid import ThermalLayer, build_stack_grid
from repro.thermal.materials import BEOL, COPPER, SILICON
from repro.thermal.power import hotspot_power_map
from repro.thermal.solver import steady_state
from repro.tsv.geometry import TsvSite
from repro.tsv.keepout import keep_out_radius
from repro.tsv.stress import StressModel


@pytest.fixture(scope="module")
def grid():
    layers = [
        ThermalLayer("die.si", 100e-6, SILICON, heat_source=True),
        ThermalLayer("die.beol", 8e-6, BEOL),
        ThermalLayer("spreader", 500e-6, COPPER),
    ]
    return build_stack_grid(layers, 5e-3, 5e-3, nx=12, ny=12)


@pytest.fixture(scope="module")
def fields(grid):
    workloads = [
        hotspot_power_map(12, 12, 5e-3, 5e-3, [(0.8e-3, 0.8e-3, 1e-3, 1e-3, 2.0)], 0.3),
        hotspot_power_map(12, 12, 5e-3, 5e-3, [(3.2e-3, 3.2e-3, 1e-3, 1e-3, 2.0)], 0.3),
    ]
    return [steady_state(grid, {"die.si": pmap}) for pmap in workloads]


# --------------------------------------------------------------- verbs


class TestDecide:
    def test_decide_tracks_update_exactly(self):
        policy = DtmPolicy()
        rng = np.random.default_rng(7)
        scales = rng.uniform(0.1, 1.0, 500)
        readings = rng.uniform(60.0, 110.0, 500)
        for scale, reading in zip(scales, readings):
            action, nxt = decide(policy, float(scale), float(reading))
            assert nxt == policy.update(float(scale), float(reading))
            if action is not None:
                assert nxt == apply_action(policy, float(scale), action)

    def test_hot_reading_throttles(self):
        policy = DtmPolicy()
        action, nxt = decide(policy, 1.0, policy.throttle_c + 1.0)
        assert action == THROTTLE
        assert nxt == pytest.approx(policy.decrease_factor)

    def test_cool_reading_releases(self):
        policy = DtmPolicy()
        action, nxt = decide(policy, 0.5, policy.release_c - 1.0)
        assert action == RELEASE
        assert nxt == pytest.approx(0.5 + policy.increase_step)

    def test_hysteresis_band_is_silent(self):
        policy = DtmPolicy()
        mid = (policy.release_c + policy.throttle_c) / 2.0
        assert decide(policy, 0.6, mid) == (None, 0.6)

    def test_noop_verbs_emit_no_action(self):
        policy = DtmPolicy()
        # Already at the floor: hotter readings change nothing.
        action, nxt = decide(policy, policy.floor, policy.throttle_c + 20.0)
        assert action is None and nxt == policy.floor
        # Already at full power: cool readings change nothing.
        action, nxt = decide(policy, 1.0, policy.release_c - 20.0)
        assert action is None and nxt == 1.0

    def test_apply_action_rejects_unknown_verbs(self):
        with pytest.raises(ValueError):
            apply_action(DtmPolicy(), 1.0, "boost")


# --------------------------------------------------------------- table


class TestDtmTable:
    def test_throttle_release_move_the_scale(self):
        table = DtmTable(DtmPolicy())
        first = table.apply(3, 1, 0, THROTTLE, latency_ms=2.0)
        assert first == DtmDecision(
            seq=1, stack=3, tier=1, round=0, action=THROTTLE,
            scale=pytest.approx(0.7), applied=True, latency_ms=2.0,
        )
        second = table.apply(3, 1, 1, RELEASE)
        assert second.applied and second.seq == 2
        assert second.scale == pytest.approx(0.75)
        assert table.scale(3, 1) == second.scale
        assert table.scale(3, 0) == 1.0  # untouched tier

    def test_round_idempotence(self):
        table = DtmTable(DtmPolicy())
        applied = table.apply(5, 0, 7, THROTTLE)
        replay = table.apply(5, 0, 7, THROTTLE)
        stale = table.apply(5, 0, 3, RELEASE)
        assert applied.applied
        for decision in (replay, stale):
            assert not decision.applied
            assert decision.scale == applied.scale  # standing state answered
            assert decision.seq == applied.seq
        assert table.duplicates == 2
        assert table.throttles == 1 and table.releases == 0
        # Duplicates never enter the applied-decision log.
        assert [d["seq"] for d in table.decisions_since(0)] == [1]

    def test_decisions_since_tails_without_gaps(self):
        table = DtmTable(DtmPolicy())
        for i in range(5):
            table.apply(1, 0, i, THROTTLE if i % 2 == 0 else RELEASE)
        assert [d["seq"] for d in table.decisions_since(0)] == [1, 2, 3, 4, 5]
        assert [d["seq"] for d in table.decisions_since(3)] == [4, 5]
        assert [d["seq"] for d in table.decisions_since(3, limit=1)] == [4]
        assert table.decisions_since(5) == []

    def test_log_is_bounded(self):
        table = DtmTable(DtmPolicy(), log=4)
        for i in range(10):
            table.apply(1, 0, i, THROTTLE if i % 2 == 0 else RELEASE)
        tail = table.decisions_since(0)
        assert [d["seq"] for d in tail] == [7, 8, 9, 10]

    def test_deadline_accounting(self):
        table = DtmTable(DtmPolicy(), deadline_ms=5.0)
        table.apply(1, 0, 0, THROTTLE, latency_ms=2.0)
        table.apply(1, 0, 1, RELEASE, latency_ms=9.0)
        table.apply(1, 0, 2, RELEASE)  # no latency reported, no miss
        assert table.deadline_misses == 1

    def test_status_and_reset(self):
        table = DtmTable(DtmPolicy(), deadline_ms=25.0)
        table.apply(2, 0, 0, THROTTLE)
        table.apply(2, 1, 0, THROTTLE)
        table.apply(2, 1, 1, RELEASE)
        status = table.status()
        assert status["deadline_ms"] == 25.0
        assert status["seq"] == 3
        assert status["throttles"] == 2 and status["releases"] == 1
        assert status["scales"]["2:0"] == pytest.approx(0.7)
        assert status["scales"]["2:1"] == pytest.approx(0.75)
        assert status["throttled_tiers"] == 2
        assert set(status["policy"]) == {
            "throttle_c", "release_c", "decrease_factor", "increase_step", "floor",
        }
        assert table.reset() == 3
        assert table.scales() == {}
        assert table.decisions_since(0) == []
        # Post-reset rounds start over: round 0 applies again.
        assert table.apply(2, 0, 0, THROTTLE).applied

    def test_matches_offline_update_arithmetic(self):
        policy = DtmPolicy()
        table = DtmTable(policy)
        scale = 1.0
        for i, reading in enumerate([90.0, 96.0, 99.0, 70.0, 60.0, 92.0]):
            action, scale = decide(policy, scale, reading)
            if action is not None:
                decision = table.apply(9, 2, i, action)
                assert decision.scale == scale  # bit-identical float path
        assert table.scale(9, 2) == scale

    def test_validation(self):
        table = DtmTable(DtmPolicy())
        with pytest.raises(ValueError):
            table.apply(1, 0, 0, "boost")
        with pytest.raises(ValueError):
            table.apply(1, 0, -1, THROTTLE)
        with pytest.raises(ValueError):
            table.decisions_since(0, limit=0)
        with pytest.raises(ValueError):
            DtmTable(DtmPolicy(), deadline_ms=0.0)
        with pytest.raises(ValueError):
            DtmTable(DtmPolicy(), log=0)


# --------------------------------------------------------------- floorplan


class TestFloorplanSpec:
    def test_keepouts_prune_candidates(self):
        open_plan = FloorplanSpec(5e-3, 5e-3, "die.si", per_axis=6)
        blocked = FloorplanSpec(
            5e-3, 5e-3, "die.si", per_axis=6,
            keepouts=((2.5e-3, 2.5e-3, 1.0e-3),),
        )
        all_sites = open_plan.candidate_sites()
        kept = blocked.candidate_sites()
        assert 0 < len(kept) < len(all_sites)
        for x, y in kept:
            assert (x - 2.5e-3) ** 2 + (y - 2.5e-3) ** 2 >= 1.0e-3 ** 2

    def test_total_exclusion_raises(self):
        smothered = FloorplanSpec(
            5e-3, 5e-3, "die.si", per_axis=4,
            keepouts=((2.5e-3, 2.5e-3, 1.0),),
        )
        with pytest.raises(ValueError):
            smothered.candidate_sites()

    def test_tsv_keepouts_use_the_stress_model(self):
        model = StressModel()
        via = TsvSite(2.5e-3, 2.5e-3, radius=200e-6)
        spec = FloorplanSpec.with_tsv_keepouts(
            5e-3, 5e-3, "die.si", model, [via], mobility_tolerance=0.05,
            per_axis=8,
        )
        koz = keep_out_radius(model, via, 0.05)
        assert spec.keepouts == ((via.x, via.y, koz),)
        for x, y in spec.candidate_sites():
            assert (x - via.x) ** 2 + (y - via.y) ** 2 >= koz * koz

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            FloorplanSpec(0.0, 5e-3, "die.si")


# --------------------------------------------------------------- engine


@pytest.fixture(scope="module")
def engine(fields):
    candidates = candidate_grid(5e-3, 5e-3, per_axis=5)
    return PlacementEngine(fields, "die.si", candidates, probe_grid=8)


class TestPlacementEngineScore:
    def test_scores_bit_match_reconstruction_error(self, fields, engine):
        rng = np.random.default_rng(2012)
        rows = np.array(
            [rng.choice(engine.n_candidates, size=3, replace=False) for _ in range(40)]
        )
        scores = engine.score(rows)
        for row, score in zip(rows, scores):
            sites = [engine.candidates[i] for i in row]
            ref = max(
                reconstruction_error(f, "die.si", sites, probe_grid=8)
                for f in fields
            )
            assert score == ref  # bit-for-bit

    def test_score_sites_matches_index_rows(self, engine):
        rows = np.array([[0, 3, 7], [1, 2, 4]], dtype=np.intp)
        by_index = engine.score(rows)
        by_sites = engine.score_sites(
            [[engine.candidates[i] for i in row] for row in rows]
        )
        assert np.array_equal(by_index, by_sites)

    def test_chunking_does_not_change_scores(self, engine):
        rng = np.random.default_rng(5)
        rows = np.array(
            [rng.choice(engine.n_candidates, size=4, replace=False) for _ in range(33)]
        )
        assert np.array_equal(engine.score(rows, chunk=7), engine.score(rows, chunk=1000))

    def test_scored_counter_accumulates(self, fields):
        fresh = PlacementEngine(
            fields, "die.si", candidate_grid(5e-3, 5e-3, per_axis=4), probe_grid=6
        )
        fresh.score(np.zeros((12, 1), dtype=np.intp))
        assert fresh.scored == 12

    def test_rejects_bad_shapes(self, engine):
        with pytest.raises(ValueError):
            engine.score(np.zeros(4, dtype=np.intp))


class TestPlacementEngineGreedy:
    @pytest.mark.parametrize("budget", [1, 3, 6])
    def test_greedy_parity_with_scalar_walk(self, fields, engine, budget):
        reference = greedy_placement(
            fields, "die.si",
            candidate_grid(5e-3, 5e-3, per_axis=5),
            sensor_budget=budget, probe_grid=8,
        )
        result = engine.greedy(budget)
        assert result.sites == reference.sites
        assert result.error_trace == reference.error_trace
        assert result.worst_error_c == reference.worst_error_c

    def test_budget_validation(self, engine):
        with pytest.raises(ValueError):
            engine.greedy(0)
        with pytest.raises(ValueError):
            engine.greedy(engine.n_candidates + 1)


class TestPlacementEngineTournament:
    def test_never_worse_than_greedy_and_deterministic(self, engine):
        greedy = engine.greedy(3)
        a = engine.tournament(3, pool=64, rounds=4, keep=8, seed=99)
        b = engine.tournament(3, pool=64, rounds=4, keep=8, seed=99)
        assert a.worst_error_c <= greedy.worst_error_c
        assert a.sites == b.sites
        assert a.worst_error_c == b.worst_error_c
        assert a.history == b.history

    def test_history_non_increasing_and_accounting(self, engine):
        before = engine.scored
        result = engine.tournament(2, pool=32, rounds=3, keep=4, seed=1)
        assert all(b <= a for a, b in zip(result.history, result.history[1:]))
        assert result.rounds == 3
        assert result.scored == engine.scored - before
        # pool scores per round plus the greedy seed walk.
        assert result.scored == 3 * 32 + 2 * engine.n_candidates
        assert result.worst_error_c == min(result.history)

    def test_rows_stay_duplicate_free(self, engine):
        rng = np.random.default_rng(3)
        rows = engine._random_population(rng, 50, 4)
        assert all(len(set(map(int, row))) == 4 for row in rows)
        children = engine._mutate(rng, rows[:5], 40)
        assert all(len(set(map(int, row))) == 4 for row in children)

    def test_parameter_validation(self, engine):
        with pytest.raises(ValueError):
            engine.tournament(0)
        with pytest.raises(ValueError):
            engine.tournament(2, pool=8, keep=8)
        with pytest.raises(ValueError):
            engine.tournament(2, rounds=0)
