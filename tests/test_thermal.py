"""Tests for the 3-D stack thermal substrate."""

import numpy as np
import pytest

from repro.thermal.grid import ThermalLayer, build_stack_grid
from repro.thermal.materials import (
    BEOL,
    BONDING,
    COPPER,
    SILICON,
    Material,
    tsv_effective_conductivity,
)
from repro.thermal.power import (
    checkerboard_power_map,
    hotspot_power_map,
    uniform_power_map,
)
from repro.thermal.solver import steady_state, thermal_time_constant, transient


def simple_stack(nx=10, ny=10, top_htc=8.7e3, bottom_htc=250.0):
    layers = [
        ThermalLayer("die.si", 100e-6, SILICON, heat_source=True),
        ThermalLayer("die.beol", 8e-6, BEOL),
        ThermalLayer("spreader", 500e-6, COPPER),
    ]
    return build_stack_grid(
        layers, 5e-3, 5e-3, nx=nx, ny=ny, top_htc=top_htc, bottom_htc=bottom_htc
    )


class TestMaterials:
    def test_properties_positive(self):
        with pytest.raises(ValueError):
            Material("bad", conductivity=-1.0, volumetric_heat_capacity=1.0)

    def test_tsv_mix_bounds(self):
        k0 = tsv_effective_conductivity(BONDING, 0.0)
        k1 = tsv_effective_conductivity(BONDING, 1.0)
        assert k0 == pytest.approx(BONDING.conductivity)
        assert k1 == pytest.approx(COPPER.conductivity)

    def test_tsv_mix_monotone(self):
        ks = [tsv_effective_conductivity(SILICON, f) for f in (0.0, 0.1, 0.3, 0.6)]
        assert ks == sorted(ks)

    def test_tsv_fraction_validated(self):
        with pytest.raises(ValueError):
            tsv_effective_conductivity(SILICON, 1.5)


class TestGridAssembly:
    def test_rejects_duplicate_layer_names(self):
        layers = [
            ThermalLayer("a", 1e-4, SILICON, heat_source=True),
            ThermalLayer("a", 1e-4, SILICON),
        ]
        with pytest.raises(ValueError):
            build_stack_grid(layers, 5e-3, 5e-3)

    def test_rejects_empty_stack(self):
        with pytest.raises(ValueError):
            build_stack_grid([], 5e-3, 5e-3)

    def test_layer_lookup(self):
        grid = simple_stack()
        assert grid.layer_index("die.si") == 0
        with pytest.raises(KeyError, match="known layers"):
            grid.layer_index("nope")

    def test_heat_vector_validates_layer(self):
        grid = simple_stack()
        with pytest.raises(ValueError, match="not a heat-source"):
            grid.heat_vector({"spreader": uniform_power_map(10, 10, 1.0)})

    def test_heat_vector_validates_shape(self):
        grid = simple_stack()
        with pytest.raises(ValueError, match="shape"):
            grid.heat_vector({"die.si": uniform_power_map(5, 5, 1.0)})

    def test_heat_vector_rejects_negative_power(self):
        grid = simple_stack()
        pmap = uniform_power_map(10, 10, 1.0)
        pmap[0, 0] = -0.1
        with pytest.raises(ValueError):
            grid.heat_vector({"die.si": pmap})

    def test_conductance_matrix_symmetric(self):
        grid = simple_stack(nx=6, ny=6)
        asymmetry = (grid.conductance - grid.conductance.T).toarray()
        assert np.max(np.abs(asymmetry)) < 1e-12


class TestSteadyState:
    def test_no_power_sits_at_ambient(self):
        grid = simple_stack()
        field = steady_state(grid, {})
        np.testing.assert_allclose(field.values, grid.ambient_k, rtol=1e-9)

    def test_power_heats_above_ambient(self):
        grid = simple_stack()
        field = steady_state(grid, {"die.si": uniform_power_map(10, 10, 1.0)})
        assert np.all(field.values > grid.ambient_k)

    def test_energy_conservation(self):
        """Heat leaving through the boundaries equals heat injected."""
        grid = simple_stack()
        power = 2.5
        field = steady_state(grid, {"die.si": uniform_power_map(10, 10, power)})
        temps = field.values.ravel()
        boundary_g = grid.ambient_rhs / grid.ambient_k  # per-cell G to ambient
        heat_out = float(np.sum(boundary_g * (temps - grid.ambient_k)))
        assert heat_out == pytest.approx(power, rel=1e-6)

    def test_linear_in_power(self):
        grid = simple_stack()
        one = steady_state(grid, {"die.si": uniform_power_map(10, 10, 1.0)})
        two = steady_state(grid, {"die.si": uniform_power_map(10, 10, 2.0)})
        rise_one = one.values - grid.ambient_k
        rise_two = two.values - grid.ambient_k
        np.testing.assert_allclose(rise_two, 2.0 * rise_one, rtol=1e-9)

    def test_hotspot_is_local_maximum(self):
        grid = simple_stack(nx=20, ny=20)
        pmap = hotspot_power_map(
            20, 20, 5e-3, 5e-3, [(1e-3, 1e-3, 0.5e-3, 0.5e-3, 2.0)]
        )
        field = steady_state(grid, {"die.si": pmap})
        plane = field.layer("die.si")
        hot_iy, hot_ix = np.unravel_index(np.argmax(plane), plane.shape)
        # The hotspot rectangle spans cells ~4-6 in both axes.
        assert 3 <= hot_ix <= 7
        assert 3 <= hot_iy <= 7

    def test_weak_sink_runs_hotter(self):
        strong = simple_stack(top_htc=10e3)
        weak = simple_stack(top_htc=1e3)
        power = {"die.si": uniform_power_map(10, 10, 1.0)}
        assert steady_state(weak, power).peak("die.si") > steady_state(
            strong, power
        ).peak("die.si")

    def test_field_bilinear_sampling(self):
        grid = simple_stack()
        field = steady_state(grid, {"die.si": uniform_power_map(10, 10, 1.0)})
        center = field.at("die.si", 2.5e-3, 2.5e-3)
        plane = field.layer("die.si")
        assert plane.min() <= center <= plane.max()

    def test_grid_refinement_converges(self):
        """Peak temperature must converge as the mesh refines."""
        power_total = 1.5
        peaks = []
        for n in (8, 16, 32):
            grid = simple_stack(nx=n, ny=n)
            field = steady_state(grid, {"die.si": uniform_power_map(n, n, power_total)})
            peaks.append(field.peak("die.si"))
        assert abs(peaks[2] - peaks[1]) < abs(peaks[1] - peaks[0]) + 1e-6
        assert abs(peaks[2] - peaks[1]) / peaks[2] < 0.01


class TestTransient:
    def test_converges_to_steady_state(self):
        grid = simple_stack(nx=6, ny=6)
        power = {"die.si": uniform_power_map(6, 6, 1.0)}
        steady = steady_state(grid, power)
        tau = thermal_time_constant(grid)
        fields = transient(grid, lambda t: power, dt=tau / 4.0, steps=60)
        np.testing.assert_allclose(
            fields[-1].values, steady.values, rtol=1e-3
        )

    def test_monotone_heating_from_ambient(self):
        grid = simple_stack(nx=6, ny=6)
        power = {"die.si": uniform_power_map(6, 6, 1.0)}
        fields = transient(grid, lambda t: power, dt=1e-3, steps=10)
        peaks = [f.peak("die.si") for f in fields]
        assert peaks == sorted(peaks)

    def test_cooling_after_power_off(self):
        grid = simple_stack(nx=6, ny=6)
        power = {"die.si": uniform_power_map(6, 6, 2.0)}
        hot = steady_state(grid, power)
        fields = transient(grid, lambda t: {}, dt=1e-3, steps=10, initial=hot)
        peaks = [f.peak("die.si") for f in fields]
        assert peaks == sorted(peaks, reverse=True)

    def test_rejects_bad_dt(self):
        grid = simple_stack(nx=4, ny=4)
        with pytest.raises(ValueError):
            transient(grid, lambda t: {}, dt=0.0, steps=1)


class TestPowerMaps:
    def test_uniform_total(self):
        pmap = uniform_power_map(8, 8, 3.2)
        assert np.sum(pmap) == pytest.approx(3.2)

    def test_hotspot_total(self):
        pmap = hotspot_power_map(
            16, 16, 5e-3, 5e-3, [(1e-3, 1e-3, 1e-3, 1e-3, 2.0)], background_watts=1.0
        )
        assert np.sum(pmap) == pytest.approx(3.0)

    def test_checkerboard_total_and_contrast(self):
        pmap = checkerboard_power_map(8, 8, 4.0, blocks=4)
        assert np.sum(pmap) == pytest.approx(4.0)
        assert np.min(pmap) == 0.0
        assert np.max(pmap) > 0.0

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            uniform_power_map(4, 4, -1.0)
