"""The ``dtm.*`` control plane over live wires, plus the closed loop.

One shared live server (2 spawn-started shards, sensitive runaway
detector) carries the coverage: the typed verb round-trips on all three
wire faces (NDJSON, binary frames, HTTP), wire-level validation, admin
status surfacing the table, the :class:`~repro.dtm.DtmService` loop
turning pushed reads/alerts into throttles — and the churn guarantees:
the loop survives a live reshard and a killed stream socket without a
duplicate or missed decision (round idempotence end to end).
"""

import time
import urllib.error
import urllib.request

import pytest

from repro.dtm import (
    DtmClient,
    DtmPolicy,
    DtmService,
    DtmServiceConfig,
    apply_action,
)
from repro.edge import (
    AdminClient,
    EdgeClient,
    EdgeConfig,
    EdgeError,
    EdgeServerThread,
    StreamPolicy,
    protocol,
)
from repro.serve import ReadRequest
from repro.telemetry.runaway import RunawayPolicy

TIERS = 4
ROOT_SEED = 2012

SENSITIVE = RunawayPolicy(
    warn_slope_c=0.5, warn_temp_c=40.0, consecutive=2, clear_slope_c=0.1
)


@pytest.fixture(scope="module")
def edge():
    config = EdgeConfig(
        shards=2,
        tiers=TIERS,
        root_seed=ROOT_SEED,
        stream=StreamPolicy(sample_s=0.05, heartbeat_s=0.25, detector=SENSITIVE),
    )
    server = EdgeServerThread(config).start()
    yield server
    server.stop(drain=True)


def _escalate(client, stack, rounds=12, start=40.0, step=6.0):
    for i in range(rounds):
        assert client.read(stack, ReadRequest.point(1, start + step * i)).ok
        time.sleep(0.01)


def _wait(predicate, timeout_s=30.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def _tier_decisions(decisions, stack, tier):
    return [
        d for d in decisions
        if d["stack"] == stack and d["tier"] == tier and d["applied"]
    ]


# ------------------------------------------------------------- verb wires


class TestDtmVerbsOverWires:
    @pytest.mark.parametrize("wire", ["ndjson", "binary", "http"])
    def test_round_trips(self, edge, wire):
        stack = {"ndjson": 110, "binary": 111, "http": 112}[wire]
        with DtmClient(edge.host, edge.port, wire=wire) as dtm:
            seq0 = dtm.status()["status"]["seq"]
            first = dtm.throttle(stack, 2, 0, latency_ms=1.5)["decision"]
            assert first["applied"] and first["scale"] == pytest.approx(0.7)
            replay = dtm.throttle(stack, 2, 0)["decision"]
            assert not replay["applied"]
            assert replay["scale"] == first["scale"]
            released = dtm.release(stack, 2, 1)["decision"]
            assert released["applied"]
            assert released["scale"] == pytest.approx(0.75)

            status = dtm.status()["status"]
            assert status["scales"][f"{stack}:2"] == released["scale"]
            assert status["seq"] >= seq0 + 2

            tail = dtm.decisions(since=seq0)["decisions"]
            ours = _tier_decisions(tail, stack, 2)
            assert [d["round"] for d in ours] == [0, 1]
            assert [d["action"] for d in ours] == ["throttle", "release"]

    def test_table_is_shared_across_faces(self, edge):
        with DtmClient(edge.host, edge.port, wire="binary") as writer, \
                DtmClient(edge.host, edge.port, wire="http") as reader:
            decision = writer.throttle(115, 0, 0)["decision"]
            status = reader.status()["status"]
            assert status["scales"]["115:0"] == decision["scale"]

    def test_validation_rejects_bad_fields(self, edge):
        with EdgeClient(edge.host, edge.port) as client:
            for payload in (
                {"op": "dtm.throttle", "stack": "x", "tier": 0, "round": 0},
                {"op": "dtm.throttle", "stack": 1, "tier": True, "round": 0},
                {"op": "dtm.throttle", "stack": 1, "tier": 0},
                {"op": "dtm.throttle", "stack": 1, "tier": 0, "round": -1},
                {"op": "dtm.release", "stack": 1, "tier": 0, "round": 0,
                 "latency_ms": -2.0},
                {"op": "dtm.decisions", "since": -1},
                {"op": "dtm.decisions", "since": "all"},
            ):
                answer = client.raw(dict(payload))
                assert not answer.get("ok"), payload
                assert answer["error"]["code"] == protocol.INVALID, payload

    def test_http_unknown_verb_is_a_404(self, edge):
        request = urllib.request.Request(
            f"http://{edge.host}:{edge.port}/v1/dtm/boost",
            data=b'{"stack": 1, "tier": 0, "round": 0}',
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30.0)
        assert err.value.code == 404

    def test_client_raises_typed_errors(self, edge):
        with DtmClient(edge.host, edge.port) as dtm:
            with pytest.raises(EdgeError) as err:
                dtm.throttle(1, 0, -5)
            assert err.value.code == protocol.INVALID

    def test_admin_status_surfaces_the_table(self, edge):
        with AdminClient(edge.host, edge.port) as admin:
            status = admin.status()["status"]
        assert {"policy", "seq", "scales", "throttles", "deadline_ms"} <= set(
            status["dtm"]
        )

    def test_client_rejects_unknown_wire(self, edge):
        with pytest.raises(ValueError):
            DtmClient(edge.host, edge.port, wire="carrier-pigeon")


# ------------------------------------------------------------ closed loop


class TestDtmServiceLoop:
    def test_escalation_throttles_over_the_wire(self, edge):
        stack = 120
        config = DtmServiceConfig(policy=DtmPolicy(), deadline_ms=500.0)
        with DtmService(edge.host, edge.port, config) as service, \
                EdgeClient(edge.host, edge.port) as driver, \
                DtmClient(edge.host, edge.port) as dtm:
            _escalate(driver, stack)
            assert _wait(
                lambda: dtm.status()["status"]["scales"].get(f"{stack}:1", 1.0) < 1.0
            ), "no throttle landed on the server table"
            stats = service.stats()
            assert stats["events"] > 0
            assert stats["throttles"] >= 1
            assert stats["errors"] == 0
            tail = dtm.decisions(since=0)["decisions"]
            ours = _tier_decisions(tail, stack, 1)
            assert ours, "no applied decision in the log"
            rounds = [d["round"] for d in ours]
            assert rounds == sorted(rounds)
            assert len(set(rounds)) == len(rounds)  # one decision per round
            assert all("latency_ms" in d for d in ours)

    def test_decision_wire_faces_agree(self, edge):
        # The loop issues over binary here; the table must not care.
        stack = 121
        config = DtmServiceConfig(
            policy=DtmPolicy(), deadline_ms=500.0, wire="binary"
        )
        with DtmService(edge.host, edge.port, config) as service, \
                EdgeClient(edge.host, edge.port) as driver, \
                DtmClient(edge.host, edge.port, wire="http") as dtm:
            _escalate(driver, stack)
            assert _wait(
                lambda: dtm.status()["status"]["scales"].get(f"{stack}:1", 1.0) < 1.0
            )
            assert service.stats()["errors"] == 0


# ----------------------------------------------------------------- churn


def _assert_exactly_once(dtm, stack, tier, policy):
    """Every applied decision for the tier happened once, in order, and
    replaying them through ``apply_action`` reproduces the standing scale."""
    tail = dtm.decisions(since=0)["decisions"]
    ours = _tier_decisions(tail, stack, tier)
    assert ours, "no decisions to audit"
    rounds = [d["round"] for d in ours]
    assert rounds == sorted(rounds), "decision log out of order"
    assert len(set(rounds)) == len(rounds), "duplicate round applied"
    scale = 1.0
    for decision in ours:
        scale = apply_action(policy, scale, decision["action"])
        assert decision["scale"] == scale, "decision stream has a gap"
    assert dtm.status()["status"]["scales"][f"{stack}:{tier}"] == scale


class TestDtmChurn:
    def test_loop_survives_a_live_reshard(self, edge):
        stack = 130
        policy = DtmPolicy()
        config = DtmServiceConfig(policy=policy, deadline_ms=500.0)
        with DtmService(edge.host, edge.port, config) as service, \
                EdgeClient(edge.host, edge.port) as driver, \
                AdminClient(edge.host, edge.port) as admin, \
                DtmClient(edge.host, edge.port) as dtm:
            _escalate(driver, stack, rounds=6)
            assert _wait(
                lambda: _tier_decisions(
                    dtm.decisions(since=0)["decisions"], stack, 1
                )
            ), "no decision before the reshard"
            assert admin.scale(3)["ok"]
            try:
                _escalate(driver, stack, rounds=6, start=76.0)
                before = len(
                    _tier_decisions(dtm.decisions(since=0)["decisions"], stack, 1)
                )
                assert _wait(
                    lambda: len(
                        _tier_decisions(
                            dtm.decisions(since=0)["decisions"], stack, 1
                        )
                    ) >= before
                )
                _assert_exactly_once(dtm, stack, 1, policy)
                assert service.stats()["errors"] == 0
            finally:
                admin.scale(2)

    def test_loop_survives_a_stream_reconnect(self, edge):
        stack = 131
        policy = DtmPolicy()
        config = DtmServiceConfig(policy=policy, deadline_ms=500.0)
        with DtmService(edge.host, edge.port, config) as service, \
                EdgeClient(edge.host, edge.port) as driver, \
                DtmClient(edge.host, edge.port) as dtm:
            _escalate(driver, stack, rounds=6)
            assert _wait(
                lambda: _tier_decisions(
                    dtm.decisions(since=0)["decisions"], stack, 1
                )
            ), "no decision before the kick"
            decided_before = len(
                _tier_decisions(dtm.decisions(since=0)["decisions"], stack, 1)
            )
            service.kick()  # kill the stream socket under the loop
            assert _wait(lambda: service.stats()["reconnects"] >= 1), \
                "service never resubscribed"
            _escalate(driver, stack, rounds=8, start=80.0)
            assert _wait(
                lambda: len(
                    _tier_decisions(dtm.decisions(since=0)["decisions"], stack, 1)
                ) > decided_before
            ), "no decision flowed after the reconnect"
            _assert_exactly_once(dtm, stack, 1, policy)
            # Replayed/re-observed rounds around the reconnect answered
            # idempotently instead of double-throttling.
            assert service.stats()["errors"] == 0
