"""Tests for cross-sensor consensus / plausible-liar detection."""

import numpy as np
import pytest

from repro.network.consensus import (
    check_consensus,
    neighbour_prediction,
)
from repro.thermal.grid import ThermalLayer, build_stack_grid
from repro.thermal.materials import SILICON
from repro.thermal.power import hotspot_power_map
from repro.thermal.solver import steady_state
from repro.units import kelvin_to_celsius

SITES = [
    (1.0e-3, 1.0e-3),
    (4.0e-3, 1.0e-3),
    (1.0e-3, 4.0e-3),
    (4.0e-3, 4.0e-3),
    (2.5e-3, 2.5e-3),
]


class TestNeighbourPrediction:
    def test_uniform_field_predicts_exactly(self):
        readings = [50.0] * len(SITES)
        assert neighbour_prediction(SITES, readings, 2) == pytest.approx(50.0)

    def test_single_outlier_neighbour_ignored(self):
        """Median prediction: one lying neighbour cannot move it."""
        readings = [50.0, 50.4, 49.8, 90.0, 50.1]
        assert neighbour_prediction(SITES, readings, 0) == pytest.approx(50.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            neighbour_prediction(SITES[:2], [1.0, 2.0], 0)
        with pytest.raises(ValueError):
            neighbour_prediction(SITES, [1.0], 0)
        with pytest.raises(ValueError):
            neighbour_prediction(SITES, [1.0] * 5, 9)


class TestConsensus:
    def test_healthy_uniform_readings_pass(self):
        report = check_consensus(SITES, [55.0, 55.4, 54.8, 55.2, 55.1])
        assert report.healthy

    def test_biased_sensor_flagged(self):
        readings = [55.0, 55.4, 54.8, 55.2, 67.0]  # centre sensor lies +12
        report = check_consensus(SITES, readings)
        assert report.suspects == [4]
        assert abs(report.residuals_c[4]) > report.threshold_c

    def test_negative_bias_flagged(self):
        readings = [55.0, 55.4, 54.8, 55.2, 43.0]
        assert check_consensus(SITES, readings).suspects == [4]

    def test_liar_does_not_poison_consensus(self):
        """The robust bound must not inflate so much that the liar hides."""
        readings = [50.0, 50.5, 49.5, 50.2, 80.0]
        report = check_consensus(SITES, readings)
        assert 4 in report.suspects
        assert len(report.suspects) == 1  # and nobody else gets dragged in

    def test_real_gradient_not_flagged(self):
        """A genuine hotspot gradient must survive the physical floor."""
        layers = [ThermalLayer("si", 1.5e-4, SILICON, heat_source=True)]
        nx = ny = 16
        grid = build_stack_grid(layers, 5e-3, 5e-3, nx=nx, ny=ny, top_htc=3e3)
        pmap = hotspot_power_map(
            nx, ny, 5e-3, 5e-3, [(2.0e-3, 2.0e-3, 1e-3, 1e-3, 2.0)], 0.5
        )
        field = steady_state(grid, {"si": pmap})
        readings = [kelvin_to_celsius(field.at("si", x, y)) for x, y in SITES]
        spread = max(readings) - min(readings)
        assert spread > 2.0  # the gradient is real
        report = check_consensus(SITES, readings, field_roughness_c=spread)
        assert report.healthy, report.residuals_c

    def test_threshold_reported(self):
        report = check_consensus(SITES, [55.0] * 5)
        assert report.threshold_c >= 3.5  # accuracy + roughness floor

    def test_validation(self):
        with pytest.raises(ValueError):
            check_consensus(SITES, [55.0] * 5, sensor_accuracy_c=0.0)
