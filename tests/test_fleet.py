"""The fleet layer: placement, hedged reads, failover, resume, labels.

Three tiers of coverage:

* **pure** — :class:`FleetDirectory` placement (rendezvous order,
  failure domains, per-tier replication, generations),
  :class:`FleetRouter` health-aware targeting, and the
  :class:`LatencyTracker` budget math run with no sockets at all;
* **live, two hosts** — a shared pair of real localhost edge servers
  (identical ``root_seed``, one stalled by an injected
  ``EdgeConfig.stall_ms``) carries the golden cross-host determinism
  check over both wires, the exact hedge/loser accounting, the SSE
  resume/replay surface, the per-state ``/metrics`` labels and the
  asyncio client's per-attempt re-resolution;
* **live, chaos** — a private two-host fleet whose primary is killed
  mid-run: the client must fail over to the survivor with zero
  non-retryable errors.

The determinism guarantee under test is the one the whole fleet design
leans on: deployments sharing a ``root_seed`` answer bit-identically on
every host and over every wire (``cache_hit`` excepted — whether a
*particular host* had the answer cached is serving metadata, not
physics).
"""

import asyncio
import json
import socket
import urllib.request

import pytest

from repro.edge import (
    AsyncEdgeClient,
    EdgeClient,
    EdgeConfig,
    EdgeError,
    EdgeServerThread,
)
from repro.edge.client import RetryPolicy
from repro.fleet import (
    FleetClient,
    FleetDirectory,
    FleetRouter,
    HedgePolicy,
    HostSpec,
    LatencyTracker,
)
from repro.fleet.client import HOST_DEAD, HOST_DEGRADED, HOST_HEALTHY
from repro.serve import ReadRequest
from repro.telemetry.stream import StreamHub

TIERS = 4
ROOT_SEED = 2012
STALL_MS = 150.0


def _hosts(count, domains=None):
    return tuple(
        HostSpec(
            name=f"h{i}",
            host="127.0.0.1",
            port=9000 + i,
            domain=domains[i] if domains else f"d{i}",
        )
        for i in range(count)
    )


# ---------------------------------------------------------------- placement


class TestDirectoryPlacement:
    def test_every_shard_gets_its_replication_factor(self):
        directory = FleetDirectory(hosts=_hosts(5), shards=16, replication=3)
        for shard, names in directory.placement().items():
            assert len(names) == 3
            assert len(set(names)) == 3

    def test_no_two_replicas_share_a_domain_when_domains_suffice(self):
        directory = FleetDirectory(hosts=_hosts(6), shards=32, replication=3)
        for shard in range(32):
            domains = [spec.domain for spec in directory.replicas(shard)]
            assert len(set(domains)) == len(domains)

    def test_domain_constraint_relaxes_rather_than_under_replicate(self):
        # 4 hosts in only 2 domains, replication 3: placement must still
        # produce 3 replicas, reusing a domain.
        hosts = _hosts(4, domains=["a", "a", "b", "b"])
        directory = FleetDirectory(hosts=hosts, shards=8, replication=3)
        for shard in range(8):
            replicas = directory.replicas(shard)
            assert len(replicas) == 3
            # Both domains are still represented before any is reused.
            assert {spec.domain for spec in replicas} == {"a", "b"}

    def test_placement_independent_of_declaration_order(self):
        forward = FleetDirectory(hosts=_hosts(5), shards=16)
        backward = FleetDirectory(hosts=tuple(reversed(_hosts(5))), shards=16)
        assert forward.placement() == backward.placement()

    def test_removing_a_host_only_moves_its_own_shards(self):
        before = FleetDirectory(hosts=_hosts(5), shards=32)
        after = before.without("h2")
        for shard in range(32):
            old = before.placement()[shard]
            new = after.placement()[shard]
            if "h2" not in old:
                assert new == old
            else:
                # Survivors keep their slots; only h2's slot is refilled.
                assert [n for n in old if n != "h2"] == [
                    n for n in new if n in old
                ]

    def test_generations_stamp_every_membership_change(self):
        directory = FleetDirectory(hosts=_hosts(3), shards=4)
        assert directory.generation == 0
        removed = directory.without("h1")
        assert removed.generation == 1
        returned = removed.with_host(directory.host("h1"))
        assert returned.generation == 2
        with pytest.raises(ValueError):
            directory.without("nope")

    def test_per_tier_replication(self):
        directory = FleetDirectory(
            hosts=_hosts(4),
            shards=4,
            replication={"standard": 2, "hot": 3},
            shard_tiers={0: "hot"},
        )
        assert len(directory.replicas(0)) == 3
        assert len(directory.replicas(1)) == 2
        assert directory.tier_of(0) == "hot"

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetDirectory(hosts=(), shards=2)
        with pytest.raises(ValueError):
            FleetDirectory(hosts=_hosts(2), shards=2, replication=3)
        with pytest.raises(ValueError):
            FleetDirectory(hosts=_hosts(2) + _hosts(1), shards=2)

    def test_route_is_consistent_with_replicas_for_stack(self):
        directory = FleetDirectory(hosts=_hosts(3), shards=8)
        for stack in range(50):
            shard = directory.route(stack)
            assert directory.replicas_for_stack(stack) == directory.replicas(
                shard
            )


class TestHostSpecParse:
    def test_full_form(self):
        spec = HostSpec.parse("edge9=10.0.0.9:7009@rack3")
        assert (spec.name, spec.host, spec.port, spec.domain) == (
            "edge9", "10.0.0.9", 7009, "rack3",
        )

    def test_name_defaults_to_address(self):
        spec = HostSpec.parse("10.0.0.9:7009")
        assert spec.name == "10.0.0.9:7009"
        assert spec.domain == "default"

    def test_rejects_bad_forms(self):
        with pytest.raises(ValueError):
            HostSpec.parse("nohost")
        with pytest.raises(ValueError):
            HostSpec.parse("a=b:notaport")


# ------------------------------------------------------------------- router


class TestFleetRouter:
    def test_degraded_hosts_are_demoted_not_dropped(self):
        directory = FleetDirectory(hosts=_hosts(3), shards=4, replication=2)
        router = FleetRouter(directory)
        stack = 0
        primary = directory.replicas_for_stack(stack)[0]
        router.mark(primary.name, HOST_DEGRADED)
        targets = router.targets(stack)
        assert [t.name for t in targets][-1] == primary.name
        assert len(targets) == 2

    def test_dead_hosts_are_skipped(self):
        directory = FleetDirectory(hosts=_hosts(3), shards=4, replication=2)
        router = FleetRouter(directory)
        stack = 0
        primary = directory.replicas_for_stack(stack)[0]
        router.mark(primary.name, HOST_DEAD)
        targets = router.targets(stack)
        assert primary.name not in [t.name for t in targets]
        router.mark(primary.name, HOST_HEALTHY)
        assert router.targets(stack)[0].name == primary.name

    def test_stale_generation_is_refused(self):
        directory = FleetDirectory(hosts=_hosts(3), shards=4)
        router = FleetRouter(directory)
        successor = directory.without("h0")
        assert router.update_directory(successor)
        assert not router.update_directory(directory)  # generation 0 again
        assert router.directory.generation == successor.generation

    def test_mark_rejects_unknown_state(self):
        router = FleetRouter(FleetDirectory(hosts=_hosts(2), shards=2))
        with pytest.raises(ValueError):
            router.mark("h0", "wounded")


# ------------------------------------------------------------- hedge budget


class TestHedgeBudget:
    def test_initial_budget_below_min_samples(self):
        policy = HedgePolicy(initial_budget_ms=25.0, min_samples=4)
        tracker = LatencyTracker()
        tracker.observe("a", 5.0)
        assert tracker.budget_ms("a", policy) == 25.0

    def test_quantile_clamped_to_floor_and_ceiling(self):
        policy = HedgePolicy(
            quantile=0.5, min_budget_ms=3.0, max_budget_ms=40.0, min_samples=4
        )
        tracker = LatencyTracker()
        for _ in range(8):
            tracker.observe("fast", 0.2)
            tracker.observe("slow", 900.0)
        assert tracker.budget_ms("fast", policy) == 3.0
        assert tracker.budget_ms("slow", policy) == 40.0

    def test_reset_drops_every_window(self):
        policy = HedgePolicy(initial_budget_ms=11.0, min_samples=2)
        tracker = LatencyTracker()
        for _ in range(4):
            tracker.observe("a", 500.0)
        assert tracker.budget_ms("a", policy) != 11.0
        tracker.reset()
        assert tracker.budget_ms("a", policy) == 11.0


# ----------------------------------------------------------- live fixtures


@pytest.fixture(scope="module")
def pair():
    """Two identical-seed localhost hosts; ``slow`` is stalled 150 ms."""
    servers = []
    specs = []
    try:
        for index, stall in enumerate((0.0, STALL_MS)):
            config = EdgeConfig(
                port=0,
                shards=1,
                tiers=TIERS,
                root_seed=ROOT_SEED,
                start_method="fork",
                stall_ms=stall,
            )
            server = EdgeServerThread(config).start()
            servers.append(server)
            specs.append(
                HostSpec(
                    name=("fast", "slow")[index],
                    host=server.host,
                    port=server.port,
                    domain=f"dom{index}",
                )
            )
        # 4 fleet shards: rendezvous order makes each host primary for
        # two of them, so both hedge directions are reachable.
        directory = FleetDirectory(
            hosts=tuple(specs), shards=4, replication=2
        )
        yield servers, directory
    finally:
        for server in servers:
            server.stop(drain=False)


def _physics(result):
    """The deterministic part of an answer (cache_hit is host-local)."""
    return tuple(
        (
            r.tier, r.temperature_c, r.dvtn, r.dvtp,
            r.converged, r.quality, r.conversion_time, r.energy_j,
        )
        for r in result.readings
    )


# ----------------------------------------------- golden cross-host answers


class TestCrossHostDeterminism:
    def test_every_host_and_wire_answers_bit_identically(self, pair):
        _, directory = pair
        requests = [
            ReadRequest.point(1, 42.0),
            ReadRequest.point(3, 77.5),
            ReadRequest.scan(55.0, tiers=(0, 2)),
        ]
        for stack in (0, 7):
            answers = {}
            for spec in directory.hosts:
                for wire in ("ndjson", "binary"):
                    with EdgeClient(spec.host, spec.port, wire=wire) as client:
                        answers[(spec.name, wire)] = [
                            _physics(client.read(stack, request))
                            for request in requests
                        ]
            golden = answers[("fast", "ndjson")]
            for key, payload in answers.items():
                assert payload == golden, f"{key} diverged from fast/ndjson"


# --------------------------------------------------- exact hedge accounting


class TestHedgedReadAccounting:
    def test_hedge_fires_wins_and_counts_the_loser(self, pair):
        _, directory = pair
        # A stack whose primary is the stalled host: the hedge must fire
        # (150 ms stall vs a 5 ms budget) and the warm fast secondary
        # must win every race.
        stack = next(
            s for s in range(64)
            if directory.replicas_for_stack(s)[0].name == "slow"
        )
        request = ReadRequest.point(1, 42.0)
        hedge = HedgePolicy(
            initial_budget_ms=5.0, min_samples=512  # pin the budget
        )
        rounds = 4
        with FleetClient(directory, hedge=hedge) as client:
            client.warm(stack, request)
            for _ in range(rounds):
                result = client.read(stack, request)
                assert result.ok
                assert result.hedged
                assert result.host == "fast"
                assert result.attempts == 2
            stats = client.stats()
        assert stats["reads"] == rounds
        assert stats["hedges"] == rounds
        assert stats["hedge_wins"] == rounds
        # Every race had exactly one loser, abandoned and counted.
        assert stats["losers_abandoned"] == rounds
        assert stats["failovers"] == 0
        assert stats["errors"] == 0

    def test_unhedged_primary_win_carries_no_hedge_stamp(self, pair):
        _, directory = pair
        stack = next(
            s for s in range(64)
            if directory.replicas_for_stack(s)[0].name == "fast"
        )
        request = ReadRequest.point(2, 51.0)
        with FleetClient(directory, hedge=HedgePolicy(enabled=False)) as client:
            client.warm(stack, request)
            result = client.read(stack, request)
            stats = client.stats()
        assert result.ok and not result.hedged
        assert result.host == "fast"
        assert result.attempts == 1
        assert stats["hedges"] == 0
        assert stats["losers_abandoned"] == 0


# ------------------------------------------------------------ dead primary


class TestFailover:
    def test_killed_primary_fails_over_with_zero_errors(self):
        servers = []
        specs = []
        try:
            for index in range(2):
                config = EdgeConfig(
                    port=0, shards=1, tiers=2, root_seed=ROOT_SEED,
                    start_method="fork",
                )
                server = EdgeServerThread(config).start()
                servers.append(server)
                specs.append(
                    HostSpec(
                        name=f"h{index}", host=server.host,
                        port=server.port, domain=f"d{index}",
                    )
                )
            directory = FleetDirectory(
                hosts=tuple(specs), shards=2, replication=2
            )
            stack = 3
            primary = directory.replicas_for_stack(stack)[0].name
            victim = next(
                i for i, spec in enumerate(specs) if spec.name == primary
            )
            survivor = specs[1 - victim].name
            request = ReadRequest.point(0, 33.0)
            with FleetClient(
                directory,
                hedge=HedgePolicy(enabled=False),
                retry=RetryPolicy(attempts=2, backoff_s=0.01),
            ) as client:
                client.warm(stack, request)
                servers[victim].stop(drain=False)
                result = client.read(stack, request)
                stats = client.stats()
            assert result.ok
            assert result.host == survivor
            assert stats["failovers"] >= 1
            assert stats["errors"] == 0
        finally:
            for server in servers:
                server.stop(drain=False)


# ------------------------------------------------------------- SSE resume


def _sse_blocks(host, port, query, headers=b""):
    sock = socket.create_connection((host, port), timeout=30.0)
    try:
        sock.sendall(
            b"GET /v1/stream?" + query.encode("ascii") + b" HTTP/1.1\r\n"
            b"Host: t\r\nConnection: close\r\n" + headers + b"\r\n"
        )
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    finally:
        sock.close()
    head, _, body = data.partition(b"\r\n\r\n")
    assert b"200 OK" in head
    blocks = []
    for block in body.decode("utf-8").split("\n\n"):
        if not block.strip():
            continue
        lines = block.split("\n")
        record = json.loads(
            next(l for l in lines if l.startswith("data: "))[len("data: "):]
        )
        ids = [l for l in lines if l.startswith("id: ")]
        record["_id"] = int(ids[0][len("id: "):]) if ids else None
        blocks.append(record)
    return blocks


class TestSseResume:
    def test_last_event_id_replays_the_disconnect_window(self, pair):
        _, directory = pair
        fast = directory.host("fast")
        # The hub skips publishing (and the replay ring) when nothing is
        # subscribed, so an anchor subscription stays open for the whole
        # test — it stands in for "other subscribers exist", which is
        # exactly the situation a resuming consumer is in.
        with EdgeClient(fast.host, fast.port) as anchor:
            receiver = anchor.subscribe(kinds=["read"])
            with EdgeClient(fast.host, fast.port) as client:
                for i in range(3):
                    assert client.read(11, ReadRequest.point(1, 40.0 + i)).ok
            first = _sse_blocks(
                fast.host, fast.port, "kinds=read&limit=2",
                headers=b"Last-Event-ID: 0\r\n",
            )
            reads = [b for b in first if b["event"] == "read"]
            assert len(reads) == 2
            resume_from = reads[-1]["_id"]
            # Publish more reads while "disconnected".
            with EdgeClient(fast.host, fast.port) as client:
                for i in range(3):
                    assert client.read(11, ReadRequest.point(1, 60.0 + i)).ok
            replayed = _sse_blocks(
                fast.host, fast.port, "kinds=read&limit=3",
                headers=b"Last-Event-ID: "
                + str(resume_from).encode() + b"\r\n",
            )
            receiver.unsubscribe()
        replayed = [b for b in replayed if b["event"] == "read"]
        assert len(replayed) == 3
        # The replay resumes exactly past the last delivered id, in
        # order, and every replayed record says so.
        assert all(block.get("replay") is True for block in replayed)
        ids = [block["_id"] for block in replayed]
        assert ids == sorted(ids)
        assert ids[0] > resume_from

    def test_resume_before_retention_gets_a_typed_gap_notice(self, pair):
        _, directory = pair
        fast = directory.host("fast")
        with EdgeClient(fast.host, fast.port) as anchor:
            receiver = anchor.subscribe(kinds=["read"])
            with EdgeClient(fast.host, fast.port) as client:
                assert client.read(12, ReadRequest.point(1, 45.0)).ok
            # An id before anything the ring retains: the server must
            # say "your history has a hole" with a typed notice, not
            # skip it silently.
            blocks = _sse_blocks(
                fast.host, fast.port, "kinds=read&limit=1",
                headers=b"Last-Event-ID: -1\r\n",
            )
            receiver.unsubscribe()
        notice = blocks[0]
        assert notice["event"] == "notice"
        assert notice["code"] == "gap"
        assert notice["resume"] == -1
        assert any(block["event"] == "read" for block in blocks[1:])

    def test_hub_replay_ring_reports_overflow_as_gap(self):
        hub = StreamHub(replay=4)
        # Publishing is a no-op (and skips the ring) with no listeners.
        hub.subscribe(kinds=["metric"], queue=4)
        for i in range(10):
            hub.publish("metric", {"name": "m", "value": float(i)})
        events, gap = hub.replay_since(2)
        assert gap  # events 3..5 fell off the 4-deep ring
        assert [e.seq for e in events] == [7, 8, 9, 10]
        fresh, gap = hub.replay_since(6)
        assert not gap
        assert [e.seq for e in fresh] == [7, 8, 9, 10]


# --------------------------------------------------------- /metrics labels


class TestMetricsShardStateLabels:
    def test_per_state_breakdown_with_stable_label_set(self, pair):
        _, directory = pair
        fast = directory.host("fast")
        with urllib.request.urlopen(
            f"http://{fast.host}:{fast.port}/metrics", timeout=30.0
        ) as response:
            text = response.read().decode("utf-8")
        lines = text.splitlines()
        assert 'repro_edge_shards{state="healthy"} 1' in lines
        # Every lifecycle state is present (zeroes included) so scrapers
        # see a stable label set.
        for state in ("warm", "starting", "quarantined", "draining", "stopped"):
            assert f'repro_edge_shards{{state="{state}"}} 0' in lines


# ------------------------------------------------- async re-resolution


class TestAsyncClientReResolves:
    def test_retry_follows_the_target_when_it_moves(self, pair):
        _, directory = pair
        fast = directory.host("fast")
        # A port that refuses connections: bind, close, use the number.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        addresses = [("127.0.0.1", dead_port), (fast.host, fast.port)]
        resolved = []

        def resolve():
            address = addresses[min(len(resolved), len(addresses) - 1)]
            resolved.append(address)
            return address

        async def run():
            client = AsyncEdgeClient(
                "unused", 1,
                retry=RetryPolicy(attempts=3, backoff_s=0.01),
                resolve=resolve,
            )
            try:
                return await client.read(5, ReadRequest.point(1, 48.0))
            finally:
                await client.close()

        result = asyncio.run(run())
        assert result.ok
        # First attempt hit the dead address and failed retryably; the
        # retry re-resolved and landed on the live host.
        assert len(resolved) >= 2
        assert resolved[0] == ("127.0.0.1", dead_port)
        assert resolved[-1] == (fast.host, fast.port)
        assert result.attempts >= 2
