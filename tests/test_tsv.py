"""Tests for the TSV substrate: geometry, stress, keep-out, bus."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.readout.interface import SensorFrame, encode_frame
from repro.thermal.grid import build_stack_grid
from repro.thermal.power import uniform_power_map
from repro.thermal.solver import steady_state
from repro.tsv.bus import TsvSensorBus
from repro.tsv.geometry import (
    StackDescriptor,
    TierSpec,
    TsvSite,
    regular_tsv_array,
)
from repro.tsv.keepout import (
    keep_out_radius,
    minimum_clear_distance,
    placement_is_clear,
)
from repro.tsv.stress import StressModel


class TestGeometry:
    def test_regular_array_count_and_pitch(self):
        sites = regular_tsv_array(3, 4, pitch=50e-6, origin=(1e-3, 1e-3))
        assert len(sites) == 12
        assert sites[1].x - sites[0].x == pytest.approx(50e-6)

    def test_rejects_bad_array(self):
        with pytest.raises(ValueError):
            regular_tsv_array(0, 4, pitch=50e-6)

    def test_stack_requires_unique_tier_names(self):
        with pytest.raises(ValueError):
            StackDescriptor(tiers=[TierSpec("a"), TierSpec("a")])

    def test_thermal_layers_structure(self):
        stack = StackDescriptor(tiers=[TierSpec("t0"), TierSpec("t1")])
        layers = stack.thermal_layers(8, 8)
        names = [layer.name for layer in layers]
        assert names == ["t0.si", "t0.beol", "bond0", "t1.si", "t1.beol", "spreader"]
        assert layers[0].heat_source and layers[3].heat_source

    def test_tsv_fill_map_fraction(self):
        stack = StackDescriptor(
            tiers=[TierSpec("t0")],
            tsv_sites=regular_tsv_array(2, 2, pitch=1e-3, origin=(1e-3, 1e-3)),
        )
        fill = stack.tsv_fill_map(10, 10)
        assert fill.max() > 0.0
        assert fill.min() == 0.0
        assert np.all(fill <= 0.6)

    def test_tsvs_boost_vertical_conductivity(self):
        tsvs = regular_tsv_array(6, 6, pitch=100e-6, origin=(2.2e-3, 2.2e-3), radius=15e-6)
        with_tsv = StackDescriptor(tiers=[TierSpec("t0"), TierSpec("t1")], tsv_sites=tsvs)
        without = StackDescriptor(tiers=[TierSpec("t0"), TierSpec("t1")])
        kz = with_tsv.thermal_layers(12, 12)[2].kz_scale  # bond layer
        assert kz is not None and kz.max() > 2.0
        assert without.thermal_layers(12, 12)[2].kz_scale is None

    def test_tsv_array_cools_the_bottom_tier(self):
        """The thermal-via effect must be visible in the solved field."""
        tsvs = regular_tsv_array(10, 10, pitch=150e-6, origin=(1.8e-3, 1.8e-3), radius=20e-6)
        power = None
        peaks = {}
        for label, sites in (("with", tsvs), ("without", [])):
            stack = StackDescriptor(
                tiers=[TierSpec("t0"), TierSpec("t1")], tsv_sites=sites
            )
            nx = ny = 14
            grid = build_stack_grid(
                stack.thermal_layers(nx, ny), 5e-3, 5e-3, nx=nx, ny=ny
            )
            power = {"t0.si": uniform_power_map(nx, ny, 2.0)}
            peaks[label] = steady_state(grid, power).peak("t0.si")
        assert peaks["with"] < peaks["without"]


class TestStress:
    @pytest.fixture
    def model(self):
        return StressModel()

    @pytest.fixture
    def via(self):
        return TsvSite(x=1e-3, y=1e-3, radius=5e-6)

    def test_wall_stress_is_sigma_edge(self, model, via):
        assert model.radial_stress(via.radius, via) == pytest.approx(
            model.sigma_edge_pa
        )

    def test_inside_wall_clamped(self, model, via):
        assert model.radial_stress(0.0, via) == pytest.approx(model.sigma_edge_pa)

    def test_inverse_square_decay(self, model, via):
        near = model.radial_stress(10e-6, via)
        far = model.radial_stress(20e-6, via)
        assert near / far == pytest.approx(4.0)

    def test_shift_signs(self, model, via):
        dvtn, dvtp = model.vt_shifts_at(via.x + 8e-6, via.y, [via])
        assert dvtn < 0.0  # NMOS threshold drops
        assert dvtp > 0.0  # PMOS threshold magnitude rises

    def test_mobility_signs(self, model, via):
        dmun, dmup = model.mobility_shifts_at(via.x + 8e-6, via.y, [via])
        assert dmun > 0.0  # electrons gain
        assert dmup < 0.0  # holes lose

    def test_superposition(self, model):
        a = TsvSite(1e-3, 1e-3)
        b = TsvSite(1.05e-3, 1e-3)
        x, y = 1.025e-3, 1e-3
        single_a = model.vt_shifts_at(x, y, [a])[0]
        single_b = model.vt_shifts_at(x, y, [b])[0]
        both = model.vt_shifts_at(x, y, [a, b])[0]
        assert both == pytest.approx(single_a + single_b)

    def test_effective_shift_includes_mobility(self, model, via):
        pure_vt = model.vt_shifts_at(via.x + 8e-6, via.y, [via])
        effective = model.effective_vt_shifts_at(via.x + 8e-6, via.y, [via])
        assert effective != pure_vt

    @settings(max_examples=25, deadline=None)
    @given(distance=st.floats(min_value=1e-6, max_value=1e-3))
    def test_stress_nonnegative_and_bounded(self, distance):
        model = StressModel()
        via = TsvSite(0.0, 0.0)
        sigma = model.radial_stress(distance, via)
        assert 0.0 <= sigma <= model.sigma_edge_pa


class TestKeepOut:
    def test_koz_larger_for_tighter_tolerance(self):
        model = StressModel()
        via = TsvSite(0.0, 0.0)
        assert keep_out_radius(model, via, 0.01) > keep_out_radius(model, via, 0.05)

    def test_koz_never_smaller_than_via(self):
        model = StressModel()
        via = TsvSite(0.0, 0.0, radius=5e-6)
        assert keep_out_radius(model, via, mobility_tolerance=10.0) >= via.radius

    def test_koz_micrometre_class(self):
        """Published TSV KOZ values at 5% are single-digit to tens of um."""
        model = StressModel()
        via = TsvSite(0.0, 0.0, radius=5e-6)
        radius = keep_out_radius(model, via, 0.05)
        assert 3e-6 < radius < 50e-6

    def test_placement_check(self):
        model = StressModel()
        sites = [TsvSite(0.0, 0.0)]
        koz = keep_out_radius(model, sites[0], 0.05)
        assert not placement_is_clear(model, koz * 0.5, 0.0, sites)
        assert placement_is_clear(model, koz * 2.0, 0.0, sites)

    def test_minimum_clear_distance(self):
        model = StressModel()
        sites = regular_tsv_array(2, 2, pitch=100e-6)
        assert minimum_clear_distance(model, sites) == keep_out_radius(
            model, sites[0], 0.05
        )
        assert minimum_clear_distance(model, []) == 0.0


class TestBus:
    def frames(self, tiers):
        return {
            t: encode_frame(
                SensorFrame(
                    die_id=t, dvtn=0.001 * t, dvtp=-0.001, temperature_c=50.0 + t
                )
            )
            for t in range(tiers)
        }

    def test_clean_collection(self):
        bus = TsvSensorBus(tiers=4)
        report = bus.collect(self.frames(4))
        assert report.healthy
        assert sorted(report.frames) == [0, 1, 2, 3]
        assert report.frames[2].temperature_c == pytest.approx(52.0, abs=0.51)

    def test_stuck_tier_reported_missing(self):
        bus = TsvSensorBus(tiers=4, stuck_tiers={1})
        report = bus.collect(self.frames(4))
        assert not report.healthy
        assert report.missing == [1]
        assert 1 not in report.frames

    def test_absent_frame_reported_missing(self):
        bus = TsvSensorBus(tiers=4)
        frames = self.frames(4)
        del frames[3]
        report = bus.collect(frames)
        assert report.missing == [3]

    def test_bit_errors_caught_by_parity(self):
        bus = TsvSensorBus(tiers=8, bit_error_rate=5e-3)
        rng = np.random.default_rng(3)
        corrupted = 0
        for _ in range(60):
            report = bus.collect(self.frames(8), rng=rng)
            corrupted += len(report.parity_errors)
        assert corrupted > 0  # errors occurred and were caught

    def test_tier0_never_corrupted(self):
        """Tier 0 sits at the aggregator: zero hops, zero corruption."""
        bus = TsvSensorBus(tiers=4, bit_error_rate=0.4)
        rng = np.random.default_rng(4)
        for _ in range(25):
            report = bus.collect(self.frames(4), rng=rng)
            assert 0 in report.frames

    def test_no_rng_disables_corruption(self):
        bus = TsvSensorBus(tiers=4, bit_error_rate=0.5)
        report = bus.collect(self.frames(4), rng=None)
        assert report.healthy

    def test_validation(self):
        with pytest.raises(ValueError):
            TsvSensorBus(tiers=0)
        with pytest.raises(ValueError):
            TsvSensorBus(tiers=2, bit_error_rate=1.5)
        with pytest.raises(ValueError):
            TsvSensorBus(tiers=2, stuck_tiers={5})
