"""Tests of the repro.serve subsystem: engine, cache, admission, service.

The load-bearing test is the golden equivalence class: a coalesced
mixed-kind batch must answer exactly what a sequential scalar-read loop
over the same requests would — same noise-stream consumption (counter
values bit-identical through the paired kernel), same estimates within
the batch engine's established tolerances (1e-3 K inversion, 1e-7 V
extraction; see tests/test_batch_engine.py).
"""

import threading

import numpy as np
import pytest

from repro import faults
from repro.batch.paired import read_paired
from repro.experiments.common import build_sensor, die_population
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    BatchPolicy,
    QueueFullError,
    ReadEngine,
    ReadRequest,
    RequestKind,
    ResultCache,
    ResultStatus,
    SensorReadService,
    ServeConfig,
    ServiceClosedError,
)
from repro.units import celsius_to_kelvin


def fresh_stack(tiers=4):
    """tier -> PTSensor with fresh (identically seeded) noise streams."""
    dies = die_population(tiers)
    return {t: build_sensor(dies[t], die_id=t) for t in range(tiers)}


MIXED_BATCH = [
    ReadRequest.point(0, 55.3),
    ReadRequest.vt(2, 40.1),
    ReadRequest.scan(33.7, tiers=(1, 3)),
    ReadRequest.poll({0: 50.0, 1: 52.5, 2: 54.0, 3: 57.5}),
    ReadRequest.point(0, 55.3),  # same tier twice: stream order matters
    ReadRequest.point(1, 61.2, assume_vdd=1.2),
]


def expand_like_engine(engine, request):
    return engine._expand(request)


class TestRequestValidation:
    def test_point_requires_tier(self):
        with pytest.raises(ValueError, match="requires a tier"):
            ReadRequest(kind=RequestKind.POINT_READ, temp_c=25.0)

    def test_kind_specific_fields_rejected(self):
        with pytest.raises(ValueError, match="TIER_SCAN"):
            ReadRequest.point(0, 25.0).__class__(
                kind=RequestKind.POINT_READ, tier=0, tiers=(1,)
            )
        with pytest.raises(ValueError, match="STACK_POLL"):
            ReadRequest(kind=RequestKind.TIER_SCAN, temps_c={0: 25.0})

    def test_constructors_set_kinds(self):
        assert ReadRequest.point(0, 25.0).kind is RequestKind.POINT_READ
        assert ReadRequest.vt(0, 25.0).kind is RequestKind.VT_EXTRACT
        assert ReadRequest.scan(25.0).kind is RequestKind.TIER_SCAN
        assert ReadRequest.poll({0: 25.0}).kind is RequestKind.STACK_POLL


class TestGoldenEquivalence:
    """Coalesced serving == sequential scalar serving, noise included."""

    def expected_units(self, engine):
        units = []
        for request in MIXED_BATCH:
            for tier, temp_c in expand_like_engine(engine, request):
                units.append((request, tier, temp_c))
        return units

    def test_mixed_batch_matches_sequential_scalar_reads(self):
        engine = ReadEngine(fresh_stack(), cache=None, deterministic=False)
        results = engine.execute(MIXED_BATCH, now=0.0)
        scalar_sensors = fresh_stack()

        flat = [r for result in results for r in result.readings]
        units = self.expected_units(engine)
        assert len(flat) == len(units)
        for reading, (request, tier, temp_c) in zip(flat, units):
            scalar = scalar_sensors[tier].read(
                temp_c, vdd=request.vdd, assume_vdd=request.assume_vdd
            )
            assert reading.tier == tier
            assert reading.converged == scalar.converged
            # Shared inversion tolerance (1e-4 K) bounds the temperature
            # agreement; extraction and bookkeeping are tighter.
            assert abs(reading.temperature_c - scalar.temperature_c) < 1e-3
            assert abs(reading.dvtn - scalar.dvtn) < 1e-7
            assert abs(reading.dvtp - scalar.dvtp) < 1e-7
            assert reading.conversion_time == pytest.approx(
                scalar.conversion_time, rel=1e-9
            )
            assert reading.energy_j == pytest.approx(scalar.energy.total, rel=1e-9)

    def test_counter_values_bit_identical_through_paired_kernel(self):
        engine = ReadEngine(fresh_stack(), cache=None, deterministic=False)
        units = self.expected_units(engine)
        batch_sensors = fresh_stack()
        paired = read_paired(
            [batch_sensors[tier] for _, tier, _ in units],
            np.array([celsius_to_kelvin(t) for _, _, t in units]),
        )
        scalar_sensors = fresh_stack()
        for i, (request, tier, temp_c) in enumerate(units):
            scalar = scalar_sensors[tier].read(temp_c, vdd=request.vdd)
            assert int(paired.counts_n[i]) == scalar.counts_n
            assert int(paired.counts_p[i]) == scalar.counts_p
            assert int(paired.counts_ref[i]) == scalar.counts_ref

    def test_deterministic_mode_is_reproducible(self):
        a = ReadEngine(fresh_stack(), deterministic=True).execute(MIXED_BATCH)
        b = ReadEngine(fresh_stack(), deterministic=True).execute(MIXED_BATCH)
        for ra, rb in zip(a, b):
            for x, y in zip(ra.readings, rb.readings):
                assert x.temperature_c == y.temperature_c
                assert x.dvtn == y.dvtn


class TestResultCache:
    def test_hit_after_put_and_quantised_sharing(self):
        cache = ResultCache(capacity=8, ttl_s=10.0, temp_resolution_c=0.25)
        engine = ReadEngine(fresh_stack(), cache=cache)
        first = engine.execute([ReadRequest.point(0, 55.05)], now=0.0)
        # 55.05 and 55.10 quantise to the same 0.25 degC bucket.
        second = engine.execute([ReadRequest.point(0, 55.10)], now=1.0)
        assert first[0].cache_hits == 0
        assert second[0].cache_hits == 1
        assert second[0].readings[0].cache_hit
        assert (
            second[0].readings[0].temperature_c
            == first[0].readings[0].temperature_c
        )
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert 0.0 < stats.hit_rate < 1.0

    def test_ttl_expiry_forces_reconversion(self):
        cache = ResultCache(capacity=8, ttl_s=2.0)
        engine = ReadEngine(fresh_stack(), cache=cache)
        engine.execute([ReadRequest.point(0, 40.0)], now=0.0)
        hit = engine.execute([ReadRequest.point(0, 40.0)], now=1.0)
        expired = engine.execute([ReadRequest.point(0, 40.0)], now=5.0)
        assert hit[0].cache_hits == 1
        assert expired[0].cache_hits == 0
        assert cache.stats().expirations == 1

    def test_lru_eviction_at_capacity(self):
        cache = ResultCache(capacity=2, ttl_s=100.0)
        engine = ReadEngine(fresh_stack(), cache=cache)
        for temp in (30.0, 40.0, 50.0):  # third insert evicts 30.0
            engine.execute([ReadRequest.point(0, temp)], now=0.0)
        assert cache.stats().evictions == 1
        again = engine.execute([ReadRequest.point(0, 30.0)], now=0.0)
        assert again[0].cache_hits == 0

    def test_noisy_mode_bypasses_cache(self):
        cache = ResultCache(capacity=8)
        engine = ReadEngine(fresh_stack(), cache=cache, deterministic=False)
        engine.execute([ReadRequest.point(0, 40.0)], now=0.0)
        engine.execute([ReadRequest.point(0, 40.0)], now=0.0)
        assert cache.stats().hits == 0
        assert cache.stats().entries == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(ttl_s=0.0)


class TestAdmission:
    def test_rejects_at_capacity(self):
        controller = AdmissionController(AdmissionPolicy(queue_depth=2))
        controller.admit(0)
        controller.admit(1)
        with pytest.raises(QueueFullError):
            controller.admit(2)
        stats = controller.stats()
        assert (stats.admitted, stats.rejected) == (2, 1)

    def test_backpressure_signal(self):
        controller = AdmissionController(AdmissionPolicy(queue_depth=4))
        assert controller.backpressure(0) == 0.0
        assert controller.backpressure(2) == 0.5
        assert controller.backpressure(99) == 1.0


class TestReadEngine:
    def test_unknown_tier_errors_without_poisoning_batch(self):
        engine = ReadEngine(fresh_stack())
        bad, good = engine.execute(
            [ReadRequest.point(99, 25.0), ReadRequest.point(0, 25.0)]
        )
        assert bad.status is ResultStatus.ERROR
        assert "unknown tier" in bad.error
        assert good.status is ResultStatus.OK

    def test_deadline_shedding(self):
        admission = AdmissionController()
        engine = ReadEngine(fresh_stack(), admission=admission)
        shed, live = engine.execute(
            [
                ReadRequest.point(0, 25.0, deadline_s=1.0),
                ReadRequest.point(0, 25.0, deadline_s=10.0),
            ],
            now=5.0,
        )
        assert shed.status is ResultStatus.SHED
        assert shed.readings == ()
        assert live.status is ResultStatus.OK
        assert admission.stats().shed == 1

    def test_mixed_design_rejected(self):
        sensors = fresh_stack(2)
        from repro.config import SensorConfig
        from repro.core.sensor import PTSensor

        sensors[2] = PTSensor(
            sensors[0].technology, config=SensorConfig(psro_stages=15)
        )
        with pytest.raises(ValueError, match="mixed"):
            ReadEngine(sensors)

    def test_batch_accounting(self):
        engine = ReadEngine(fresh_stack())
        engine.execute(MIXED_BATCH)
        engine.execute(MIXED_BATCH[:2])
        assert engine.batches == 2
        assert engine.batch_size_histogram() == {len(MIXED_BATCH): 1, 2: 1}


class TestFaultDegradation:
    def test_faulted_tier_degrades_and_bypasses_cache(self):
        plan = FaultPlan(
            name="drifting-tier-1",
            specs=(
                FaultSpec(
                    FaultKind.SENSOR_DRIFT, tier=1, onset_round=0, severity=2.0
                ),
            ),
        )
        cache = ResultCache(capacity=16)
        engine = ReadEngine(fresh_stack(), cache=cache)
        with faults.inject(plan):
            results = engine.execute(
                [ReadRequest.point(1, 40.0), ReadRequest.point(0, 40.0)]
            )
        faulted, healthy = results
        assert faulted.status is ResultStatus.DEGRADED
        assert faulted.readings[0].quality == "degraded"
        # Drift adds severity*(age+1) = 2 degC to the published reading.
        assert faulted.readings[0].temperature_c == pytest.approx(
            healthy_reading_at(40.0, tier=1) + 2.0, abs=1e-3
        )
        assert healthy.status is ResultStatus.OK
        # Only the healthy tier's reading was cached.
        assert cache.stats().entries == 1

    def test_clean_run_unaffected_after_plan_exits(self):
        engine = ReadEngine(fresh_stack())
        plan = FaultPlan(
            name="drift", specs=(FaultSpec(FaultKind.SENSOR_DRIFT, tier=0),)
        )
        with faults.inject(plan):
            engine.execute([ReadRequest.point(0, 40.0)])
        clean = engine.execute([ReadRequest.point(0, 40.0)])
        assert clean[0].status is ResultStatus.OK
        assert clean[0].readings[0].quality == "ok"


def healthy_reading_at(temp_c, tier):
    stack = fresh_stack()
    engine = ReadEngine(stack, cache=None)
    (result,) = engine.execute([ReadRequest.point(tier, temp_c)])
    return result.readings[0].temperature_c


class TestSensorReadService:
    def config(self, **overrides):
        base = dict(
            tiers=2, batch=BatchPolicy(max_batch=8, max_wait_ms=5.0)
        )
        base.update(overrides)
        return ServeConfig(**base)

    def test_service_coalesces_concurrent_submissions(self):
        with SensorReadService(config=self.config()) as service:
            futures = [
                service.submit(ReadRequest.point(i % 2, 40.0 + i))
                for i in range(8)
            ]
            results = [f.result(timeout=10.0) for f in futures]
        assert all(r.status is ResultStatus.OK for r in results)
        assert max(r.batch_size for r in results) > 1
        assert service.stats().served == 8

    def test_drain_serves_queued_requests(self):
        service = SensorReadService(config=self.config())
        futures = [
            service.submit(ReadRequest.point(0, 30.0 + i)) for i in range(4)
        ]
        service.close(drain=True)
        assert all(f.result(timeout=1.0).ok for f in futures)

    def test_no_drain_fails_pending_and_close_is_idempotent(self):
        # Huge wait bound: the worker holds the batch open long enough
        # for close(drain=False) to reliably observe a non-empty queue.
        service = SensorReadService(
            config=self.config(batch=BatchPolicy(max_batch=64, max_wait_ms=60_000.0))
        )
        futures = [
            service.submit(ReadRequest.point(0, 30.0 + i)) for i in range(4)
        ]
        service.close(drain=False)
        service.close(drain=False)
        outcomes = []
        for future in futures:
            try:
                outcomes.append(future.result(timeout=5.0).status)
            except ServiceClosedError:
                outcomes.append("closed")
        assert "closed" in outcomes

    def test_submit_after_close_raises(self):
        service = SensorReadService(config=self.config())
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(ReadRequest.point(0, 25.0))

    def test_access_log_written(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        with SensorReadService(config=self.config(), access_log=path) as service:
            service.read(ReadRequest.point(0, 45.0))
            service.read(ReadRequest.scan(50.0))
        import json

        records = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert len(records) == 2
        assert {r["type"] for r in records} == {"access"}
        assert records[0]["kind"] == "point_read"
        assert records[1]["readings"] == 2

    def test_read_from_worker_threads(self):
        with SensorReadService(config=self.config()) as service:
            errors = []
            results = []

            def client(i):
                try:
                    results.append(
                        service.read(ReadRequest.point(i % 2, 35.0 + i))
                    )
                except Exception as error:  # pragma: no cover - defensive
                    errors.append(error)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert len(results) == 6
        assert all(r.ok for r in results)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(tiers=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(queue_depth=0)
