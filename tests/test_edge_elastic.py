"""Elastic scaling: live reshard, admin plane, autoscaler, warm spares.

Four layers of coverage:

* pure units — ring generations, remap-fraction measurement, the
  autoscaler decision function against a fake pool and injected clock;
* pool-level process tests — warm-spare promotion, drain-before-
  teardown, the respawn-vs-reshard races (a worker respawned
  mid-reshard rejoins the *current* topology; a shard removed while
  quarantined stays gone);
* one live server — ``admin.*`` round-trips over all three wires, the
  token gate, and rolling restarts that keep answers bit-identical;
* the chaos reshard — grow/shrink 2→4→3 under sustained client traffic
  with zero dropped non-retryable requests and bit-identical answers
  for every key whose shard did not move.
"""

import threading
import time

import pytest

from repro.edge import (
    AdminClient,
    AutoscalePolicy,
    Autoscaler,
    EdgeClient,
    EdgeConfig,
    EdgeDeployment,
    EdgeError,
    EdgeServerThread,
    HashRing,
    RetryPolicy,
    ShardPool,
    remapped_fraction,
    serve_config_for,
)
from repro.edge import protocol
from repro.edge.supervisor import ShardState
from repro.serve import ReadRequest

TIERS = 4
ROOT_SEED = 2012


def make_pool(shards=2, enable_chaos=False, warm_spares=0, respawn_backoff_s=0.05):
    deployment = EdgeDeployment(
        shards=shards,
        tiers=TIERS,
        root_seed=ROOT_SEED,
        start_method="fork",
        enable_chaos=enable_chaos,
        warm_spares=warm_spares,
        respawn_backoff_s=respawn_backoff_s,
    )
    return ShardPool(
        deployment.worker_configs(),
        window=32,
        start_method="fork",
        health_interval_s=0.2,
        respawn_backoff_s=respawn_backoff_s,
        config_factory=deployment.worker_config,
        warm_spares=warm_spares,
    )


def wait_until(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ------------------------------------------------------------------ units


class TestRingGenerations:
    def test_successor_bumps_generation(self):
        ring = HashRing(range(2))
        assert ring.generation == 0
        grown = ring.successor(range(3))
        assert grown.generation == 1
        assert grown.successor(range(2)).generation == 2

    def test_remapped_fraction_zero_for_identical_topologies(self):
        assert remapped_fraction(HashRing(range(4)), HashRing(range(4))) == 0.0

    def test_grow_remap_fraction_near_consistent_hash_bound(self):
        """Grow N → N+1 moves ~1/(N+1) of the key space, never > 1.5x it."""
        for shards in (2, 3, 4):
            old = HashRing(range(shards))
            new = old.successor(range(shards + 1))
            fraction = remapped_fraction(old, new)
            assert 0.0 < fraction <= 1.5 / (shards + 1)

    def test_unmoved_keys_share_owner_across_rings(self):
        old = HashRing(range(2))
        new = old.successor(range(3))
        unmoved = [s for s in range(256) if old.route(s) == new.route(s)]
        assert len(unmoved) > 128  # most keys must not move
        for stack in unmoved:
            assert old.route(stack) == new.route(stack)


class _FakeInstrument:
    def __init__(self, value=0.0, p99=None):
        self.value = value
        self._p99 = p99

    def quantile(self, q):
        return self._p99


class _FakeRegistry:
    def __init__(self):
        self.instruments = {}

    def get(self, name):
        return self.instruments.get(name)


class _FakePool:
    def __init__(self, active=2, window=32):
        self.active_count = active
        self.window = window
        self.calls = []

    def scale_to(self, n):
        self.calls.append(n)
        self.active_count = n


class TestAutoscaler:
    def make(self, policy=None, active=2):
        pool = _FakePool(active=active)
        registry = _FakeRegistry()
        policy = policy or AutoscalePolicy(
            min_shards=1, max_shards=4, hysteresis=2, cooldown_s=10.0
        )
        clock_now = [0.0]
        scaler = Autoscaler(
            pool, policy, registry=registry, clock=lambda: clock_now[0]
        )
        return pool, registry, scaler, clock_now

    def set_signals(self, pool, registry, inflight, p99=None):
        registry.instruments["edge.inflight"] = _FakeInstrument(value=inflight)
        registry.instruments["edge.request_ms"] = _FakeInstrument(p99=p99)

    def test_hysteresis_delays_scale_up(self):
        pool, registry, scaler, _ = self.make()
        self.set_signals(pool, registry, inflight=pool.active_count * pool.window)
        assert scaler.step() is None  # hot tick 1 of 2
        assert scaler.step() == "up"
        assert pool.calls == [3]

    def test_one_cold_tick_resets_hot_streak(self):
        pool, registry, scaler, _ = self.make()
        self.set_signals(pool, registry, inflight=pool.active_count * pool.window)
        assert scaler.step() is None
        self.set_signals(pool, registry, inflight=0.0)
        scaler.step()
        self.set_signals(pool, registry, inflight=pool.active_count * pool.window)
        assert scaler.step() is None  # streak restarted; still damped
        assert pool.calls == []

    def test_cooldown_blocks_back_to_back_actions(self):
        pool, registry, scaler, clock_now = self.make()
        self.set_signals(pool, registry, inflight=pool.active_count * pool.window)
        scaler.step()
        assert scaler.step() == "up"
        for _ in range(5):
            assert scaler.step() is None  # in cooldown, and no longer hot
        clock_now[0] = 11.0  # past cooldown_s
        self.set_signals(pool, registry, inflight=pool.active_count * pool.window)
        assert scaler.step() is None  # hot tick 1 of 2 at the new capacity
        assert scaler.step() == "up"
        assert pool.calls == [3, 4]

    def test_p99_signal_scales_up_without_queue_depth(self):
        pool, registry, scaler, _ = self.make()
        self.set_signals(pool, registry, inflight=0.0, p99=400.0)
        scaler.step()
        assert scaler.step() == "up"

    def test_scale_down_when_cold_and_bounded_by_min(self):
        policy = AutoscalePolicy(
            min_shards=2, max_shards=4, hysteresis=1, cooldown_s=0.0
        )
        pool, registry, scaler, _ = self.make(policy=policy, active=3)
        self.set_signals(pool, registry, inflight=0.0)
        assert scaler.step() == "down"
        assert pool.active_count == 2
        assert scaler.step() is None  # at min_shards; never below
        assert pool.calls == [2]

    def test_max_shards_caps_growth(self):
        policy = AutoscalePolicy(
            min_shards=1, max_shards=2, hysteresis=1, cooldown_s=0.0
        )
        pool, registry, scaler, _ = self.make(policy=policy, active=2)
        self.set_signals(pool, registry, inflight=pool.active_count * pool.window)
        assert scaler.step() is None
        assert pool.calls == []

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_shards=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(min_shards=4, max_shards=2)
        with pytest.raises(ValueError):
            AutoscalePolicy(scale_down_utilisation=0.9, scale_up_utilisation=0.5)
        with pytest.raises(ValueError):
            AutoscalePolicy(hysteresis=0)


class TestDeprecatedConfigShims:
    def test_worker_configs_shim_warns_and_delegates(self):
        config = EdgeConfig(shards=2, tiers=TIERS, root_seed=ROOT_SEED)
        with pytest.deprecated_call():
            shimmed = config.worker_configs()
        canonical = EdgeDeployment.from_edge_config(config).worker_configs()
        assert shimmed == canonical

    def test_serve_config_shim_warns_and_delegates(self):
        worker = EdgeDeployment(shards=1, tiers=TIERS).worker_config(0)
        with pytest.deprecated_call():
            shimmed = worker.serve_config()
        assert shimmed == serve_config_for(worker)

    def test_deployment_round_trips_edge_config(self):
        deployment = EdgeDeployment(shards=3, tiers=TIERS, warm_spares=1)
        assert EdgeDeployment.from_edge_config(deployment.edge_config()) == deployment

    def test_deployment_mints_configs_for_any_index(self):
        deployment = EdgeDeployment(shards=2, tiers=TIERS, root_seed=ROOT_SEED)
        boot = deployment.worker_configs()
        assert [w.shard_index for w in boot] == [0, 1]
        # An index beyond the boot set derives the same way a boot shard
        # would have — elastic scale-up is seed-identical by construction.
        later = deployment.worker_config(5)
        assert later.seed == EdgeDeployment(
            shards=6, tiers=TIERS, root_seed=ROOT_SEED
        ).worker_configs()[5].seed


# ------------------------------------------------------- pool-level process


class TestElasticPool:
    def test_scale_up_then_down_routes_and_drains(self):
        pool = make_pool(shards=2)
        pool.start(health_checks=False)
        try:
            assert pool.shard_indices == [0, 1]
            assert pool.generation == 0
            pool.scale_to(4)
            assert pool.shard_indices == [0, 1, 2, 3]
            assert pool.generation == 2  # one republish per added shard
            wire = protocol.request_to_wire(ReadRequest.point(0, 40.0))
            assert pool.submit_read(3, wire).result(timeout=30.0)["ok"]
            pool.scale_to(3)
            assert pool.shard_indices == [0, 1, 2]
            assert pool.generation == 3
        finally:
            pool.close()

    def test_gap_index_is_refilled_with_identical_seed(self):
        pool = make_pool(shards=3)
        pool.start(health_checks=False)
        try:
            seed_before = pool.shard_configs[1].seed
            pool.remove_shard(1)
            assert pool.shard_indices == [0, 2]
            added = pool.add_shard()
            assert added == 1
            assert pool.shard_configs[1].seed == seed_before
        finally:
            pool.close()

    def test_remove_last_shard_is_refused(self):
        pool = make_pool(shards=1)
        pool.start(health_checks=False)
        try:
            with pytest.raises(ValueError):
                pool.remove_shard(0)
        finally:
            pool.close()

    def test_warm_spare_promotes_without_cold_spawn(self):
        pool = make_pool(shards=2, warm_spares=1)
        pool.start(health_checks=False)
        try:
            assert pool.spare_indices == [2]
            spare_pid = pool._spares[2].process.pid
            added = pool.add_shard()
            assert added == 2
            # Ring-join, not cold spawn: the promoted worker *is* the spare.
            assert pool._shards[2].process.pid == spare_pid
            assert wait_until(lambda: pool.spare_indices == [3])
        finally:
            pool.close()

    def test_drain_completes_inflight_before_teardown(self):
        pool = make_pool(shards=2)
        pool.start(health_checks=False)
        try:
            # Pick a stack the departing shard owns and submit a burst.
            victim = pool.shard_indices[-1]
            stacks = [s for s in range(256) if pool.route(s) == victim][:16]
            wire = protocol.request_to_wire(ReadRequest.point(0, 30.0))
            futures = [pool.submit_read(s, dict(wire)) for s in stacks]
            pool.remove_shard(victim)
            # Every accepted read was served (drained), not dropped.
            for future in futures:
                assert future.result(timeout=30.0)["ok"]
        finally:
            pool.close()

    def test_rolling_restart_keeps_topology_and_answers(self):
        pool = make_pool(shards=2)
        pool.start(health_checks=False)
        try:
            wire = protocol.request_to_wire(ReadRequest.vt(1, 44.0))

            def physics(answer):
                # The die-physics payload only; latency and cache state
                # legitimately differ across a process recycle.
                return [
                    (r["tier"], r["temperature_c"], r["dvtn"], r["dvtp"])
                    for r in answer["result"]["readings"]
                ]

            before = {
                s: pool.submit_read(s, dict(wire)).result(timeout=30.0)
                for s in range(8)
            }
            generation = pool.generation
            pids = {e["shard"]: e["pid"] for e in pool.health()}
            restarted = pool.rolling_restart()
            assert restarted == [0, 1]
            assert pool.generation == generation  # slots kept; no remap
            assert {e["shard"]: e["pid"] for e in pool.health()} != pids
            for s in range(8):
                after = pool.submit_read(s, dict(wire)).result(timeout=30.0)
                assert physics(after) == physics(before[s])
        finally:
            pool.close()


class TestRespawnVersusReshard:
    """The satellite-3 regression: respawn must read the live topology."""

    def test_respawn_mid_reshard_rejoins_current_generation(self):
        pool = make_pool(shards=2, enable_chaos=True, respawn_backoff_s=0.4)
        pool.start(health_checks=True)
        try:
            pool.chaos(0, "exit")
            assert wait_until(
                lambda: pool.health()[0]["state"]
                in ("quarantined", "starting", "healthy")
            )
            # Reshard while shard 0's respawn backoff is still pending.
            pool.add_shard()
            assert pool.generation == 1
            assert wait_until(
                lambda: pool.health()[0]["state"] == "healthy", timeout=30.0
            )
            entry = pool.health()[0]
            # The respawn stamped the *current* ring generation, not the
            # boot-time topology it died under.
            assert entry["generation"] == pool.generation == 1
            wire = protocol.request_to_wire(ReadRequest.point(0, 35.0))
            for stack in range(8):
                future = pool.submit_read(stack, dict(wire))
                assert future.result(timeout=30.0)["ok"]
        finally:
            pool.close()

    def test_shard_removed_while_quarantined_stays_gone(self):
        pool = make_pool(shards=2, enable_chaos=True, respawn_backoff_s=1.0)
        pool.start(health_checks=True)
        try:
            pool.chaos(1, "exit")
            assert wait_until(
                lambda: any(
                    e["shard"] == 1 and e["state"] == "quarantined"
                    for e in pool.health()
                )
            )
            pool.remove_shard(1)
            assert pool.shard_indices == [0]
            time.sleep(1.6)  # past the pending respawn backoff
            assert pool.shard_indices == [0]
            assert all(e["shard"] != 1 for e in pool.health())
        finally:
            pool.close()


# ------------------------------------------------------------- live server


@pytest.fixture(scope="module")
def edge():
    config = EdgeConfig(
        shards=2,
        tiers=TIERS,
        root_seed=ROOT_SEED,
        start_method="fork",
        admin_token="s3cret",
        window=32,
    )
    with EdgeServerThread(config) as server:
        yield server


class TestAdminPlane:
    @pytest.mark.parametrize("wire", ["ndjson", "binary", "http"])
    def test_status_round_trips_every_wire(self, edge, wire):
        with AdminClient(edge.host, edge.port, token="s3cret", wire=wire) as admin:
            status = admin.status()["status"]
        assert status["shards"] == edge.server.pool.shard_indices
        assert status["generation"] == edge.server.pool.generation
        assert {e["shard"] for e in status["health"]} == set(status["shards"])
        assert status["autoscaler"] is None  # no policy on this deployment

    @pytest.mark.parametrize("wire", ["ndjson", "binary", "http"])
    def test_wrong_token_answers_typed_invalid(self, edge, wire):
        with AdminClient(edge.host, edge.port, token="nope", wire=wire) as admin:
            with pytest.raises(EdgeError) as info:
                admin.status()
        assert info.value.code == protocol.INVALID
        assert not info.value.retryable

    def test_missing_token_is_refused(self, edge):
        with AdminClient(edge.host, edge.port, wire="ndjson") as admin:
            with pytest.raises(EdgeError) as info:
                admin.scale(3)
        assert info.value.code == protocol.INVALID

    def test_bad_arguments_answer_invalid(self, edge):
        with AdminClient(edge.host, edge.port, token="s3cret") as admin:
            with pytest.raises(EdgeError) as info:
                admin.scale(0)
            assert info.value.code == protocol.INVALID
            with pytest.raises(EdgeError) as info:
                admin.drain_shard(99)
            assert info.value.code == protocol.INVALID

    def test_unknown_admin_http_route_is_unknown_op(self, edge):
        from http.client import HTTPConnection

        connection = HTTPConnection(edge.host, edge.port, timeout=30.0)
        try:
            connection.request(
                "POST", "/v1/admin/explode", body=b"{}",
                headers={"X-Admin-Token": "s3cret"},
            )
            response = connection.getresponse()
            assert response.status == 404
            payload = protocol.decode_line(response.read())
            assert payload["error"]["code"] == protocol.UNKNOWN_OP
        finally:
            connection.close()

    def test_scale_and_restart_round_trip(self, edge):
        with AdminClient(edge.host, edge.port, token="s3cret") as admin:
            grown = admin.scale(3)
            assert grown["shards"] == [0, 1, 2]
            restarted = admin.restart(shard=2)
            assert restarted["restarted"] == [2]
            shrunk = admin.scale(2)
            assert shrunk["shards"] == [0, 1]
        with EdgeClient(edge.host, edge.port) as client:
            assert client.read(3, ReadRequest.point(0, 41.0)).ok


# ----------------------------------------------------------- chaos reshard


class TestChaosReshard:
    """Grow 2→4→3 under sustained traffic; nothing non-retryable drops."""

    STACKS = 24

    def test_reshard_under_sustained_traffic(self):
        config = EdgeConfig(
            shards=2,
            tiers=TIERS,
            root_seed=ROOT_SEED,
            start_method="fork",
            window=32,
        )
        answers = {}  # stack -> set of (tier, temp, dvtn, dvtp) tuples seen
        answers_lock = threading.Lock()
        non_retryable = []
        stop = threading.Event()

        def record(stack, result):
            key = tuple(
                (r.tier, r.temperature_c, r.dvtn, r.dvtp) for r in result.readings
            )
            with answers_lock:
                answers.setdefault(stack, set()).add(key)

        def traffic(worker_id, host, port):
            retry = RetryPolicy(attempts=10, backoff_s=0.02, max_backoff_s=0.25)
            with EdgeClient(host, port, retry=retry) as client:
                stack = worker_id
                while not stop.is_set():
                    request = ReadRequest.vt(stack % TIERS, 40.0 + stack % TIERS)
                    try:
                        result = client.read(stack, request)
                    except EdgeError as error:
                        if not error.retryable:
                            non_retryable.append((stack, error))
                    else:
                        record(stack, result)
                    stack = (stack + 3) % self.STACKS

        with EdgeServerThread(config) as edge:
            pool = edge.server.pool
            ring_start = pool.ring
            with EdgeClient(edge.host, edge.port) as client:
                for stack in range(self.STACKS):
                    record(stack, client.read(stack, ReadRequest.vt(
                        stack % TIERS, 40.0 + stack % TIERS
                    )))
            threads = [
                threading.Thread(target=traffic, args=(i, edge.host, edge.port))
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            try:
                pool.scale_to(4)
                time.sleep(0.5)
                pool.scale_to(3)
                time.sleep(0.5)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30.0)
            assert pool.shard_indices == [0, 1, 2]
            assert pool.ring.generation == 3
            # Zero dropped non-retryable requests across the reshards.
            assert non_retryable == []
            # Keys whose owner never moved in ANY published topology
            # (2 → 3 → 4 → 3 shards) answered bit-identically all along;
            # a moved key may legitimately see two die stacks.  The
            # successor chain below reconstructs every intermediate ring
            # — ring construction is deterministic in the member set.
            ring3 = ring_start.successor([0, 1, 2])
            ring4 = ring3.successor([0, 1, 2, 3])
            unmoved = [
                s
                for s in range(self.STACKS)
                if ring_start.route(s) == ring3.route(s) == ring4.route(s)
            ]
            assert unmoved  # consistent hashing keeps most keys in place
            for stack in unmoved:
                assert len(answers[stack]) == 1, (
                    f"stack {stack} owner never moved but answers diverged"
                )
