"""The streaming plane's pure units: hub, rollups, detector, sweeps, docs.

No sockets and no processes here — everything is the deterministic core
the edge faces sit on: fan-out with bounded queues and typed loss,
epoch-aligned rollup windows, the EWMA-slope early-warning detector
(bit-reproducible by construction), the seeded 10k-subscriber sweep, and
the registry-generated metric catalogue.  The live wire faces are
covered in ``tests/test_stream_edge.py``.
"""

import math

import pytest

from repro.edge.stream import StreamPolicy, clamp_queue, format_sse
from repro.edge.stream_loadgen import (
    StreamLoadgenConfig,
    run_loadgen_stream,
    runaway_trajectory,
)
from repro.telemetry.rollup import RollupPolicy, RollupTable
from repro.telemetry.runaway import (
    ALERT_CLEAR,
    ALERT_WARNING,
    RunawayDetector,
    RunawayPolicy,
    batch_alarm_round,
    streaming_alert_round,
)
from repro.telemetry.stream import StreamHub


# ------------------------------------------------------------------ hub


class TestStreamHub:
    def test_publish_with_no_subscribers_is_inert(self):
        hub = StreamHub()
        assert not hub.active
        assert hub.publish("metric", {"name": "x", "value": 1.0}) == 0

    def test_subscribe_receives_matching_events_in_order(self):
        hub = StreamHub()
        sub = hub.subscribe(kinds=["read"])
        assert hub.active
        hub.publish("read", {"stack": 1})
        hub.publish("metric", {"name": "x", "value": 1.0})  # filtered out
        hub.publish("read", {"stack": 2})
        events = sub.poll()
        assert [e.kind for e in events] == ["read", "read"]
        assert [e.data["stack"] for e in events] == [1, 2]
        assert events[0].seq < events[1].seq

    def test_metric_prefix_filter(self):
        hub = StreamHub()
        sub = hub.subscribe(kinds=["metric"], metrics=["serve."])
        hub.publish("metric", {"name": "serve.requests", "value": 1})
        hub.publish("metric", {"name": "edge.requests", "value": 1})
        names = [e.data["name"] for e in sub.poll()]
        assert names == ["serve.requests"]

    def test_prefix_filter_only_applies_to_metric_events(self):
        hub = StreamHub()
        sub = hub.subscribe(metrics=["serve."])
        hub.publish("alert", {"name": "alert.runaway_warning"})
        assert [e.kind for e in sub.poll()] == ["alert"]

    def test_slow_consumer_drops_oldest_and_gets_typed_notice(self):
        hub = StreamHub()
        sub = hub.subscribe(queue=3)
        for i in range(7):
            hub.publish("read", {"round": i})
        assert sub.pending == 3
        assert sub.dropped == 4
        events = sub.poll()
        assert events[0].kind == "notice"
        assert events[0].data == {"code": "backpressure", "dropped": 4}
        assert [e.data["round"] for e in events[1:]] == [4, 5, 6]
        # The notice is one-shot: a clean poll has no notice.
        hub.publish("read", {"round": 7})
        assert [e.kind for e in sub.poll()] == ["read"]

    def test_publisher_never_blocks_on_full_queue(self):
        hub = StreamHub()
        sub = hub.subscribe(queue=1)
        for i in range(1000):
            hub.publish("read", {"round": i})
        assert sub.pending == 1
        assert sub.dropped == 999

    def test_unsubscribe_is_idempotent_and_deactivates(self):
        hub = StreamHub()
        sub = hub.subscribe()
        assert hub.unsubscribe(sub) is True
        assert hub.unsubscribe(sub.id) is False
        assert not hub.active
        assert sub.closed

    def test_close_wakes_and_closes_every_subscription(self):
        hub = StreamHub()
        subs = [hub.subscribe() for _ in range(3)]
        hub.close()
        assert all(sub.closed for sub in subs)
        assert hub.subscribers == 0

    def test_notify_callback_fires_on_enqueue(self):
        hub = StreamHub()
        kicks = []
        hub.subscribe(notify=lambda: kicks.append(1))
        hub.publish("read", {})
        assert kicks == [1]

    def test_wait_returns_once_an_event_is_queued(self):
        hub = StreamHub()
        sub = hub.subscribe()
        assert sub.wait(timeout=0.0) is False
        hub.publish("read", {})
        assert sub.wait(timeout=0.0) is True

    def test_queue_bound_must_be_positive(self):
        hub = StreamHub()
        with pytest.raises(ValueError):
            hub.subscribe(queue=0)

    def test_event_wire_shape_has_no_request_id(self):
        hub = StreamHub()
        sub = hub.subscribe()
        hub.publish("read", {"stack": 3})
        record = sub.poll()[0].to_wire()
        assert record["event"] == "read"
        assert record["stack"] == 3
        assert "id" not in record  # never collides with request answers


# ---------------------------------------------------------------- rollups


class TestRollups:
    def test_windows_seal_on_roll_with_exact_stats(self):
        table = RollupTable(RollupPolicy(window_s=1.0, ring=10))
        for i in range(5):
            table.observe("lat", float(i), t=0.1 * (i + 1))  # all in [0, 1)
        table.observe("lat", 99.0, t=1.5)  # rolls the window
        (window,) = table.windows("lat")[:1]
        assert (window.start, window.end) == (0.0, 1.0)
        assert window.count == 5
        assert window.min == 0.0 and window.max == 4.0
        assert window.mean == pytest.approx(2.0)
        assert window.p50 == 2.0

    def test_advance_seals_without_new_data(self):
        table = RollupTable(RollupPolicy(window_s=1.0, ring=10))
        table.observe("lat", 1.0, t=0.5)
        assert table.windows("lat") == []
        table.advance(2.0)
        assert len(table.windows("lat")) == 1

    def test_ring_keeps_only_the_newest_windows(self):
        table = RollupTable(RollupPolicy(window_s=1.0, ring=3))
        for i in range(8):
            table.observe("lat", float(i), t=float(i) + 0.5)
        table.advance(100.0)
        windows = table.windows("lat")
        assert len(windows) == 3
        assert [w.start for w in windows] == [5.0, 6.0, 7.0]

    def test_snapshot_filters_names_and_last(self):
        table = RollupTable(RollupPolicy(window_s=1.0, ring=10))
        for name in ("a", "b"):
            for i in range(4):
                table.observe(name, 1.0, t=float(i) + 0.5)
        table.advance(10.0)
        snap = table.snapshot(names=["b", "missing"], last=2)
        assert sorted(snap) == ["b"]
        assert len(snap["b"]) == 2

    def test_identical_observations_give_identical_windows(self):
        def run():
            table = RollupTable(RollupPolicy(window_s=0.5, ring=20))
            for i in range(200):
                table.observe("x", math.sin(i / 7.0), t=i * 0.03)
            table.advance(100.0)
            return [w.to_record() for w in table.windows("x")]

        assert run() == run()

    def test_reservoir_decimation_bounds_memory(self):
        table = RollupTable(RollupPolicy(window_s=10.0, ring=2))
        for i in range(10_000):
            table.observe("x", float(i), t=0.5)
        series = table._series["x"]
        assert len(series._open.reservoir) < 256
        table.advance(20.0)
        (window,) = table.windows("x")
        assert window.count == 10_000
        assert window.p99 >= window.p50

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RollupPolicy(window_s=0.0)
        with pytest.raises(ValueError):
            RollupPolicy(ring=0)
        with pytest.raises(ValueError):
            RollupPolicy(coarse_every=1)
        with pytest.raises(ValueError):
            RollupPolicy(coarse_ring=0)


class TestRollupTiers:
    POLICY = RollupPolicy(window_s=1.0, ring=60, coarse_every=15, coarse_ring=24)

    def test_coarse_windows_span_coarse_every_fine_epochs(self):
        table = RollupTable(self.POLICY)
        for i in range(30):  # two full coarse windows of 15 epochs each
            table.observe("lat", float(i), t=float(i) + 0.5)
        table.advance(100.0)
        coarse = table.windows("lat", tier="coarse")
        assert [(w.start, w.end) for w in coarse] == [(0.0, 15.0), (15.0, 30.0)]
        assert [w.count for w in coarse] == [15, 15]
        fine = table.windows("lat", tier="fine")
        assert len(fine) == 30
        # Exact stats aggregate across the covered fine windows.
        assert coarse[0].sum == sum(w.sum for w in fine[:15])
        assert coarse[0].min == min(w.min for w in fine[:15])
        assert coarse[0].max == max(w.max for w in fine[:15])

    def test_coarse_ring_outlives_the_fine_ring(self):
        policy = RollupPolicy(window_s=1.0, ring=4, coarse_every=3, coarse_ring=5)
        table = RollupTable(policy)
        for i in range(30):
            table.observe("lat", float(i), t=float(i) + 0.5)
        table.advance(100.0)
        fine = table.windows("lat", tier="fine")
        coarse = table.windows("lat", tier="coarse")
        assert [w.start for w in fine] == [26.0, 27.0, 28.0, 29.0]
        # 5 coarse windows x 3 epochs reach back past the fine horizon.
        assert [w.start for w in coarse] == [15.0, 18.0, 21.0, 24.0, 27.0]
        assert coarse[0].start < fine[0].start

    def test_coarse_quantiles_come_from_the_raw_stream(self):
        table = RollupTable(self.POLICY)
        for i in range(60):
            table.observe("lat", float(i % 15), t=i * 0.25)  # 15 obs per epoch
        table.advance(100.0)
        (coarse,) = table.windows("lat", tier="coarse")
        assert coarse.count == 60
        assert coarse.p50 == 7.0
        assert coarse.p99 == 14.0

    def test_advance_seals_the_coarse_tier_too(self):
        table = RollupTable(self.POLICY)
        table.observe("lat", 1.0, t=0.5)
        assert table.windows("lat", tier="coarse") == []
        table.advance(15.0)
        assert len(table.windows("lat", tier="coarse")) == 1

    def test_tiers_are_deterministic(self):
        def run():
            table = RollupTable(self.POLICY)
            for i in range(500):
                table.observe("x", math.sin(i / 7.0), t=i * 0.2)
            table.advance(1000.0)
            return [w.to_record() for w in table.windows("x", tier="coarse")]

        assert run() == run()

    def test_snapshot_takes_a_tier(self):
        table = RollupTable(self.POLICY)
        for i in range(20):
            table.observe("a", 1.0, t=float(i) + 0.5)
        table.advance(100.0)
        snap = table.snapshot(tier="coarse")
        # One full window and one partial (sealed by advance); both span
        # the full coarse width.
        assert [w["end"] - w["start"] for w in snap["a"]] == [15.0, 15.0]
        assert [w["count"] for w in snap["a"]] == [15, 5]

    def test_unknown_tier_raises(self):
        table = RollupTable(self.POLICY)
        table.observe("a", 1.0, t=0.5)
        with pytest.raises(ValueError):
            table.windows("a", tier="medium")
        with pytest.raises(ValueError):
            table.snapshot(tier="medium")


# --------------------------------------------------------------- detector


class TestRunawayDetector:
    def test_flat_trace_never_alerts(self):
        detector = RunawayDetector()
        for i in range(50):
            assert detector.observe(0, 0, 60.0, i) is None
        assert detector.alerts == []

    def test_runaway_alerts_before_the_batch_band(self):
        config = StreamLoadgenConfig()
        for severity in config.severities:
            temps = runaway_trajectory(config, severity)
            batch = batch_alarm_round(temps)
            stream = streaming_alert_round(temps)
            assert stream is not None
            assert batch is not None
            assert stream < batch, (severity, stream, batch)

    def test_alert_then_hysteresis_clear(self):
        policy = RunawayPolicy(
            warn_slope_c=1.0, warn_temp_c=50.0, consecutive=2,
            clear_slope_c=0.2, clear_consecutive=3,
        )
        detector = RunawayDetector(policy)
        # After the plateau the slope EWMA halves each round; it needs
        # eight flat rounds to sit below clear_slope_c for three in a row.
        trace = [50.0, 55.0, 60.0, 65.0, 70.0] + [70.0] * 8
        fired = []
        for i, temp in enumerate(trace):
            payload = detector.observe(4, 2, temp, i)
            if payload:
                fired.append((payload["name"], i))
        names = [name for name, _ in fired]
        assert names == [ALERT_WARNING, ALERT_CLEAR]
        # The alert arms only after `consecutive` hot rounds.
        assert fired[0][1] >= policy.consecutive

    def test_hub_receives_alert_events(self):
        hub = StreamHub()
        sub = hub.subscribe(kinds=["alert"])
        detector = RunawayDetector(
            RunawayPolicy(warn_slope_c=0.5, warn_temp_c=10.0, consecutive=1),
            hub=hub,
        )
        for i, temp in enumerate([50.0, 60.0, 70.0]):
            detector.observe(1, 0, temp, i)
        events = sub.poll()
        assert events and events[0].data["name"] == ALERT_WARNING

    def test_decisions_are_bit_reproducible(self):
        temps = runaway_trajectory(StreamLoadgenConfig(), 1.5)

        def run():
            detector = RunawayDetector()
            for i, temp in enumerate(temps):
                detector.observe(7, 3, temp, i)
            return detector.alerts

        first, second = run(), run()
        assert first == second  # exact float equality, field for field
        assert first and first[0]["temp_c"] == second[0]["temp_c"]

    def test_observe_reading_visits_tiers_in_sorted_order(self):
        detector = RunawayDetector(
            RunawayPolicy(warn_slope_c=0.5, warn_temp_c=10.0, consecutive=1)
        )
        for i in range(3):
            fired = detector.observe_reading(
                0, {2: 50.0 + 10 * i, 0: 50.0 + 10 * i}, i
            )
        assert [alert["tier"] for alert in detector.alerts] == [0, 2]
        assert all(alert["name"] == ALERT_WARNING for alert in fired)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RunawayPolicy(alpha=0.0)
        with pytest.raises(ValueError):
            RunawayPolicy(clear_slope_c=1.0, warn_slope_c=0.5)
        with pytest.raises(ValueError):
            RunawayPolicy(consecutive=0)


# ------------------------------------------------------------ edge policy


class TestStreamPolicy:
    def test_defaults_are_valid(self):
        policy = StreamPolicy()
        assert policy.queue >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamPolicy(sample_s=0.0)
        with pytest.raises(ValueError):
            StreamPolicy(heartbeat_s=-1.0)
        with pytest.raises(ValueError):
            StreamPolicy(queue=0)

    def test_clamp_queue(self):
        assert clamp_queue(None, 256) == 256
        assert clamp_queue(17, 256) == 17
        for bad in (0, -5, True, "16", 10**9):
            with pytest.raises(ValueError):
                clamp_queue(bad, 256)

    def test_format_sse_block(self):
        blob = format_sse({"event": "read", "seq": 42, "stack": 3})
        text = blob.decode("utf-8")
        assert text.startswith("event: read\nid: 42\ndata: ")
        assert text.endswith("\n\n")
        assert '"stack":3' in text


# ---------------------------------------------------------------- loadgen


class TestStreamLoadgen:
    def test_report_is_deterministic(self):
        config = StreamLoadgenConfig(subscribers=500, duration_s=0.5)
        assert (
            run_loadgen_stream(config).to_json()
            == run_loadgen_stream(config).to_json()
        )

    def test_occupancy_respects_the_bound_and_slow_tail_drops(self):
        config = StreamLoadgenConfig(
            subscribers=2000, duration_s=3.0, queue=32
        )
        report = run_loadgen_stream(config)
        assert report.peak_queue_depth <= config.queue
        assert report.dropped > 0
        assert 0 < report.drop_fraction < 1
        assert report.detector_no_worse
        assert all(
            p.lead_rounds is not None and p.lead_rounds >= 0
            for p in report.detection
        )

    def test_render_and_json_round(self):
        report = run_loadgen_stream(
            StreamLoadgenConfig(subscribers=100, duration_s=0.2)
        )
        assert "subscribers" in report.to_json()
        assert "detection" in report.render() or "severity" in report.render()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StreamLoadgenConfig(subscribers=0)
        with pytest.raises(ValueError):
            StreamLoadgenConfig(slow_fraction=1.5)
        with pytest.raises(ValueError):
            StreamLoadgenConfig(rounds=3, onset_round=4)


# -------------------------------------------------------------- catalogue


class TestMetricCatalogue:
    def test_table_covers_the_streaming_instruments(self):
        from repro.telemetry import catalogue

        table = catalogue.render_table()
        for name in (
            "stream.events_published",
            "stream.events_dropped",
            "stream.subscribers",
            "stream.alerts",
            "edge.requests",
            "serve.requests",
        ):
            assert f"`{name}`" in table

    def test_docs_table_matches_the_registry(self):
        from repro.telemetry import catalogue

        assert catalogue.check_docs("docs/telemetry.md") == []

    def test_drift_is_detected(self, tmp_path):
        from repro.telemetry import catalogue

        page = tmp_path / "telemetry.md"
        block = catalogue.render_block()
        tampered = block.replace("`stream.alerts`", "`stream.alerts_gone`", 1)
        page.write_text(f"# metrics\n\n{tampered}\n")
        drift = catalogue.check_docs(str(page))
        assert any("stream.alerts" in line for line in drift)

    def test_missing_markers_raise(self, tmp_path):
        from repro.telemetry import catalogue

        page = tmp_path / "plain.md"
        page.write_text("# no markers here\n")
        with pytest.raises(ValueError):
            catalogue.check_docs(str(page))
