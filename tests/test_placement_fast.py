"""Golden parity: vectorized placement fast path vs the scalar reference.

The public `reconstruction_error`/`observer_error`/`greedy_placement` now
run vectorized; the original point-at-a-time implementations stay behind
as `*_scalar`.  These tests pin the fast path to the reference — bitwise
where the math is operation-for-operation identical, last-ulp tolerance
where BLAS reduction order may differ (the observer's weight synthesis).
"""

import numpy as np
import pytest

from repro.network.placement import (
    PlacementResult,
    candidate_grid,
    greedy_placement,
    observer_error,
    observer_error_scalar,
    probe_points,
    reconstruction_error,
    reconstruction_error_scalar,
    sample_field,
)
from repro.thermal.grid import ThermalLayer, build_stack_grid
from repro.thermal.materials import BEOL, COPPER, SILICON
from repro.thermal.power import hotspot_power_map, uniform_power_map
from repro.thermal.solver import steady_state


@pytest.fixture(scope="module")
def grid():
    layers = [
        ThermalLayer("die.si", 100e-6, SILICON, heat_source=True),
        ThermalLayer("die.beol", 8e-6, BEOL),
        ThermalLayer("spreader", 500e-6, COPPER),
    ]
    return build_stack_grid(layers, 5e-3, 5e-3, nx=12, ny=12)


@pytest.fixture(scope="module")
def fields(grid):
    workloads = [
        hotspot_power_map(12, 12, 5e-3, 5e-3, [(0.8e-3, 0.8e-3, 1e-3, 1e-3, 2.0)], 0.3),
        hotspot_power_map(12, 12, 5e-3, 5e-3, [(3.2e-3, 3.2e-3, 1e-3, 1e-3, 2.0)], 0.3),
        hotspot_power_map(12, 12, 5e-3, 5e-3, [(2.0e-3, 3.5e-3, 1.4e-3, 0.8e-3, 1.5)], 0.4),
    ]
    return [steady_state(grid, {"die.si": pmap}) for pmap in workloads]


class TestSampleFieldBitParity:
    def test_matches_at_on_random_points(self, fields):
        rng = np.random.default_rng(2012)
        xs = rng.uniform(-0.5e-3, 5.5e-3, 200)  # includes out-of-range (clipped)
        ys = rng.uniform(-0.5e-3, 5.5e-3, 200)
        for field in fields:
            vec = sample_field(field, "die.si", xs, ys)
            ref = np.array([field.at("die.si", float(x), float(y)) for x, y in zip(xs, ys)])
            assert np.array_equal(vec, ref)

    def test_matches_at_on_grid_nodes(self, fields):
        # Exactly-on-node points exercise the ix0 == ix1 degenerate lerp.
        xs = np.linspace(0.0, 5e-3, 12)
        ys = np.linspace(0.0, 5e-3, 12)
        gx, gy = np.meshgrid(xs, ys)
        vec = sample_field(fields[0], "die.si", gx.ravel(), gy.ravel())
        ref = np.array(
            [fields[0].at("die.si", float(x), float(y)) for x, y in zip(gx.ravel(), gy.ravel())]
        )
        assert np.array_equal(vec, ref)

    def test_probe_points_scalar_visit_order(self, fields):
        px, py = probe_points(fields[0], 5)
        xs = np.linspace(0.0, 5e-3, 5)
        ys = np.linspace(0.0, 5e-3, 5)
        expected = [(x, y) for y in ys for x in xs]
        assert list(zip(px, py)) == expected


class TestReconstructionErrorParity:
    def test_bit_identical(self, fields):
        rng = np.random.default_rng(7)
        for trial in range(6):
            k = int(rng.integers(1, 6))
            sites = [
                (float(rng.uniform(0, 5e-3)), float(rng.uniform(0, 5e-3))) for _ in range(k)
            ]
            for field in fields:
                fast = reconstruction_error(field, "die.si", sites, probe_grid=9)
                ref = reconstruction_error_scalar(field, "die.si", sites, probe_grid=9)
                assert fast == ref

    def test_tie_breaks_to_first_site(self, fields):
        # Two sites equidistant from a probe column: scalar argmin keeps
        # the first; the fast path must agree exactly, not just closely.
        sites = [(1.0e-3, 2.5e-3), (4.0e-3, 2.5e-3)]
        fast = reconstruction_error(fields[0], "die.si", sites, probe_grid=11)
        ref = reconstruction_error_scalar(fields[0], "die.si", sites, probe_grid=11)
        assert fast == ref

    def test_validation_matches(self, fields):
        with pytest.raises(ValueError):
            reconstruction_error(fields[0], "die.si", [], 8)


class TestObserverErrorParity:
    def test_within_last_ulp_band(self, fields):
        rng = np.random.default_rng(11)
        for trial in range(4):
            k = int(rng.integers(3, 7))
            sites = [
                (float(rng.uniform(0, 5e-3)), float(rng.uniform(0, 5e-3))) for _ in range(k)
            ]
            for field in fields:
                fast = observer_error(field, "die.si", sites, fields, probe_grid=8)
                ref = observer_error_scalar(field, "die.si", sites, fields, probe_grid=8)
                assert fast == pytest.approx(ref, abs=1e-9, rel=1e-12)

    def test_validation_matches(self, fields):
        with pytest.raises(ValueError):
            observer_error(fields[0], "die.si", [], fields)
        with pytest.raises(ValueError):
            observer_error(fields[0], "die.si", [(1e-3, 1e-3)], [])


def _greedy_scalar_reference(fields, layer, candidates, budget, probe_grid):
    """The original scalar greedy, reimplemented verbatim as the oracle."""
    chosen = []
    remaining = list(candidates)
    trace = []
    worst = float("inf")
    for _ in range(budget):
        best_site = None
        best_error = float("inf")
        for site in remaining:
            error = max(
                reconstruction_error_scalar(field, layer, chosen + [site], probe_grid)
                for field in fields
            )
            if error < best_error:
                best_error = error
                best_site = site
        chosen.append(best_site)
        remaining.remove(best_site)
        worst = best_error
        trace.append(worst)
    return PlacementResult(sites=chosen, worst_error_c=worst, error_trace=trace)


class TestGreedyParity:
    def test_sites_and_trace_match_scalar_greedy(self, fields):
        candidates = candidate_grid(5e-3, 5e-3, per_axis=4)
        fast = greedy_placement(fields, "die.si", candidates, sensor_budget=4, probe_grid=6)
        ref = _greedy_scalar_reference(fields, "die.si", candidates, 4, 6)
        assert fast.sites == ref.sites
        assert fast.error_trace == ref.error_trace
        assert fast.worst_error_c == ref.worst_error_c

    def test_single_field_single_sensor(self, fields):
        candidates = candidate_grid(5e-3, 5e-3, per_axis=3)
        fast = greedy_placement(fields[:1], "die.si", candidates, sensor_budget=1, probe_grid=7)
        ref = _greedy_scalar_reference(fields[:1], "die.si", candidates, 1, 7)
        assert fast.sites == ref.sites
        assert fast.worst_error_c == ref.worst_error_c

    def test_full_budget_exhausts_candidates(self, fields):
        candidates = candidate_grid(5e-3, 5e-3, per_axis=3)
        fast = greedy_placement(fields, "die.si", candidates, sensor_budget=9, probe_grid=5)
        ref = _greedy_scalar_reference(fields, "die.si", candidates, 9, 5)
        assert fast.sites == ref.sites
        assert fast.error_trace == ref.error_trace
