"""Tests for metrics, tables, sweeps and the sensor configuration."""

import numpy as np
import pytest

from repro.analysis.metrics import error_stats, inaccuracy_band
from repro.analysis.sweeps import sweep_temperature, temperature_axis
from repro.analysis.tables import render_table
from repro.config import SensorConfig


class TestErrorStats:
    def test_basic_statistics(self):
        stats = error_stats([-1.0, 0.0, 1.0, 2.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(0.5)
        assert stats.band == pytest.approx(2.0)
        assert stats.three_sigma == pytest.approx(3.0 * np.std([-1.0, 0.0, 1.0, 2.0]))

    def test_band_is_worst_absolute(self):
        assert inaccuracy_band([-3.0, 2.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            error_stats([])
        with pytest.raises(ValueError):
            inaccuracy_band([])

    def test_describe_scales_units(self):
        stats = error_stats([0.001, -0.001])
        text = stats.describe(unit="mV", scale=1e3)
        assert "1.000mV" in text


class TestRenderTable:
    def test_alignment_and_structure(self):
        table = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1  # equal widths

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_numbers_stringified(self):
        table = render_table(["x"], [[1.5]])
        assert "1.5" in table


class TestSweeps:
    def test_temperature_axis_bounds(self):
        axis = temperature_axis(-40.0, 125.0, points=12)
        assert axis[0] == -40.0 and axis[-1] == 125.0

    def test_temperature_axis_validation(self):
        with pytest.raises(ValueError):
            temperature_axis(50.0, 50.0)
        with pytest.raises(ValueError):
            temperature_axis(0.0, 10.0, points=1)

    def test_sweep_errors(self):
        estimates, errors = sweep_temperature(lambda t: t + 0.5, [0.0, 10.0])
        np.testing.assert_allclose(estimates, [0.5, 10.5])
        np.testing.assert_allclose(errors, [0.5, 0.5])


class TestSensorConfig:
    def test_defaults_valid(self):
        SensorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"psro_stages": 12},
            {"psro_stages": 1},
            {"tsro_stages": 8},
            {"psro_window": 0.0},
            {"tsro_periods": 0},
            {"ref_clock_hz": 0.0},
            {"calibration_rounds": 0},
            {"newton_iterations": 0},
            {"lut_points_per_axis": 1},
            {"temp_min_c": 125.0, "temp_max_c": -40.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SensorConfig(**kwargs)

    def test_conversion_time(self):
        config = SensorConfig()
        t = config.conversion_time(tsro_frequency=10e6)
        assert t == pytest.approx(2 * config.psro_window + config.tsro_periods / 10e6)

    def test_conversion_time_validation(self):
        with pytest.raises(ValueError):
            SensorConfig().conversion_time(0.0)

    def test_with_windows(self):
        config = SensorConfig().with_windows(psro_window=1e-6, tsro_periods=48)
        assert config.psro_window == 1e-6
        assert config.tsro_periods == 48

    def test_with_windows_partial(self):
        base = SensorConfig()
        config = base.with_windows(tsro_periods=48)
        assert config.psro_window == base.psro_window
        assert config.tsro_periods == 48
