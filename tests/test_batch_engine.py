"""Golden equivalence of the batch engine against the scalar model stack.

Every layer of ``repro.batch`` claims to be an array twin of a scalar
function.  These tests pin that claim: device currents and bank
frequencies to ~1e-12 relative, extraction to 1e-6, temperature inversion
to the shared 1e-4 K root tolerance, and whole-population conversions
count-exact (same rng streams, same quantisation) against the scalar
``PTSensor.read`` double loop.
"""

import numpy as np
import pytest

from repro.batch import (
    BatchCalibration,
    EnvironmentGrid,
    bank_frequencies_batch,
    calibrate_batch,
    drain_current_batch,
    estimate_temperature_batch,
    extract_process_batch,
    process_frequencies_batch,
    read_population,
    read_uncalibrated_population,
    series_stack_current_batch,
    stage_delays_batch,
)
from repro.baselines.uncalibrated import UncalibratedTsroSensor
from repro.circuits.inverter import (
    _CAPACITANCE_CACHE,
    BalancedStage,
    input_capacitance_cached,
    load_capacitance_cached,
)
from repro.circuits.ring_oscillator import Environment
from repro.core.decoupler import extract_process
from repro.core.errors import TemperatureRangeError
from repro.core.temperature import estimate_temperature, estimate_temperature_clamped
from repro.device.mosfet import drain_current
from repro.device.stack import series_stack_current
from repro.experiments.common import (
    build_sensor,
    die_population,
    population_sensors,
    reference_setup,
)
from repro.units import ZERO_CELSIUS_IN_KELVIN, celsius_to_kelvin


@pytest.fixture(scope="module")
def setup():
    return reference_setup()


class TestEnvironmentGrid:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            EnvironmentGrid.of(temp_k=[300.0, -5.0], vdd=1.0)
        with pytest.raises(ValueError):
            EnvironmentGrid.of(temp_k=300.0, vdd=0.0)
        with pytest.raises(ValueError):
            EnvironmentGrid.of(temp_k=300.0, vdd=1.0, mun_scale=0.0)

    def test_rejects_incompatible_shapes(self):
        with pytest.raises(ValueError):
            EnvironmentGrid.of(temp_k=np.ones(3) * 300.0, vdd=np.ones(4))

    def test_product_shape_and_roundtrip(self):
        grid = EnvironmentGrid.product([250.0, 300.0, 350.0], [0.9, 1.0])
        assert grid.shape == (3, 2)
        assert grid.size == 6
        env = grid.environment_at((2, 1))
        assert env.temp_k == 350.0 and env.vdd == 1.0

    def test_for_dies_matches_scalar_environments(self):
        dies = die_population(4)
        sensor = build_sensor(dies[0])
        temps_k = np.array([250.0, 300.0, 390.0])
        grid = EnvironmentGrid.for_dies(dies, sensor.location, temps_k, 1.0)
        assert grid.shape == (4, 3)
        for i, die in enumerate(dies):
            scalar = build_sensor(die)
            for j, temp_k in enumerate(temps_k):
                env = scalar.physical_environment(float(temp_k), 1.0)
                batch_env = grid.environment_at((i, j))
                assert batch_env == env

    def test_from_environments_iterates_back(self):
        envs = [
            Environment(temp_k=300.0, vdd=1.0, dvtn=0.01),
            Environment(temp_k=350.0, vdd=0.9, dvtp=-0.02, mup_scale=1.1),
        ]
        grid = EnvironmentGrid.from_environments(envs)
        assert list(grid.environments()) == envs


class TestDeviceEquivalence:
    def test_drain_current_matches_scalar(self, setup):
        params = setup.technology.nmos
        vgs = np.linspace(0.2, 1.0, 7)
        temps = np.array([233.15, 300.0, 398.15]).reshape(-1, 1)
        batch = drain_current_batch(params, vgs, 0.5, temps)
        for i, temp_k in enumerate(temps[:, 0]):
            for j, v in enumerate(vgs):
                scalar = drain_current(params, float(v), 0.5, float(temp_k))
                np.testing.assert_allclose(batch[i, j], scalar, rtol=1e-12)

    def test_dvt_and_mu_scale_match_param_replacement(self, setup):
        params = setup.technology.nmos
        dvt, mu = 0.02, 1.07
        shifted = params.with_vt_shift(dvt).with_mobility_scale(mu)
        batch = drain_current_batch(params, 0.8, 0.5, 300.0, dvt=dvt, mu_scale=mu)
        scalar = drain_current(shifted, 0.8, 0.5, 300.0)
        np.testing.assert_allclose(batch, scalar, rtol=1e-9)

    def test_series_stack_matches_scalar(self, setup):
        params = setup.technology.pmos
        for count in (1, 2, 3):
            batch = series_stack_current_batch(
                params, count, np.array([0.7, 0.9]), 0.45, 320.0
            )
            for j, vgs in enumerate((0.7, 0.9)):
                scalar = series_stack_current(params, count, vgs, 0.45, 320.0)
                np.testing.assert_allclose(batch[j], scalar, rtol=1e-9)


class TestCircuitEquivalence:
    def test_stage_delays_match_scalar(self, setup):
        tech = setup.technology
        bank = setup.model.bank
        grid = EnvironmentGrid.product([250.0, 300.0, 390.0], [0.95, 1.0])
        for osc in (bank.psro_n, bank.psro_p, bank.tsro, bank.reference):
            stage = osc.stage
            load = load_capacitance_cached(stage, tech)
            rise, fall = stage_delays_batch(
                stage, tech.nmos, tech.pmos, grid, grid.dvtn, grid.dvtp, load
            )
            for index in np.ndindex(grid.shape):
                env = grid.environment_at(index)
                s_rise, s_fall = stage.delays(
                    tech.nmos, tech.pmos, env.vdd, env.temp_k, load
                )
                np.testing.assert_allclose(rise[index], s_rise, rtol=1e-12)
                np.testing.assert_allclose(fall[index], s_fall, rtol=1e-12)

    def test_unregistered_stage_type_raises(self, setup):
        class MysteryStage(BalancedStage):
            pass

        tech = setup.technology
        grid = EnvironmentGrid.of(temp_k=300.0, vdd=1.0)
        with pytest.raises(TypeError):
            stage_delays_batch(
                MysteryStage(), tech.nmos, tech.pmos, grid, 0.0, 0.0, 1e-15
            )

    def test_bank_frequencies_match_scalar(self, setup):
        dies = die_population(3)
        sensors = [build_sensor(die) for die in dies]
        bank = sensors[0].bank
        temps_k = np.array([260.0, 330.0])
        grid = EnvironmentGrid.for_dies(
            dies[:1], sensors[0].location, temps_k, setup.technology.vdd
        )
        batch = bank_frequencies_batch(bank, grid)
        assert batch.shape == (1, 2)
        for j, temp_k in enumerate(temps_k):
            env = sensors[0].physical_environment(float(temp_k))
            scalar = bank.frequencies(env)
            point = batch.at((0, j))
            np.testing.assert_allclose(point.psro_n, scalar.psro_n, rtol=1e-12)
            np.testing.assert_allclose(point.psro_p, scalar.psro_p, rtol=1e-12)
            np.testing.assert_allclose(point.tsro, scalar.tsro, rtol=1e-12)
            np.testing.assert_allclose(point.reference, scalar.reference, rtol=1e-12)


class TestModelEquivalence:
    def test_extraction_matches_scalar(self, setup):
        temp_k = celsius_to_kelvin(40.0)
        shifts = [(0.0, 0.0), (0.02, -0.015), (-0.025, 0.01), (0.03, 0.03)]
        f_n, f_p = process_frequencies_batch(
            setup.model,
            np.array([s[0] for s in shifts]),
            np.array([s[1] for s in shifts]),
            temp_k,
        )
        dvtn, dvtp = extract_process_batch(
            setup.model, f_n, f_p, temp_k, lut=setup.lut
        )
        for k, (true_n, true_p) in enumerate(shifts):
            s_n, s_p = extract_process(
                setup.model, float(f_n[k]), float(f_p[k]), temp_k, lut=setup.lut
            )
            np.testing.assert_allclose(dvtn[k], s_n, rtol=1e-6, atol=1e-9)
            np.testing.assert_allclose(dvtp[k], s_p, rtol=1e-6, atol=1e-9)
            assert abs(dvtn[k] - true_n) < 1e-4
            assert abs(dvtp[k] - true_p) < 1e-4

    def test_temperature_inversion_matches_scalar(self, setup):
        temps_k = np.array([-30.0, 25.0, 110.0]) + ZERO_CELSIUS_IN_KELVIN
        f_t = np.array(
            [setup.model.tsro_frequency(0.01, -0.01, float(t)) for t in temps_k]
        )
        batch = estimate_temperature_batch(setup.model, f_t, 0.01, -0.01)
        for k, f in enumerate(f_t):
            scalar = estimate_temperature(setup.model, float(f), 0.01, -0.01)
            assert abs(batch[k] - scalar) < 5e-4
            assert abs(batch[k] - temps_k[k]) < 1e-2

    def test_temperature_clamping_matches_scalar(self, setup):
        cold_f = setup.model.tsro_frequency(
            0.0, 0.0, celsius_to_kelvin(setup.config.temp_min_c) - 40.0
        )
        with pytest.raises(TemperatureRangeError):
            estimate_temperature_batch(setup.model, cold_f, 0.0, 0.0)
        clamped = estimate_temperature_batch(
            setup.model, np.array([cold_f]), 0.0, 0.0, clamp=True
        )
        scalar = estimate_temperature_clamped(setup.model, cold_f, 0.0, 0.0)
        np.testing.assert_allclose(clamped[0], scalar, atol=1e-9)

    def test_calibration_matches_per_point(self, setup):
        temp_k = np.array([0.0, 85.0]) + ZERO_CELSIUS_IN_KELVIN
        dvtn = np.array([0.02, -0.02])
        f_n, f_p = process_frequencies_batch(setup.model, dvtn, 0.01, temp_k)
        f_t = np.array(
            [
                setup.model.tsro_frequency(float(dvtn[k]), 0.01, float(temp_k[k]))
                for k in range(2)
            ]
        )
        result = calibrate_batch(setup.model, f_n, f_p, f_t, lut=setup.lut)
        assert isinstance(result, BatchCalibration)
        assert result.converged.all()
        np.testing.assert_allclose(result.dvtn, dvtn, atol=1e-4)
        np.testing.assert_allclose(result.temp_k, temp_k, atol=0.05)
        # scalar lane-by-lane must agree with the batch solve
        single = calibrate_batch(
            setup.model,
            f_n[1:],
            f_p[1:],
            f_t[1:],
            lut=setup.lut,
        )
        np.testing.assert_allclose(single.dvtn, result.dvtn[1:], atol=1e-12)
        np.testing.assert_allclose(single.temp_k, result.temp_k[1:], atol=1e-12)


class TestPopulationEquivalence:
    def test_read_population_matches_scalar_reads(self):
        n_dies, temps_c = 5, [-20.0, 35.0, 100.0]
        batch_sensors = population_sensors(n_dies)
        scalar_sensors = population_sensors(n_dies)
        readings = read_population(batch_sensors, temps_c, repeats=2)

        for i, sensor in enumerate(scalar_sensors):
            for j, temp_c in enumerate(temps_c):
                for r in range(2):
                    scalar = sensor.read(temp_c)
                    assert readings.counts_n[i, j, r] == scalar.counts_n
                    assert readings.counts_p[i, j, r] == scalar.counts_p
                    assert readings.counts_ref[i, j, r] == scalar.counts_ref
                    assert readings.rounds_used[i, j, r] == scalar.rounds_used
                    assert bool(readings.converged[i, j, r]) == scalar.converged
                    assert (
                        abs(readings.temperature_c[i, j, r] - scalar.temperature_c)
                        < 1e-3
                    )
                    assert abs(readings.dvtn[i, j, r] - scalar.dvtn) < 1e-7
                    assert abs(readings.dvtp[i, j, r] - scalar.dvtp) < 1e-7
                    np.testing.assert_allclose(
                        readings.energy_total[i, j, r], scalar.energy.total, rtol=1e-9
                    )
                    np.testing.assert_allclose(
                        readings.conversion_time[i, j, r],
                        scalar.conversion_time,
                        rtol=1e-9,
                    )

    def test_rng_streams_stay_aligned_after_batch_read(self):
        batch_sensors = population_sensors(3)
        scalar_sensors = population_sensors(3)
        read_population(batch_sensors, [25.0, 75.0])
        for sensor in scalar_sensors:
            for temp_c in (25.0, 75.0):
                sensor.read(temp_c)
        # Next conversions must consume identical rng draws on both paths.
        for batch_s, scalar_s in zip(batch_sensors, scalar_sensors):
            follow_b = batch_s.read(55.0)
            follow_s = scalar_s.read(55.0)
            assert follow_b.counts_n == follow_s.counts_n
            assert follow_b.counts_p == follow_s.counts_p
            assert follow_b.counts_ref == follow_s.counts_ref

    def test_deterministic_read_matches_scalar(self):
        sensors = population_sensors(2)
        readings = read_population(sensors, [65.0], deterministic=True)
        scalar = population_sensors(2)[0].read(65.0, deterministic=True)
        assert readings.counts_n[0, 0, 0] == scalar.counts_n
        assert abs(readings.temperature_c[0, 0, 0] - scalar.temperature_c) < 1e-3

    def test_mixed_designs_rejected(self, setup):
        from repro.core.sensor import PTSensor

        sensors = population_sensors(2)
        odd = PTSensor(
            setup.technology,
            config=setup.config.with_windows(
                psro_window=setup.config.psro_window * 2,
                tsro_periods=setup.config.tsro_periods,
            ),
            die=die_population(3)[2],
        )
        with pytest.raises(ValueError):
            read_population(sensors + [odd], [25.0])

    def test_uncalibrated_population_matches_scalar(self, setup):
        dies = die_population(4)
        make = lambda die: UncalibratedTsroSensor(
            setup.technology, config=setup.config, die=die, sensing_model=setup.model
        )
        batch_baselines = [make(die) for die in dies]
        scalar_baselines = [make(die) for die in dies]
        temps_c = np.array([-40.0, 30.0, 125.0])
        estimates = read_uncalibrated_population(batch_baselines, temps_c)
        assert estimates.shape == (4, 3)
        for i, baseline in enumerate(scalar_baselines):
            for j, temp_c in enumerate(temps_c):
                scalar = baseline.read_temperature(float(temp_c))
                assert abs(estimates[i, j] - scalar) < 1e-3


class TestCaches:
    def test_capacitance_cache_hits(self, setup):
        stage = BalancedStage()
        _CAPACITANCE_CACHE.clear()
        first = load_capacitance_cached(stage, setup.technology)
        assert len(_CAPACITANCE_CACHE) == 2  # input + load entries
        again = load_capacitance_cached(stage, setup.technology)
        assert again == first
        assert len(_CAPACITANCE_CACHE) == 2
        direct = stage.input_capacitance(setup.technology)
        assert input_capacitance_cached(stage, setup.technology) == direct

    def test_factorization_cache_behaviour(self):
        from repro.thermal.grid import ThermalLayer, build_stack_grid
        from repro.thermal.materials import BEOL, SILICON
        from repro.thermal.power import uniform_power_map
        from repro.thermal.solver import (
            clear_factorization_caches,
            factorization_cache_stats,
            steady_state,
        )

        def make_grid():
            layers = [
                ThermalLayer("die.si", 100e-6, SILICON, heat_source=True),
                ThermalLayer("die.beol", 8e-6, BEOL),
            ]
            return build_stack_grid(layers, 5e-3, 5e-3, nx=8, ny=8)

        grid = make_grid()
        power = {"die.si": uniform_power_map(8, 8, 1.0)}
        clear_factorization_caches()
        cold = steady_state(grid, power)
        stats = factorization_cache_stats()
        assert stats["steady_misses"] == 1 and stats["steady_hits"] == 0

        warm = steady_state(grid, power)
        stats = factorization_cache_stats()
        assert stats["steady_hits"] == 1
        np.testing.assert_array_equal(cold.values, warm.values)

        other = make_grid()
        steady_state(other, power)
        stats = factorization_cache_stats()
        assert stats["steady_misses"] == 2

        clear_factorization_caches()
        stats = factorization_cache_stats()
        assert stats["steady_hits"] == 0 and stats["steady_misses"] == 0
