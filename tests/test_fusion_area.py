"""Tests for the Kalman fusion filter and the macro area model."""

import numpy as np
import pytest

from repro.config import SensorConfig
from repro.core.area import estimate_macro_area
from repro.device.technology import nominal_65nm
from repro.experiments import exp_e9_fusion
from repro.network.fusion import TemperatureKalman, filter_trace


class TestTemperatureKalman:
    def test_first_update_adopts_measurement(self):
        kalman = TemperatureKalman()
        assert kalman.update(0.0, 55.0) == pytest.approx(55.0)

    def test_constant_signal_noise_suppression(self):
        """On a constant truth, the track's error variance must shrink."""
        rng = np.random.default_rng(0)
        kalman = TemperatureKalman(measurement_sigma_c=0.5, slew_limit_c_per_s=1.0)
        errors = []
        for k in range(400):
            reading = 60.0 + rng.normal(0.0, 0.5)
            errors.append(kalman.update(k * 1e-3, reading) - 60.0)
        late = np.std(errors[200:])
        assert late < 0.5 / 2.0  # at least 2x suppression after settling

    def test_tracks_a_ramp_with_bounded_lag(self):
        kalman = TemperatureKalman(measurement_sigma_c=0.1, slew_limit_c_per_s=50.0)
        lag = 0.0
        for k in range(300):
            t = k * 1e-3
            truth = 40.0 + 20.0 * t  # 20 degC/s ramp
            estimate = kalman.update(t, truth)  # noiseless readings
            lag = truth - estimate
        assert 0.0 <= lag < 0.1

    def test_uncertainty_shrinks_with_updates(self):
        kalman = TemperatureKalman(measurement_sigma_c=0.3, slew_limit_c_per_s=1.0)
        kalman.update(0.0, 50.0)
        first = kalman.sigma_c
        for k in range(1, 50):
            kalman.update(k * 1e-3, 50.0)
        assert kalman.sigma_c < first

    def test_time_order_enforced(self):
        kalman = TemperatureKalman()
        kalman.update(1.0, 50.0)
        with pytest.raises(ValueError):
            kalman.update(0.5, 51.0)

    def test_reset(self):
        kalman = TemperatureKalman()
        kalman.update(0.0, 50.0)
        kalman.reset()
        assert kalman.state_c is None
        assert kalman.update(5.0, 80.0) == pytest.approx(80.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TemperatureKalman(measurement_sigma_c=0.0)
        with pytest.raises(ValueError):
            TemperatureKalman(slew_limit_c_per_s=-1.0)

    def test_filter_trace_length_and_validation(self):
        out = filter_trace([0.0, 1e-3, 2e-3], [1.0, 2.0, 3.0])
        assert len(out) == 3
        with pytest.raises(ValueError):
            filter_trace([0.0], [1.0, 2.0])


class TestE9Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_e9_fusion.run(fast=True)

    def test_cheap_sensor_noisier_raw(self, result):
        assert result.cheap_raw_sigma > 2.0 * result.reference_sigma

    def test_filtering_recovers_resolution(self, result):
        assert result.cheap_filtered_sigma < result.cheap_raw_sigma / 1.5

    def test_energy_saving_substantial(self, result):
        assert result.energy_saving() > 2.5

    def test_renders(self, result):
        assert "R-E9" in result.render()


class TestMacroArea:
    @pytest.fixture(scope="class")
    def area(self):
        return estimate_macro_area(nominal_65nm())

    def test_total_is_sum(self, area):
        assert area.total == pytest.approx(
            area.oscillators + area.counters + area.rom + area.control
        )

    def test_published_sensor_class(self, area):
        """RO-based PVT sensors occupy 0.001-0.05 mm^2 at 65 nm."""
        assert 0.001 < area.total_mm2 < 0.05

    def test_oscillators_dominate(self, area):
        """The deliberately large sensing/limiting devices are the cost."""
        assert area.oscillators == max(value for _, value in area.as_rows())

    def test_rows_sorted(self, area):
        values = [value for _, value in area.as_rows()]
        assert values == sorted(values, reverse=True)

    def test_bigger_lut_more_rom(self):
        tech = nominal_65nm()
        small = estimate_macro_area(tech, SensorConfig(lut_points_per_axis=5))
        big = estimate_macro_area(tech, SensorConfig(lut_points_per_axis=17))
        assert big.rom > small.rom
        assert big.oscillators == pytest.approx(small.oscillators)
