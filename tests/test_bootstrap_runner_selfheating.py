"""Tests for bootstrap CIs, the suite runner, self-heating, DVFS mode."""

import json
import os

import numpy as np
import pytest

from repro.analysis.bootstrap import (
    band_interval,
    bootstrap_statistic,
    sigma_interval,
)
from repro.core.self_heating import analyse_self_heating
from repro.experiments.common import build_sensor, die_population
from repro.experiments.runner import run_all, write_report


class TestBootstrap:
    def test_point_estimate_matches_statistic(self):
        interval = band_interval([-1.0, 0.5, 2.0])
        assert interval.point == pytest.approx(2.0)

    def test_interval_brackets_point(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(0.0, 1.0, 200)
        interval = sigma_interval(samples)
        assert interval.low <= interval.point <= interval.high

    def test_coverage_roughly_nominal(self):
        """95% intervals for sigma should contain the truth ~95% of runs."""
        rng = np.random.default_rng(1)
        hits = 0
        trials = 60
        for trial in range(trials):
            samples = rng.normal(0.0, 1.0, 60)
            interval = bootstrap_statistic(
                samples, lambda s: float(np.std(s)), resamples=400, seed=trial
            )
            if interval.contains(1.0):
                hits += 1
        assert hits / trials > 0.80  # generous: percentile bootstrap is biased low

    def test_deterministic_given_seed(self):
        samples = [0.1, -0.4, 0.9, -1.2, 0.3]
        a = band_interval(samples)
        b = band_interval(samples)
        assert (a.low, a.high) == (b.low, b.high)

    def test_describe_scaling(self):
        interval = band_interval([0.001, -0.002])
        text = interval.describe(scale=1e3, unit="mV")
        assert "2.000mV" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            band_interval([1.0])
        with pytest.raises(ValueError):
            bootstrap_statistic([1.0, 2.0], np.mean, confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_statistic([1.0, 2.0], np.mean, resamples=10)


class TestRunner:
    def test_subset_run_and_report(self, tmp_path):
        result = run_all(fast=True, only=["R-F1", "R-F2"])
        assert result.all_ok
        assert [o.key for o in result.outcomes] == ["R-F1", "R-F2"]
        report = tmp_path / "report.md"
        write_report(result, str(report))
        text = report.read_text()
        assert "## R-F1 (ok" in text and "## R-F2 (ok" in text

    def test_json_round_trip(self):
        result = run_all(fast=True, only=["R-F2"])
        payload = json.loads(result.to_json())
        assert payload["fast"] is True
        assert payload["outcomes"][0]["key"] == "R-F2"
        assert payload["outcomes"][0]["ok"] is True

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            run_all(fast=True, only=["R-XX"])

    def test_failures_captured_not_raised(self, monkeypatch):
        from repro.experiments import ALL_EXPERIMENTS

        class Broken:
            @staticmethod
            def run(fast=False):
                raise RuntimeError("boom")

        monkeypatch.setitem(ALL_EXPERIMENTS, "R-F1", Broken)
        result = run_all(fast=True, only=["R-F1", "R-F2"])
        assert not result.all_ok
        assert result.failures() == ["R-F1"]
        assert "boom" in result.outcomes[0].rendered


class TestSelfHeating:
    @pytest.fixture(scope="class")
    def report(self):
        return analyse_self_heating()

    def test_steady_rise_sub_kelvin(self, report):
        """Even running forever, 550 uW in a 60 um macro stays < 1 K."""
        assert 0.0 < report.steady_rise_k < 1.0

    def test_transient_rise_negligible(self, report):
        """One 6 us conversion cannot heat the macro measurably."""
        assert report.transient_rise_k < 0.05
        assert report.transient_rise_k < report.steady_rise_k

    def test_duty_cycled_rise_negligible(self, report):
        """At 1 kS/s the average self-heating is millikelvin-class."""
        assert report.duty_cycled_rise_k < 0.01

    def test_time_constant_much_longer_than_conversion(self, report):
        assert report.local_time_constant_s > 100.0 * 6.3e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            analyse_self_heating(macro_power_w=0.0)


class TestDvfsKnownSetpoint:
    @pytest.mark.parametrize("vdd", [1.0, 1.1, 1.2])
    def test_accuracy_maintained_across_dvfs_points(self, vdd):
        die = die_population(3)[1]
        sensor = build_sensor(die)
        reading = sensor.read(65.0, vdd=vdd, assume_vdd=vdd, deterministic=True)
        assert reading.temperature_c == pytest.approx(65.0, abs=1.0)

    def test_unknown_setpoint_reproduces_droop_error(self):
        """Without the setpoint, a low DVFS rail looks like a huge error."""
        sensor = build_sensor()
        informed = sensor.read(65.0, vdd=1.08, assume_vdd=1.08, deterministic=True)
        naive = sensor.read(65.0, vdd=1.08, deterministic=True)
        assert abs(informed.temperature_c - 65.0) < abs(naive.temperature_c - 65.0)
