"""Tests for the design-time sensing model."""

import numpy as np
import pytest

from repro.config import SensorConfig
from repro.core.sensing_model import SensingModel
from repro.device.technology import nominal_65nm


@pytest.fixture(scope="module")
def model():
    return SensingModel(nominal_65nm())


class TestForwardModel:
    def test_typical_frequencies_positive(self, model):
        f_n, f_p = model.process_frequencies(0.0, 0.0, 300.0)
        assert f_n > 0.0 and f_p > 0.0

    def test_higher_vtn_slows_psro_n(self, model):
        f_n0, _ = model.process_frequencies(0.0, 0.0, 300.0)
        f_n1, _ = model.process_frequencies(0.02, 0.0, 300.0)
        assert f_n1 < f_n0

    def test_higher_vtp_slows_psro_p(self, model):
        _, f_p0 = model.process_frequencies(0.0, 0.0, 300.0)
        _, f_p1 = model.process_frequencies(0.0, 0.02, 300.0)
        assert f_p1 < f_p0

    def test_tsro_monotone_in_temperature(self, model):
        temps = np.linspace(230.0, 400.0, 12)
        freqs = [model.tsro_frequency(0.0, 0.0, float(t)) for t in temps]
        assert all(b > a for a, b in zip(freqs, freqs[1:]))

    def test_tsro_slows_on_slow_dies(self, model):
        fast = model.tsro_frequency(-0.02, -0.02, 300.0)
        slow = model.tsro_frequency(0.02, 0.02, 300.0)
        assert fast > slow

    def test_custom_vdd_respected(self, model):
        nominal = model.process_frequencies(0.0, 0.0, 300.0)
        droop = model.process_frequencies(0.0, 0.0, 300.0, vdd=1.08)
        assert droop[0] < nominal[0]


class TestJacobian:
    def test_diagonal_dominance(self, model):
        """Each ring must see its own threshold much harder than the other.

        The residual cross-sensitivity comes almost entirely from the
        threshold-mobility coupling (a dV_tp also moves PMOS mobility,
        which touches PSRO-N's fast rise edge), so ~5x dominance — not
        infinity — is the physically honest figure.
        """
        jac = model.process_jacobian(0.0, 0.0, 300.0)
        f_n, f_p = model.process_frequencies(0.0, 0.0, 300.0)
        rel = np.abs(jac / np.array([[f_n], [f_p]]))
        assert rel[0, 0] > 4.0 * rel[0, 1]
        assert rel[1, 1] > 4.0 * rel[1, 0]

    def test_negative_diagonal(self, model):
        """Raising a threshold always slows its ring."""
        jac = model.process_jacobian(0.0, 0.0, 300.0)
        assert jac[0, 0] < 0.0
        assert jac[1, 1] < 0.0

    def test_decoupling_ratio_large(self, model):
        assert model.decoupling_ratio(300.0) > 4.0

    def test_jacobian_consistent_with_finite_difference(self, model):
        jac = model.process_jacobian(0.0, 0.0, 300.0)
        delta = 2e-3
        f_hi = model.process_frequencies(delta, 0.0, 300.0)
        f_lo = model.process_frequencies(-delta, 0.0, 300.0)
        fd = (f_hi[0] - f_lo[0]) / (2.0 * delta)
        assert jac[0, 0] == pytest.approx(fd, rel=0.05)


class TestValidityBox:
    def test_inside(self, model):
        assert model.inside_box(0.05, -0.05)

    def test_outside(self, model):
        assert not model.inside_box(0.09, 0.0)

    def test_custom_box(self):
        tight = SensingModel(nominal_65nm(), SensorConfig(), vt_box=0.010)
        assert not tight.inside_box(0.02, 0.0)


class TestMobilityCoupling:
    def test_model_env_couples_mobility(self, model):
        env = model.environment(0.02, 0.0, 300.0)
        assert env.mun_scale < 1.0  # slow die modelled with lower mobility

    def test_typical_env_unity_mobility(self, model):
        env = model.environment(0.0, 0.0, 300.0)
        assert env.mun_scale == pytest.approx(1.0)
