"""Tests of the deterministic load generator (repro.serve.loadgen).

The virtual-time simulation is a discrete-event replay of the real
micro-batching policy against the real engine — these tests pin its
determinism (same seed, same report), its accounting (every request is
answered exactly once), and the behaviours the serving knobs exist for
(shedding under deadlines, rejection under a full queue, batching under
load).
"""

import pytest

from repro.serve import (
    AdmissionPolicy,
    BatchPolicy,
    CostModel,
    LoadgenConfig,
    ServeConfig,
    run_loadgen,
    run_loadgen_wall,
)
from repro.serve.loadgen import _percentile


def small_config(**overrides):
    base = dict(
        requests=80,
        rate_rps=200.0,
        serve=ServeConfig(tiers=4, batch=BatchPolicy(max_batch=16, max_wait_ms=2.0)),
    )
    base.update(overrides)
    return LoadgenConfig(**base)


class TestDeterminism:
    def test_same_seed_same_report(self):
        first = run_loadgen(small_config())
        second = run_loadgen(small_config())
        assert first.to_json() == second.to_json()
        assert first.latency_ms == second.latency_ms
        assert first.batch_histogram == second.batch_histogram

    def test_different_seed_different_arrivals(self):
        first = run_loadgen(small_config())
        second = run_loadgen(small_config(seed=99))
        assert first.to_json() != second.to_json()


class TestAccounting:
    def test_every_request_answered_once(self):
        report = run_loadgen(small_config())
        assert report.served == report.requests
        assert (
            report.ok + report.degraded + report.shed + report.errors
            == report.served
        )
        assert report.errors == 0
        assert sum(s * n for s, n in report.batch_histogram.items()) == report.served

    def test_cache_hits_under_setpoint_locality(self):
        report = run_loadgen(small_config(requests=150))
        assert report.cache is not None
        assert report.cache.hits > 0
        assert report.cache_hit_rate > 0.0

    def test_latency_percentiles_ordered(self):
        report = run_loadgen(small_config())
        lat = report.latency_ms
        assert 0.0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        assert report.throughput_rps > 0.0

    def test_render_and_json_are_consistent(self):
        import json

        report = run_loadgen(small_config())
        payload = json.loads(report.to_json())
        assert payload["served"] == report.served
        assert f"{report.served}/{report.requests} served" in report.render()


class TestServingBehaviours:
    def test_closed_loop_fills_batches_and_beats_scalar(self):
        report = run_loadgen(
            small_config(
                requests=300,
                clients=48,
                think_time_s=0.001,
                serve=ServeConfig(
                    tiers=8, batch=BatchPolicy(max_batch=32, max_wait_ms=2.0)
                ),
            )
        )
        assert report.mode == "virtual-closed"
        assert report.mean_batch_size > 8.0
        assert report.speedup_vs_scalar >= 5.0

    def test_tight_deadlines_shed_under_overload(self):
        # A 2 ms fixed batch cost against 50 us arrival gaps: the queue
        # grows without bound and 0.5 ms deadlines expire while queued.
        report = run_loadgen(
            small_config(
                requests=120,
                rate_rps=20_000.0,
                deadline_ms=0.5,
                cost=CostModel(batch_overhead_s=2e-3),
                serve=ServeConfig(
                    tiers=4, batch=BatchPolicy(max_batch=4, max_wait_ms=0.0)
                ),
            )
        )
        assert report.shed > 0
        assert report.shed_rate > 0.0
        assert report.served == report.requests  # shed answers still answer

    def test_bounded_queue_rejects_under_overload(self):
        report = run_loadgen(
            small_config(
                requests=120,
                rate_rps=50_000.0,
                serve=ServeConfig(
                    tiers=4,
                    batch=BatchPolicy(max_batch=2, max_wait_ms=0.0),
                    admission=AdmissionPolicy(queue_depth=4),
                ),
            )
        )
        assert report.rejected > 0
        assert report.served + report.rejected == report.requests

    def test_cost_model_scales_speedup(self):
        # With zero fixed overhead the naive baseline loses its main
        # handicap; speedup must drop relative to the default model.
        base = small_config(requests=150, clients=32, think_time_s=0.001)
        cheap = small_config(
            requests=150,
            clients=32,
            think_time_s=0.001,
            cost=CostModel(batch_overhead_s=0.0, scalar_overhead_s=0.0),
        )
        assert (
            run_loadgen(cheap).speedup_vs_scalar
            < run_loadgen(base).speedup_vs_scalar
        )


class TestWallMode:
    def test_wall_smoke_serves_everything(self):
        report = run_loadgen_wall(
            LoadgenConfig(
                requests=24,
                clients=6,
                think_time_s=0.0005,
                serve=ServeConfig(
                    tiers=2, batch=BatchPolicy(max_batch=8, max_wait_ms=2.0)
                ),
            )
        )
        assert report.mode == "wall-closed"
        assert report.served == 24
        assert report.errors == 0
        assert report.duration_s > 0.0


class TestPercentile:
    def test_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 1.0) == 4.0
        assert _percentile(values, 0.5) == pytest.approx(2.5)
        assert _percentile([], 0.5) == 0.0


class TestConfigValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            LoadgenConfig(requests=0)
        with pytest.raises(ValueError):
            LoadgenConfig(rate_rps=0.0)
        with pytest.raises(ValueError):
            LoadgenConfig(clients=0)
