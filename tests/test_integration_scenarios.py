"""End-to-end scenario tests: the substrates composed the way a user would.

Each scenario is a miniature of a real deployment story and must hold
together across package boundaries — these are the tests that catch
integration drift that unit tests cannot.
"""

import numpy as np
import pytest

from repro.core.drift import DriftAnchoredModel
from repro.core.calibration import SelfCalibrationEngine
from repro.core.sensor import PTSensor
from repro.core.supply import SupplyAwareEngine
from repro.core.tracking import TrackingPolicy, TrackingSensor
from repro.circuits.oscillator_bank import build_oscillator_bank, environment_for_die
from repro.experiments.common import reference_setup
from repro.network.aggregator import StackMonitor
from repro.thermal.grid import build_stack_grid
from repro.thermal.power import hotspot_power_map
from repro.thermal.solver import steady_state
from repro.tsv.bus import TsvSensorBus
from repro.tsv.geometry import StackDescriptor, TierSpec, regular_tsv_array
from repro.tsv.stress import StressModel
from repro.units import celsius_to_kelvin, kelvin_to_celsius
from repro.variation.aging import BtiAgingModel
from repro.variation.montecarlo import sample_dies


@pytest.fixture(scope="module")
def setup():
    return reference_setup()


class TestLifetimeScenario:
    """A die's whole life: fab -> stress -> power-on cal -> aging -> recal."""

    def test_full_lifetime(self, setup):
        tech = setup.technology
        die = sample_dies(tech, 1, seed=2024)[0]
        engine = SelfCalibrationEngine(setup.model, lut=setup.lut)

        # Power-on: time-zero extraction becomes the drift anchor.
        bank = build_oscillator_bank(
            tech, die=die, psro_stages=setup.config.psro_stages,
            tsro_stages=setup.config.tsro_stages,
        )
        env = environment_for_die(die, (2.5e-3, 2.5e-3), celsius_to_kelvin(45.0), tech.vdd)
        freqs = bank.frequencies(env)
        t0 = engine.run(freqs.psro_n, freqs.psro_p, freqs.tsro)
        anchored_model = DriftAnchoredModel.from_time_zero(setup.model, t0.dvtn, t0.dvtp)
        anchored = SelfCalibrationEngine(anchored_model, lut=None)

        # Five years in the field at high duty.
        aged_die = BtiAgingModel().age_die(die, years=5.0, duty=0.8)
        aged_bank = build_oscillator_bank(
            tech, die=aged_die, psro_stages=setup.config.psro_stages,
            tsro_stages=setup.config.tsro_stages,
        )
        aged_env = environment_for_die(
            aged_die, (2.5e-3, 2.5e-3), celsius_to_kelvin(45.0), tech.vdd
        )
        aged_freqs = aged_bank.frequencies(aged_env)
        state = anchored.run(aged_freqs.psro_n, aged_freqs.psro_p, aged_freqs.tsro)

        # Temperature still in class; drift read-out matches the injection.
        assert kelvin_to_celsius(state.temp_k) == pytest.approx(45.0, abs=1.0)
        injected = BtiAgingModel().vt_drift(5.0, duty=0.8)
        drift = anchored_model.drift_from(state.dvtn, state.dvtp)
        assert drift[1] == pytest.approx(injected[1], abs=1e-3)


class TestStressedStackScenario:
    """Sensors near a TSV array on a thermally loaded stack stay in class."""

    def test_stressed_hot_tier(self, setup):
        tech = setup.technology
        tiers = [TierSpec("t0"), TierSpec("t1")]
        tsvs = regular_tsv_array(6, 6, pitch=80e-6, origin=(2.2e-3, 2.2e-3))
        stack = StackDescriptor(tiers=tiers, tsv_sites=tsvs)
        nx = ny = 12
        grid = build_stack_grid(
            stack.thermal_layers(nx, ny), stack.die_width, stack.die_height, nx=nx, ny=ny
        )
        power = {
            "t0.si": hotspot_power_map(nx, ny, 5e-3, 5e-3, [(2e-3, 2e-3, 1e-3, 1e-3, 2.0)], 0.5),
            "t1.si": hotspot_power_map(nx, ny, 5e-3, 5e-3, [], 0.4),
        }
        field = steady_state(grid, power)

        die = sample_dies(tech, 1, seed=7)[0]
        # Sensor placed outside the keep-out zone but in the hot region.
        site = (2.2e-3 - 30e-6, 2.2e-3)
        stress = StressModel()
        stress_n, stress_p = stress.effective_vt_shifts_at(*site, tsvs)

        true_k = field.at("t0.si", *site)
        base_env = environment_for_die(die, site, true_k, tech.vdd)
        env = base_env.__class__(
            temp_k=base_env.temp_k,
            vdd=base_env.vdd,
            dvtn=base_env.dvtn + stress_n,
            dvtp=base_env.dvtp + stress_p,
            mun_scale=base_env.mun_scale,
            mup_scale=base_env.mup_scale,
        )
        sensor = PTSensor(
            tech, config=setup.config, die=die, location=site,
            sensing_model=setup.model, lut=setup.lut,
        )
        reading = sensor.read_environment(env)
        assert reading.temperature_c == pytest.approx(
            kelvin_to_celsius(true_k), abs=1.5
        )


class TestDvfsMonitoringScenario:
    """Tracking-mode monitoring across DVFS transitions with known setpoints."""

    def test_tracking_across_rails(self, setup):
        die = sample_dies(setup.technology, 1, seed=9)[0]
        sensor = PTSensor(
            setup.technology, config=setup.config, die=die,
            sensing_model=setup.model, lut=setup.lut,
        )
        for rail in (1.2, 1.1, 1.2):
            reading = sensor.read(70.0, vdd=rail, assume_vdd=rail)
            assert reading.temperature_c == pytest.approx(70.0, abs=1.2)


class TestDegradedNetworkScenario:
    """The monitor keeps reporting through a dead tier and a noisy bus."""

    def test_monitoring_through_failures(self, setup):
        tech = setup.technology
        dies = sample_dies(tech, 4, seed=31)
        sensors = {
            tier: PTSensor(
                tech, config=setup.config, die=die, die_id=tier,
                sensing_model=setup.model, lut=setup.lut,
            )
            for tier, die in enumerate(dies)
        }
        bus = TsvSensorBus(tiers=4, bit_error_rate=5e-3, stuck_tiers={1})
        monitor = StackMonitor(
            sensors, bus, retry_limit=3, rng=np.random.default_rng(12)
        )
        temps = {0: 72.0, 1: 60.0, 2: 55.0, 3: 50.0}
        last = None
        for _ in range(6):
            last = monitor.poll(temps)
        # Tier 1 is dead; all other tiers keep reporting accurately.
        assert 1 in last.dead_tiers
        for tier in (0, 2, 3):
            assert monitor.states[tier].temperature_c == pytest.approx(
                temps[tier], abs=1.5
            )
        assert last.hottest_tier == 0


class TestSupplyAwareStackScenario:
    """Four-ring estimation survives a per-tier IR-drop gradient."""

    def test_ir_drop_gradient(self, setup):
        tech = setup.technology
        dies = sample_dies(tech, 3, seed=44)
        engine = SupplyAwareEngine(setup.model, lut=setup.lut)
        # Deeper tiers see more IR drop on the shared rail.
        for tier, (die, drop) in enumerate(zip(dies, (0.00, 0.03, 0.06))):
            vdd = tech.vdd * (1.0 - drop)
            bank = build_oscillator_bank(
                tech, die=die, psro_stages=setup.config.psro_stages,
                tsro_stages=setup.config.tsro_stages,
            )
            env = environment_for_die(die, (2.5e-3, 2.5e-3), celsius_to_kelvin(80.0), vdd)
            freqs = bank.frequencies(env)
            state = engine.run_or_fallback(
                freqs.psro_n, freqs.psro_p, freqs.tsro, freqs.reference
            )
            assert kelvin_to_celsius(state.temp_k) == pytest.approx(80.0, abs=1.5)
            assert state.vdd == pytest.approx(vdd, abs=0.015)
