"""Tests for the stack-level sensor network: aggregator, DTM, scheduler."""

import numpy as np
import pytest

from repro.core.sensing_model import SensingModel
from repro.core.sensor import PTSensor
from repro.device.technology import nominal_65nm
from repro.network.aggregator import (
    DEAD_AFTER_CONSECUTIVE_MISSES,
    StackMonitor,
)
from repro.network.dtm import DtmPolicy
from repro.network.scheduler import AdaptiveSampler
from repro.tsv.bus import TsvSensorBus
from repro.variation.montecarlo import sample_dies


@pytest.fixture(scope="module")
def tech():
    return nominal_65nm()


@pytest.fixture(scope="module")
def model(tech):
    return SensingModel(tech)


def make_sensors(tech, model, count=4, seed=101):
    dies = sample_dies(tech, count, seed=seed)
    return {
        tier: PTSensor(tech, die=die, die_id=tier, sensing_model=model)
        for tier, die in enumerate(dies)
    }


class TestStackMonitor:
    def test_clean_poll(self, tech, model):
        sensors = make_sensors(tech, model)
        monitor = StackMonitor(sensors, TsvSensorBus(tiers=4))
        snap = monitor.poll({0: 60.0, 1: 55.0, 2: 50.0, 3: 45.0})
        assert sorted(snap.temperatures_c) == [0, 1, 2, 3]
        assert snap.hottest_tier == 0
        assert not snap.warnings and not snap.emergencies
        assert snap.retries_used == 0

    def test_readings_track_truth(self, tech, model):
        sensors = make_sensors(tech, model)
        monitor = StackMonitor(sensors, TsvSensorBus(tiers=4))
        snap = monitor.poll({t: 70.0 + 5.0 * t for t in range(4)})
        for tier, reading in snap.temperatures_c.items():
            assert reading == pytest.approx(70.0 + 5.0 * tier, abs=1.5)

    def test_warning_and_emergency_classification(self, tech, model):
        sensors = make_sensors(tech, model)
        monitor = StackMonitor(
            sensors, TsvSensorBus(tiers=4), warning_c=90.0, emergency_c=110.0
        )
        snap = monitor.poll({0: 115.0, 1: 95.0, 2: 60.0, 3: 60.0})
        assert snap.emergencies == [0]
        assert snap.warnings == [1]

    def test_stuck_tier_declared_dead_after_misses(self, tech, model):
        sensors = make_sensors(tech, model)
        monitor = StackMonitor(sensors, TsvSensorBus(tiers=4, stuck_tiers={2}))
        temps = {t: 50.0 for t in range(4)}
        for round_index in range(DEAD_AFTER_CONSECUTIVE_MISSES):
            snap = monitor.poll(temps)
        assert snap.dead_tiers == [2]
        # Dead tiers are still probed (for revival) but a stuck tier never
        # answers; others keep reporting.
        snap = monitor.poll(temps)
        assert 2 not in snap.temperatures_c
        assert len(snap.temperatures_c) == 3
        assert snap.dead_tiers == [2]

    def test_dead_tier_revives_on_clean_frame(self, tech, model):
        sensors = make_sensors(tech, model)
        bus = TsvSensorBus(tiers=4, stuck_tiers={2})
        monitor = StackMonitor(sensors, bus)
        temps = {t: 50.0 for t in range(4)}
        for _ in range(DEAD_AFTER_CONSECUTIVE_MISSES):
            monitor.poll(temps)
        assert not monitor.states[2].alive
        bus.stuck_tiers.discard(2)  # the link comes back
        snap = monitor.poll(temps)
        assert monitor.states[2].alive
        assert snap.revived_tiers == [2]
        assert snap.dead_tiers == []
        assert 2 in snap.temperatures_c
        assert monitor.states[2].consecutive_misses == 0

    def test_silent_and_parity_misses_tracked_separately(self, tech, model):
        sensors = make_sensors(tech, model)
        monitor = StackMonitor(sensors, TsvSensorBus(tiers=4, stuck_tiers={1}))
        monitor.poll({t: 50.0 for t in range(4)})
        state = monitor.states[1]
        assert state.consecutive_misses == 1
        assert state.consecutive_silent_misses == 1
        assert state.consecutive_parity_misses == 0

    def test_parity_errors_retried(self, tech, model):
        sensors = make_sensors(tech, model)
        bus = TsvSensorBus(tiers=4, bit_error_rate=0.02)
        monitor = StackMonitor(
            sensors, bus, retry_limit=4, rng=np.random.default_rng(5)
        )
        total_retries = 0
        for _ in range(10):
            snap = monitor.poll({t: 60.0 for t in range(4)})
            total_retries += snap.retries_used
        assert total_retries > 0  # corruption happened and was retried
        # With 4 retries at 2 % BER, everyone eventually reports.
        assert monitor.states[3].temperature_c is not None

    def test_process_map(self, tech, model):
        sensors = make_sensors(tech, model)
        monitor = StackMonitor(sensors, TsvSensorBus(tiers=4))
        monitor.poll({t: 50.0 for t in range(4)})
        pmap = monitor.process_map()
        assert len(pmap) == 4
        for tier, (dvtn, dvtp) in pmap.items():
            truth_n, truth_p = sensors[tier].true_process_shifts()
            assert dvtn == pytest.approx(truth_n, abs=3.5e-3)
            assert dvtp == pytest.approx(truth_p, abs=3.5e-3)

    def test_threshold_validation(self, tech, model):
        sensors = make_sensors(tech, model)
        with pytest.raises(ValueError):
            StackMonitor(sensors, TsvSensorBus(tiers=4), warning_c=110.0, emergency_c=100.0)


class TestDtmPolicy:
    def test_throttle_reduces_power(self):
        policy = DtmPolicy()
        assert policy.update(1.0, 90.0) == pytest.approx(policy.decrease_factor)

    def test_recovery_below_release(self):
        policy = DtmPolicy()
        assert policy.update(0.5, 70.0) == pytest.approx(0.55)

    def test_hysteresis_band_holds(self):
        policy = DtmPolicy(throttle_c=85.0, release_c=78.0)
        assert policy.update(0.6, 80.0) == pytest.approx(0.6)

    def test_floor_respected(self):
        policy = DtmPolicy(floor=0.3)
        scale = 0.31
        for _ in range(10):
            scale = policy.update(scale, 120.0)
        assert scale == pytest.approx(0.3)

    def test_full_power_cap(self):
        policy = DtmPolicy()
        assert policy.update(0.99, 60.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DtmPolicy(throttle_c=80.0, release_c=85.0)
        with pytest.raises(ValueError):
            DtmPolicy(decrease_factor=1.5)


class TestAdaptiveSampler:
    def test_first_sample_cautious(self):
        sampler = AdaptiveSampler()
        assert sampler.next_interval(0.0, 50.0) == sampler.min_interval_s

    def test_fast_slew_fast_sampling(self):
        sampler = AdaptiveSampler(resolution_margin_c=1.0)
        sampler.next_interval(0.0, 50.0)
        fast = sampler.next_interval(0.001, 55.0)  # 5000 degC/s
        assert fast == pytest.approx(max(1.0 / 5000.0, sampler.min_interval_s))

    def test_idle_falls_to_floor_rate(self):
        sampler = AdaptiveSampler()
        sampler.next_interval(0.0, 50.0)
        assert sampler.next_interval(0.01, 50.0) == sampler.max_interval_s

    def test_clamped_to_bounds(self):
        sampler = AdaptiveSampler(min_interval_s=1e-3, max_interval_s=1e-1)
        sampler.next_interval(0.0, 50.0)
        assert 1e-3 <= sampler.next_interval(0.001, 80.0) <= 1e-1

    def test_time_must_increase(self):
        sampler = AdaptiveSampler()
        sampler.next_interval(1.0, 50.0)
        with pytest.raises(ValueError):
            sampler.next_interval(0.5, 51.0)

    def test_reset(self):
        sampler = AdaptiveSampler()
        sampler.next_interval(0.0, 50.0)
        sampler.reset()
        assert sampler.next_interval(1.0, 60.0) == sampler.min_interval_s

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSampler(resolution_margin_c=0.0)
        with pytest.raises(ValueError):
            AdaptiveSampler(min_interval_s=1.0, max_interval_s=0.5)
