"""Tests for ring oscillators and environments."""

import pytest

from repro.circuits.inverter import BalancedStage, StarvedStage
from repro.circuits.ring_oscillator import Environment, RingOscillator
from repro.device.technology import nominal_65nm


@pytest.fixture
def tech():
    return nominal_65nm()


@pytest.fixture
def ref_ro(tech):
    return RingOscillator("REF", BalancedStage(), 13, tech)


class TestEnvironment:
    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(ValueError):
            Environment(temp_k=0.0, vdd=1.2)

    def test_rejects_nonpositive_vdd(self):
        with pytest.raises(ValueError):
            Environment(temp_k=300.0, vdd=-1.0)

    def test_from_corner_copies_everything(self, tech):
        ff = tech.corner("FF")
        env = Environment.from_corner(ff, 300.0, 1.2)
        assert env.dvtn == ff.dvtn
        assert env.dvtp == ff.dvtp
        assert env.mun_scale == ff.mun_scale

    def test_at_changes_only_requested(self):
        env = Environment(temp_k=300.0, vdd=1.2, dvtn=0.01)
        warmer = env.at(temp_k=350.0)
        assert warmer.temp_k == 350.0
        assert warmer.vdd == 1.2
        assert warmer.dvtn == 0.01


class TestRingOscillator:
    def test_rejects_even_stage_count(self, tech):
        with pytest.raises(ValueError):
            RingOscillator("bad", BalancedStage(), 12, tech)

    def test_rejects_too_few_stages(self, tech):
        with pytest.raises(ValueError):
            RingOscillator("bad", BalancedStage(), 1, tech)

    def test_frequency_is_inverse_period(self, ref_ro):
        env = Environment(temp_k=300.0, vdd=1.2)
        assert ref_ro.frequency(env) == pytest.approx(1.0 / ref_ro.period(env))

    def test_more_stages_lower_frequency(self, tech):
        env = Environment(temp_k=300.0, vdd=1.2)
        short = RingOscillator("a", BalancedStage(), 13, tech)
        long = RingOscillator("b", BalancedStage(), 31, tech)
        assert short.frequency(env) > long.frequency(env)
        assert long.frequency(env) == pytest.approx(
            short.frequency(env) * 13.0 / 31.0, rel=1e-9
        )

    def test_mismatch_offset_shifts_frequency(self, tech):
        env = Environment(temp_k=300.0, vdd=1.2)
        clean = RingOscillator("a", StarvedStage(), 9, tech)
        offset = RingOscillator("b", StarvedStage(), 9, tech, vtn_offset=0.005)
        assert offset.frequency(env) < clean.frequency(env)

    def test_systematic_and_offset_compose(self, tech):
        """Instance offset and environment shift must add."""
        via_offset = RingOscillator(
            "a", StarvedStage(), 9, tech, vtn_offset=0.004
        ).frequency(Environment(temp_k=300.0, vdd=1.2, dvtn=0.003))
        combined = RingOscillator("b", StarvedStage(), 9, tech).frequency(
            Environment(temp_k=300.0, vdd=1.2, dvtn=0.007)
        )
        assert via_offset == pytest.approx(combined, rel=1e-9)

    def test_power_positive_and_uw_class(self, ref_ro):
        env = Environment(temp_k=300.0, vdd=1.2)
        assert 1e-6 < ref_ro.power(env) < 1e-2

    def test_power_scales_with_vdd_cubed_roughly(self, ref_ro):
        """P = C V^2 f and f grows with V: super-quadratic overall."""
        env_lo = Environment(temp_k=300.0, vdd=1.0)
        env_hi = Environment(temp_k=300.0, vdd=1.2)
        ratio = ref_ro.power(env_hi) / ref_ro.power(env_lo)
        assert ratio > (1.2 / 1.0) ** 2

    def test_energy_for_window(self, ref_ro):
        env = Environment(temp_k=300.0, vdd=1.2)
        assert ref_ro.energy_for_window(env, 1e-6) == pytest.approx(
            ref_ro.power(env) * 1e-6
        )

    def test_energy_rejects_negative_window(self, ref_ro):
        env = Environment(temp_k=300.0, vdd=1.2)
        with pytest.raises(ValueError):
            ref_ro.energy_for_window(env, -1.0)

    def test_mobility_scale_speeds_up(self, ref_ro):
        base = ref_ro.frequency(Environment(temp_k=300.0, vdd=1.2))
        fast = ref_ro.frequency(
            Environment(temp_k=300.0, vdd=1.2, mun_scale=1.1, mup_scale=1.1)
        )
        assert fast > base
