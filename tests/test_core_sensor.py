"""Integration tests for the top-level PTSensor macro."""

import numpy as np
import pytest

from repro.config import SensorConfig
from repro.core.decoupler import ProcessLut
from repro.core.sensing_model import SensingModel
from repro.core.sensor import PTSensor
from repro.device.technology import nominal_65nm
from repro.readout.interface import decode_frame
from repro.units import celsius_to_kelvin
from repro.variation.montecarlo import sample_dies


@pytest.fixture(scope="module")
def tech():
    return nominal_65nm()


@pytest.fixture(scope="module")
def model(tech):
    return SensingModel(tech)


@pytest.fixture(scope="module")
def lut(model):
    return ProcessLut.build(model)


def make_sensor(tech, model, lut, die=None, **kwargs):
    return PTSensor(tech, die=die, sensing_model=model, lut=lut, **kwargs)


class TestTypicalSensor:
    @pytest.mark.parametrize("temp_c", [-40.0, 0.0, 27.0, 85.0, 125.0])
    def test_accuracy_across_range(self, tech, model, lut, temp_c):
        sensor = make_sensor(tech, model, lut)
        reading = sensor.read(temp_c, deterministic=True)
        assert reading.temperature_c == pytest.approx(temp_c, abs=0.3)

    def test_process_reads_zero(self, tech, model, lut):
        reading = make_sensor(tech, model, lut).read(27.0, deterministic=True)
        assert abs(reading.dvtn) < 1e-3
        assert abs(reading.dvtp) < 1e-3

    def test_energy_in_headline_class(self, tech, model, lut):
        reading = make_sensor(tech, model, lut).read(27.0)
        assert 250e-12 < reading.energy.total < 500e-12

    def test_conversion_time_reported(self, tech, model, lut):
        sensor = make_sensor(tech, model, lut)
        cold = sensor.read(-40.0)
        hot = sensor.read(125.0)
        # Period timing: the conversion takes longer when the TSRO is slow.
        assert cold.conversion_time > hot.conversion_time

    def test_counts_exposed(self, tech, model, lut):
        reading = make_sensor(tech, model, lut).read(27.0)
        assert reading.counts_n > 100
        assert reading.counts_p > 100
        assert reading.counts_ref > 100

    def test_temperature_k_property(self, tech, model, lut):
        reading = make_sensor(tech, model, lut).read(27.0, deterministic=True)
        assert reading.temperature_k == pytest.approx(
            celsius_to_kelvin(reading.temperature_c)
        )


class TestMonteCarloSensors:
    def test_population_accuracy(self, tech, model, lut):
        """The headline claims on a small population."""
        dies = sample_dies(tech, 12, seed=77)
        temp_errors, vtn_errors, vtp_errors = [], [], []
        for die in dies:
            sensor = make_sensor(tech, model, lut, die=die)
            truth_n, truth_p = sensor.true_process_shifts()
            reading = sensor.read(65.0)
            temp_errors.append(reading.temperature_c - 65.0)
            vtn_errors.append(reading.dvtn - truth_n)
            vtp_errors.append(reading.dvtp - truth_p)
        assert max(abs(e) for e in temp_errors) < 2.0
        assert max(abs(e) for e in vtn_errors) < 3.5e-3
        assert max(abs(e) for e in vtp_errors) < 3.5e-3

    def test_reads_are_reproducible_per_sensor_stream(self, tech, model, lut):
        die = sample_dies(tech, 1, seed=78)[0]
        a = make_sensor(tech, model, lut, die=die).read(40.0)
        b = make_sensor(tech, model, lut, die=die).read(40.0)
        assert a.temperature_c == b.temperature_c  # same seed, same stream

    def test_deterministic_mode_removes_phase_noise(self, tech, model, lut):
        die = sample_dies(tech, 1, seed=79)[0]
        sensor = make_sensor(tech, model, lut, die=die)
        a = sensor.read(40.0, deterministic=True)
        b = sensor.read(40.0, deterministic=True)
        assert a.counts_n == b.counts_n
        assert a.temperature_c == b.temperature_c

    def test_noise_mode_dithers(self, tech, model, lut):
        die = sample_dies(tech, 1, seed=80)[0]
        sensor = make_sensor(tech, model, lut, die=die)
        counts = {sensor.read(40.0).counts_n for _ in range(20)}
        assert len(counts) >= 2


class TestFrames:
    def test_frame_round_trips_reading(self, tech, model, lut):
        die = sample_dies(tech, 1, seed=81)[0]
        sensor = make_sensor(tech, model, lut, die=die, die_id=9)
        reading = sensor.read(55.0)
        frame = decode_frame(sensor.frame(reading))
        assert frame.die_id == 9
        assert frame.temperature_c == pytest.approx(reading.temperature_c, abs=0.51)
        assert frame.dvtn == pytest.approx(reading.dvtn, abs=1e-4)


class TestConfigInteraction:
    def test_custom_config_windows_flow_through(self, tech, model):
        config = SensorConfig(psro_window=1.2e-6)
        sensor = PTSensor(tech, config=config, sensing_model=model)
        reading = sensor.read(27.0)
        # Double window, roughly double the PSRO counts and energy.
        default_counts = PTSensor(tech, sensing_model=model).read(27.0).counts_n
        assert reading.counts_n == pytest.approx(2 * default_counts, rel=0.05)

    def test_physical_environment_typical(self, tech, model, lut):
        sensor = make_sensor(tech, model, lut)
        env = sensor.physical_environment(300.0)
        assert env.dvtn == 0.0 and env.dvtp == 0.0

    def test_physical_environment_die(self, tech, model, lut):
        die = sample_dies(tech, 1, seed=82)[0]
        sensor = make_sensor(tech, model, lut, die=die)
        env = sensor.physical_environment(300.0)
        truth_n, _ = sensor.true_process_shifts()
        assert env.dvtn == pytest.approx(truth_n)
