"""Tests for transistor stack (series/parallel) equivalents."""

import pytest

from repro.device.mosfet import drain_current
from repro.device.stack import (
    parallel_combine,
    series_stack_current,
    series_stack_params,
)
from repro.device.technology import nominal_65nm


@pytest.fixture
def nmos():
    return nominal_65nm().nmos


class TestSeriesStack:
    def test_single_device_unchanged(self, nmos):
        assert series_stack_params(nmos, 1, 300.0) is nmos

    def test_length_scales_with_count(self, nmos):
        stacked = series_stack_params(nmos, 3, 300.0)
        assert stacked.length == pytest.approx(3.0 * nmos.length)

    def test_threshold_lifted_by_stack_effect(self, nmos):
        stacked = series_stack_params(nmos, 2, 300.0)
        assert stacked.vt0 > nmos.vt0

    def test_stack_current_less_than_single(self, nmos):
        single = drain_current(nmos, 1.0, 0.6, 300.0)
        stacked = series_stack_current(nmos, 2, 1.0, 0.6, 300.0)
        assert stacked < single

    def test_stack_suppresses_leakage_superlinearly(self, nmos):
        """The classic stack effect: 2-stack leakage << half of 1-device."""
        single = drain_current(nmos, 0.0, 1.2, 300.0)
        stacked = series_stack_current(nmos, 2, 0.0, 1.2, 300.0)
        assert stacked < single / 2.5

    def test_strong_inversion_roughly_divides(self, nmos):
        """In strong inversion the stack behaves like length scaling.

        A 2-stack loses less than 2x because doubling the channel also
        relieves velocity saturation (lambda_c halves); the reduction still
        has to be substantial.
        """
        single = drain_current(nmos, 1.2, 0.6, 300.0)
        stacked = series_stack_current(nmos, 2, 1.2, 0.6, 300.0)
        assert 0.3 * single < stacked < 0.85 * single

    def test_rejects_zero_count(self, nmos):
        with pytest.raises(ValueError):
            series_stack_params(nmos, 0, 300.0)

    def test_deeper_stacks_monotone(self, nmos):
        currents = [
            series_stack_current(nmos, k, 0.8, 0.6, 300.0) for k in (1, 2, 3, 4)
        ]
        assert currents == sorted(currents, reverse=True)


class TestParallelCombine:
    def test_width_multiplies(self, nmos):
        wide = parallel_combine(nmos, 4)
        assert wide.width == pytest.approx(4.0 * nmos.width)

    def test_current_scales_linearly(self, nmos):
        single = drain_current(nmos, 1.0, 0.6, 300.0)
        quad = drain_current(parallel_combine(nmos, 4), 1.0, 0.6, 300.0)
        assert quad == pytest.approx(4.0 * single, rel=1e-9)

    def test_rejects_zero_count(self, nmos):
        with pytest.raises(ValueError):
            parallel_combine(nmos, 0)
