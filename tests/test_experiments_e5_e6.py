"""Shape tests for experiments R-E5 (placement) and R-E6 (averaging)."""

import numpy as np
import pytest

from repro.experiments import exp_e5_placement, exp_e6_averaging


class TestE5Placement:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_e5_placement.run(fast=True)

    def test_observer_collapses_in_span_error(self, result):
        """At/above the model order, the mixture reconstructs ~exactly."""
        saturated = [r for r in result.rows if r.budget >= 4]
        assert saturated
        assert all(r.observer_mix_c < 0.2 for r in saturated)

    def test_observer_beats_nearest_in_span(self, result):
        best_observer = min(r.observer_mix_c for r in result.rows)
        best_nearest = min(r.nearest_mix_c for r in result.rows)
        assert best_observer < best_nearest / 5.0

    def test_novel_workload_is_the_hard_case(self, result):
        """Out-of-span hotspots defeat both schemes — the honest finding."""
        for row in result.rows:
            assert row.observer_novel_c > row.observer_mix_c

    def test_sites_are_distinct(self, result):
        assert len(set(result.chosen_sites)) == len(result.chosen_sites)

    def test_renders(self, result):
        assert "R-E5" in result.render()


class TestE6Averaging:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_e6_averaging.run(fast=True)

    def test_random_sigma_shrinks_with_averaging(self, result):
        sigmas = [row.random_sigma_c for row in result.rows]
        assert sigmas == sorted(sigmas, reverse=True)

    def test_sqrt_n_law_roughly(self, result):
        """sigma(N=4) ~ sigma(N=1)/2 within sampling slop."""
        by_n = {row.conversions: row.random_sigma_c for row in result.rows}
        if 1 in by_n and 4 in by_n and by_n[4] > 0:
            ratio = by_n[1] / by_n[4]
            assert 1.3 < ratio < 3.5

    def test_systematic_floor_remains(self, result):
        """Averaging cannot beat the per-die mismatch floor."""
        assert result.systematic_floor_c > 0.05
        most_averaged = result.rows[-1]
        assert most_averaged.total_band_c > result.systematic_floor_c

    def test_energy_scales_linearly(self, result):
        for row in result.rows:
            assert row.energy_pj == pytest.approx(
                result.rows[0].energy_pj * row.conversions, rel=1e-6
            )
