"""The documentation stays navigable and honest.

Two guarantees, both cheap enough to gate every CI run:

* **no dead links** — every relative markdown link and every
  ``#fragment`` in ``docs/`` and the top-level guides resolves to a
  real file (and, for fragments, a real heading in it);
* **no stale API references** — docs never point readers at the
  deprecated config derivations that :mod:`repro.edge.deploy`
  superseded.

The metric-catalogue drift gate lives in ``tests/test_stream.py``
alongside the generator it checks.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: The markdown that makes promises worth checking.
DOC_FILES = sorted(
    [*(REPO / "docs").glob("*.md"), REPO / "README.md"]
    + [REPO / name for name in ("DESIGN.md", "ROADMAP.md")
       if (REPO / name).exists()]
)

_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _anchor(heading: str) -> str:
    """GitHub's heading -> fragment slug (the flavour our docs use)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _links(markdown: str):
    return _LINK.findall(_CODE_FENCE.sub("", markdown))


def _doc_ids():
    return [str(path.relative_to(REPO)) for path in DOC_FILES]


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_relative_links_resolve(doc):
    broken = []
    for target in _links(doc.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (doc.parent / path_part).resolve() if path_part else doc
        if not resolved.exists():
            broken.append(f"{target} -> missing file {path_part}")
            continue
        if fragment and resolved.suffix == ".md":
            headings = _HEADING.findall(resolved.read_text(encoding="utf-8"))
            if fragment not in {_anchor(h) for h in headings}:
                broken.append(f"{target} -> no heading #{fragment}")
    assert not broken, (
        f"{doc.relative_to(REPO)} has dead links:\n  " + "\n  ".join(broken)
    )


def test_docs_never_advertise_deprecated_config_derivations():
    stale = []
    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        for needle in ("EdgeConfig.worker_configs", "WorkerConfig.serve_config"):
            if needle in text:
                stale.append(f"{doc.relative_to(REPO)}: {needle}")
    assert not stale, (
        "docs reference deprecated derivations (use EdgeDeployment):\n  "
        + "\n  ".join(stale)
    )


def test_every_docs_page_is_reachable_from_the_index():
    index = (REPO / "docs" / "index.md").read_text(encoding="utf-8")
    linked = {target.partition("#")[0] for target in _links(index)}
    missing = [
        page.name
        for page in sorted((REPO / "docs").glob("*.md"))
        if page.name != "index.md" and page.name not in linked
    ]
    assert not missing, f"docs/index.md never links: {missing}"
