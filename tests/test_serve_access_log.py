"""Access-log path resolution: two services must never share a sink.

Regression tests for the historical collision where two
:class:`SensorReadService` instances in one process pointed at the same
JSONL path interleaved (and clobbered) each other's records.
"""

import json
import os

from repro.serve import (
    DEFAULT_ACCESS_LOG_PATTERN,
    ReadRequest,
    SensorReadService,
    ServeConfig,
    resolve_access_log_path,
)
from repro.serve.service import _release_access_log_path


class TestResolveAccessLogPath:
    def test_placeholders_substituted(self):
        path = resolve_access_log_path(os.path.join("x", "log-{pid}-{instance}.jsonl"))
        try:
            assert str(os.getpid()) in path
            assert "{instance}" not in path and "{pid}" not in path
        finally:
            _release_access_log_path(path)

    def test_default_pattern_has_placeholders(self):
        assert "{pid}" in DEFAULT_ACCESS_LOG_PATTERN
        assert "{instance}" in DEFAULT_ACCESS_LOG_PATTERN

    def test_literal_collision_is_uniquified(self, tmp_path):
        literal = str(tmp_path / "access.jsonl")
        first = resolve_access_log_path(literal)
        second = resolve_access_log_path(literal)
        try:
            assert first == literal
            assert second != literal
            assert second.endswith(".jsonl")
        finally:
            _release_access_log_path(first)
            _release_access_log_path(second)

    def test_release_frees_the_path(self, tmp_path):
        literal = str(tmp_path / "access.jsonl")
        first = resolve_access_log_path(literal)
        _release_access_log_path(first)
        again = resolve_access_log_path(literal)
        try:
            assert again == literal
        finally:
            _release_access_log_path(again)


class TestTwoServicesOneProcess:
    def test_concurrent_services_write_disjoint_files(self, tmp_path):
        """Two live services given the same path keep separate logs."""
        literal = str(tmp_path / "shared.jsonl")
        config = ServeConfig(tiers=2, cache_capacity=0)
        with SensorReadService(config=config, access_log=literal) as a:
            with SensorReadService(config=config, access_log=literal) as b:
                assert a.access_log_path != b.access_log_path
                a.read(ReadRequest.point(0, 40.0))
                b.read(ReadRequest.point(1, 50.0))
                b.read(ReadRequest.point(0, 60.0))
        with open(a.access_log_path, encoding="utf-8") as handle:
            a_records = [json.loads(line) for line in handle if line.strip()]
        with open(b.access_log_path, encoding="utf-8") as handle:
            b_records = [json.loads(line) for line in handle if line.strip()]
        assert len(a_records) == 1
        assert len(b_records) == 2
        assert all(r["type"] == "access" for r in a_records + b_records)

    def test_sequential_services_can_reuse_the_literal_path(self, tmp_path):
        """close() releases the claim, so restart reuses the same file."""
        literal = str(tmp_path / "restart.jsonl")
        config = ServeConfig(tiers=2, cache_capacity=0)
        with SensorReadService(config=config, access_log=literal) as first:
            first.read(ReadRequest.point(0, 40.0))
            first_path = first.access_log_path
        with SensorReadService(config=config, access_log=literal) as second:
            second.read(ReadRequest.point(0, 41.0))
            second_path = second.access_log_path
        assert first_path == literal
        assert second_path == literal
