"""Tests for the read-out package: period timer, sequencer, energy, frames."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.oscillator_bank import build_oscillator_bank
from repro.circuits.ring_oscillator import Environment
from repro.config import SensorConfig
from repro.device.technology import nominal_65nm
from repro.readout.counter import PeriodTimer
from repro.readout.energy import conversion_energy
from repro.readout.interface import (
    FrameError,
    SensorFrame,
    decode_frame,
    encode_frame,
)
from repro.readout.sequencer import ConversionSequencer


class TestPeriodTimer:
    def test_deterministic_count(self):
        timer = PeriodTimer(periods=100, ref_clock_hz=200e6, bits=20)
        # 100 periods at 10 MHz = 10 us -> 2000 ref ticks.
        assert timer.count(10e6) == 2000

    def test_inversion_round_trip(self):
        timer = PeriodTimer(periods=96, ref_clock_hz=200e6, bits=20)
        count = timer.count(7.3e6)
        assert timer.frequency_from_count(count) == pytest.approx(7.3e6, rel=1e-3)

    def test_saturates_not_wraps(self):
        timer = PeriodTimer(periods=100, ref_clock_hz=200e6, bits=8)
        count = timer.count(1e3)  # would be 2e7 ticks
        assert count == timer.max_count
        assert timer.saturated(count)

    def test_slow_target_measured_finely(self):
        """The period timer's key property: better resolution when slow."""
        timer = PeriodTimer(periods=96, ref_clock_hz=200e6, bits=24)
        assert timer.relative_resolution(1e6) < timer.relative_resolution(50e6)

    def test_measurement_time(self):
        timer = PeriodTimer(periods=96, ref_clock_hz=200e6)
        assert timer.measurement_time(96e6) == pytest.approx(1e-6)

    def test_rejects_nonpositive_frequency(self):
        timer = PeriodTimer(periods=10, ref_clock_hz=1e8)
        with pytest.raises(ValueError):
            timer.count(0.0)

    @settings(max_examples=40, deadline=None)
    @given(freq=st.floats(min_value=1e5, max_value=2e8))
    def test_estimate_within_one_tick(self, freq):
        timer = PeriodTimer(periods=96, ref_clock_hz=200e6, bits=30)
        count = timer.count(freq)
        estimate = timer.frequency_from_count(count)
        # One ref tick of error on the interval.
        interval = 96 / freq
        assert abs(96 / estimate - interval) <= 1.0 / 200e6


class TestSequencer:
    def test_three_sequential_phases(self):
        seq = ConversionSequencer(SensorConfig())
        phases = seq.schedule(tsro_frequency=10e6)
        assert [p.name for p in phases] == ["PSRO-N", "PSRO-P", "TSRO"]
        for earlier, later in zip(phases, phases[1:]):
            assert later.start == pytest.approx(earlier.end)

    def test_conversion_time_tracks_tsro(self):
        seq = ConversionSequencer(SensorConfig())
        assert seq.conversion_time(1e6) > seq.conversion_time(50e6)

    def test_conversion_rate_inverse(self):
        seq = ConversionSequencer(SensorConfig())
        assert seq.conversion_rate(10e6) == pytest.approx(
            1.0 / seq.conversion_time(10e6)
        )

    def test_rejects_nonpositive_tsro(self):
        seq = ConversionSequencer(SensorConfig())
        with pytest.raises(ValueError):
            seq.schedule(0.0)


class TestConversionEnergy:
    @pytest.fixture
    def setup(self):
        tech = nominal_65nm()
        bank = build_oscillator_bank(tech)
        env = Environment(temp_k=300.15, vdd=tech.vdd)
        return bank, env, SensorConfig()

    def test_total_is_sum_of_parts(self, setup):
        bank, env, config = setup
        energy = conversion_energy(bank, env, config)
        assert energy.total == pytest.approx(
            energy.psro_n + energy.psro_p + energy.tsro + energy.counters + energy.digital
        )

    def test_headline_class(self, setup):
        """The reference design must land in the paper's 367.5 pJ class."""
        bank, env, config = setup
        energy = conversion_energy(bank, env, config)
        assert 250e-12 < energy.total < 500e-12

    def test_psro_rings_dominate(self, setup):
        bank, env, config = setup
        energy = conversion_energy(bank, env, config)
        assert energy.psro_n + energy.psro_p > 0.5 * energy.total

    def test_longer_window_more_energy(self, setup):
        bank, env, config = setup
        base = conversion_energy(bank, env, config).total
        double = conversion_energy(
            bank, env, config.with_windows(psro_window=2 * config.psro_window)
        ).total
        assert double > base * 1.5

    def test_rows_sorted_descending(self, setup):
        bank, env, config = setup
        rows = conversion_energy(bank, env, config).as_rows()
        values = [value for _, value in rows]
        assert values == sorted(values, reverse=True)


class TestSensorFrame:
    def test_round_trip(self):
        frame = SensorFrame(
            die_id=5, dvtn=0.0123, dvtp=-0.0087, temperature_c=66.0
        )
        decoded = decode_frame(encode_frame(frame))
        assert decoded.die_id == 5
        assert decoded.dvtn == pytest.approx(0.0123, abs=1e-4)
        assert decoded.dvtp == pytest.approx(-0.0087, abs=1e-4)
        assert decoded.temperature_c == pytest.approx(66.0, abs=0.5)
        assert decoded.valid

    def test_invalid_flag_survives(self):
        frame = SensorFrame(
            die_id=1, dvtn=0.0, dvtp=0.0, temperature_c=25.0, valid=False
        )
        assert not decode_frame(encode_frame(frame)).valid

    def test_single_bit_flip_detected(self):
        word = encode_frame(
            SensorFrame(die_id=3, dvtn=0.005, dvtp=0.001, temperature_c=80.0)
        )
        for bit in range(40):
            with pytest.raises(FrameError):
                decode_frame(word ^ (1 << bit))

    def test_temperature_saturates(self):
        frame = SensorFrame(
            die_id=0, dvtn=0.0, dvtp=0.0, temperature_c=500.0
        )
        decoded = decode_frame(encode_frame(frame))
        assert decoded.temperature_c == pytest.approx(215.0)  # 8-bit ceiling - 40

    def test_die_id_overflow_rejected(self):
        with pytest.raises(FrameError):
            encode_frame(
                SensorFrame(die_id=64, dvtn=0.0, dvtp=0.0, temperature_c=0.0)
            )

    @settings(max_examples=50, deadline=None)
    @given(
        die_id=st.integers(min_value=0, max_value=63),
        vtn=st.floats(min_value=-0.08, max_value=0.08),
        vtp=st.floats(min_value=-0.08, max_value=0.08),
        temp=st.floats(min_value=-40.0, max_value=125.0),
    )
    def test_round_trip_property(self, die_id, vtn, vtp, temp):
        decoded = decode_frame(
            encode_frame(
                SensorFrame(
                    die_id=die_id, dvtn=vtn, dvtp=vtp, temperature_c=temp
                )
            )
        )
        assert decoded.die_id == die_id
        assert decoded.dvtn == pytest.approx(vtn, abs=1e-4)
        assert decoded.dvtp == pytest.approx(vtp, abs=1e-4)
        assert decoded.temperature_c == pytest.approx(temp, abs=0.51)
