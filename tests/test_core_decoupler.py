"""Tests for the process decoupler (LUT + Newton inversion)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.decoupler import ProcessLut, extract_process
from repro.core.errors import ExtractionDivergedError
from repro.core.sensing_model import SensingModel
from repro.device.technology import nominal_65nm


@pytest.fixture(scope="module")
def model():
    return SensingModel(nominal_65nm())


@pytest.fixture(scope="module")
def lut(model):
    return ProcessLut.build(model)


class TestProcessLut:
    def test_grid_shape(self, model):
        lut = ProcessLut.build(model, points=5)
        assert lut.f_n_grid.shape == (5, 5)
        assert lut.dvtn_axis.size == 5

    def test_rejects_tiny_grid(self, model):
        with pytest.raises(ValueError):
            ProcessLut.build(model, points=1)

    def test_seed_recovers_grid_points(self, model, lut):
        """Seeding with a grid point's own frequencies returns that point."""
        i, j = 2, 6
        dvtn, dvtp = lut.dvtn_axis[i], lut.dvtp_axis[j]
        seed = lut.seed(lut.f_n_grid[i, j], lut.f_p_grid[i, j])
        assert seed[0] == pytest.approx(dvtn)
        assert seed[1] == pytest.approx(dvtp)

    def test_seed_close_for_off_grid_points(self, model, lut):
        f_n, f_p = model.process_frequencies(0.013, -0.017, 300.0)
        seed = lut.seed(f_n, f_p)
        spacing = lut.dvtn_axis[1] - lut.dvtn_axis[0]
        assert abs(seed[0] - 0.013) <= spacing
        assert abs(seed[1] + 0.017) <= spacing


class TestExtraction:
    def test_exact_round_trip(self, model, lut):
        f_n, f_p = model.process_frequencies(0.025, -0.018, 320.0)
        dvtn, dvtp = extract_process(model, f_n, f_p, 320.0, lut=lut)
        assert dvtn == pytest.approx(0.025, abs=1e-5)
        assert dvtp == pytest.approx(-0.018, abs=1e-5)

    def test_works_without_lut(self, model):
        f_n, f_p = model.process_frequencies(0.030, 0.030, 300.0)
        dvtn, dvtp = extract_process(model, f_n, f_p, 300.0, lut=None)
        assert dvtn == pytest.approx(0.030, abs=1e-5)
        assert dvtp == pytest.approx(0.030, abs=1e-5)

    def test_rejects_nonpositive_frequencies(self, model, lut):
        with pytest.raises(ValueError):
            extract_process(model, -1.0, 1e8, 300.0, lut=lut)

    def test_diverges_outside_box(self, model, lut):
        """Frequencies of a die far beyond the box must raise, not lie."""
        f_n, f_p = model.process_frequencies(0.079, 0.079, 300.0)
        # Pretend the ring runs at a quarter of that: no in-box die does.
        with pytest.raises(ExtractionDivergedError):
            extract_process(model, f_n * 0.25, f_p * 0.25, 300.0, lut=lut)

    def test_wrong_temperature_guess_biases_little(self, model, lut):
        """ZTC bias at work: a 30 K wrong guess moves the result ~1 mV."""
        f_n, f_p = model.process_frequencies(0.010, 0.010, 330.0)
        dvtn, dvtp = extract_process(model, f_n, f_p, 300.0, lut=lut)
        assert dvtn == pytest.approx(0.010, abs=2e-3)
        assert dvtp == pytest.approx(0.010, abs=2e-3)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        dvtn=st.floats(min_value=-0.05, max_value=0.05),
        dvtp=st.floats(min_value=-0.05, max_value=0.05),
        temp=st.floats(min_value=240.0, max_value=390.0),
    )
    def test_round_trip_property(self, model, lut, dvtn, dvtp, temp):
        f_n, f_p = model.process_frequencies(dvtn, dvtp, temp)
        got_n, got_p = extract_process(model, f_n, f_p, temp, lut=lut)
        assert got_n == pytest.approx(dvtn, abs=1e-4)
        assert got_p == pytest.approx(dvtp, abs=1e-4)

    def test_lut_and_newton_agree(self, model, lut):
        f_n, f_p = model.process_frequencies(-0.022, 0.014, 300.0)
        with_lut = extract_process(model, f_n, f_p, 300.0, lut=lut)
        without = extract_process(model, f_n, f_p, 300.0, lut=None)
        assert with_lut[0] == pytest.approx(without[0], abs=1e-6)
        assert with_lut[1] == pytest.approx(without[1], abs=1e-6)
