"""Tests for tracking mode and drift-anchored recalibration."""

import pytest

from repro.core.calibration import SelfCalibrationEngine
from repro.core.drift import DriftAnchoredModel
from repro.core.sensing_model import SensingModel
from repro.core.sensor import PTSensor
from repro.core.tracking import TrackingPolicy, TrackingSensor
from repro.device.technology import nominal_65nm
from repro.units import celsius_to_kelvin, kelvin_to_celsius
from repro.variation.aging import BtiAgingModel
from repro.variation.montecarlo import sample_dies


@pytest.fixture(scope="module")
def tech():
    return nominal_65nm()


@pytest.fixture(scope="module")
def model(tech):
    return SensingModel(tech)


class TestTrackingPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrackingPolicy(recalibration_interval=0)
        with pytest.raises(ValueError):
            TrackingPolicy(max_fast_failures=0)


class TestTrackingSensor:
    @pytest.fixture
    def tracker(self, tech, model):
        die = sample_dies(tech, 1, seed=91)[0]
        sensor = PTSensor(tech, die=die, sensing_model=model)
        return TrackingSensor(sensor, TrackingPolicy(recalibration_interval=4))

    def test_first_read_is_full(self, tracker):
        reading = tracker.read(50.0)
        assert reading.mode == "full"
        assert tracker.calibrated

    def test_subsequent_reads_fast(self, tracker):
        tracker.read(50.0)
        assert tracker.read(52.0).mode == "fast"
        assert tracker.read(54.0).mode == "fast"

    def test_recalibrates_on_schedule(self, tracker):
        modes = [tracker.read(50.0 + i).mode for i in range(9)]
        assert modes[0] == "full"
        assert modes[4] == "full"  # interval=4: full, fast, fast, fast, full
        assert modes.count("full") == 3

    def test_fast_reads_much_cheaper(self, tracker):
        full = tracker.read(50.0)
        fast = tracker.read(50.0)
        assert fast.energy_j < full.energy_j / 5.0

    def test_fast_reads_stay_accurate(self, tech, model):
        die = sample_dies(tech, 1, seed=94)[0]
        sensor = PTSensor(tech, die=die, sensing_model=model)
        tracker = TrackingSensor(sensor, TrackingPolicy(recalibration_interval=32))
        tracker.read(40.0)
        for temp in (45.0, 60.0, 85.0, 110.0):
            reading = tracker.read(temp)
            assert reading.mode == "fast"
            assert reading.temperature_c == pytest.approx(temp, abs=1.5)

    def test_interval_one_is_always_full(self, tech, model):
        die = sample_dies(tech, 1, seed=92)[0]
        sensor = PTSensor(tech, die=die, sensing_model=model)
        tracker = TrackingSensor(sensor, TrackingPolicy(recalibration_interval=1))
        assert all(tracker.read(50.0).mode == "full" for _ in range(3))


class TestDriftAnchoredModel:
    def test_anchor_freezes_mobility(self, model):
        anchored = DriftAnchoredModel.from_time_zero(model, 0.020, 0.020)
        env = anchored.environment(0.030, 0.030, 300.0)
        # Mobility reflects the anchor (0.020), not the current point (0.030).
        plain_env = model.environment(0.020, 0.020, 300.0)
        assert env.mun_scale == pytest.approx(plain_env.mun_scale)
        assert env.dvtn == pytest.approx(0.030)

    def test_drift_from(self, model):
        anchored = DriftAnchoredModel.from_time_zero(model, 0.005, -0.004)
        dn, dp = anchored.drift_from(0.010, 0.002)
        assert dn == pytest.approx(0.005)
        assert dp == pytest.approx(0.006)

    def test_recovers_pure_vt_drift(self, model, tech):
        """The whole point: a V_t-only (aging) shift extracts exactly."""
        anchor = (0.010, -0.008)
        drift = (0.004, 0.015)
        # Aged-die truth: thresholds move, mobility stays at the anchor.
        from repro.circuits.ring_oscillator import Environment
        from repro.variation.corners import monte_carlo_corner

        corner = monte_carlo_corner(*anchor)
        env = Environment(
            temp_k=celsius_to_kelvin(55.0),
            vdd=tech.vdd,
            dvtn=anchor[0] + drift[0],
            dvtp=anchor[1] + drift[1],
            mun_scale=corner.mun_scale,
            mup_scale=corner.mup_scale,
        )
        freqs = model.bank.frequencies(env)
        anchored = DriftAnchoredModel.from_time_zero(model, *anchor)
        engine = SelfCalibrationEngine(anchored, lut=None)
        state = engine.run(freqs.psro_n, freqs.psro_p, freqs.tsro)
        got_drift = anchored.drift_from(state.dvtn, state.dvtp)
        assert got_drift[0] == pytest.approx(drift[0], abs=2e-4)
        assert got_drift[1] == pytest.approx(drift[1], abs=2e-4)
        assert kelvin_to_celsius(state.temp_k) == pytest.approx(55.0, abs=0.2)


class TestAgingModel:
    def test_zero_years_zero_drift(self):
        assert BtiAgingModel().vt_drift(0.0) == (0.0, 0.0)

    def test_power_law_sublinear(self):
        model = BtiAgingModel()
        one = model.vt_drift(1.0)[1]
        four = model.vt_drift(4.0)[1]
        assert one < four < 4.0 * one

    def test_nbti_dominates(self):
        dn, dp = BtiAgingModel().vt_drift(3.0)
        assert dp > dn

    def test_duty_cycle_reduces_drift(self):
        model = BtiAgingModel()
        assert model.vt_drift(1.0, duty=0.25)[1] == pytest.approx(
            0.5 * model.vt_drift(1.0, duty=1.0)[1]
        )

    def test_hotter_stress_drifts_more(self):
        model = BtiAgingModel()
        cool = model.vt_drift(1.0, stress_temp_c=55.0)[1]
        hot = model.vt_drift(1.0, stress_temp_c=105.0)[1]
        assert hot > cool

    def test_age_die_shifts_thresholds_only(self, tech):
        die = sample_dies(tech, 1, seed=93)[0]
        aged = BtiAgingModel().age_die(die, 3.0)
        assert aged.corner.dvtp > die.corner.dvtp
        assert aged.corner.dvtn > die.corner.dvtn
        assert aged.corner.mup_scale == die.corner.mup_scale  # no coupling
        assert aged.mismatch_seed == die.mismatch_seed

    def test_validation(self):
        with pytest.raises(ValueError):
            BtiAgingModel(time_exponent=1.5)
        with pytest.raises(ValueError):
            BtiAgingModel().vt_drift(-1.0)
        with pytest.raises(ValueError):
            BtiAgingModel().vt_drift(1.0, duty=2.0)
