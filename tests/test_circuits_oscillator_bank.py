"""Tests for the oscillator bank and per-die construction."""

import numpy as np
import pytest

from repro.circuits.oscillator_bank import (
    build_oscillator_bank,
    environment_for_die,
)
from repro.circuits.ring_oscillator import Environment
from repro.device.technology import nominal_65nm
from repro.variation.montecarlo import sample_dies


@pytest.fixture
def tech():
    return nominal_65nm()


@pytest.fixture
def env():
    return Environment(temp_k=300.0, vdd=1.2)


class TestTypicalBank:
    def test_typical_bank_has_no_offsets(self, tech):
        bank = build_oscillator_bank(tech)
        for oscillator in bank.oscillators().values():
            assert oscillator.vtn_offset == 0.0
            assert oscillator.vtp_offset == 0.0

    def test_frequencies_all_positive(self, tech, env):
        freqs = build_oscillator_bank(tech).frequencies(env)
        assert min(freqs.psro_n, freqs.psro_p, freqs.tsro, freqs.reference) > 0.0

    def test_tsro_is_the_slow_ring(self, tech, env):
        freqs = build_oscillator_bank(tech).frequencies(env)
        assert freqs.tsro < freqs.psro_n / 5.0
        assert freqs.tsro < freqs.psro_p / 5.0

    def test_oscillators_map_names(self, tech):
        bank = build_oscillator_bank(tech)
        assert set(bank.oscillators()) == {"PSRO-N", "PSRO-P", "TSRO", "REF"}

    def test_stage_counts_respected(self, tech):
        bank = build_oscillator_bank(tech, psro_stages=15, tsro_stages=11)
        assert bank.psro_n.stages == 15
        assert bank.tsro.stages == 11


class TestPerDieBank:
    def test_die_banks_carry_mismatch(self, tech):
        die = sample_dies(tech, 1, seed=6)[0]
        bank = build_oscillator_bank(tech, die=die)
        offsets = [
            bank.psro_n.vtn_offset,
            bank.psro_p.vtp_offset,
            bank.tsro.vtn_offset,
        ]
        assert any(abs(offset) > 1e-6 for offset in offsets)

    def test_same_die_same_bank(self, tech):
        die = sample_dies(tech, 1, seed=7)[0]
        a = build_oscillator_bank(tech, die=die)
        b = build_oscillator_bank(tech, die=die)
        assert a.psro_n.vtn_offset == b.psro_n.vtn_offset

    def test_different_dies_different_mismatch(self, tech):
        dies = sample_dies(tech, 2, seed=8)
        a = build_oscillator_bank(tech, die=dies[0])
        b = build_oscillator_bank(tech, die=dies[1])
        assert a.psro_n.vtn_offset != b.psro_n.vtn_offset

    def test_mismatch_magnitude_sub_mv_after_averaging(self, tech):
        """Sensing-device offsets must land in the sub-mV class (sized so)."""
        dies = sample_dies(tech, 40, seed=9)
        offsets = [
            build_oscillator_bank(tech, die=die).psro_n.vtn_offset for die in dies
        ]
        assert np.std(offsets) < 2e-3

    def test_explicit_rng_overrides_die(self, tech):
        die = sample_dies(tech, 1, seed=10)[0]
        rng = np.random.default_rng(123)
        bank = build_oscillator_bank(tech, die=die, rng=rng)
        rng2 = np.random.default_rng(123)
        bank2 = build_oscillator_bank(tech, die=die, rng=rng2)
        assert bank.psro_n.vtn_offset == bank2.psro_n.vtn_offset


class TestEnvironmentForDie:
    def test_combines_corner_and_field(self, tech):
        die = sample_dies(tech, 1, seed=11)[0]
        env = environment_for_die(die, (2.5e-3, 2.5e-3), 330.0, 1.2)
        expected_n, expected_p = die.vt_shifts_at(2.5e-3, 2.5e-3)
        assert env.dvtn == pytest.approx(expected_n)
        assert env.dvtp == pytest.approx(expected_p)
        assert env.mun_scale == die.corner.mun_scale
        assert env.temp_k == 330.0

    def test_location_matters(self, tech):
        die = sample_dies(tech, 1, seed=12)[0]
        a = environment_for_die(die, (0.5e-3, 0.5e-3), 300.0, 1.2)
        b = environment_for_die(die, (4.5e-3, 4.5e-3), 300.0, 1.2)
        assert a.dvtn != b.dvtn
