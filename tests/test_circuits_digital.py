"""Tests for counters and digital energy models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.digital import (
    WindowCounter,
    required_bits,
    ripple_counter_energy,
)


class TestWindowCounter:
    def test_deterministic_count(self):
        counter = WindowCounter(window=1e-6, bits=16)
        assert counter.count(100e6) == 100

    def test_zero_frequency_counts_zero(self):
        counter = WindowCounter(window=1e-6)
        assert counter.count(0.0) == 0

    def test_rejects_negative_frequency(self):
        counter = WindowCounter(window=1e-6)
        with pytest.raises(ValueError):
            counter.count(-1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowCounter(window=0.0)

    def test_overflow_wraps(self):
        counter = WindowCounter(window=1e-6, bits=4)
        # 100 counts into a 4-bit counter: 100 & 15 == 4
        assert counter.count(100e6) == 4
        assert counter.overflows_at(100e6)

    def test_inversion_round_trip(self):
        counter = WindowCounter(window=2e-6, bits=16)
        count = counter.count(123.4e6)
        assert counter.frequency_from_count(count) == pytest.approx(
            123.4e6, abs=counter.quantisation_step()
        )

    def test_quantisation_step(self):
        counter = WindowCounter(window=4e-6)
        assert counter.quantisation_step() == pytest.approx(250e3)

    def test_phase_randomness_within_one_lsb(self):
        counter = WindowCounter(window=1e-6, bits=16)
        rng = np.random.default_rng(0)
        counts = {counter.count(100.5e6, rng) for _ in range(200)}
        assert counts <= {100, 101}
        assert len(counts) == 2  # the phase dither must actually dither

    @settings(max_examples=50, deadline=None)
    @given(freq=st.floats(min_value=1e3, max_value=1e9))
    def test_count_error_bounded_by_one(self, freq):
        counter = WindowCounter(window=1e-6, bits=32)
        count = counter.count(freq)
        assert abs(count - freq * 1e-6) <= 1.0


class TestRippleCounterEnergy:
    def test_zero_counts_zero_energy(self):
        assert ripple_counter_energy(0, 1.2) == 0.0

    def test_linear_in_counts(self):
        one = ripple_counter_energy(100, 1.2)
        two = ripple_counter_energy(200, 1.2)
        assert two == pytest.approx(2.0 * one)

    def test_quadratic_in_vdd(self):
        lo = ripple_counter_energy(100, 0.6)
        hi = ripple_counter_energy(100, 1.2)
        assert hi == pytest.approx(4.0 * lo)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            ripple_counter_energy(-1, 1.2)

    def test_pj_class_for_typical_conversion(self):
        # ~1000 counts at 1.2 V is single-digit pJ.
        assert 1e-13 < ripple_counter_energy(1000, 1.2) < 1e-10


class TestRequiredBits:
    def test_exact_power_of_two(self):
        assert required_bits(1023e6, 1e-6) == 10

    def test_one_more_count_needs_a_bit(self):
        assert required_bits(1024e6, 1e-6) == 11

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            required_bits(0.0, 1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        freq=st.floats(min_value=1e3, max_value=1e10),
        window=st.floats(min_value=1e-8, max_value=1e-3),
    )
    def test_counter_sized_by_required_bits_never_overflows(self, freq, window):
        bits = required_bits(freq, window)
        counter = WindowCounter(window=window, bits=bits)
        assert not counter.overflows_at(freq)
