"""Tests for the supply-aware (four-ring) calibration engine."""

import pytest

from repro.core.decoupler import ProcessLut
from repro.core.sensing_model import SensingModel
from repro.core.supply import SupplyAwareEngine
from repro.device.technology import nominal_65nm
from repro.units import celsius_to_kelvin


@pytest.fixture(scope="module")
def model():
    return SensingModel(nominal_65nm())


@pytest.fixture(scope="module")
def engine(model):
    return SupplyAwareEngine(model, lut=ProcessLut.build(model))


def measurements(model, dvtn, dvtp, temp_c, vdd):
    temp_k = celsius_to_kelvin(temp_c)
    env = model.environment(dvtn, dvtp, temp_k, vdd)
    bank = model.bank
    return (
        bank.psro_n.frequency(env),
        bank.psro_p.frequency(env),
        bank.tsro.frequency(env),
        bank.reference.frequency(env),
    )


class TestJointEstimation:
    def test_nominal_conditions_recovered(self, model, engine):
        f = measurements(model, 0.0, 0.0, 27.0, 1.2)
        state = engine.run(*f)
        assert state.converged
        assert state.vdd == pytest.approx(1.2, abs=1e-3)
        assert state.temp_k == pytest.approx(celsius_to_kelvin(27.0), abs=0.1)

    @pytest.mark.parametrize("droop", [-0.10, -0.05, 0.05, 0.10])
    def test_droop_recovered_exactly(self, model, engine, droop):
        vdd_true = 1.2 * (1.0 + droop)
        f = measurements(model, 0.015, -0.010, 65.0, vdd_true)
        state = engine.run(*f)
        assert state.vdd == pytest.approx(vdd_true, abs=2e-3)
        assert state.temp_k == pytest.approx(celsius_to_kelvin(65.0), abs=0.2)
        assert state.dvtn == pytest.approx(0.015, abs=1e-3)
        assert state.dvtp == pytest.approx(-0.010, abs=1e-3)

    def test_converges_quickly(self, model, engine):
        f = measurements(model, 0.0, 0.0, 27.0, 1.14)
        assert engine.run(*f).rounds_used <= 10

    @pytest.mark.parametrize("temp_c", [-40.0, 125.0])
    def test_temperature_extremes(self, model, engine, temp_c):
        f = measurements(model, -0.02, 0.02, temp_c, 1.15)
        state = engine.run(*f)
        assert state.temp_k == pytest.approx(celsius_to_kelvin(temp_c), abs=0.3)

    def test_rejects_nonpositive_frequency(self, engine):
        with pytest.raises(ValueError):
            engine.run(1e8, 1e8, 1e7, 0.0)


class TestFallback:
    def test_fallback_on_out_of_window_droop(self, model, engine):
        """Droop beyond the validity window degrades, never crashes."""
        f = measurements(model, 0.0, 0.0, 65.0, 1.2 * 0.80)  # -20 % droop
        state = engine.run_or_fallback(*f)
        assert not state.converged  # fallback or pinned solve is flagged
        assert state.vdd > 0.0

    def test_fallback_matches_paper_engine_when_used(self, model):
        engine = SupplyAwareEngine(model, max_rounds=1)  # force failure
        f = measurements(model, 0.0, 0.0, 65.0, 1.2)
        state = engine.run_or_fallback(*f)
        assert not state.converged
        assert state.vdd == pytest.approx(model.technology.vdd)
        # The paper engine still gets temperature right at nominal supply.
        assert state.temp_k == pytest.approx(celsius_to_kelvin(65.0), abs=0.2)
