"""The streaming plane over live wires: SSE, NDJSON and binary faces.

One shared live server (2 spawn-started shards) carries most of the
coverage: subscribe/unsubscribe round-trips on both framed wires and the
asyncio client, SSE block format and ``limit``, heartbeats on a quiet
stream, slow-consumer drop accounting surfaced as typed notices, rollup
windows over HTTP, churn storms, and a subscription surviving a live
reshard.  The bit-reproducibility guarantee — the detector makes the
same decision regardless of which wire face carried the reads — gets a
single-shard server of its own, driving identical escalating read
sequences through NDJSON, binary frames and ``POST /v1/read``.
"""

import asyncio
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.edge import (
    AdminClient,
    AsyncEdgeClient,
    EdgeClient,
    EdgeConfig,
    EdgeError,
    EdgeServerThread,
    StreamPolicy,
    protocol,
)
from repro.telemetry.runaway import ALERT_WARNING, RunawayPolicy
from repro.serve import ReadRequest

TIERS = 4
ROOT_SEED = 2012

#: A detector sensitive enough that client-driven ambient escalation
#: trips it within a handful of reads.
SENSITIVE = RunawayPolicy(
    warn_slope_c=0.5, warn_temp_c=40.0, consecutive=2, clear_slope_c=0.1
)


@pytest.fixture(scope="module")
def edge():
    config = EdgeConfig(
        shards=2,
        tiers=TIERS,
        root_seed=ROOT_SEED,
        stream=StreamPolicy(sample_s=0.05, heartbeat_s=0.25, detector=SENSITIVE),
    )
    server = EdgeServerThread(config).start()
    yield server
    server.stop(drain=True)


def _escalate(client, stack, rounds=10, start=40.0, step=4.0):
    for i in range(rounds):
        result = client.read(stack, ReadRequest.point(1, start + step * i))
        assert result.ok
    return rounds


# ----------------------------------------------------------- framed wires


class TestSubscribeRoundTrips:
    @pytest.mark.parametrize("wire", ["ndjson", "binary"])
    def test_subscribe_receives_reads_and_alerts(self, edge, wire):
        with EdgeClient(edge.host, edge.port, wire=wire) as streaming, \
                EdgeClient(edge.host, edge.port) as reader:
            receiver = streaming.subscribe(kinds=["read", "alert"])
            stack = 30 if wire == "ndjson" else 31
            _escalate(reader, stack)
            events = receiver.take(6)
            kinds = {event["event"] for event in events}
            assert "read" in kinds
            reads = [e for e in events if e["event"] == "read"]
            assert all(e["sub"] == receiver.subscription for e in events)
            assert all("temps_c" in e and "round" in e for e in reads)
            # The compounding ambient trips the sensitive detector.
            for _ in range(100):
                if any(e["event"] == "alert" for e in events):
                    break
                events.append(receiver.next())
            alert = next(e for e in events if e["event"] == "alert")
            assert alert["name"] == ALERT_WARNING
            assert alert["stack"] == stack
            ack = receiver.unsubscribe()
            assert ack["ok"] and ack["subscription"] == receiver.subscription
            assert ack["dropped"] >= 0

    def test_heartbeats_flow_on_a_quiet_stream(self, edge):
        with EdgeClient(edge.host, edge.port) as client:
            receiver = client.subscribe(kinds=["heartbeat"])
            beat = receiver.take(2, ignore=())
            assert all(event["event"] == "heartbeat" for event in beat)
            assert all(event["sub"] == receiver.subscription for event in beat)
            receiver.unsubscribe()

    def test_subscription_filters_by_metric_prefix(self, edge):
        with EdgeClient(edge.host, edge.port) as client:
            receiver = client.subscribe(kinds=["metric"], metrics=["stream."])
            events = receiver.take(3)
            assert all(e["name"].startswith("stream.") for e in events)
            receiver.unsubscribe()

    def test_validation_rejects_bad_fields(self, edge):
        with EdgeClient(edge.host, edge.port) as client:
            for payload in (
                {"op": "stream.subscribe", "kinds": "read"},
                {"op": "stream.subscribe", "metrics": [1, 2]},
                {"op": "stream.subscribe", "queue": 0},
                {"op": "stream.subscribe", "queue": 10**9},
                {"op": "stream.unsubscribe", "subscription": "nope"},
                {"op": "stream.unsubscribe", "subscription": 424242},
            ):
                answer = client.raw(dict(payload))
                assert not answer.get("ok")
                assert answer["error"]["code"] == protocol.INVALID

    def test_slow_consumer_gets_backpressure_notice_not_a_stall(self, edge):
        with EdgeClient(edge.host, edge.port) as client:
            receiver = client.subscribe(kinds=["read"], queue=4)
            # Publish a burst straight into the live server's hub from
            # this thread: the asyncio pusher cannot drain between
            # publishes, so the bounded queue must shed - and the server
            # must stay responsive throughout (nothing blocks).
            hub = edge.server.plane.hub
            for i in range(500):
                hub.publish("read", {"stack": 99, "round": i, "temps_c": {}})
            deadline = time.monotonic() + 10.0
            notice = None
            while notice is None and time.monotonic() < deadline:
                event = receiver.next()
                if event["event"] == "notice":
                    notice = event
            assert notice is not None, "no backpressure notice arrived"
            assert notice["code"] == "backpressure"
            assert notice["dropped"] > 0
            ack = receiver.unsubscribe()
            assert ack["dropped"] > 0

    def test_churn_storm_leaves_no_residue(self, edge):
        def cycle():
            for _ in range(5):
                with EdgeClient(edge.host, edge.port) as client:
                    receiver = client.subscribe(kinds=["heartbeat"])
                    receiver.unsubscribe()

        threads = [threading.Thread(target=cycle) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        deadline = time.monotonic() + 5.0
        while edge.server.plane.hub.subscribers and time.monotonic() < deadline:
            time.sleep(0.05)
        assert edge.server.plane.hub.subscribers == 0
        # The server still answers.
        with EdgeClient(edge.host, edge.port) as client:
            assert client.read(3, ReadRequest.point(0, 30.0)).ok

    def test_disconnect_without_unsubscribe_reaps_the_subscription(self, edge):
        before = edge.server.plane.hub.subscribers
        client = EdgeClient(edge.host, edge.port)
        client.subscribe(kinds=["read"])
        client.close()  # vanish without stream.unsubscribe
        deadline = time.monotonic() + 5.0
        while edge.server.plane.hub.subscribers > before:
            assert time.monotonic() < deadline, "subscription leaked"
            time.sleep(0.05)


# ------------------------------------------------------------ async client


class TestAsyncSubscription:
    def test_events_flow_while_reads_multiplex(self, edge):
        async def scenario():
            async with AsyncEdgeClient(edge.host, edge.port) as client:
                sub = await client.subscribe(kinds=["read"])
                results = await asyncio.gather(
                    *[
                        client.read(40 + i, ReadRequest.point(1, 45.0))
                        for i in range(4)
                    ]
                )
                assert all(result.ok for result in results)
                events = await asyncio.wait_for(sub.take(4), timeout=30.0)
                assert {event["event"] for event in events} == {"read"}
                ack = await sub.unsubscribe()
                assert ack["ok"]

        asyncio.run(scenario())


# ------------------------------------------------------------- HTTP faces


class TestHttpFaces:
    def test_sse_stream_with_limit(self, edge):
        # A pump keeps read events flowing until the SSE response ends,
        # so the subscription always has traffic whenever it attaches.
        stop = threading.Event()

        def pump():
            with EdgeClient(edge.host, edge.port) as client:
                while not stop.is_set():
                    client.read(50, ReadRequest.point(1, 45.0))
                    time.sleep(0.01)

        probe = threading.Thread(target=pump, daemon=True)
        probe.start()
        sock = socket.create_connection((edge.host, edge.port), timeout=30.0)
        try:
            sock.sendall(
                b"GET /v1/stream?kinds=read&limit=2 HTTP/1.1\r\n"
                b"Host: t\r\nConnection: close\r\n\r\n"
            )
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        finally:
            sock.close()
            stop.set()
        probe.join()
        head, _, body = data.partition(b"\r\n\r\n")
        assert b"200 OK" in head
        assert b"text/event-stream" in head
        assert b"Connection: close" in head
        blocks = [b for b in body.decode("utf-8").split("\n\n") if b.strip()]
        assert len(blocks) == 2
        for block in blocks:
            lines = block.split("\n")
            assert lines[0] == "event: read"
            assert lines[1].startswith("id: ")
            record = json.loads(lines[2][len("data: "):])
            assert record["event"] == "read" and "temps_c" in record

    def test_sse_rejects_bad_query(self, edge):
        for query in ("limit=-1", "heartbeat=0", "queue=0"):
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://{edge.host}:{edge.port}/v1/stream?{query}",
                    timeout=30.0,
                )
            assert err.value.code == 400, query
            assert json.load(err.value)["error"]["code"] == protocol.INVALID

    def test_rollup_windows_over_http(self, edge):
        with EdgeClient(edge.host, edge.port) as client:
            for i in range(8):
                assert client.read(60, ReadRequest.point(1, 42.0)).ok
        deadline = time.monotonic() + 30.0
        windows = []
        while not windows and time.monotonic() < deadline:
            time.sleep(0.2)
            with urllib.request.urlopen(
                f"http://{edge.host}:{edge.port}/v1/rollup"
                "?metric=read.temperature_c&last=5",
                timeout=30.0,
            ) as response:
                payload = json.load(response)
            assert payload["ok"]
            windows = payload["rollups"].get("read.temperature_c", [])
        assert windows, "no sealed temperature windows appeared"
        newest = windows[-1]
        assert newest["count"] >= 1
        assert newest["min"] <= newest["mean"] <= newest["max"]
        assert set(newest) >= {"start", "end", "p50", "p99"}

    def test_rollup_tier_query_selects_the_coarse_ring(self, edge):
        # Feed a synthetic series straight into the live plane's table
        # with virtual timestamps: 30 fine epochs fill two coarse
        # windows (coarse_every=15) deterministically.
        rollups = edge.server.plane.rollups
        for i in range(30):
            rollups.observe("test.tiered", float(i), float(i) + 0.5)
        rollups.advance(1000.0)
        with urllib.request.urlopen(
            f"http://{edge.host}:{edge.port}/v1/rollup"
            "?metric=test.tiered&tier=coarse",
            timeout=30.0,
        ) as response:
            payload = json.load(response)
        assert payload["ok"] and payload["tier"] == "coarse"
        assert payload["window_s"] == 15.0 and payload["ring"] == 24
        windows = payload["rollups"]["test.tiered"]
        assert [(w["start"], w["end"]) for w in windows] == [
            (0.0, 15.0), (15.0, 30.0),
        ]
        assert [w["count"] for w in windows] == [15, 15]
        # The fine tier still answers (and is the default).
        with urllib.request.urlopen(
            f"http://{edge.host}:{edge.port}/v1/rollup?metric=test.tiered",
            timeout=30.0,
        ) as response:
            fine = json.load(response)
        assert fine["tier"] == "fine" and fine["window_s"] == 1.0
        assert len(fine["rollups"]["test.tiered"]) > 2

    def test_rollup_rejects_unknown_tier(self, edge):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"http://{edge.host}:{edge.port}/v1/rollup?tier=medium",
                timeout=30.0,
            )
        assert err.value.code == 400
        assert json.load(err.value)["error"]["code"] == protocol.INVALID

    def test_admin_status_reports_the_stream_plane(self, edge):
        with AdminClient(edge.host, edge.port) as admin:
            status = admin.status()["status"]
        assert {"subscribers", "alerts", "rollup_series"} <= set(status["stream"])


# ------------------------------------------------------ reshard survival


class TestReshardSurvival:
    def test_subscription_survives_a_live_scale(self, edge):
        with EdgeClient(edge.host, edge.port) as streaming, \
                EdgeClient(edge.host, edge.port) as reader, \
                AdminClient(edge.host, edge.port) as admin:
            receiver = streaming.subscribe(kinds=["read"])
            assert reader.read(70, ReadRequest.point(0, 35.0)).ok
            assert receiver.take(1)[0]["event"] == "read"
            answer = admin.scale(3)
            assert answer["ok"]
            try:
                assert reader.read(71, ReadRequest.point(0, 35.0)).ok
                event = receiver.take(1)[0]
                assert event["event"] == "read"
                assert event["sub"] == receiver.subscription
                receiver.unsubscribe()
            finally:
                admin.scale(2)


# -------------------------------------------- cross-face bit-identity


class TestDetectorBitIdentityAcrossFaces:
    """The same reads through different wire faces decide identically."""

    AMBIENTS = [40.0 + 4.0 * i for i in range(8)]

    def _drive_ndjson(self, server, stack):
        with EdgeClient(server.host, server.port, wire="ndjson") as client:
            for ambient in self.AMBIENTS:
                assert client.read(stack, ReadRequest.point(1, ambient)).ok

    def _drive_binary(self, server, stack):
        with EdgeClient(server.host, server.port, wire="binary") as client:
            for ambient in self.AMBIENTS:
                assert client.read(stack, ReadRequest.point(1, ambient)).ok

    def _drive_http(self, server, stack):
        for i, ambient in enumerate(self.AMBIENTS):
            payload = json.dumps(
                {
                    "id": f"h{i}",
                    "op": "read",
                    "stack": stack,
                    "request": protocol.request_to_wire(
                        ReadRequest.point(1, ambient)
                    ),
                }
            ).encode("utf-8")
            request = urllib.request.Request(
                f"http://{server.host}:{server.port}/v1/read",
                data=payload,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30.0) as response:
                answer = json.load(response)
            assert answer["ok"]

    def test_alert_rounds_and_floats_match(self):
        config = EdgeConfig(
            shards=1,
            tiers=TIERS,
            root_seed=ROOT_SEED,
            stream=StreamPolicy(detector=SENSITIVE),
        )
        alerts = {}
        for face, drive in (
            ("ndjson", self._drive_ndjson),
            ("binary", self._drive_binary),
            ("http", self._drive_http),
        ):
            server = EdgeServerThread(config).start()
            try:
                drive(server, stack=5)
                fired = list(server.server.plane.detector.alerts)
            finally:
                server.stop(drain=True)
            assert fired, f"no alert fired on the {face} face"
            alerts[face] = fired

        # Same decision, same round, same EWMA floats - bit for bit.
        assert alerts["ndjson"] == alerts["binary"] == alerts["http"]
