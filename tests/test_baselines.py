"""Tests for the baseline/comparison sensors."""

import numpy as np
import pytest

from repro.baselines.diode import DiodeSensor
from repro.baselines.ratio import RatioSensor
from repro.baselines.two_point import TwoPointCalibratedSensor
from repro.baselines.uncalibrated import UncalibratedTsroSensor
from repro.config import SensorConfig
from repro.core.sensing_model import SensingModel
from repro.device.technology import nominal_65nm
from repro.variation.montecarlo import sample_dies


@pytest.fixture(scope="module")
def tech():
    return nominal_65nm()


@pytest.fixture(scope="module")
def model(tech):
    return SensingModel(tech)


@pytest.fixture(scope="module")
def skewed_die(tech):
    # Pick the most skewed die of a small population for worst-case tests.
    dies = sample_dies(tech, 10, seed=55)
    return max(dies, key=lambda d: abs(d.corner.dvtn) + abs(d.corner.dvtp))


class TestUncalibrated:
    def test_accurate_on_typical_die(self, tech, model):
        sensor = UncalibratedTsroSensor(tech, sensing_model=model)
        assert sensor.read_temperature(50.0, deterministic=True) == pytest.approx(
            50.0, abs=0.5
        )

    def test_process_error_degrees_class(self, tech, model, skewed_die):
        sensor = UncalibratedTsroSensor(tech, die=skewed_die, sensing_model=model)
        error = sensor.read_temperature(50.0, deterministic=True) - 50.0
        assert abs(error) > 2.0  # the whole reason the paper exists

    def test_clamps_instead_of_raising(self, tech, model, skewed_die):
        sensor = UncalibratedTsroSensor(tech, die=skewed_die, sensing_model=model)
        # Must not raise even at the range edge on a skewed die.
        sensor.read_temperature(-40.0, deterministic=True)
        sensor.read_temperature(125.0, deterministic=True)


class TestTwoPoint:
    def test_accurate_between_cal_points(self, tech, skewed_die):
        """Interpolation error = the Arrhenius-basis curvature residual.

        The TSRO runs in moderate (not deep weak) inversion, so ln f is not
        exactly linear in 1/T; a 2-degree-of-freedom trim leaves a few
        degrees of bowl between the chamber points.  That residual is the
        cost the comparison table charges the two-point scheme.
        """
        sensor = TwoPointCalibratedSensor(tech, die=skewed_die)
        for temp in (0.0, 25.0, 60.0, 90.0):
            est = sensor.read_temperature(temp, deterministic=True)
            assert est == pytest.approx(temp, abs=3.5)

    def test_beats_uncalibrated_on_skewed_die(self, tech, model, skewed_die):
        two_point = TwoPointCalibratedSensor(tech, die=skewed_die)
        uncal = UncalibratedTsroSensor(tech, die=skewed_die, sensing_model=model)
        errors_tp, errors_un = [], []
        for temp in (0.0, 27.0, 85.0):
            errors_tp.append(abs(two_point.read_temperature(temp, deterministic=True) - temp))
            errors_un.append(abs(uncal.read_temperature(temp, deterministic=True) - temp))
        assert max(errors_tp) < max(errors_un)

    def test_rejects_bad_cal_points(self, tech):
        with pytest.raises(ValueError):
            TwoPointCalibratedSensor(tech, cal_points_c=(85.0, 25.0))


class TestRatio:
    def test_accurate_on_typical_die(self, tech, model):
        sensor = RatioSensor(tech, sensing_model=model)
        assert sensor.read_temperature(50.0, deterministic=True) == pytest.approx(
            50.0, abs=1.0
        )

    def test_partial_cancellation(self, tech, model, skewed_die):
        """Ratio must beat raw TSRO but not reach self-calibrated accuracy."""
        ratio = RatioSensor(tech, die=skewed_die, sensing_model=model)
        uncal = UncalibratedTsroSensor(tech, die=skewed_die, sensing_model=model)
        err_ratio = abs(ratio.read_temperature(50.0, deterministic=True) - 50.0)
        err_uncal = abs(uncal.read_temperature(50.0, deterministic=True) - 50.0)
        assert err_ratio < err_uncal
        assert err_ratio > 0.5  # cancellation is only partial


class TestDiode:
    def test_typical_reads_accurately_at_trim_point(self):
        sensor = DiodeSensor()
        assert sensor.read_temperature(25.0) == pytest.approx(25.0, abs=0.3)

    def test_untrimmed_offset_degrees_class(self, tech):
        dies = sample_dies(tech, 30, seed=56)
        errors = [
            DiodeSensor(die=die).read_temperature(25.0) - 25.0 for die in dies
        ]
        assert 0.5 < np.std(errors) < 4.0

    def test_trim_removes_offset(self, tech):
        die = sample_dies(tech, 1, seed=57)[0]
        untrimmed = abs(DiodeSensor(die=die).read_temperature(25.0) - 25.0)
        trimmed = abs(DiodeSensor(die=die, trimmed=True).read_temperature(25.0) - 25.0)
        assert trimmed < untrimmed

    def test_curvature_remains_after_trim(self, tech):
        die = sample_dies(tech, 1, seed=58)[0]
        sensor = DiodeSensor(die=die, trimmed=True)
        edge_error = abs(sensor.read_temperature(125.0) - 125.0)
        centre_error = abs(sensor.read_temperature(25.0) - 25.0)
        assert edge_error > centre_error

    def test_adc_bits_validated(self):
        with pytest.raises(ValueError):
            DiodeSensor(adc_bits=2)


class TestCrossSchemeOrdering:
    def test_accuracy_ordering_holds(self, tech, model, skewed_die):
        """The R-T2 shape in miniature: uncal > ratio > two-point-class."""
        uncal = UncalibratedTsroSensor(tech, die=skewed_die, sensing_model=model)
        ratio = RatioSensor(tech, die=skewed_die, sensing_model=model)
        two_point = TwoPointCalibratedSensor(tech, die=skewed_die)
        temps = (0.0, 27.0, 85.0)

        def band(sensor):
            return max(
                abs(sensor.read_temperature(t, deterministic=True) - t) for t in temps
            )

        assert band(uncal) > band(ratio) > band(two_point)
