"""Tests for sensor placement, the thermal observer and reduced models."""

import numpy as np
import pytest

from repro.network.placement import (
    candidate_grid,
    greedy_placement,
    observer_error,
    reconstruction_error,
)
from repro.thermal.grid import ThermalLayer, build_stack_grid
from repro.thermal.materials import BEOL, COPPER, SILICON
from repro.thermal.power import hotspot_power_map, uniform_power_map
from repro.thermal.reduced import fit_foster
from repro.thermal.solver import steady_state, thermal_time_constant, transient


@pytest.fixture(scope="module")
def grid():
    layers = [
        ThermalLayer("die.si", 100e-6, SILICON, heat_source=True),
        ThermalLayer("die.beol", 8e-6, BEOL),
        ThermalLayer("spreader", 500e-6, COPPER),
    ]
    return build_stack_grid(layers, 5e-3, 5e-3, nx=12, ny=12)


@pytest.fixture(scope="module")
def fields(grid):
    workloads = [
        hotspot_power_map(12, 12, 5e-3, 5e-3, [(0.8e-3, 0.8e-3, 1e-3, 1e-3, 2.0)], 0.3),
        hotspot_power_map(12, 12, 5e-3, 5e-3, [(3.2e-3, 3.2e-3, 1e-3, 1e-3, 2.0)], 0.3),
    ]
    return [steady_state(grid, {"die.si": pmap}) for pmap in workloads]


class TestReconstructionError:
    def test_sensor_on_uniform_field_is_exact(self, grid):
        field = steady_state(grid, {"die.si": uniform_power_map(12, 12, 1.0)})
        error = reconstruction_error(field, "die.si", [(2.5e-3, 2.5e-3)], probe_grid=8)
        # A uniform workload still has mild edge cooling; error stays small.
        assert error < 1.0

    def test_hotspot_needs_local_sensor(self, fields):
        far = reconstruction_error(fields[0], "die.si", [(4.5e-3, 4.5e-3)], 8)
        near = reconstruction_error(fields[0], "die.si", [(1.3e-3, 1.3e-3), (4.0e-3, 4.0e-3)], 8)
        assert near < far

    def test_requires_sites(self, fields):
        with pytest.raises(ValueError):
            reconstruction_error(fields[0], "die.si", [], 8)


class TestGreedyPlacement:
    def test_error_trace_non_increasing(self, fields):
        candidates = candidate_grid(5e-3, 5e-3, per_axis=4)
        result = greedy_placement(fields, "die.si", candidates, sensor_budget=4, probe_grid=6)
        assert all(b <= a + 1e-12 for a, b in zip(result.error_trace, result.error_trace[1:]))

    def test_budget_validation(self, fields):
        candidates = candidate_grid(5e-3, 5e-3, per_axis=3)
        with pytest.raises(ValueError):
            greedy_placement(fields, "die.si", candidates, sensor_budget=0)
        with pytest.raises(ValueError):
            greedy_placement(fields, "die.si", candidates, sensor_budget=100)

    def test_sites_unique(self, fields):
        candidates = candidate_grid(5e-3, 5e-3, per_axis=4)
        result = greedy_placement(fields, "die.si", candidates, sensor_budget=5, probe_grid=6)
        assert len(set(result.sites)) == 5


class TestObserver:
    def test_exact_on_basis_fields(self, grid, fields):
        """With sites >= basis size, any basis field reconstructs ~exactly."""
        sites = [(1.3e-3, 1.3e-3), (3.7e-3, 3.7e-3), (2.5e-3, 1.0e-3)]
        for field in fields:
            error = observer_error(field, "die.si", sites, fields, probe_grid=8)
            assert error < 0.05

    def test_exact_on_linear_mixture(self, grid, fields):
        """Thermal linearity: mixtures of basis workloads are in-span."""
        pmap = (
            0.6 * hotspot_power_map(12, 12, 5e-3, 5e-3, [(0.8e-3, 0.8e-3, 1e-3, 1e-3, 2.0)], 0.3)
            + 0.4
            * hotspot_power_map(12, 12, 5e-3, 5e-3, [(3.2e-3, 3.2e-3, 1e-3, 1e-3, 2.0)], 0.3)
        )
        mixture = steady_state(grid, {"die.si": pmap})
        sites = [(1.3e-3, 1.3e-3), (3.7e-3, 3.7e-3), (2.5e-3, 1.0e-3)]
        error = observer_error(mixture, "die.si", sites, fields, probe_grid=8)
        assert error < 0.05

    def test_beats_nearest_on_mixture(self, grid, fields):
        pmap = 0.5 * sum(
            hotspot_power_map(12, 12, 5e-3, 5e-3, [spot], 0.3)
            for spot in [
                (0.8e-3, 0.8e-3, 1e-3, 1e-3, 2.0),
                (3.2e-3, 3.2e-3, 1e-3, 1e-3, 2.0),
            ]
        )
        mixture = steady_state(grid, {"die.si": pmap})
        sites = [(1.3e-3, 1.3e-3), (3.7e-3, 3.7e-3), (2.5e-3, 1.0e-3)]
        nearest = reconstruction_error(mixture, "die.si", sites, 8)
        observer = observer_error(mixture, "die.si", sites, fields, 8)
        assert observer < nearest / 3.0

    def test_validation(self, fields):
        with pytest.raises(ValueError):
            observer_error(fields[0], "die.si", [], fields)
        with pytest.raises(ValueError):
            observer_error(fields[0], "die.si", [(1e-3, 1e-3)], [])


class TestCandidateGrid:
    def test_count_and_margin(self):
        sites = candidate_grid(5e-3, 5e-3, per_axis=4, margin=0.1)
        assert len(sites) == 16
        xs = [x for x, _ in sites]
        assert min(xs) == pytest.approx(0.5e-3)
        assert max(xs) == pytest.approx(4.5e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            candidate_grid(5e-3, 5e-3, per_axis=1)


class TestFosterModel:
    @pytest.fixture(scope="class")
    def fitted(self, grid):
        power = {"die.si": uniform_power_map(12, 12, 2.0)}
        model = fit_foster(grid, power, "die.si", (2.5e-3, 2.5e-3))
        return grid, power, model

    def test_steady_state_matches(self, fitted):
        grid, power, model = fitted
        late = model.step_response(1e6)
        truth = steady_state(grid, power).at("die.si", 2.5e-3, 2.5e-3)
        assert late == pytest.approx(truth, abs=0.1)

    def test_starts_at_ambient(self, fitted):
        _, _, model = fitted
        assert model.step_response(0.0) == pytest.approx(model.ambient_k, abs=0.2)

    def test_step_response_monotone(self, fitted):
        grid, _, model = fitted
        tau = thermal_time_constant(grid)
        times = np.linspace(0.0, 5 * tau, 30)
        values = [model.step_response(float(t)) for t in times]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_tracks_full_solver_on_varying_power(self, fitted):
        grid, power, model = fitted
        tau = thermal_time_constant(grid)
        dt = tau / 8.0
        scales = [1.0] * 10 + [0.3] * 10 + [0.8] * 10
        reduced = model.simulate(scales, dt)
        state = None
        worst = 0.0
        for step, scale in enumerate(scales):
            state = transient(
                grid,
                lambda t: {"die.si": power["die.si"] * scale},
                dt=dt,
                steps=1,
                initial=state,
            )[0]
            truth = state.at("die.si", 2.5e-3, 2.5e-3)
            worst = max(worst, abs(truth - reduced[step]))
        swing = max(reduced) - min(reduced)
        assert worst < 0.05 * swing + 0.1

    def test_scales_linearly_with_power(self, fitted):
        _, _, model = fitted
        full = model.step_response(1.0, power_scale=1.0) - model.ambient_k
        half = model.step_response(1.0, power_scale=0.5) - model.ambient_k
        assert half == pytest.approx(full / 2.0)

    def test_rejects_cold_site(self, grid):
        with pytest.raises(ValueError):
            fit_foster(grid, {}, "die.si", (2.5e-3, 2.5e-3))
