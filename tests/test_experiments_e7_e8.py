"""Shape tests for experiments R-E7 (body bias) and R-E8 (runaway)."""

import pytest

from repro.experiments import exp_e7_body_bias, exp_e8_runaway


class TestE7BodyBias:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_e7_body_bias.run(fast=True)

    def test_threshold_spread_collapses(self, result):
        assert result.vtn_collapse_factor() > 5.0
        assert result.vtp_sigma_after_mv < result.vtp_sigma_before_mv / 5.0

    def test_residual_bounded_by_sensor_and_dac(self, result):
        """Post-ABB sigma ~ sensor extraction error + DAC quantisation."""
        floor_mv = result.dac_lsb_mv / 2.0 + 1.0  # half LSB + mV-class sensing
        assert result.vtn_sigma_after_mv < floor_mv + 1.5

    def test_speed_spread_shrinks(self, result):
        assert result.speed_spread_after < result.speed_spread_before

    def test_leakage_spread_collapses(self, result):
        assert result.leakage_ratio_after < result.leakage_ratio_before / 3.0

    def test_renders(self, result):
        assert "R-E7" in result.render()


class TestE8Runaway:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_e8_runaway.run(fast=True)

    def test_low_power_stable_high_power_runs_away(self, result):
        assert result.rows[0].converged
        assert not result.rows[-1].converged

    def test_stable_peaks_monotone_in_power(self, result):
        stable = [row for row in result.rows if row.converged]
        peaks = [row.peak_c for row in stable]
        assert peaks == sorted(peaks)

    def test_boundary_ordering_by_process(self, result):
        """Fast (leaky) silicon must run away earliest."""
        assert (
            result.boundary_fast_w
            < result.boundary_typical_w
            < result.boundary_slow_w
        )

    def test_leakage_share_substantial_near_boundary(self, result):
        """Approaching runaway, leakage carries a large share of the heat."""
        stable = [row for row in result.rows if row.converged]
        assert stable[-1].leakage_fraction > 0.25

    def test_renders(self, result):
        assert "R-E8" in result.render()
