"""Tests for electrothermal coupling, body bias and the TSV electrical model."""

import numpy as np
import pytest

from repro.device.bodybias import BodyBiasGenerator, compensate_die
from repro.thermal.coupling import (
    LeakageModel,
    runaway_power_boundary,
    solve_electrothermal,
)
from repro.thermal.grid import ThermalLayer, build_stack_grid
from repro.thermal.materials import BEOL, COPPER, SILICON
from repro.thermal.power import uniform_power_map
from repro.thermal.solver import steady_state
from repro.tsv.electrical import TsvElectricalModel
from repro.tsv.geometry import TsvSite


@pytest.fixture(scope="module")
def grid():
    layers = [
        ThermalLayer("t0.si", 100e-6, SILICON, heat_source=True),
        ThermalLayer("t0.beol", 8e-6, BEOL),
        ThermalLayer("bond0", 20e-6, BEOL),
        ThermalLayer("t1.si", 100e-6, SILICON, heat_source=True),
        ThermalLayer("spreader", 500e-6, COPPER),
    ]
    return build_stack_grid(layers, 5e-3, 5e-3, nx=8, ny=8)


class TestLeakageModel:
    def test_doubles_per_doubling_k(self):
        model = LeakageModel(doubling_k=10.0)
        base = model.tier_leakage(model.ref_temp_k)
        assert model.tier_leakage(model.ref_temp_k + 10.0) == pytest.approx(2.0 * base)

    def test_fast_die_leaks_more(self):
        model = LeakageModel()
        typical = model.tier_leakage(320.0, dvt=0.0)
        fast = model.tier_leakage(320.0, dvt=-0.03)
        assert fast > 1.5 * typical

    def test_validation(self):
        with pytest.raises(ValueError):
            LeakageModel(leakage_at_ref=-1.0)
        with pytest.raises(ValueError):
            LeakageModel(doubling_k=0.0)


class TestElectrothermal:
    def test_converges_at_low_power(self, grid):
        power = {"t0.si": uniform_power_map(8, 8, 0.3), "t1.si": uniform_power_map(8, 8, 0.3)}
        result = solve_electrothermal(grid, power, LeakageModel(leakage_at_ref=0.05))
        assert result.converged
        assert result.field is not None

    def test_fixed_point_hotter_than_no_leakage(self, grid):
        power = {"t0.si": uniform_power_map(8, 8, 0.5), "t1.si": uniform_power_map(8, 8, 0.5)}
        with_leak = solve_electrothermal(grid, power, LeakageModel(leakage_at_ref=0.08))
        without = steady_state(grid, power)
        assert with_leak.field.peak("t0.si") > without.peak("t0.si")

    def test_leakage_positive_at_fixed_point(self, grid):
        power = {"t0.si": uniform_power_map(8, 8, 0.3)}
        result = solve_electrothermal(grid, power, LeakageModel(leakage_at_ref=0.05))
        assert all(value > 0.0 for value in result.leakage_by_layer.values())

    def test_runaway_detected_at_huge_leakage(self, grid):
        power = {"t0.si": uniform_power_map(8, 8, 1.0)}
        result = solve_electrothermal(grid, power, LeakageModel(leakage_at_ref=5.0))
        assert not result.converged
        assert result.field is None

    def test_process_shift_raises_fixed_point(self, grid):
        power = {"t0.si": uniform_power_map(8, 8, 0.3)}
        leak = LeakageModel(leakage_at_ref=0.05)
        typical = solve_electrothermal(grid, power, leak)
        fast = solve_electrothermal(
            grid, power, leak, tier_dvt={"t0.si": -0.02, "t1.si": -0.02}
        )
        assert fast.field.peak("t0.si") > typical.field.peak("t0.si")

    def test_boundary_bisection(self, grid):
        leak = LeakageModel(leakage_at_ref=0.08)

        def dynamic(power):
            return {
                "t0.si": uniform_power_map(8, 8, power),
                "t1.si": uniform_power_map(8, 8, power),
            }

        lo, hi = runaway_power_boundary(grid, dynamic, leak, 0.1, 20.0, resolution=0.5)
        assert lo < hi
        assert solve_electrothermal(grid, dynamic(lo), leak).converged
        assert not solve_electrothermal(grid, dynamic(hi), leak).converged

    def test_boundary_validation(self, grid):
        leak = LeakageModel(leakage_at_ref=0.08)

        def dynamic(power):
            return {"t0.si": uniform_power_map(8, 8, power)}

        with pytest.raises(ValueError):
            runaway_power_boundary(grid, dynamic, leak, 2.0, 1.0)


class TestBodyBias:
    def test_dac_quantisation(self):
        generator = BodyBiasGenerator(vbb_range=0.4, dac_steps=9)
        assert generator.dac_lsb == pytest.approx(0.1)
        assert generator.quantise(0.17) == pytest.approx(0.2)
        assert generator.quantise(-1.0) == pytest.approx(-0.4)

    def test_bias_for_shift_round_trip(self):
        generator = BodyBiasGenerator(dac_steps=4096)  # fine DAC: ~exact
        vbb = generator.bias_for_shift(-0.02)
        assert generator.vt_shift(vbb) == pytest.approx(-0.02, abs=1e-3)

    def test_range_clipping_limits_compensation(self):
        generator = BodyBiasGenerator(k_body=0.15, vbb_range=0.2)
        # 100 mV shift needs 0.67 V of bias: out of range.
        _, _, residual_n, _ = compensate_die(generator, 0.100, 0.0)
        assert residual_n > 0.05

    def test_compensation_cancels_measured_shift(self):
        generator = BodyBiasGenerator(dac_steps=4096)
        _, _, residual_n, residual_p = compensate_die(generator, 0.020, -0.015)
        assert abs(residual_n) < 2e-3
        assert abs(residual_p) < 2e-3

    def test_residual_bounded_by_dac_lsb(self):
        generator = BodyBiasGenerator()
        lsb_vt = generator.dac_lsb * generator.k_body
        for shift in np.linspace(-0.04, 0.04, 17):
            _, _, residual_n, _ = compensate_die(generator, float(shift), 0.0)
            assert abs(residual_n) <= lsb_vt / 2.0 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            BodyBiasGenerator(k_body=0.0)
        with pytest.raises(ValueError):
            BodyBiasGenerator(dac_steps=1)
        with pytest.raises(ValueError):
            BodyBiasGenerator().vt_shift(10.0)


class TestTsvElectrical:
    @pytest.fixture
    def model(self):
        return TsvElectricalModel()

    @pytest.fixture
    def via(self):
        return TsvSite(0.0, 0.0, radius=5e-6)

    def test_resistance_milliohm_class(self, model, via):
        assert 1e-3 < model.resistance(via) < 1.0

    def test_capacitance_tens_to_hundreds_ff(self, model, via):
        assert 10e-15 < model.capacitance(via) < 1e-12

    def test_wider_via_lower_resistance(self, model):
        thin = model.resistance(TsvSite(0.0, 0.0, radius=2e-6))
        wide = model.resistance(TsvSite(0.0, 0.0, radius=10e-6))
        assert wide < thin

    def test_ghz_class_bus_clock(self, model, via):
        """The group's own TSV papers demonstrate GHz operation."""
        assert model.max_bus_clock(via) > 1e9

    def test_bit_energy_fj_class(self, model, via):
        energy = model.bit_energy(via, vdd=1.2)
        assert 1e-15 < energy < 1e-12

    def test_frame_energy_scales_with_activity(self, model, via):
        half = model.frame_energy(via, 1.2, activity=0.5)
        full = model.frame_energy(via, 1.2, activity=1.0)
        assert full == pytest.approx(2.0 * half)

    def test_validation(self, model, via):
        with pytest.raises(ValueError):
            TsvElectricalModel(depth=0.0)
        with pytest.raises(ValueError):
            model.max_bus_clock(via, hops=0)
        with pytest.raises(ValueError):
            model.frame_energy(via, 1.2, activity=1.5)
