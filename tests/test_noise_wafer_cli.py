"""Tests for the jitter model, wafer-level variation and the CLI."""

import numpy as np
import pytest

from repro.circuits.noise import JitterModel, averaged_sigma
from repro.device.technology import nominal_65nm
from repro.variation.wafer import (
    WaferModel,
    fit_radial_signature,
    sample_wafer,
)
from repro.__main__ import main as cli_main


class TestJitterModel:
    def test_disabled_by_default(self):
        model = JitterModel()
        assert model.frequency_sigma(1e9, 1e-6) == 0.0
        assert model.apply(1e9, 1e-6, np.random.default_rng(0)) == 1e9

    def test_sigma_scaling(self):
        model = JitterModel(kappa=1e-3)
        short = model.frequency_sigma(1e9, 0.5e-6)
        long = model.frequency_sigma(1e9, 2.0e-6)
        assert short == pytest.approx(2.0 * long)  # sqrt(4x window) = 2x

    def test_relative_sigma_is_kappa_over_sqrt_counts(self):
        model = JitterModel(kappa=1e-3)
        frequency, window = 1e9, 1e-6  # 1000 periods
        sigma = model.frequency_sigma(frequency, window)
        assert sigma / frequency == pytest.approx(1e-3 / np.sqrt(1000.0))

    def test_apply_statistics(self):
        model = JitterModel(kappa=1e-2)
        rng = np.random.default_rng(1)
        samples = [model.apply(1e8, 1e-6, rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(1e8, rel=1e-3)
        assert np.std(samples) == pytest.approx(
            model.frequency_sigma(1e8, 1e-6), rel=0.1
        )

    def test_deterministic_mode(self):
        model = JitterModel(kappa=1e-2)
        assert model.apply(1e8, 1e-6, None) == 1e8

    def test_validation(self):
        with pytest.raises(ValueError):
            JitterModel(kappa=-1.0)
        with pytest.raises(ValueError):
            JitterModel().frequency_sigma(0.0, 1e-6)

    def test_averaging_law(self):
        assert averaged_sigma(1.0, 16) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            averaged_sigma(1.0, 0)


class TestWafer:
    @pytest.fixture(scope="class")
    def tech(self):
        return nominal_65nm()

    def test_circular_mask(self, tech):
        wafer = sample_wafer(tech, grid_diameter=9, seed=1)
        assert len(wafer) < 81  # corners cut
        assert all(die.radius_fraction <= 1.0 for die in wafer)

    def test_reproducible(self, tech):
        a = sample_wafer(tech, grid_diameter=7, seed=2)
        b = sample_wafer(tech, grid_diameter=7, seed=2)
        assert [d.die.corner.dvtn for d in a] == [d.die.corner.dvtn for d in b]

    def test_edge_dies_slower_on_average(self, tech):
        wafer = sample_wafer(tech, grid_diameter=15, seed=3)
        centre = [d.die.corner.dvtn for d in wafer if d.radius_fraction < 0.3]
        edge = [d.die.corner.dvtn for d in wafer if d.radius_fraction > 0.8]
        assert np.mean(edge) > np.mean(centre)

    def test_systematic_is_quadratic(self):
        model = WaferModel(bowl_dvtn=0.02, bowl_dvtp=0.02)
        half = model.systematic(0.5)[0]
        full = model.systematic(1.0)[0]
        assert full == pytest.approx(4.0 * half)

    def test_fit_recovers_signature_from_truth(self, tech):
        model = WaferModel()
        wafer = sample_wafer(tech, grid_diameter=15, seed=4, model=model)
        readings = {
            (d.row, d.col): d.die.corner.dvtn for d in wafer
        }
        offset, bowl = fit_radial_signature(readings, 15)
        assert bowl == pytest.approx(model.bowl_dvtn, abs=0.004)
        assert offset == pytest.approx(0.0, abs=0.004)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_radial_signature({(0, 0): 0.0}, 7)

    def test_systematic_validation(self):
        with pytest.raises(ValueError):
            WaferModel().systematic(1.5)

    def test_grid_validation(self, tech):
        with pytest.raises(ValueError):
            sample_wafer(tech, grid_diameter=2)


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "R-F1" in out and "R-T2" in out and "R-E4" in out

    def test_run_fast(self, capsys):
        assert cli_main(["run", "R-F2", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "sensitivity matrix" in out

    def test_run_unknown(self, capsys):
        assert cli_main(["run", "R-XX"]) == 2

    def test_run_multiple(self, capsys):
        assert cli_main(["run", "R-F1", "R-F2", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "### R-F1" in out and "### R-F2" in out

    def test_faultsim_unknown_plan_exits_with_known_names(self, capsys):
        """An unknown --plan is a friendly exit-2, never a raw KeyError."""
        assert cli_main(["faultsim", "--plan", "no-such-plan"]) == 2
        err = capsys.readouterr().err
        assert "unknown plan(s): no-such-plan" in err
        assert "known:" in err
        assert "open-tsv" in err  # the message lists the valid names

    def test_loadgen_fast_smoke(self, capsys):
        """The CI smoke invocation: zero errors, cache actually hitting."""
        import json

        assert cli_main(["loadgen", "--requests", "60", "--fast", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["errors"] == 0
        assert report["cache"]["hits"] > 0
        assert report["served"] == 60

    def test_loadgen_deterministic_across_invocations(self, capsys):
        args = ["loadgen", "--requests", "40", "--fast", "--json"]
        assert cli_main(args) == 0
        first = capsys.readouterr().out
        assert cli_main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_serve_writes_access_log(self, tmp_path, capsys):
        log = tmp_path / "access.jsonl"
        code = cli_main(
            ["serve", "--requests", "20", "--fast", "--access-log", str(log)]
        )
        assert code == 0
        assert len(log.read_text().splitlines()) == 20


class TestCliReport:
    def test_report_command_writes_files(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import ALL_EXPERIMENTS

        # Keep the CLI test fast: run only two experiments.
        subset = {k: ALL_EXPERIMENTS[k] for k in ("R-F1", "R-F2")}
        monkeypatch.setattr("repro.experiments.runner.ALL_EXPERIMENTS", subset)
        report = tmp_path / "r.md"
        archive = tmp_path / "r.json"
        code = cli_main(
            ["report", "--fast", "--output", str(report), "--json", str(archive)]
        )
        assert code == 0
        assert "all ok" in capsys.readouterr().out
        assert "## R-F1 (ok" in report.read_text()
        assert archive.exists()
