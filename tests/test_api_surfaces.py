"""Behavioural tests for API surfaces not covered elsewhere.

Each class targets a public surface (result-object helpers, trace
accessors, failure paths) with assertions on behaviour, not just types.
"""

import numpy as np
import pytest

from repro.core.tracking import TrackingPolicy, TrackingSensor
from repro.experiments import (
    exp_f1_freq_vs_temp,
    exp_t2_comparison,
)
from repro.experiments.common import (
    PAPER_ANCHORS,
    build_sensor,
    die_population,
    population_sensors,
    reference_setup,
)
from repro.network.dtm import DtmTrace
from repro.readout.energy import ConversionEnergy


# The stable public surface of repro.api.  Additions extend this set in
# the same change; removals or renames require a deprecation cycle (see
# docs/architecture.md, "API stability").
PUBLIC_API_SNAPSHOT = frozenset({
    "AdminClient",
    "AutoscalePolicy",
    "BusReport",
    "DieSample",
    "DtmClient",
    "DtmPolicy",
    "DtmService",
    "DtmServiceConfig",
    "DtmTable",
    "EdgeClient",
    "EdgeConfig",
    "EdgeDeployment",
    "EdgeError",
    "EdgeLoadgenConfig",
    "EdgeResult",
    "EdgeServer",
    "EdgeServerThread",
    "Environment",
    "EnvironmentGrid",
    "ExperimentOutcome",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FleetClient",
    "FleetDirectory",
    "FleetFaultPlan",
    "FleetSupervisor",
    "FloorplanSpec",
    "HashRing",
    "HedgePolicy",
    "HostSpec",
    "LoadgenConfig",
    "LoadgenReport",
    "MonitorSnapshot",
    "PTSensor",
    "PairedReadings",
    "PlacementEngine",
    "PopulationReadings",
    "ReadRequest",
    "ReadResult",
    "ResiliencePolicy",
    "SensorConfig",
    "SensorFrame",
    "RunawayPolicy",
    "SensorReadService",
    "SensorReading",
    "ServeConfig",
    "StackMonitor",
    "StreamLoadgenConfig",
    "StreamPolicy",
    "SuiteResult",
    "Technology",
    "TierState",
    "TrackingPolicy",
    "TrackingReading",
    "TrackingSensor",
    "TsvSensorBus",
    "dtm",
    "edge",
    "faults",
    "fleet",
    "nominal_65nm",
    "read_paired",
    "read_population",
    "run_all",
    "run_experiment",
    "run_fleet_bench",
    "run_loadgen",
    "run_loadgen_edge",
    "run_loadgen_stream",
    "sample_dies",
    "serve",
    "shard_seed",
    "telemetry",
})


class TestPublicApiFacade:
    def test_all_matches_snapshot(self):
        import repro.api

        assert set(repro.api.__all__) == PUBLIC_API_SNAPSHOT
        assert repro.api.__all__ == sorted(repro.api.__all__)

    def test_every_name_resolves(self):
        import repro.api

        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None

    def test_headline_imports(self):
        from repro.api import PTSensor, StackMonitor, telemetry

        assert hasattr(PTSensor, "read")
        assert hasattr(StackMonitor, "poll")
        assert callable(telemetry.span)

    def test_facade_objects_are_the_canonical_ones(self):
        import repro.api
        from repro.core.sensor import PTSensor
        from repro.network.aggregator import StackMonitor

        assert repro.api.PTSensor is PTSensor
        assert repro.api.StackMonitor is StackMonitor


class TestCommonFixtures:
    def test_reference_setup_is_cached(self):
        assert reference_setup() is reference_setup()

    def test_die_population_cached_and_stable(self):
        a = die_population(5)
        b = die_population(5)
        assert a is b
        assert len(a) == 5

    def test_population_sensors_wrap_die_ids(self):
        sensors = population_sensors(3)
        assert [s.die_id for s in sensors] == [0, 1, 2]

    def test_paper_anchors_present(self):
        assert PAPER_ANCHORS["energy_per_conversion_pj"] == pytest.approx(367.5)
        assert PAPER_ANCHORS["temperature_band_c"] == pytest.approx(1.5)

    def test_build_sensor_shares_design_objects(self):
        a = build_sensor()
        b = build_sensor()
        assert a.model is b.model
        assert a.lut is b.lut


class TestF1ResultHelpers:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_f1_freq_vs_temp.run(fast=True)

    def test_corner_spread_positive(self, result):
        for osc in exp_f1_freq_vs_temp.OSCILLATORS:
            assert result.corner_spread(osc) > 0.0

    def test_temperature_coefficient_sign_structure(self, result):
        assert result.temperature_coefficient("TSRO", "SS") > 0.0
        assert abs(result.temperature_coefficient("PSRO-N", "TT")) < 1e-4

    def test_unknown_series_raises(self, result):
        with pytest.raises(KeyError):
            _ = result.series[("PSRO-N", "XX")]


class TestT2ResultHelpers:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_t2_comparison.run(fast=True)

    def test_row_lookup(self, result):
        row = result.row("self-calibrated (paper)")
        assert row.factory_cost == "none (on-chip)"

    def test_unknown_row_raises(self, result):
        with pytest.raises(KeyError):
            result.row("nonexistent scheme")

    def test_all_expected_schemes_present(self, result):
        names = {row.scheme for row in result.rows}
        assert "uncalibrated TSRO" in names
        assert "two-point factory cal" in names
        assert len(names) == 6


class TestDtmTraceHelpers:
    @pytest.fixture
    def trace(self):
        return DtmTrace(
            times_s=[0.1, 0.2, 0.3],
            true_peak_c=[80.0, 86.0, 84.0],
            sensed_peak_c=[79.5, 85.0, 84.5],
            power_scales=[{0: 1.0, 1: 1.0}, {0: 0.7, 1: 1.0}, {0: 0.7, 1: 1.0}],
        )

    def test_max_true_peak(self, trace):
        assert trace.max_true_peak() == pytest.approx(86.0)

    def test_worst_sensing_gap(self, trace):
        assert trace.worst_sensing_gap() == pytest.approx(1.0)

    def test_throttled_steps(self, trace):
        assert trace.throttled_steps == 2


class TestConversionEnergyHelpers:
    def test_rows_and_total(self):
        energy = ConversionEnergy(
            psro_n=150e-12, psro_p=160e-12, tsro=7e-12, counters=10e-12, digital=20e-12
        )
        assert energy.total == pytest.approx(347e-12)
        labels = [label for label, _ in energy.as_rows()]
        assert labels[0] == "PSRO-P ring"  # largest first


class TestTrackingFailurePaths:
    def test_fast_failure_forces_full_conversion(self):
        """Out-of-range fast reads eventually trigger a recalibration."""
        setup = reference_setup()
        die = die_population(2)[1]
        sensor = build_sensor(die)
        tracker = TrackingSensor(
            sensor, TrackingPolicy(recalibration_interval=1000, max_fast_failures=1)
        )
        tracker.read(50.0)
        # estimate_temperature_clamped never raises, so the fast path
        # stays alive even at range edges — verify it pegs, not crashes.
        reading = tracker.read(140.0)
        assert reading.mode == "fast"
        assert reading.temperature_c >= setup.config.temp_max_c

    def test_calibrated_flag(self):
        die = die_population(2)[0]
        tracker = TrackingSensor(build_sensor(die))
        assert not tracker.calibrated
        tracker.read(30.0)
        assert tracker.calibrated


class TestSensorReadingInvariants:
    def test_energy_breakdown_consistent_with_total(self):
        reading = build_sensor().read(27.0)
        parts = sum(value for _, value in reading.energy.as_rows())
        assert parts == pytest.approx(reading.energy.total)

    def test_conversion_time_positive_and_sane(self):
        reading = build_sensor().read(27.0)
        assert 1e-6 < reading.conversion_time < 1e-3

    def test_counts_fit_configured_widths(self):
        setup = reference_setup()
        reading = build_sensor().read(125.0)
        assert reading.counts_n < (1 << setup.config.psro_counter_bits)
        assert reading.counts_ref < (1 << setup.config.tsro_counter_bits)


class TestDeterminismAcrossProcesses:
    """Seeded reproducibility: the exact numbers the docs quote must be
    recomputable from a clean population."""

    def test_population_statistics_stable(self):
        from repro.variation.montecarlo import sample_dies

        tech = reference_setup().technology
        dies = sample_dies(tech, 50, seed=2012)
        dvtns = np.array([die.corner.dvtn for die in dies])
        # These two moments pin the population; a silent RNG change that
        # would invalidate every documented number fails here.
        assert np.mean(dvtns) == pytest.approx(-0.0005254, abs=2e-3)
        assert np.std(dvtns) == pytest.approx(0.020, abs=0.006)

    def test_same_seed_same_reading(self):
        a = build_sensor(die_population(4)[3]).read(65.0)
        b = build_sensor(die_population(4)[3]).read(65.0)
        assert a.temperature_c == b.temperature_c
        assert a.counts_n == b.counts_n
