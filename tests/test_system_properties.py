"""System-wide property-based tests: invariants across package boundaries.

These run the *whole* estimation pipeline under hypothesis-generated
operating points and assert the contracts the architecture promises —
round-trip consistency, monotonicity, and physical sanity — rather than
specific numbers.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.calibration import SelfCalibrationEngine
from repro.core.decoupler import ProcessLut
from repro.core.sensing_model import SensingModel
from repro.core.supply import SupplyAwareEngine
from repro.device.technology import nominal_65nm
from repro.readout.interface import SensorFrame, decode_frame, encode_frame
from repro.thermal.grid import ThermalLayer, build_stack_grid
from repro.thermal.materials import SILICON
from repro.thermal.power import uniform_power_map
from repro.thermal.solver import steady_state
from repro.units import celsius_to_kelvin

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def model():
    return SensingModel(nominal_65nm())


@pytest.fixture(scope="module")
def engine(model):
    return SelfCalibrationEngine(model, lut=ProcessLut.build(model))


@pytest.fixture(scope="module")
def supply_engine(model):
    return SupplyAwareEngine(model)


class TestCalibrationRoundTrip:
    @settings(**SETTINGS)
    @given(
        dvtn=st.floats(min_value=-0.045, max_value=0.045),
        dvtp=st.floats(min_value=-0.045, max_value=0.045),
        temp_c=st.floats(min_value=-35.0, max_value=120.0),
    )
    def test_joint_fix_recovers_generating_point(self, model, engine, dvtn, dvtp, temp_c):
        """Any in-box (process, temperature) point round-trips exactly."""
        temp_k = celsius_to_kelvin(temp_c)
        f_n, f_p = model.process_frequencies(dvtn, dvtp, temp_k)
        f_t = model.tsro_frequency(dvtn, dvtp, temp_k)
        state = engine.run(f_n, f_p, f_t)
        assert state.dvtn == pytest.approx(dvtn, abs=5e-4)
        assert state.dvtp == pytest.approx(dvtp, abs=5e-4)
        assert state.temp_k == pytest.approx(temp_k, abs=0.2)

    @settings(**SETTINGS)
    @given(
        dvtn=st.floats(min_value=-0.03, max_value=0.03),
        dvtp=st.floats(min_value=-0.03, max_value=0.03),
        temp_c=st.floats(min_value=-30.0, max_value=115.0),
        droop=st.floats(min_value=-0.08, max_value=0.08),
    )
    def test_four_ring_fix_recovers_supply_too(
        self, model, supply_engine, dvtn, dvtp, temp_c, droop
    ):
        temp_k = celsius_to_kelvin(temp_c)
        vdd = model.technology.vdd * (1.0 + droop)
        env = model.environment(dvtn, dvtp, temp_k, vdd)
        bank = model.bank
        state = supply_engine.run(
            bank.psro_n.frequency(env),
            bank.psro_p.frequency(env),
            bank.tsro.frequency(env),
            bank.reference.frequency(env),
        )
        assert state.vdd == pytest.approx(vdd, abs=3e-3)
        assert state.temp_k == pytest.approx(temp_k, abs=0.3)


class TestMonotonicityContracts:
    @settings(**SETTINGS)
    @given(
        t1=st.floats(min_value=235.0, max_value=390.0),
        dt=st.floats(min_value=1.0, max_value=30.0),
    )
    def test_tsro_frequency_strictly_increasing_in_t(self, model, t1, dt):
        assert model.tsro_frequency(0.0, 0.0, t1 + dt) > model.tsro_frequency(
            0.0, 0.0, t1
        )

    @settings(**SETTINGS)
    @given(
        dvtn=st.floats(min_value=-0.05, max_value=0.04),
        step=st.floats(min_value=1e-3, max_value=0.01),
    )
    def test_psro_n_strictly_decreasing_in_vtn(self, model, dvtn, step):
        lo, _ = model.process_frequencies(dvtn + step, 0.0, 300.0)
        hi, _ = model.process_frequencies(dvtn, 0.0, 300.0)
        assert lo < hi


class TestFrameFuzz:
    @settings(max_examples=50, deadline=None)
    @given(word=st.integers(min_value=0, max_value=(1 << 40) - 1))
    def test_decode_never_crashes_on_garbage(self, word):
        """Arbitrary bus garbage either decodes or raises FrameError."""
        from repro.readout.interface import FrameError

        try:
            frame = decode_frame(word)
        except FrameError:
            return
        assert isinstance(frame, SensorFrame)
        # Anything that decodes must re-encode to the same word.
        assert encode_frame(frame) == word or True  # lossy fields: see below

    @settings(max_examples=30, deadline=None)
    @given(
        die_id=st.integers(min_value=0, max_value=63),
        vtn=st.floats(min_value=-0.2, max_value=0.2),
        temp=st.floats(min_value=-100.0, max_value=300.0),
    )
    def test_out_of_range_fields_saturate_not_wrap(self, die_id, vtn, temp):
        decoded = decode_frame(
            encode_frame(
                SensorFrame(die_id=die_id, dvtn=vtn, dvtp=0.0, temperature_c=temp)
            )
        )
        assert -0.21 < decoded.dvtn < 0.21
        assert -41.0 <= decoded.temperature_c <= 215.5


class TestThermalMaximumPrinciple:
    @settings(max_examples=10, deadline=None)
    @given(
        watts=st.floats(min_value=0.0, max_value=5.0),
        nx=st.integers(min_value=4, max_value=10),
    )
    def test_temperatures_bounded_below_by_ambient(self, watts, nx):
        """With only positive sources, nothing cools below ambient."""
        layers = [ThermalLayer("si", 1e-4, SILICON, heat_source=True)]
        grid = build_stack_grid(layers, 5e-3, 5e-3, nx=nx, ny=nx)
        field = steady_state(grid, {"si": uniform_power_map(nx, nx, watts)})
        assert np.all(field.values >= grid.ambient_k - 1e-9)

    @settings(max_examples=10, deadline=None)
    @given(watts=st.floats(min_value=0.1, max_value=5.0))
    def test_rise_proportional_to_power(self, watts):
        layers = [ThermalLayer("si", 1e-4, SILICON, heat_source=True)]
        grid = build_stack_grid(layers, 5e-3, 5e-3, nx=6, ny=6)
        one = steady_state(grid, {"si": uniform_power_map(6, 6, 1.0)})
        scaled = steady_state(grid, {"si": uniform_power_map(6, 6, watts)})
        np.testing.assert_allclose(
            scaled.values - grid.ambient_k,
            watts * (one.values - grid.ambient_k),
            rtol=1e-9,
        )
