"""Tests for the power-on self-test (BIST), including fault injection."""

import pytest

from repro.circuits.oscillator_bank import BankFrequencies
from repro.core.sensing_model import SensingModel
from repro.device.technology import nominal_65nm
from repro.readout.selftest import SensorSelfTest
from repro.units import celsius_to_kelvin
from repro.variation.montecarlo import sample_dies
from repro.circuits.oscillator_bank import build_oscillator_bank, environment_for_die


@pytest.fixture(scope="module")
def model():
    return SensingModel(nominal_65nm())


@pytest.fixture(scope="module")
def bist(model):
    return SensorSelfTest(model)


def healthy_frequencies(model, dvtn=0.0, dvtp=0.0, temp_c=27.0):
    env = model.environment(dvtn, dvtp, celsius_to_kelvin(temp_c))
    return model.bank.frequencies(env)


class TestHealthySensorsPass:
    @pytest.mark.parametrize("temp_c", [-40.0, 27.0, 125.0])
    def test_typical_die_across_range(self, model, bist, temp_c):
        report = bist.run(healthy_frequencies(model, temp_c=temp_c))
        assert report.passed, report.failures

    @pytest.mark.parametrize("shift", [-0.05, 0.05])
    def test_extreme_but_legal_corners(self, model, bist, shift):
        report = bist.run(healthy_frequencies(model, dvtn=shift, dvtp=shift))
        assert report.passed, report.failures

    def test_real_mc_dies_pass(self, model, bist):
        tech = nominal_65nm()
        for die in sample_dies(tech, 10, seed=404):
            bank = build_oscillator_bank(tech, die=die)
            env = environment_for_die(die, (2.5e-3, 2.5e-3), 300.0, tech.vdd)
            report = bist.run(bank.frequencies(env))
            assert report.passed, report.failures

    def test_repeatable_measurements_pass(self, model, bist):
        first = healthy_frequencies(model)
        repeat = BankFrequencies(
            psro_n=first.psro_n * 1.001,
            psro_p=first.psro_p * 0.999,
            tsro=first.tsro * 1.002,
            reference=first.reference,
        )
        report = bist.run(first, repeat)
        assert report.passed
        assert report.checks_run >= 10


class TestFaultInjection:
    def test_dead_ring_detected(self, model, bist):
        healthy = healthy_frequencies(model)
        dead = BankFrequencies(
            psro_n=0.0, psro_p=healthy.psro_p, tsro=healthy.tsro,
            reference=healthy.reference,
        )
        report = bist.run(dead)
        assert not report.passed
        assert any("not oscillating" in failure for failure in report.failures)

    def test_stuck_slow_ring_detected(self, model, bist):
        healthy = healthy_frequencies(model)
        broken = BankFrequencies(
            psro_n=healthy.psro_n / 10.0,  # far below any legal corner
            psro_p=healthy.psro_p,
            tsro=healthy.tsro,
            reference=healthy.reference,
        )
        report = bist.run(broken)
        assert not report.passed

    def test_inconsistent_ratio_detected(self, model, bist):
        """Both rings in-window individually, but mutually implausible:
        the implied N-vs-P skew (~140 mV) is far beyond any correlated
        manufacturing outcome."""
        slow = healthy_frequencies(model, dvtn=0.070, dvtp=0.070)
        fast = healthy_frequencies(model, dvtn=-0.070, dvtp=-0.070)
        franken = BankFrequencies(
            psro_n=slow.psro_n,  # slowest legal N
            psro_p=fast.psro_p,  # fastest legal P
            tsro=slow.tsro,
            reference=slow.reference,
        )
        report = bist.run(franken)
        assert not report.passed
        assert any("ratio" in failure for failure in report.failures)

    def test_metastable_counter_detected(self, model, bist):
        first = healthy_frequencies(model)
        repeat = BankFrequencies(
            psro_n=first.psro_n * 1.2,  # 20% repeat jump: broken counter bit
            psro_p=first.psro_p,
            tsro=first.tsro,
            reference=first.reference,
        )
        report = bist.run(first, repeat)
        assert not report.passed
        assert any("repeat" in failure for failure in report.failures)

    def test_failure_messages_are_specific(self, model, bist):
        healthy = healthy_frequencies(model)
        dead = BankFrequencies(
            psro_n=0.0, psro_p=0.0, tsro=healthy.tsro, reference=healthy.reference
        )
        report = bist.run(dead)
        assert len(report.failures) >= 2
        assert any("PSRO-N" in failure for failure in report.failures)
        assert any("PSRO-P" in failure for failure in report.failures)


class TestSensorSelfTestIntegration:
    def test_healthy_macro_passes_its_own_bist(self, model):
        from repro.core.sensor import PTSensor
        from repro.variation.montecarlo import sample_dies

        tech = nominal_65nm()
        die = sample_dies(tech, 1, seed=808)[0]
        sensor = PTSensor(tech, die=die, sensing_model=model)
        report = sensor.self_test(40.0)
        assert report.passed, report.failures
        assert report.checks_run >= 10
