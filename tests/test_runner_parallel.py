"""The concurrent experiment runner must be a pure speedup.

Experiments are independent (private rng streams, read-only shared
fixtures), so ``run_all(jobs > 1)`` has to produce byte-identical renders
in the same order as a serial run — anything else would mean hidden shared
state between experiments.
"""

import pytest

from repro.experiments.runner import run_all

SUBSET = ["R-F2", "R-F7", "R-T1", "R-E6"]


class TestRunnerValidation:
    def test_rejects_unknown_keys(self):
        with pytest.raises(KeyError):
            run_all(fast=True, only=["R-F2", "R-XX"])

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            run_all(fast=True, only=["R-F2"], jobs=0)


class TestParallelEquivalence:
    def test_parallel_renders_match_serial(self):
        serial = run_all(fast=True, only=SUBSET, jobs=1)
        parallel = run_all(fast=True, only=SUBSET, jobs=3)

        assert [o.key for o in serial.outcomes] == SUBSET
        assert [o.key for o in parallel.outcomes] == SUBSET
        assert serial.all_ok and parallel.all_ok
        for left, right in zip(serial.outcomes, parallel.outcomes):
            assert left.rendered == right.rendered

    def test_single_key_runs_serially(self):
        result = run_all(fast=True, only=["R-F7"], jobs=8)
        assert result.all_ok
        assert result.outcomes[0].runtime_s >= 0.0
