"""Smoke + shape tests for every reconstructed experiment (fast mode).

These assert the *shapes* the paper's evaluation must show — who wins, what
is monotone, which correction matters — not absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    exp_a1_ablation,
    exp_f1_freq_vs_temp,
    exp_f2_process_sensitivity,
    exp_f3_vt_extraction,
    exp_f4_temperature_accuracy,
    exp_f5_stack_monitoring,
    exp_f6_tsv_stress,
    exp_f7_energy_resolution,
    exp_f8_voltage_sensitivity,
    exp_t1_summary,
    exp_t2_comparison,
)


@pytest.mark.parametrize("key", sorted(ALL_EXPERIMENTS))
def test_every_experiment_runs_and_renders(key):
    result = ALL_EXPERIMENTS[key].run(fast=True)
    text = result.render()
    assert key.replace("R-", "R-") in text or len(text) > 50


class TestF1Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_f1_freq_vs_temp.run(fast=True)

    def test_tsro_strongly_temperature_dependent(self, result):
        tc = result.temperature_coefficient("TSRO", "TT")
        assert tc > 0.005  # >0.5 %/K

    def test_psros_temperature_flat(self, result):
        for osc in ("PSRO-N", "PSRO-P"):
            assert abs(result.temperature_coefficient(osc, "TT")) < 5e-4

    def test_tsro_monotone_every_corner(self, result):
        for corner in exp_f1_freq_vs_temp.CORNERS:
            freqs = result.series[("TSRO", corner)]
            assert np.all(np.diff(freqs) > 0.0)

    def test_corners_separate_psros(self, result):
        assert result.corner_spread("PSRO-N") > 0.10

    def test_psro_n_tracks_nmos_corner_letter(self, result):
        ff = result.series[("PSRO-N", "FF")][0]
        ss = result.series[("PSRO-N", "SS")][0]
        fs = result.series[("PSRO-N", "FS")][0]
        assert ff > fs or np.isclose(ff, fs, rtol=0.15)  # both fast NMOS
        assert fs > ss  # fast NMOS beats slow NMOS regardless of PMOS


class TestF2Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_f2_process_sensitivity.run(fast=True)

    def test_diagonal_dominance(self, result):
        matrix = np.abs(result.sensitivity_matrix)
        assert matrix[0, 0] > 4.0 * matrix[0, 1]
        assert matrix[1, 1] > 4.0 * matrix[1, 0]

    def test_well_conditioned(self, result):
        assert result.condition_number < 10.0

    def test_sweeps_monotone(self, result):
        assert np.all(np.diff(result.psro_n_vs_dvtn) < 0.0)
        assert np.all(np.diff(result.psro_p_vs_dvtp) < 0.0)


class TestF3Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_f3_vt_extraction.run(fast=True)

    def test_millivolt_class(self, result):
        assert result.vtn_stats.band < 5e-3
        assert result.vtp_stats.band < 5e-3

    def test_unbiased(self, result):
        assert abs(result.vtn_stats.mean) < 1e-3
        assert abs(result.vtp_stats.mean) < 1e-3

    def test_small_sample_near_paper_anchor(self, result):
        band_n, band_p = result.small_sample_band_mv()
        assert band_n < 4.0  # paper: 1.6 mV class
        assert band_p < 4.0  # paper: 0.8 mV class


class TestF4Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_f4_temperature_accuracy.run(fast=True)

    def test_calibration_improves_massively(self, result):
        assert result.improvement_factor() > 5.0

    def test_calibrated_band_paper_class(self, result):
        assert result.calibrated_stats.band < 2.5

    def test_uncalibrated_process_limited(self, result):
        assert result.uncalibrated_stats.band > 10.0


class TestF5Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_f5_stack_monitoring.run(fast=True)

    def test_bottom_tier_hottest(self, result):
        assert result.tier_peaks_c["tier0"] == max(result.tier_peaks_c.values())

    def test_inter_tier_gradient_exists(self, result):
        assert result.inter_tier_gradient_c() > 2.0

    def test_sensors_track_local_truth(self, result):
        assert result.max_error_c() < 2.0

    def test_bus_healthy(self, result):
        assert result.bus_healthy


class TestF6Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_f6_tsv_stress.run(fast=True)

    def test_stress_profile_decays(self, result):
        assert abs(result.profile_dvtp_mv[0]) > abs(result.profile_dvtp_mv[-1])

    def test_sensor_detects_stress(self, result):
        near = result.site_rows[0]
        assert near.detected_dvtp_mv == pytest.approx(
            near.stress_dvtp_mv, abs=max(2.0, 0.5 * abs(near.stress_dvtp_mv))
        )

    def test_calibrated_beats_uncalibrated_under_stress(self, result):
        for row in result.site_rows:
            assert abs(row.calibrated_temp_error_c) <= abs(
                row.uncalibrated_temp_error_c
            ) + 0.05

    def test_koz_ordering(self, result):
        assert result.koz_radii_um[0.01] > result.koz_radii_um[0.05]


class TestF7Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_f7_energy_resolution.run(fast=True)

    def test_reference_point_in_sweep(self, result):
        ref = result.reference_row()
        assert 250.0 < ref.energy_pj < 500.0  # the 367.5 pJ class

    def test_energy_monotone_in_window(self, result):
        by_periods = [r for r in result.rows if r.tsro_periods == 96]
        by_periods.sort(key=lambda r: r.psro_window_us)
        energies = [r.energy_pj for r in by_periods]
        assert energies == sorted(energies)

    def test_resolution_improves_with_window(self, result):
        by_periods = [r for r in result.rows if r.tsro_periods == 96]
        by_periods.sort(key=lambda r: r.psro_window_us)
        lsbs = [r.vtn_lsb_mv for r in by_periods]
        assert lsbs == sorted(lsbs, reverse=True)


class TestF8Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_f8_voltage_sensitivity.run(fast=True)

    def test_nominal_point_accurate(self, result):
        mid = result.rows[len(result.rows) // 2]
        assert abs(mid.temp_error_c) < 0.3

    def test_droop_is_a_real_error_term(self, result):
        errs = [abs(r.temp_error_c) for r in result.rows if not np.isnan(r.temp_error_c)]
        assert max(errs) > 0.5


class TestT1T2Shapes:
    def test_t1_summary_anchors(self):
        result = exp_t1_summary.run(fast=True)
        assert 250.0 < result.energy_pj_27c < 500.0
        assert result.vtn_band_mv < 4.0
        assert result.temp_band_c < 2.5

    def test_t2_self_calibrated_wins_where_it_should(self):
        result = exp_t2_comparison.run(fast=True)
        self_cal = result.row("self-calibrated (paper)")
        assert self_cal.stats.band < result.row("uncalibrated TSRO").stats.band
        assert self_cal.stats.band < result.row("ratio-metric dual-RO").stats.band
        assert self_cal.stats.band <= result.row("two-point factory cal").stats.band
        assert self_cal.factory_cost == "none (on-chip)"


class TestA1Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_a1_ablation.run(fast=True)

    def test_full_scheme_best(self, result):
        full = result.variants["full self-calibration"].band
        for name, stats in result.variants.items():
            if name != "full self-calibration":
                assert stats.band >= full * 0.9

    def test_both_corrections_necessary(self, result):
        full = result.variants["full self-calibration"].band
        assert result.variants["no V_tp correction"].band > 3.0 * full
        assert result.variants["no V_tn correction"].band > 3.0 * full

    def test_iteration_matters(self, result):
        assert (
            result.variants["single round"].band
            > result.variants["full self-calibration"].band
        )

    def test_lut_accelerates_newton(self, result):
        assert result.newton_iters_with_lut <= result.newton_iters_without_lut
