"""Tests for the technology description and corners."""

import pytest

from repro.device.technology import nominal_65nm


@pytest.fixture
def tech():
    return nominal_65nm()


class TestTechnology:
    def test_nominal_supply(self, tech):
        assert tech.vdd == pytest.approx(1.2)

    def test_five_corners_present(self, tech):
        assert set(tech.corners) == {"TT", "FF", "SS", "FS", "SF"}

    def test_unknown_corner_raises_with_context(self, tech):
        with pytest.raises(KeyError, match="known corners"):
            tech.corner("XX")

    def test_with_vdd_returns_copy(self, tech):
        low = tech.with_vdd(1.0)
        assert low.vdd == pytest.approx(1.0)
        assert tech.vdd == pytest.approx(1.2)

    def test_with_vdd_rejects_nonpositive(self, tech):
        with pytest.raises(ValueError):
            tech.with_vdd(0.0)


class TestCornerGeometry:
    """The corner letters must map onto the (dVtn, dVtp) plane correctly."""

    def test_tt_is_origin(self, tech):
        tt = tech.corner("TT")
        assert tt.dvtn == 0.0 and tt.dvtp == 0.0

    def test_ff_lowers_both_thresholds(self, tech):
        ff = tech.corner("FF")
        assert ff.dvtn < 0.0 and ff.dvtp < 0.0

    def test_ss_raises_both_thresholds(self, tech):
        ss = tech.corner("SS")
        assert ss.dvtn > 0.0 and ss.dvtp > 0.0

    def test_skew_corners_oppose(self, tech):
        fs = tech.corner("FS")
        sf = tech.corner("SF")
        assert fs.dvtn < 0.0 < fs.dvtp
        assert sf.dvtp < 0.0 < sf.dvtn

    def test_fast_corner_has_higher_mobility(self, tech):
        assert tech.corner("FF").mun_scale > tech.corner("SS").mun_scale


class TestDevicesAt:
    def test_corner_shifts_thresholds(self, tech):
        ff = tech.corner("FF")
        nmos, pmos = tech.devices_at(ff)
        assert nmos.vt0 == pytest.approx(tech.nmos.vt0 + ff.dvtn)
        assert pmos.vt0 == pytest.approx(tech.pmos.vt0 + ff.dvtp)

    def test_extra_offsets_add(self, tech):
        tt = tech.corner("TT")
        nmos, pmos = tech.devices_at(tt, dvtn_extra=0.005, dvtp_extra=-0.003)
        assert nmos.vt0 == pytest.approx(tech.nmos.vt0 + 0.005)
        assert pmos.vt0 == pytest.approx(tech.pmos.vt0 - 0.003)

    def test_corner_scales_mobility(self, tech):
        ss = tech.corner("SS")
        nmos, _ = tech.devices_at(ss)
        assert nmos.mu0 == pytest.approx(tech.nmos.mu0 * ss.mun_scale)


class TestParameterSanity:
    def test_pelgrom_coefficients_mv_um_class(self, tech):
        # A_vt for 65 nm bulk sits around 3-5 mV*um = 3-5e-9 V*m.
        assert 1e-9 < tech.avt_n < 1e-8
        assert 1e-9 < tech.avt_p < 1e-8

    def test_pmos_mobility_lower_than_nmos(self, tech):
        assert tech.pmos.mu0 < tech.nmos.mu0

    def test_thresholds_in_lp_class(self, tech):
        assert 0.3 < tech.nmos.vt0 < 0.55
        assert 0.3 < tech.pmos.vt0 < 0.55
