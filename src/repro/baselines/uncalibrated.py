"""Uncalibrated TSRO thermometer — the "before" curve of experiment R-F4.

Identical hardware to the paper sensor's temperature path (same TSRO, same
period timer) but the conversion inverts the *typical* TSRO curve with no
process information at all.  On an off-typical die the threshold shift is
misread as temperature; at ~2 %/K TSRO slope and ~3 %/mV-class threshold
sensitivity, every 10 mV of die skew costs several degrees — the error the
paper's self-calibration eliminates.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.circuits.oscillator_bank import build_oscillator_bank, environment_for_die
from repro.circuits.ring_oscillator import Environment
from repro.config import SensorConfig
from repro.core.sensing_model import SensingModel
from repro.core.temperature import estimate_temperature_clamped
from repro.device.technology import Technology
from repro.readout.counter import PeriodTimer
from repro.units import celsius_to_kelvin, kelvin_to_celsius
from repro.variation.montecarlo import DieSample


class UncalibratedTsroSensor:
    """A TSRO + period timer with no process correction.

    Args:
        technology: Technology the sensor is manufactured in.
        config: Sensor design parameters; ``None`` uses the reference design.
        die: Monte-Carlo die this instance sits on (``None`` = typical).
        location: Sensor site on the die, metres.
        sensing_model: Shared design-time model (typical TSRO curve).
        seed: Measurement-noise seed.
    """

    def __init__(
        self,
        technology: Technology,
        config: Optional[SensorConfig] = None,
        die: Optional[DieSample] = None,
        location: Tuple[float, float] = (2.5e-3, 2.5e-3),
        sensing_model: Optional[SensingModel] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.technology = technology
        self.config = config if config is not None else SensorConfig()
        self.die = die
        self.location = location
        self.bank = build_oscillator_bank(
            technology,
            die=die,
            psro_stages=self.config.psro_stages,
            tsro_stages=self.config.tsro_stages,
        )
        self.model = (
            sensing_model
            if sensing_model is not None
            else SensingModel(technology, self.config)
        )
        self._timer = PeriodTimer(
            periods=self.config.tsro_periods,
            ref_clock_hz=self.config.ref_clock_hz,
            bits=self.config.tsro_counter_bits,
        )
        if seed is None:
            seed = 2 if die is None else die.mismatch_seed ^ 0xBA5E
        self._rng = np.random.default_rng(seed)

    def _environment(self, temp_k: float, vdd: Optional[float]) -> Environment:
        vdd = self.technology.vdd if vdd is None else vdd
        if self.die is None:
            return Environment(temp_k=temp_k, vdd=vdd)
        return environment_for_die(self.die, self.location, temp_k, vdd)

    def read_temperature(
        self, temp_c: float, vdd: Optional[float] = None, deterministic: bool = False
    ) -> float:
        """One temperature conversion at a true junction temperature.

        Returns the estimated temperature in Celsius, inverted from the
        typical curve with (dV_tn, dV_tp) assumed zero.
        """
        env = self._environment(celsius_to_kelvin(temp_c), vdd)
        f_t = self.bank.tsro.frequency(env)
        rng = None if deterministic else self._rng
        count = self._timer.count(f_t, rng)
        f_t_hat = self._timer.frequency_from_count(count)
        temp_k = estimate_temperature_clamped(self.model, f_t_hat, 0.0, 0.0)
        return kelvin_to_celsius(temp_k)
