"""Ratio-metric dual-RO thermometer.

A popular zero-calibration improvement over the raw TSRO: divide the TSRO
frequency by a balanced reference ring measured in the same conversion.
Global process shifts move both rings the same direction, so the ratio
cancels part of the process error — but only part, because the TSRO's
weak-inversion threshold sensitivity (~1/(n U_T) per volt) is an order of
magnitude steeper than the reference ring's strong-inversion one.  The
residual lands between the uncalibrated sensor and the paper's
self-calibrated scheme, which is exactly the point of carrying it in the
comparison (experiment R-T2).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import optimize

from repro.circuits.oscillator_bank import build_oscillator_bank, environment_for_die
from repro.circuits.ring_oscillator import Environment
from repro.config import SensorConfig
from repro.core.sensing_model import SensingModel
from repro.device.technology import Technology
from repro.readout.counter import PeriodTimer
from repro.circuits.digital import WindowCounter
from repro.units import celsius_to_kelvin, kelvin_to_celsius
from repro.variation.montecarlo import DieSample

# Guard band beyond the specified range, matching the core estimator.
_RANGE_GUARD_K = 15.0


class RatioSensor:
    """TSRO / reference-RO ratio thermometer.

    Args:
        technology: Technology the sensor is manufactured in.
        config: Sensor design parameters; ``None`` uses the reference design.
        die: Monte-Carlo die this instance sits on (``None`` = typical).
        location: Sensor site on the die, metres.
        sensing_model: Shared design-time model (typical ratio curve).
        seed: Measurement-noise seed.
    """

    def __init__(
        self,
        technology: Technology,
        config: Optional[SensorConfig] = None,
        die: Optional[DieSample] = None,
        location: Tuple[float, float] = (2.5e-3, 2.5e-3),
        sensing_model: Optional[SensingModel] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.technology = technology
        self.config = config if config is not None else SensorConfig()
        self.die = die
        self.location = location
        self.bank = build_oscillator_bank(
            technology,
            die=die,
            psro_stages=self.config.psro_stages,
            tsro_stages=self.config.tsro_stages,
        )
        self.model = (
            sensing_model
            if sensing_model is not None
            else SensingModel(technology, self.config)
        )
        self._timer = PeriodTimer(
            periods=self.config.tsro_periods,
            ref_clock_hz=self.config.ref_clock_hz,
            bits=self.config.tsro_counter_bits,
        )
        self._ref_counter = WindowCounter(
            window=self.config.psro_window, bits=self.config.psro_counter_bits + 4
        )
        if seed is None:
            seed = 4 if die is None else die.mismatch_seed ^ 0x7A71
        self._rng = np.random.default_rng(seed)

    def _environment(self, temp_k: float, vdd: Optional[float]) -> Environment:
        vdd = self.technology.vdd if vdd is None else vdd
        if self.die is None:
            return Environment(temp_k=temp_k, vdd=vdd)
        return environment_for_die(self.die, self.location, temp_k, vdd)

    def _model_ratio(self, temp_k: float) -> float:
        env = self.model.environment(0.0, 0.0, temp_k)
        return self.model.bank.tsro.frequency(env) / self.model.bank.reference.frequency(
            env
        )

    def read_temperature(
        self, temp_c: float, vdd: Optional[float] = None, deterministic: bool = False
    ) -> float:
        """One ratio conversion, inverted on the typical ratio curve."""
        env = self._environment(celsius_to_kelvin(temp_c), vdd)
        rng = None if deterministic else self._rng

        count_t = self._timer.count(self.bank.tsro.frequency(env), rng)
        f_t_hat = self._timer.frequency_from_count(count_t)
        count_ref = self._ref_counter.count(self.bank.reference.frequency(env), rng)
        f_ref_hat = self._ref_counter.frequency_from_count(count_ref)
        measured_ratio = f_t_hat / f_ref_hat

        lo = celsius_to_kelvin(self.config.temp_min_c) - _RANGE_GUARD_K
        hi = celsius_to_kelvin(self.config.temp_max_c) + _RANGE_GUARD_K

        def residual(temp_k: float) -> float:
            return self._model_ratio(temp_k) - measured_ratio

        if residual(lo) > 0.0:
            return kelvin_to_celsius(lo)
        if residual(hi) < 0.0:
            return kelvin_to_celsius(hi)
        temp_k = float(optimize.brentq(residual, lo, hi, xtol=1e-4))
        return kelvin_to_celsius(temp_k)
