"""Baseline/comparison sensors.

Every sensor here shares the paper sensor's substrate (same technology,
same die samples, same counters) so comparisons isolate the *scheme*:

* ``uncalibrated`` — a raw TSRO thermometer that trusts the typical curve;
  what you get with zero calibration of any kind.
* ``ratio`` — a dual-RO ratio-metric thermometer; partial process
  cancellation without explicit extraction.
* ``two_point`` — a factory two-point-calibrated TSRO thermometer; the
  accuracy gold standard, but it needs a temperature chamber per die
  (exactly the cost the paper's self-calibration removes).
* ``diode`` — a behavioural BJT/diode analog sensor, the classic non-RO
  alternative, for the comparison table.
"""

from repro.baselines.diode import DiodeSensor
from repro.baselines.ratio import RatioSensor
from repro.baselines.two_point import TwoPointCalibratedSensor
from repro.baselines.uncalibrated import UncalibratedTsroSensor

__all__ = [
    "DiodeSensor",
    "RatioSensor",
    "TwoPointCalibratedSensor",
    "UncalibratedTsroSensor",
]
