"""Behavioural BJT/diode analog temperature sensor.

The classic non-RO alternative for the comparison table: a substrate-PNP
base-emitter voltage digitised by an ADC.  V_BE is beautifully linear in
temperature (about -1.6 mV/K around a ~1.2 V extrapolated bandgap) but its
absolute value spreads with process (saturation-current spread), so an
untrimmed diode sensor carries a few degrees of offset error; a one-point
trim removes most of it.

The model is behavioural — V_BE(T) with process spread, ADC quantisation —
because the comparison needs the *scheme's* accuracy/energy/cost profile,
not a BJT compact model.  Energy and area figures are typical published
values for 65 nm-class analog sensors and feed the R-T2 table only.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.units import celsius_to_kelvin, kelvin_to_celsius
from repro.variation.montecarlo import DieSample

# Nominal V_BE line: V_BE(T) = VBE_300 + SLOPE * (T - 300 K) + curvature.
_VBE_300 = 0.65
_SLOPE_V_PER_K = -1.6e-3
# Process spread of the V_BE offset (saturation-current lognormal spread
# expressed as an equivalent voltage sigma).
_OFFSET_SIGMA_V = 2.5e-3
# V_BE curvature: the classic (eta - 1)(k/q) T ln(T_r/T) bowl, quadratic
# approximation.  ~1.5 mV at the range ends, i.e. about a degree of
# systematic error that a linear inversion cannot remove.
_CURVATURE_V_PER_K2 = -1.55e-7

# Typical published figures for a 65 nm-class analog diode sensor; used in
# the comparison table, not in the physics.
DIODE_SENSOR_ENERGY_J = 2.0e-9
DIODE_SENSOR_AREA_MM2 = 0.05


class DiodeSensor:
    """Behavioural diode/BJT thermometer with optional one-point trim.

    Args:
        die: Monte-Carlo die (its index seeds the per-die V_BE offset);
            ``None`` = typical (zero offset).
        adc_bits: Resolution of the read-out ADC over the sensing range.
        trimmed: Whether a one-point factory trim at 25 degC was applied.
        seed: Noise seed override.
    """

    def __init__(
        self,
        die: Optional[DieSample] = None,
        adc_bits: int = 10,
        trimmed: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        if adc_bits < 4:
            raise ValueError("adc_bits must be >= 4")
        self.die = die
        self.adc_bits = adc_bits
        self.trimmed = trimmed
        if seed is None:
            seed = 5 if die is None else die.mismatch_seed ^ 0xD10D
        rng = np.random.default_rng(seed)
        self._offset_v = 0.0 if die is None else float(rng.normal(0.0, _OFFSET_SIGMA_V))

        # One-point trim measures the error at 25 degC and subtracts it.
        self._trim_v = self._offset_v if trimmed else 0.0

    def _vbe(self, temp_k: float) -> float:
        delta = temp_k - 300.0
        return (
            _VBE_300
            + _SLOPE_V_PER_K * delta
            + _CURVATURE_V_PER_K2 * delta * delta
            + self._offset_v
        )

    def read_temperature(
        self, temp_c: float, vdd: Optional[float] = None, deterministic: bool = False
    ) -> float:
        """One conversion: V_BE sample -> ADC -> linear inversion."""
        del vdd, deterministic  # analog path; supply-regulated, no phase noise
        temp_k = celsius_to_kelvin(temp_c)
        vbe = self._vbe(temp_k) - self._trim_v

        # ADC spanning the V_BE range over the specified temperatures.
        v_hi = _VBE_300 + _SLOPE_V_PER_K * (celsius_to_kelvin(-40.0) - 300.0)
        v_lo = _VBE_300 + _SLOPE_V_PER_K * (celsius_to_kelvin(125.0) - 300.0)
        lsb = (v_hi - v_lo) / (1 << self.adc_bits)
        code = round((vbe - v_lo) / lsb)
        vbe_quantised = v_lo + code * lsb

        est_k = 300.0 + (vbe_quantised - _VBE_300) / _SLOPE_V_PER_K
        return kelvin_to_celsius(est_k)
