"""Factory two-point-calibrated TSRO thermometer.

The conventional accurate RO sensor: at the factory every die visits a
temperature chamber at two known temperatures, its TSRO frequency is logged,
and a per-die map from ln(f) to temperature is trimmed in.  The fit basis is
``ln f = a - b / T`` — the Arrhenius form a weak-inversion-starved ring
actually follows — so accuracy is limited only by the small residual
curvature in that basis plus counter quantisation, typically within a
degree even when extrapolating beyond the chamber points.

What the paper attacks is the *cost column*: two chamber soaks per die,
per-die fuse storage, and no way to re-trim in the field.  The comparison
table (experiment R-T2) carries both the accuracy and the cost.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.circuits.oscillator_bank import build_oscillator_bank, environment_for_die
from repro.circuits.ring_oscillator import Environment
from repro.config import SensorConfig
from repro.device.technology import Technology
from repro.readout.counter import PeriodTimer
from repro.units import celsius_to_kelvin, kelvin_to_celsius
from repro.variation.montecarlo import DieSample


class TwoPointCalibratedSensor:
    """TSRO thermometer with per-die two-point factory trim.

    Args:
        technology: Technology the sensor is manufactured in.
        config: Sensor design parameters; ``None`` uses the reference design.
        die: Monte-Carlo die this instance sits on (``None`` = typical).
        location: Sensor site on the die, metres.
        cal_points_c: The factory chamber temperatures in Celsius.
        seed: Measurement-noise seed.
    """

    def __init__(
        self,
        technology: Technology,
        config: Optional[SensorConfig] = None,
        die: Optional[DieSample] = None,
        location: Tuple[float, float] = (2.5e-3, 2.5e-3),
        cal_points_c: Tuple[float, float] = (-5.0, 95.0),
        seed: Optional[int] = None,
    ) -> None:
        if cal_points_c[0] >= cal_points_c[1]:
            raise ValueError("calibration points must be increasing")
        self.technology = technology
        self.config = config if config is not None else SensorConfig()
        self.die = die
        self.location = location
        self.bank = build_oscillator_bank(
            technology,
            die=die,
            psro_stages=self.config.psro_stages,
            tsro_stages=self.config.tsro_stages,
        )
        self._timer = PeriodTimer(
            periods=self.config.tsro_periods,
            ref_clock_hz=self.config.ref_clock_hz,
            bits=self.config.tsro_counter_bits,
        )
        if seed is None:
            seed = 3 if die is None else die.mismatch_seed ^ 0x2B0C
        self._rng = np.random.default_rng(seed)

        # Factory trim: measure the real die at the two chamber points.
        self._t1_k = celsius_to_kelvin(cal_points_c[0])
        self._t2_k = celsius_to_kelvin(cal_points_c[1])
        self._lnf1 = math.log(self._measure(self._t1_k, None, deterministic=True))
        self._lnf2 = math.log(self._measure(self._t2_k, None, deterministic=True))
        if self._lnf2 <= self._lnf1:
            raise ValueError("TSRO is not monotone over the calibration points")

    def _environment(self, temp_k: float, vdd: Optional[float]) -> Environment:
        vdd = self.technology.vdd if vdd is None else vdd
        if self.die is None:
            return Environment(temp_k=temp_k, vdd=vdd)
        return environment_for_die(self.die, self.location, temp_k, vdd)

    def _measure(self, temp_k: float, vdd: Optional[float], deterministic: bool) -> float:
        env = self._environment(temp_k, vdd)
        f_t = self.bank.tsro.frequency(env)
        rng = None if deterministic else self._rng
        count = self._timer.count(f_t, rng)
        return self._timer.frequency_from_count(count)

    def read_temperature(
        self, temp_c: float, vdd: Optional[float] = None, deterministic: bool = False
    ) -> float:
        """One conversion through the per-die Arrhenius ln(f) -> T trim.

        With the two stored points the fit ``ln f = a - b / T`` inverts in
        closed form: ``1/T = (a - ln f) / b``.
        """
        f_t_hat = self._measure(celsius_to_kelvin(temp_c), vdd, deterministic)
        lnf = math.log(f_t_hat)
        inv_t1, inv_t2 = 1.0 / self._t1_k, 1.0 / self._t2_k
        b = (self._lnf1 - self._lnf2) / (inv_t2 - inv_t1)
        a = self._lnf1 + b * inv_t1
        inv_t = (a - lnf) / b
        return kelvin_to_celsius(1.0 / inv_t)
