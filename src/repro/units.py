"""Physical constants and unit helpers used throughout the library.

All internal computation is in SI units (volts, amperes, seconds, kelvin,
metres).  Degrees Celsius appear only at API boundaries, because circuit and
sensor specifications are conventionally quoted in Celsius; the helpers here
make those conversions explicit so no module ever mixes the two scales by
accident.
"""

from __future__ import annotations

import math

# Fundamental constants (CODATA 2018).
ELEMENTARY_CHARGE = 1.602176634e-19
"""Elementary charge ``q`` in coulombs."""

BOLTZMANN = 1.380649e-23
"""Boltzmann constant ``k_B`` in joules per kelvin."""

ZERO_CELSIUS_IN_KELVIN = 273.15
"""Offset between the Celsius and Kelvin scales."""

ROOM_TEMPERATURE_K = 300.0
"""Reference temperature for device parameters (approximately 27 degC)."""


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    kelvin = temp_c + ZERO_CELSIUS_IN_KELVIN
    if kelvin <= 0.0:
        raise ValueError(f"temperature {temp_c} degC is at or below absolute zero")
    return kelvin


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    if temp_k <= 0.0:
        raise ValueError(f"temperature {temp_k} K is at or below absolute zero")
    return temp_k - ZERO_CELSIUS_IN_KELVIN


def thermal_voltage(temp_k: float) -> float:
    """Thermal voltage ``U_T = k_B T / q`` in volts.

    At 300 K this is approximately 25.85 mV; every subthreshold expression in
    the device model is built on it.
    """
    if temp_k <= 0.0:
        raise ValueError(f"temperature {temp_k} K is at or below absolute zero")
    return BOLTZMANN * temp_k / ELEMENTARY_CHARGE


# Convenience SI prefixes, used to keep parameter tables readable.
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
KILO = 1e3
MEGA = 1e6
GIGA = 1e9


def db(ratio: float) -> float:
    """Express a power ratio in decibels."""
    if ratio <= 0.0:
        raise ValueError("dB is undefined for non-positive ratios")
    return 10.0 * math.log10(ratio)
