"""Reduced-order thermal models: Foster chains fitted from the full solver.

A DTM control loop evaluating the full finite-volume grid every control
period wastes most of its work: the controller only needs the temperature
at the sensor sites.  The classic compression is a per-site **Foster
model** — the step response expressed as a sum of exponentials

    T(t) - T_amb = dT_ss * (1 - sum_i a_i exp(-t / tau_i)),  sum_i a_i = 1

fitted once from the full solver and then integrated in O(poles) per step.
The fit here uses a fixed log-spaced time-constant grid with non-negative
least squares for the amplitudes — the numerically robust cousin of Prony's
method (no nonlinear optimisation, no sign-flipping poles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.thermal.grid import StackThermalGrid
from repro.thermal.solver import steady_state, thermal_time_constant, transient


@dataclass(frozen=True)
class FosterModel:
    """A fitted per-site reduced thermal model.

    Attributes:
        ambient_k: Ambient temperature the model is referenced to.
        delta_ss: Steady-state temperature rise at unit power scale, kelvin.
        amplitudes: Foster amplitudes (sum to ~1).
        taus: Foster time constants in seconds.
    """

    ambient_k: float
    delta_ss: float
    amplitudes: np.ndarray
    taus: np.ndarray

    def step_response(self, t: float, power_scale: float = 1.0) -> float:
        """Temperature in kelvin ``t`` seconds after a power step from idle."""
        if t < 0.0:
            raise ValueError("time must be non-negative")
        decay = float(np.sum(self.amplitudes * np.exp(-t / self.taus)))
        return self.ambient_k + power_scale * self.delta_ss * (1.0 - decay)

    def simulate(self, power_scales: Sequence[float], dt: float) -> List[float]:
        """Integrate a piecewise-constant power trace, O(poles) per step.

        Each Foster branch is a first-order system updated exactly per
        step: ``x_i <- x_i * exp(-dt/tau_i) + target_i * (1 - exp(-dt/tau_i))``.

        Args:
            power_scales: Power scale at each step (1.0 = the fitted power).
            dt: Step duration in seconds.

        Returns:
            Temperature in kelvin after each step.
        """
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        alphas = np.exp(-dt / self.taus)
        state = np.zeros_like(self.amplitudes)
        out: List[float] = []
        for scale in power_scales:
            target = scale * self.delta_ss * self.amplitudes
            state = state * alphas + target * (1.0 - alphas)
            out.append(self.ambient_k + float(np.sum(state)))
        return out


def fit_foster(
    grid: StackThermalGrid,
    power_by_layer: Dict[str, np.ndarray],
    layer: str,
    site: Tuple[float, float],
    poles: int = 12,
    samples: int = 40,
) -> FosterModel:
    """Fit a Foster model at one site from the full solver's step response.

    Args:
        grid: The assembled stack grid.
        power_by_layer: The power maps defining the unit-scale workload.
        layer: Observed layer.
        site: Observed (x, y) location in metres.
        poles: Size of the log-spaced time-constant dictionary.
        samples: Step-response samples used for the fit.

    Returns:
        The fitted :class:`FosterModel`.
    """
    if poles < 2:
        raise ValueError("need at least two poles")
    x, y = site
    steady = steady_state(grid, power_by_layer)
    delta_ss = steady.at(layer, x, y) - grid.ambient_k
    if delta_ss <= 1e-6:
        raise ValueError("the workload does not heat the observed site")

    tau_dominant = thermal_time_constant(grid)
    # Sample the step response on a log-ish time axis out to ~5 tau.
    times = np.linspace(tau_dominant / samples, 5.0 * tau_dominant, samples)
    dt = float(times[0])
    fields = transient(grid, lambda t: power_by_layer, dt=dt, steps=samples * 5)
    response = np.array(
        [fields[min(int(round(t / dt)) - 1, len(fields) - 1)].at(layer, x, y) for t in times]
    )

    # Fit the *decay* d(t) = 1 - rise(t) on the tau dictionary with NNLS.
    decay = 1.0 - (response - grid.ambient_k) / delta_ss
    taus = np.logspace(
        np.log10(tau_dominant / 300.0), np.log10(3.0 * tau_dominant), poles
    )
    basis = np.exp(-times[:, None] / taus[None, :])
    # Append the normalisation row sum(a) = 1 with a strong weight.
    weight = 10.0
    a_matrix = np.vstack([basis, weight * np.ones(poles)])
    b_vector = np.concatenate([decay, [weight]])
    amplitudes, _ = optimize.nnls(a_matrix, b_vector)

    return FosterModel(
        ambient_k=grid.ambient_k,
        delta_ss=float(delta_ss),
        amplitudes=amplitudes,
        taus=taus,
    )
