"""3-D die-stack thermal substrate.

The paper motivates per-tier sensing with the thermal problems of TSV 3-D
integration: stacked dies trap heat, gradients develop both across a die
and between tiers, and the sensor must report the *local* junction
temperature.  This package supplies the physics: a finite-volume RC network
of a die stack (silicon, back-end-of-line, bonding layers, TSVs, heat sink)
with steady-state and transient solvers, driven by per-tier power maps.
"""

from repro.thermal.coupling import (
    ElectrothermalResult,
    LeakageModel,
    runaway_power_boundary,
    solve_electrothermal,
)
from repro.thermal.grid import StackThermalGrid, build_stack_grid
from repro.thermal.materials import (
    BEOL,
    BONDING,
    COPPER,
    HEAT_SPREADER,
    Material,
    SILICON,
    tsv_effective_conductivity,
)
from repro.thermal.power import (
    PowerMap,
    checkerboard_power_map,
    hotspot_power_map,
    uniform_power_map,
)
from repro.thermal.reduced import FosterModel, fit_foster
from repro.thermal.solver import steady_state, transient

__all__ = [
    "BEOL",
    "BONDING",
    "COPPER",
    "ElectrothermalResult",
    "FosterModel",
    "LeakageModel",
    "HEAT_SPREADER",
    "Material",
    "PowerMap",
    "SILICON",
    "StackThermalGrid",
    "build_stack_grid",
    "checkerboard_power_map",
    "fit_foster",
    "runaway_power_boundary",
    "solve_electrothermal",
    "hotspot_power_map",
    "steady_state",
    "transient",
    "tsv_effective_conductivity",
    "uniform_power_map",
]
