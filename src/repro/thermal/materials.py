"""Thermal material properties for the stack model.

Bulk literature values around 350 K; conductivities in W/(m*K), volumetric
heat capacities in J/(m^3*K).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Material:
    """An isotropic thermal material.

    Attributes:
        name: Human-readable label.
        conductivity: Thermal conductivity in W/(m*K).
        volumetric_heat_capacity: rho * c_p in J/(m^3*K).
    """

    name: str
    conductivity: float
    volumetric_heat_capacity: float

    def __post_init__(self) -> None:
        if self.conductivity <= 0.0 or self.volumetric_heat_capacity <= 0.0:
            raise ValueError("material properties must be positive")


SILICON = Material("silicon", conductivity=120.0, volumetric_heat_capacity=1.63e6)
"""Doped bulk silicon near operating temperature."""

BEOL = Material("beol", conductivity=2.0, volumetric_heat_capacity=2.2e6)
"""Back-end-of-line metal/dielectric composite (effective vertical value)."""

BONDING = Material("bonding", conductivity=0.9, volumetric_heat_capacity=2.0e6)
"""Die-to-die bonding layer: adhesive/underfill with micro-bumps."""

COPPER = Material("copper", conductivity=390.0, volumetric_heat_capacity=3.4e6)
"""Electroplated copper (TSVs, micro-bumps)."""

HEAT_SPREADER = Material(
    "heat-spreader", conductivity=380.0, volumetric_heat_capacity=3.4e6
)
"""Copper lid / heat spreader on the package top."""


def tsv_effective_conductivity(base: Material, copper_fill_fraction: float) -> float:
    """Vertical conductivity of a cell partially filled with copper TSVs.

    TSVs conduct heat in parallel with the host material, so the effective
    vertical conductivity is the area-weighted (parallel-rule) mix.  This is
    the mechanism that makes TSV arrays act as thermal vias between tiers.
    """
    if not 0.0 <= copper_fill_fraction <= 1.0:
        raise ValueError("copper_fill_fraction must lie in [0, 1]")
    return (
        copper_fill_fraction * COPPER.conductivity
        + (1.0 - copper_fill_fraction) * base.conductivity
    )
