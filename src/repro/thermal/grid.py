"""Finite-volume meshing of a 3-D die stack.

The stack is a list of :class:`ThermalLayer` slabs sharing one lateral
footprint, each meshed ``nx x ny`` laterally and one cell thick vertically
(layers are thin compared to the footprint, which is the standard compact
thermal-model discretisation for die stacks; lateral resolution carries the
intra-die gradients the sensor network must observe).

The mesh is assembled once into a sparse conductance matrix ``G`` such that
steady state solves ``G T = q`` with boundary exchange to ambient folded
into the diagonal and the right-hand side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.thermal.materials import Material


@dataclass(frozen=True)
class ThermalLayer:
    """One slab of the stack.

    Attributes:
        name: Unique layer label (power maps and probes refer to it).
        thickness: Slab thickness in metres.
        material: Host material.
        kz_scale: Optional per-cell vertical-conductivity multiplier of
            shape ``(ny, nx)``; this is how TSV arrays locally boost
            vertical conduction.
        heat_source: Whether device power is injected in this layer
            (the transistor layer of each die).
    """

    name: str
    thickness: float
    material: Material
    kz_scale: Optional[np.ndarray] = None
    heat_source: bool = False

    def __post_init__(self) -> None:
        if self.thickness <= 0.0:
            raise ValueError("layer thickness must be positive")


@dataclass(frozen=True)
class TemperatureField:
    """A solved temperature distribution over the stack.

    Attributes:
        grid: The grid the field was solved on.
        values: Temperatures in kelvin, shape ``(nz, ny, nx)``.
    """

    grid: "StackThermalGrid"
    values: np.ndarray

    def layer(self, name: str) -> np.ndarray:
        """Temperature map of one layer, shape ``(ny, nx)``, kelvin."""
        return self.values[self.grid.layer_index(name)]

    def at(self, name: str, x: float, y: float) -> float:
        """Bilinear temperature sample at metres-coordinates on a layer."""
        plane = self.layer(name)
        ny, nx = plane.shape
        fx = np.clip(x / self.grid.width, 0.0, 1.0) * (nx - 1)
        fy = np.clip(y / self.grid.height, 0.0, 1.0) * (ny - 1)
        ix0, iy0 = int(fx), int(fy)
        ix1, iy1 = min(ix0 + 1, nx - 1), min(iy0 + 1, ny - 1)
        tx, ty = fx - ix0, fy - iy0
        top = (1 - tx) * plane[iy0, ix0] + tx * plane[iy0, ix1]
        bottom = (1 - tx) * plane[iy1, ix0] + tx * plane[iy1, ix1]
        return float((1 - ty) * top + ty * bottom)

    def peak(self, name: str) -> float:
        """Hottest cell of a layer in kelvin."""
        return float(np.max(self.layer(name)))


@dataclass
class StackThermalGrid:
    """The assembled finite-volume system of a die stack.

    Built by :func:`build_stack_grid`; holds the sparse conductance matrix,
    the per-cell heat capacity, and the ambient-coupling right-hand-side
    contribution.  Solvers in :mod:`repro.thermal.solver` consume it.
    """

    layers: List[ThermalLayer]
    width: float
    height: float
    nx: int
    ny: int
    conductance: sparse.csr_matrix = field(repr=False)
    capacitance: np.ndarray = field(repr=False)
    ambient_rhs: np.ndarray = field(repr=False)
    ambient_k: float = 298.15

    @property
    def nz(self) -> int:
        """Number of layers (vertical cells)."""
        return len(self.layers)

    @property
    def cells(self) -> int:
        """Total cell count."""
        return self.nz * self.ny * self.nx

    def layer_index(self, name: str) -> int:
        """Index of a layer by name."""
        for index, layer in enumerate(self.layers):
            if layer.name == name:
                return index
        known = ", ".join(layer.name for layer in self.layers)
        raise KeyError(f"unknown layer {name!r}; known layers: {known}")

    def heat_vector(self, power_by_layer: Dict[str, np.ndarray]) -> np.ndarray:
        """Assemble the per-cell heat-injection vector in watts.

        Args:
            power_by_layer: Layer name -> power map of shape ``(ny, nx)``.
                Only heat-source layers accept power.
        """
        q = np.zeros(self.cells)
        for name, pmap in power_by_layer.items():
            iz = self.layer_index(name)
            if not self.layers[iz].heat_source:
                raise ValueError(f"layer {name!r} is not a heat-source layer")
            pmap = np.asarray(pmap, dtype=float)
            if pmap.shape != (self.ny, self.nx):
                raise ValueError(
                    f"power map for {name!r} has shape {pmap.shape}, "
                    f"expected {(self.ny, self.nx)}"
                )
            if np.any(pmap < 0.0):
                raise ValueError("power maps must be non-negative")
            base = iz * self.ny * self.nx
            q[base : base + self.ny * self.nx] += pmap.ravel()
        return q

    def field_from_vector(self, vector: np.ndarray) -> TemperatureField:
        """Reshape a flat solution vector into a :class:`TemperatureField`."""
        return TemperatureField(
            grid=self, values=vector.reshape(self.nz, self.ny, self.nx).copy()
        )


def _vertical_conductance(
    lower: ThermalLayer, upper: ThermalLayer, area: float, iy: int, ix: int
) -> float:
    def half_resistance(layer: ThermalLayer) -> float:
        k = layer.material.conductivity
        if layer.kz_scale is not None:
            k *= float(layer.kz_scale[iy, ix])
        return layer.thickness / (2.0 * k * area)

    return 1.0 / (half_resistance(lower) + half_resistance(upper))


def build_stack_grid(
    layers: Sequence[ThermalLayer],
    width: float,
    height: float,
    nx: int = 20,
    ny: int = 20,
    top_htc: float = 8.7e3,
    bottom_htc: float = 250.0,
    ambient_c: float = 25.0,
) -> StackThermalGrid:
    """Mesh and assemble a die stack into a solvable thermal system.

    Args:
        layers: Slabs from bottom (index 0) to top.  TSV-enhanced layers
            carry ``kz_scale`` maps.
        width: Lateral x extent in metres.
        height: Lateral y extent in metres.
        nx: Lateral cells along x.
        ny: Lateral cells along y.
        top_htc: Heat-transfer coefficient from the top layer to ambient in
            W/(m^2*K) — the heat-sink path (default: forced-air sink class).
        bottom_htc: Coefficient from the bottom layer to ambient — the
            package/board path (weak).
        ambient_c: Ambient temperature in Celsius.

    Returns:
        The assembled :class:`StackThermalGrid`.
    """
    layers = list(layers)
    if not layers:
        raise ValueError("the stack needs at least one layer")
    names = [layer.name for layer in layers]
    if len(set(names)) != len(names):
        raise ValueError("layer names must be unique")
    if nx < 2 or ny < 2:
        raise ValueError("need at least 2x2 lateral cells")
    if width <= 0.0 or height <= 0.0:
        raise ValueError("lateral dimensions must be positive")
    if top_htc < 0.0 or bottom_htc < 0.0:
        raise ValueError("heat-transfer coefficients must be non-negative")

    dx = width / nx
    dy = height / ny
    cell_area_z = dx * dy
    nz = len(layers)
    cells = nz * ny * nx

    def idx(iz: int, iy: int, ix: int) -> int:
        return (iz * ny + iy) * nx + ix

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    diag = np.zeros(cells)
    ambient_rhs = np.zeros(cells)
    capacitance = np.empty(cells)
    ambient_k = ambient_c + 273.15

    for iz, layer in enumerate(layers):
        cap = layer.material.volumetric_heat_capacity * dx * dy * layer.thickness
        base = iz * ny * nx
        capacitance[base : base + ny * nx] = cap

    def couple(a: int, b: int, g: float) -> None:
        rows.extend((a, b))
        cols.extend((b, a))
        vals.extend((-g, -g))
        diag[a] += g
        diag[b] += g

    for iz, layer in enumerate(layers):
        k = layer.material.conductivity
        g_x = k * (dy * layer.thickness) / dx
        g_y = k * (dx * layer.thickness) / dy
        for iy in range(ny):
            for ix in range(nx):
                here = idx(iz, iy, ix)
                if ix + 1 < nx:
                    couple(here, idx(iz, iy, ix + 1), g_x)
                if iy + 1 < ny:
                    couple(here, idx(iz, iy + 1, ix), g_y)
                if iz + 1 < nz:
                    g_z = _vertical_conductance(
                        layer, layers[iz + 1], cell_area_z, iy, ix
                    )
                    couple(here, idx(iz + 1, iy, ix), g_z)

    # Ambient exchange: bottom of layer 0 and top of the last layer.
    for iy in range(ny):
        for ix in range(nx):
            bottom = idx(0, iy, ix)
            g_b = bottom_htc * cell_area_z
            diag[bottom] += g_b
            ambient_rhs[bottom] += g_b * ambient_k
            top = idx(nz - 1, iy, ix)
            g_t = top_htc * cell_area_z
            diag[top] += g_t
            ambient_rhs[top] += g_t * ambient_k

    rows.extend(range(cells))
    cols.extend(range(cells))
    vals.extend(diag.tolist())
    conductance = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(cells, cells)
    )

    return StackThermalGrid(
        layers=layers,
        width=width,
        height=height,
        nx=nx,
        ny=ny,
        conductance=conductance,
        capacitance=capacitance,
        ambient_rhs=ambient_rhs,
        ambient_k=ambient_k,
    )
