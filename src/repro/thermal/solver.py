"""Steady-state and transient solvers for the stack thermal system.

Steady state is a single sparse direct solve of ``G T = q + q_ambient``.
Transient uses implicit (backward) Euler — unconditionally stable, so the
step size is chosen for accuracy, not stability:

    (C/dt + G) T_{n+1} = (C/dt) T_n + q_{n+1} + q_ambient

Both solvers share a small per-grid LRU factorization cache: the sparse
matrix of a grid never changes after assembly, but DTM loops, placement
studies and sensor-fusion experiments call :func:`steady_state` on the same
grid hundreds of times.  Factorising once (SuperLU) and reusing the factors
turns every repeat solve into two cheap triangular solves.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Callable, Dict, Hashable, List

import numpy as np
from scipy.sparse import diags
from scipy.sparse.linalg import factorized

from repro import telemetry
from repro.thermal.grid import StackThermalGrid, TemperatureField

PowerSchedule = Callable[[float], Dict[str, np.ndarray]]
"""Maps simulation time (seconds) to the per-layer power maps."""


class _FactorizationCache:
    """LRU cache of sparse LU factorizations, keyed by grid identity.

    ``StackThermalGrid`` is a plain dataclass holding numpy arrays — it is
    neither hashable nor value-comparable cheaply — so entries key on
    ``id(grid)`` (plus an optional extra key such as the transient ``dt``)
    and hold a weak reference to guard against id reuse after collection.

    Hit/miss accounting lives in the telemetry registry
    (``thermal.lu_cache.<name>.hits``/``.misses``), where every other
    subsystem's counters live; :func:`factorization_cache_stats` reads
    the same counters for backwards compatibility.
    """

    def __init__(self, name: str, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ValueError("cache needs at least one slot")
        self.maxsize = maxsize
        self._hits = telemetry.counter(
            f"thermal.lu_cache.{name}.hits",
            unit="solves",
            help="Factorization reuses in the %s solver" % name,
        )
        self._misses = telemetry.counter(
            f"thermal.lu_cache.{name}.misses",
            unit="solves",
            help="Fresh factorizations in the %s solver" % name,
        )
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def get(self, grid: StackThermalGrid, extra: Hashable = None):
        key = (id(grid), extra)
        entry = self._entries.get(key)
        if entry is not None:
            ref, solve = entry
            if ref() is grid:
                self._entries.move_to_end(key)
                self._hits.inc()
                return solve
            del self._entries[key]
        self._misses.inc()
        return None

    def put(self, grid: StackThermalGrid, solve, extra: Hashable = None) -> None:
        key = (id(grid), extra)
        self._entries[key] = (weakref.ref(grid), solve)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self._hits.reset()
        self._misses.reset()


_STEADY_CACHE = _FactorizationCache("steady")
_TRANSIENT_CACHE = _FactorizationCache("transient")


def clear_factorization_caches() -> None:
    """Drop all cached factorizations (tests and memory-pressure hooks)."""
    _STEADY_CACHE.clear()
    _TRANSIENT_CACHE.clear()


def factorization_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the solver caches (observability/tests).

    Thin view over the ``thermal.lu_cache.*`` telemetry counters, kept
    for callers that predate the telemetry registry.
    """
    return {
        "steady_hits": _STEADY_CACHE.hits,
        "steady_misses": _STEADY_CACHE.misses,
        "transient_hits": _TRANSIENT_CACHE.hits,
        "transient_misses": _TRANSIENT_CACHE.misses,
    }


def _steady_solver(grid: StackThermalGrid):
    solve = _STEADY_CACHE.get(grid)
    if solve is None:
        solve = factorized(grid.conductance.tocsc())
        _STEADY_CACHE.put(grid, solve)
    return solve


def steady_state(
    grid: StackThermalGrid, power_by_layer: Dict[str, np.ndarray]
) -> TemperatureField:
    """Solve the steady-state temperature field for fixed power maps.

    The conductance factorization is cached per grid, so repeated calls on
    the same grid (DTM loops, workload sweeps) cost only the triangular
    solves.

    Args:
        grid: The assembled stack grid.
        power_by_layer: Layer name -> ``(ny, nx)`` power map in watts.

    Returns:
        The steady-state :class:`TemperatureField` in kelvin.
    """
    q = grid.heat_vector(power_by_layer)
    rhs = q + grid.ambient_rhs
    solution = _steady_solver(grid)(rhs)
    return grid.field_from_vector(np.asarray(solution))


def transient(
    grid: StackThermalGrid,
    power_schedule: PowerSchedule,
    dt: float,
    steps: int,
    initial: TemperatureField = None,
) -> List[TemperatureField]:
    """Integrate the transient response with implicit Euler.

    The ``(C/dt + G)`` factorization is cached per (grid, dt), so repeated
    transient runs with the same step size reuse the factors.

    Args:
        grid: The assembled stack grid.
        power_schedule: Callable giving the power maps at each time.
        dt: Time step in seconds.
        steps: Number of steps to integrate.
        initial: Starting field; ``None`` starts at ambient everywhere.

    Returns:
        One :class:`TemperatureField` per step (time ``dt`` .. ``steps*dt``).
    """
    if dt <= 0.0:
        raise ValueError("dt must be positive")
    if steps < 1:
        raise ValueError("steps must be >= 1")

    c_over_dt = grid.capacitance / dt
    solve = _TRANSIENT_CACHE.get(grid, extra=dt)
    if solve is None:
        system = (grid.conductance + diags(c_over_dt)).tocsc()
        solve = factorized(system)
        _TRANSIENT_CACHE.put(grid, solve, extra=dt)

    if initial is None:
        state = np.full(grid.cells, grid.ambient_k)
    else:
        state = initial.values.ravel().copy()

    fields = []
    for step in range(1, steps + 1):
        time = step * dt
        q = grid.heat_vector(power_schedule(time))
        rhs = c_over_dt * state + q + grid.ambient_rhs
        state = solve(rhs)
        fields.append(grid.field_from_vector(np.asarray(state)))
    return fields


def thermal_time_constant(grid: StackThermalGrid) -> float:
    """Crude dominant time constant estimate ``sum(C) / G_ambient``.

    Useful for picking transient step sizes; the true dominant eigenvalue
    is within a small factor of this for sink-dominated stacks.
    """
    g_ambient = float(np.sum(grid.ambient_rhs)) / grid.ambient_k
    if g_ambient <= 0.0:
        raise ValueError("the stack has no ambient coupling")
    return float(np.sum(grid.capacitance)) / g_ambient
