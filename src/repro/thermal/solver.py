"""Steady-state and transient solvers for the stack thermal system.

Steady state is a single sparse direct solve of ``G T = q + q_ambient``.
Transient uses implicit (backward) Euler — unconditionally stable, so the
step size is chosen for accuracy, not stability:

    (C/dt + G) T_{n+1} = (C/dt) T_n + q_{n+1} + q_ambient
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np
from scipy.sparse import diags
from scipy.sparse.linalg import factorized, spsolve

from repro.thermal.grid import StackThermalGrid, TemperatureField

PowerSchedule = Callable[[float], Dict[str, np.ndarray]]
"""Maps simulation time (seconds) to the per-layer power maps."""


def steady_state(
    grid: StackThermalGrid, power_by_layer: Dict[str, np.ndarray]
) -> TemperatureField:
    """Solve the steady-state temperature field for fixed power maps.

    Args:
        grid: The assembled stack grid.
        power_by_layer: Layer name -> ``(ny, nx)`` power map in watts.

    Returns:
        The steady-state :class:`TemperatureField` in kelvin.
    """
    q = grid.heat_vector(power_by_layer)
    rhs = q + grid.ambient_rhs
    solution = spsolve(grid.conductance.tocsc(), rhs)
    return grid.field_from_vector(np.asarray(solution))


def transient(
    grid: StackThermalGrid,
    power_schedule: PowerSchedule,
    dt: float,
    steps: int,
    initial: TemperatureField = None,
) -> List[TemperatureField]:
    """Integrate the transient response with implicit Euler.

    Args:
        grid: The assembled stack grid.
        power_schedule: Callable giving the power maps at each time.
        dt: Time step in seconds.
        steps: Number of steps to integrate.
        initial: Starting field; ``None`` starts at ambient everywhere.

    Returns:
        One :class:`TemperatureField` per step (time ``dt`` .. ``steps*dt``).
    """
    if dt <= 0.0:
        raise ValueError("dt must be positive")
    if steps < 1:
        raise ValueError("steps must be >= 1")

    c_over_dt = grid.capacitance / dt
    system = (grid.conductance + diags(c_over_dt)).tocsc()
    solve = factorized(system)

    if initial is None:
        state = np.full(grid.cells, grid.ambient_k)
    else:
        state = initial.values.ravel().copy()

    fields = []
    for step in range(1, steps + 1):
        time = step * dt
        q = grid.heat_vector(power_schedule(time))
        rhs = c_over_dt * state + q + grid.ambient_rhs
        state = solve(rhs)
        fields.append(grid.field_from_vector(np.asarray(state)))
    return fields


def thermal_time_constant(grid: StackThermalGrid) -> float:
    """Crude dominant time constant estimate ``sum(C) / G_ambient``.

    Useful for picking transient step sizes; the true dominant eigenvalue
    is within a small factor of this for sink-dominated stacks.
    """
    g_ambient = float(np.sum(grid.ambient_rhs)) / grid.ambient_k
    if g_ambient <= 0.0:
        raise ValueError("the stack has no ambient coupling")
    return float(np.sum(grid.capacitance)) / g_ambient
