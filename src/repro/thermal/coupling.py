"""Electrothermal coupling: leakage-temperature feedback in a stack.

Leakage power grows exponentially with temperature (subthreshold slope)
and with lower thresholds (fast corners), while temperature grows with
total power — a positive feedback loop that 3-D stacking makes dangerous:
the buried tiers run hot, leak more, heat further.  Below a critical power
level the loop converges to a (leakage-elevated) fixed point; above it the
stack *thermally runs away*.

The model iterates the linear thermal solver against the exponential
leakage law to the fixed point (damped Picard iteration, the standard
electrothermal co-simulation loop), and exposes the runaway boundary —
the quantity the sensor network's emergency thresholds guard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.thermal.grid import StackThermalGrid, TemperatureField
from repro.thermal.solver import steady_state


@dataclass(frozen=True)
class LeakageModel:
    """Per-tier leakage as a function of temperature and process.

    Attributes:
        leakage_at_ref: Leakage power of one tier at the reference
            temperature on a typical die, watts.
        doubling_k: Temperature increase that doubles leakage, kelvin
            (8-12 K is the classic bulk-CMOS figure).
        dvt_sensitivity: Fractional leakage change per volt of threshold
            shift (negative: higher V_t leaks less); subthreshold slope
            gives ~ -1/(n U_T) ~ -28/V, reduced here for the whole-tier
            mix of device flavours.
        ref_temp_k: Reference temperature.
    """

    leakage_at_ref: float = 0.3
    doubling_k: float = 10.0
    dvt_sensitivity: float = -18.0
    ref_temp_k: float = 298.15

    def __post_init__(self) -> None:
        if self.leakage_at_ref < 0.0:
            raise ValueError("leakage_at_ref must be non-negative")
        if self.doubling_k <= 0.0:
            raise ValueError("doubling_k must be positive")

    def tier_leakage(self, temp_k: float, dvt: float = 0.0) -> float:
        """Leakage power of one tier in watts."""
        thermal = 2.0 ** ((temp_k - self.ref_temp_k) / self.doubling_k)
        process = float(np.exp(self.dvt_sensitivity * dvt))
        return self.leakage_at_ref * thermal * process


@dataclass(frozen=True)
class ElectrothermalResult:
    """Fixed point of the leakage-temperature loop.

    Attributes:
        field: Converged temperature field (``None`` if diverged).
        leakage_by_layer: Converged per-layer leakage power, watts.
        iterations: Picard iterations used.
        converged: False means thermal runaway (no fixed point below the
            divergence ceiling).
    """

    field: Optional[TemperatureField]
    leakage_by_layer: Dict[str, float]
    iterations: int
    converged: bool


def solve_electrothermal(
    grid: StackThermalGrid,
    dynamic_power: Dict[str, np.ndarray],
    leakage: LeakageModel,
    tier_dvt: Optional[Dict[str, float]] = None,
    damping: float = 0.5,
    tolerance_k: float = 0.01,
    max_iterations: int = 100,
    runaway_ceiling_c: float = 400.0,
) -> ElectrothermalResult:
    """Find the electrothermal fixed point (or detect runaway).

    Args:
        grid: Assembled stack grid.
        dynamic_power: Per-layer switching power maps (temperature
            independent).
        leakage: The leakage law.
        tier_dvt: Optional per-layer threshold shift (fast tiers leak
            more); ``None`` = typical everywhere.
        damping: Picard damping factor on the leakage update (0..1].
        tolerance_k: Convergence threshold on the peak temperature.
        max_iterations: Iteration budget.
        runaway_ceiling_c: Peak temperature above which the loop is
            declared diverged (silicon is long dead anyway).

    Returns:
        The :class:`ElectrothermalResult`.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError("damping must lie in (0, 1]")
    tier_dvt = tier_dvt or {}
    source_layers = [layer.name for layer in grid.layers if layer.heat_source]
    if not source_layers:
        raise ValueError("the grid has no heat-source layers")

    cells = grid.nx * grid.ny
    leak_power = {name: 0.0 for name in source_layers}
    field = None
    previous_peak = grid.ambient_k
    for iteration in range(1, max_iterations + 1):
        total_power = {}
        for name in source_layers:
            base = dynamic_power.get(name)
            base = np.zeros((grid.ny, grid.nx)) if base is None else base
            total_power[name] = base + leak_power[name] / cells
        field = steady_state(grid, total_power)

        peak = max(field.peak(name) for name in source_layers)
        if peak - 273.15 > runaway_ceiling_c:
            return ElectrothermalResult(
                field=None,
                leakage_by_layer=dict(leak_power),
                iterations=iteration,
                converged=False,
            )

        new_leak = {}
        for name in source_layers:
            tier_temp = float(np.mean(field.layer(name)))
            target = leakage.tier_leakage(tier_temp, tier_dvt.get(name, 0.0))
            new_leak[name] = (1.0 - damping) * leak_power[name] + damping * target
        leak_power = new_leak

        if abs(peak - previous_peak) < tolerance_k and iteration > 1:
            return ElectrothermalResult(
                field=field,
                leakage_by_layer=dict(leak_power),
                iterations=iteration,
                converged=True,
            )
        previous_peak = peak

    return ElectrothermalResult(
        field=None,
        leakage_by_layer=dict(leak_power),
        iterations=max_iterations,
        converged=False,
    )


def runaway_power_boundary(
    grid: StackThermalGrid,
    make_dynamic_power,
    leakage: LeakageModel,
    power_lo: float,
    power_hi: float,
    resolution: float = 0.05,
) -> Tuple[float, float]:
    """Bisect the per-tier dynamic power at the thermal-runaway boundary.

    Args:
        grid: Assembled stack grid.
        make_dynamic_power: Callable mapping a per-tier power (watts) to
            the per-layer dynamic power maps.
        leakage: The leakage law.
        power_lo: A power known (or assumed) stable.
        power_hi: A power known (or assumed) to run away.
        resolution: Bisection stop width in watts.

    Returns:
        ``(last_stable, first_runaway)`` per-tier powers in watts.
    """
    if power_lo >= power_hi:
        raise ValueError("need power_lo < power_hi")

    def stable(power: float) -> bool:
        return solve_electrothermal(grid, make_dynamic_power(power), leakage).converged

    if not stable(power_lo):
        raise ValueError("power_lo already runs away")
    if stable(power_hi):
        raise ValueError("power_hi does not run away")
    lo, hi = power_lo, power_hi
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        if stable(mid):
            lo = mid
        else:
            hi = mid
    return lo, hi
