"""Power-map builders: the workloads that heat the stack.

A power map is a ``(ny, nx)`` array of watts injected into one die's
transistor layer.  The builders here produce the canonical evaluation
workloads: uniform background power, rectangular hotspots (a core running
hot), and mixtures.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

PowerMap = np.ndarray
"""A ``(ny, nx)`` array of per-cell power in watts."""


def uniform_power_map(nx: int, ny: int, total_watts: float) -> PowerMap:
    """Spread ``total_watts`` evenly over the die."""
    if total_watts < 0.0:
        raise ValueError("power must be non-negative")
    return np.full((ny, nx), total_watts / (nx * ny))


def hotspot_power_map(
    nx: int,
    ny: int,
    die_width: float,
    die_height: float,
    hotspots: Sequence[Tuple[float, float, float, float, float]],
    background_watts: float = 0.0,
) -> PowerMap:
    """Background power plus rectangular hotspots.

    Args:
        nx: Lateral cells along x.
        ny: Lateral cells along y.
        die_width: Die x extent in metres.
        die_height: Die y extent in metres.
        hotspots: ``(x, y, width, height, watts)`` tuples in metres/watts;
            ``(x, y)`` is the hotspot's lower-left corner.  Hotspot power is
            spread over the cells the rectangle covers.
        background_watts: Uniformly spread baseline power.

    Returns:
        The combined power map.
    """
    pmap = uniform_power_map(nx, ny, background_watts)
    dx = die_width / nx
    dy = die_height / ny
    for x, y, w, h, watts in hotspots:
        if watts < 0.0:
            raise ValueError("hotspot power must be non-negative")
        ix0 = int(np.clip(np.floor(x / dx), 0, nx - 1))
        iy0 = int(np.clip(np.floor(y / dy), 0, ny - 1))
        ix1 = int(np.clip(np.ceil((x + w) / dx), ix0 + 1, nx))
        iy1 = int(np.clip(np.ceil((y + h) / dy), iy0 + 1, ny))
        cells = (ix1 - ix0) * (iy1 - iy0)
        pmap[iy0:iy1, ix0:ix1] += watts / cells
    return pmap


def checkerboard_power_map(
    nx: int, ny: int, total_watts: float, blocks: int = 4
) -> PowerMap:
    """Alternating active/idle blocks — a worst-case gradient workload."""
    if blocks < 1:
        raise ValueError("blocks must be >= 1")
    pattern = np.add.outer(np.arange(ny) * blocks // ny, np.arange(nx) * blocks // nx)
    mask = (pattern % 2 == 0).astype(float)
    active = float(np.sum(mask))
    if active == 0.0:
        raise ValueError("checkerboard has no active cells")
    return mask * (total_watts / active)
