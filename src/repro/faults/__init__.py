"""Fault injection and resilience evaluation for the TSV sensor stack.

The subsystem has three layers (docs/faults.md is the full guide):

* **plans** (:mod:`repro.faults.plan`) — declarative, seeded fault
  descriptions: what breaks, on which tier, when, and how badly;
* **injection** (:mod:`repro.faults.injector`) — a process-wide active
  injector consulted by the stack's seams (sensor reads, TSV bus
  collection), so any experiment runs under a plan without code
  changes::

      from repro import faults
      from repro.faults import FaultKind, FaultPlan, FaultSpec

      plan = FaultPlan(specs=(FaultSpec(FaultKind.TSV_OPEN, tier=2),))
      with faults.inject(plan):
          snapshot = monitor.poll(temps)   # tier 2's frames never arrive

* **campaigns** (:mod:`repro.faults.campaign`) — sweep plans over an
  N-tier monitored stack and score detection latency, misdetection
  rate, and accuracy under fault (``python -m repro faultsim``).

The empty plan is a golden no-op: activating it leaves every result
bit-identical to not touching the faults layer at all.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.faults.injector import FaultInjector, sync_active_gauge
from repro.faults.models import ResistiveDriftModel
from repro.faults.plan import (
    BUS_KINDS,
    SENSOR_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.faults.runtime import active_injector, set_active

__all__ = [
    "BUS_KINDS",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "ResistiveDriftModel",
    "SENSOR_KINDS",
    "active_injector",
    "inject",
]


@contextmanager
def inject(plan: FaultPlan, **injector_kwargs) -> Iterator[FaultInjector]:
    """Activate a fault plan for the duration of the block.

    Builds a fresh :class:`FaultInjector` (round clock at 0) and
    installs it as the process-wide active injector; the previous
    injector — usually ``None`` — is restored on exit, so campaigns
    nest safely inside experiments.
    """
    injector = FaultInjector(plan, **injector_kwargs)
    previous = active_injector()
    set_active(injector)
    try:
        yield injector
    finally:
        set_active(previous)
        sync_active_gauge(previous)
