"""The fault injector: a seeded runtime that applies a plan's faults.

One :class:`FaultInjector` owns a plan, a private randomness stream
derived from the plan seed, and the round clock.  The stack's seams
(:meth:`repro.core.sensor.PTSensor.read_environment`,
:meth:`repro.core.tracking.TrackingSensor.read`,
:meth:`repro.tsv.bus.TsvSensorBus.collect`) consult the process-wide
active injector on every call; while none is active — the default —
every hook is a single ``None`` check and **no randomness is consumed**,
which is what makes the empty-plan golden test bit-exact.

Time is counted in monitoring rounds: :meth:`FaultInjector.advance`
moves the clock, and :meth:`repro.network.aggregator.StackMonitor.poll`
advances the active injector automatically at the end of each round, so
existing experiment loops pick up fault onset/expiry without changes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro import telemetry
from repro.faults.models import (
    ResistiveDriftModel,
    burst_flip_count,
    frame_drop_probability,
    sensor_drift_offset_c,
    supply_droop_volts,
    thermal_runaway_offset_c,
)
from repro.faults.plan import BUS_KINDS, SENSOR_KINDS, FaultKind, FaultPlan

_ENV_PERTURBATIONS = telemetry.counter(
    "faults.env_perturbations",
    unit="reads",
    help="Sensor environments perturbed (droop / runaway faults)",
)
_READING_OVERRIDES = telemetry.counter(
    "faults.reading_overrides",
    unit="reads",
    help="Sensor readings overridden (stuck / drifting faults)",
)
_FRAMES_DROPPED = telemetry.counter(
    "faults.frames_dropped",
    unit="frames",
    help="Frames withheld from the bus (open TSV / dropped frames)",
)
_FRAMES_CORRUPTED = telemetry.counter(
    "faults.frames_corrupted",
    unit="frames",
    help="Frames corrupted in transit by injected link faults",
)
_BITS_FLIPPED = telemetry.counter(
    "faults.bits_flipped",
    unit="bits",
    help="Bits flipped by injected link faults",
)
_ROUNDS = telemetry.counter(
    "faults.rounds", unit="rounds", help="Fault-clock rounds advanced"
)
_ACTIVE_FAULTS = telemetry.gauge(
    "faults.active",
    unit="faults",
    help="Specs active at the current fault-clock round",
)


def sync_active_gauge(injector: Optional["FaultInjector"]) -> None:
    """Point the ``faults.active`` gauge at an injector (or clear it)."""
    if injector is None:
        _ACTIVE_FAULTS.set(0)
    else:
        _ACTIVE_FAULTS.set(len(injector.plan.active(injector.round)))


class FaultInjector:
    """Applies one :class:`FaultPlan` at the stack's injection seams.

    Args:
        plan: The declarative fault plan.
        frame_bits: Frame width used by the link-fault models.
        drift_model: Link-budget model behind ``tsv_resistive_drift``;
            ``None`` uses the reference 5 um via.

    The injector is deterministic: all randomness comes from a
    ``numpy`` generator seeded from ``plan.seed``, so the same plan
    replays the same fault schedule on every run.
    """

    def __init__(
        self,
        plan: FaultPlan,
        frame_bits: int = 40,
        drift_model: Optional[ResistiveDriftModel] = None,
    ) -> None:
        self.plan = plan
        self.frame_bits = frame_bits
        self.drift_model = drift_model if drift_model is not None else ResistiveDriftModel()
        self.round = 0
        self._rng = np.random.default_rng(np.random.SeedSequence((plan.seed, 0xFA017)))
        self._stuck_temp_c: Dict[int, float] = {}
        _ACTIVE_FAULTS.set(len(plan.active(0)))

    # ------------------------------------------------------------------ clock

    def advance(self, rounds: int = 1) -> None:
        """Move the fault clock forward by ``rounds`` monitoring rounds."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        self.round += rounds
        _ROUNDS.inc(rounds)
        _ACTIVE_FAULTS.set(len(self.plan.active(self.round)))
        # A stuck output holds only while its fault is active; when every
        # stuck spec for a tier expires, the latch clears.
        for tier in list(self._stuck_temp_c):
            if not self.plan.active_for_tier(tier, self.round, kinds={FaultKind.SENSOR_STUCK}):
                del self._stuck_temp_c[tier]

    # ------------------------------------------------------- sensor-layer hooks

    def perturb_environment(self, tier: int, env):
        """Apply droop/runaway faults to a tier's physical environment.

        Returns the environment unchanged (same object) when no
        environment-level fault targets the tier this round.
        """
        specs = self.plan.active_for_tier(
            tier, self.round, kinds={FaultKind.SUPPLY_DROOP, FaultKind.THERMAL_RUNAWAY}
        )
        if not specs:
            return env
        temp_k, vdd = env.temp_k, env.vdd
        for spec in specs:
            age = spec.rounds_active(self.round)
            if spec.kind is FaultKind.SUPPLY_DROOP:
                vdd -= supply_droop_volts(spec.severity)
            else:
                temp_k += thermal_runaway_offset_c(spec.severity, age)
        _ENV_PERTURBATIONS.inc()
        return dataclasses.replace(env, temp_k=temp_k, vdd=max(vdd, 1e-3))

    def true_temperature_c(self, tier: int, temp_c: float) -> float:
        """Ground-truth junction temperature including injected heating.

        Thermal runaway changes the *physical* temperature, so scorers
        (the campaign runner) must judge sensor accuracy against the
        perturbed truth, not the pre-fault profile.  Pure — consumes no
        randomness.
        """
        offset = 0.0
        for spec in self.plan.active_for_tier(
            tier, self.round, kinds={FaultKind.THERMAL_RUNAWAY}
        ):
            offset += thermal_runaway_offset_c(spec.severity, spec.rounds_active(self.round))
        return temp_c + offset

    def perturb_reading(self, tier: int, reading):
        """Apply stuck/drift faults to a published reading.

        Works on any frozen dataclass with a ``temperature_c`` field
        (:class:`~repro.core.sensor.SensorReading`,
        :class:`~repro.core.tracking.TrackingReading`).
        """
        specs = self.plan.active_for_tier(
            tier, self.round, kinds={FaultKind.SENSOR_STUCK, FaultKind.SENSOR_DRIFT}
        )
        if not specs:
            return reading
        temp_c = reading.temperature_c
        for spec in specs:
            if spec.kind is FaultKind.SENSOR_STUCK:
                temp_c = self._stuck_temp_c.setdefault(tier, temp_c)
            else:
                temp_c += sensor_drift_offset_c(
                    spec.severity, spec.rounds_active(self.round)
                )
        _READING_OVERRIDES.inc()
        return dataclasses.replace(reading, temperature_c=temp_c)

    # ---------------------------------------------------------- bus-layer hook

    def filter_frame(self, tier: int, word: int, hops: int) -> Optional[int]:
        """Pass one encoded frame through the tier's active link faults.

        Returns the (possibly corrupted) word, or ``None`` when the
        frame is lost entirely (open TSV, dropped frame).
        """
        specs = self.plan.active_for_tier(tier, self.round, kinds=BUS_KINDS)
        if not specs:
            return word
        flipped_bits = 0
        for spec in specs:
            if spec.kind is FaultKind.TSV_OPEN:
                _FRAMES_DROPPED.inc()
                return None
            if spec.kind is FaultKind.FRAME_DROP:
                if self._rng.random() < frame_drop_probability(spec.severity):
                    _FRAMES_DROPPED.inc()
                    return None
            elif spec.kind is FaultKind.BUS_BIT_FLIPS:
                for bit in self._rng.integers(
                    0, self.frame_bits, size=burst_flip_count(spec.severity)
                ):
                    word ^= 1 << int(bit)
                    flipped_bits += 1
            elif spec.kind is FaultKind.TSV_RESISTIVE_DRIFT:
                ber = self.drift_model.bit_error_rate(
                    spec.severity, spec.rounds_active(self.round)
                )
                flip_probability = 1.0 - (1.0 - ber) ** max(hops, 1)
                for bit, flip in enumerate(
                    self._rng.random(self.frame_bits) < flip_probability
                ):
                    if flip:
                        word ^= 1 << bit
                        flipped_bits += 1
        if flipped_bits:
            _FRAMES_CORRUPTED.inc()
            _BITS_FLIPPED.inc(flipped_bits)
        return word

    # ------------------------------------------------------------- accounting

    def faulted_now(self, tier: int) -> bool:
        """Whether any fault targets ``tier`` at the current round."""
        return bool(self.plan.active_for_tier(tier, self.round))

    def sensor_faulted_now(self, tier: int) -> bool:
        """Whether a sensor-layer fault targets ``tier`` right now."""
        return bool(self.plan.active_for_tier(tier, self.round, kinds=SENSOR_KINDS))
