"""Physical fault models: from mechanism to injectable perturbation.

Each function maps a :class:`repro.faults.plan.FaultSpec`'s severity and
age (rounds active) to the concrete perturbation the injector applies —
a bit error rate, a temperature offset, a rail sag.  Where the stack
already owns the physics, the model is driven off it rather than made
up: resistive drift degrades the link budget of
:class:`repro.tsv.electrical.TsvElectricalModel`, and the drift
acceleration under thermo-mechanical load comes from the residual
stress magnitude of :class:`repro.tsv.stress.StressModel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tsv.electrical import TsvElectricalModel
from repro.tsv.geometry import TsvSite
from repro.tsv.stress import StressModel

#: Reference via used by the link-budget fault models (the 5 um class
#: every other TSV experiment uses).
REFERENCE_SITE = TsvSite(x=0.0, y=0.0, radius=5e-6)

#: Residual BER of a healthy, closed-eye link — effectively error-free
#: at frame scale; drift multiplies it upward.
HEALTHY_LINK_BER = 1e-12


@dataclass(frozen=True)
class ResistiveDriftModel:
    """Electromigration-style series-resistance growth of one TSV.

    The via's copper column thins (voiding at the barrier interface)
    under current and thermo-mechanical stress; series resistance grows
    roughly linearly in time, the RC eye closes, and the bit error rate
    rises exponentially in the eye-closure margin — the standard
    high-speed-link BER-vs-margin shape.

    Attributes:
        electrical: Link budget of the healthy via.
        stress: Residual-stress field; its wall magnitude accelerates
            drift (thermal-cycling fatigue scales with stress).
        site: Via geometry.
        ber_slope: Decades of BER per unit fractional delay growth.
    """

    electrical: TsvElectricalModel = TsvElectricalModel()
    stress: StressModel = StressModel()
    site: TsvSite = REFERENCE_SITE
    ber_slope: float = 24.0

    def resistance_growth(self, severity: float, rounds_active: int) -> float:
        """Fractional series-resistance growth after ``rounds_active``.

        ``severity`` is the per-round fractional growth at the reference
        stress level (150 MPa wall stress); higher residual stress
        accelerates it linearly.
        """
        stress_factor = self.stress.sigma_edge_pa / 1.5e8
        return severity * stress_factor * (1 + rounds_active)

    def delay_growth(self, severity: float, rounds_active: int) -> float:
        """Fractional hop-delay growth caused by the drifted resistance."""
        growth = self.resistance_growth(severity, rounds_active)
        r_via = self.electrical.resistance(self.site)
        c_total = self.electrical.capacitance(self.site) + self.electrical.load_capacitance
        nominal = (r_via + self.electrical.driver_resistance) * c_total
        drifted = (r_via * (1.0 + growth) + self.electrical.driver_resistance) * c_total
        return drifted / nominal - 1.0

    def bit_error_rate(self, severity: float, rounds_active: int) -> float:
        """Per-bit, per-hop flip probability of the drifted link.

        Healthy links sit at ~1e-12; each unit of fractional delay
        growth costs ``ber_slope`` decades of margin.  Clamped to 0.5
        (a fully closed eye is a coin flip).
        """
        decades = self.ber_slope * self.delay_growth(severity, rounds_active)
        if decades >= 15.0:  # past the 0.5 clamp; avoid float overflow
            return 0.5
        return min(HEALTHY_LINK_BER * 10.0**decades, 0.5)


def supply_droop_volts(severity: float) -> float:
    """Rail sag of an active supply-droop fault, volts.

    Constant while active: the droop models a failed regulator stage or
    a shared-TSV IR drop under a neighbouring tier's load step, both of
    which are sustained rather than transient at conversion timescales.
    """
    return severity


def thermal_runaway_offset_c(severity: float, rounds_active: int) -> float:
    """Junction-temperature offset of a runaway tier, degC.

    Leakage-temperature positive feedback compounds: the offset grows
    by ``severity`` degC in the first round and accelerates 10 % per
    round (the early, near-linear region of the E8 runaway trajectory —
    campaigns are scored on detection before the knee, not after).
    """
    if rounds_active < 0:
        return 0.0
    return severity * sum(1.1**k for k in range(rounds_active + 1))


def sensor_drift_offset_c(severity: float, rounds_active: int) -> float:
    """Reading offset of a drifting sensor, degC (linear in age)."""
    return severity * (rounds_active + 1)


def frame_drop_probability(severity: float) -> float:
    """Per-attempt frame-loss probability (clamped to [0, 1])."""
    return min(max(severity, 0.0), 1.0)


def burst_flip_count(severity: float) -> int:
    """Bits flipped per corrupted frame in a coupling-noise burst.

    At least one bit flips while the fault is active; fractional
    severities round to the nearest count.
    """
    return max(1, int(round(severity)))


def expected_flips_per_frame(ber: float, frame_bits: int, hops: int) -> float:
    """Mean flipped bits for a frame crossing ``hops`` drifted links."""
    survive = (1.0 - ber) ** hops
    return frame_bits * (1.0 - survive)


def detection_probability(ber: float, frame_bits: int) -> float:
    """Probability parity catches a corrupted frame (odd-weight flips).

    For independent per-bit flips the flip-count parity is odd with
    probability ``(1 - (1 - 2p)^n) / 2`` — the analytic companion to
    the campaign's measured misdetection rate.
    """
    return 0.5 * (1.0 - (1.0 - 2.0 * ber) ** frame_bits)


def mean_time_to_failure_rounds(severity: float, threshold: float = 0.3) -> float:
    """Rounds until resistive drift crosses a fractional-growth threshold.

    A planning helper (used by docs/faults.md's worked example): with
    linear growth ``severity`` per round, the threshold is crossed after
    ``threshold / severity`` rounds.
    """
    if severity <= 0.0:
        return math.inf
    return threshold / severity
