"""Declarative fault plans: what breaks, where, when, and how badly.

A :class:`FaultPlan` is data, not code — a tuple of :class:`FaultSpec`
entries plus a seed.  The same plan object drives the injector's runtime
hooks, the campaign runner's scoring (it knows which tier-rounds are
faulted), and the documentation (docs/faults.md renders the catalogue
from the same kind table).  Determinism is the design centre: a plan's
randomised faults (bit flips, frame drops) derive every draw from the
plan seed, so the same seed and the same plan produce the same fault
schedule on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple


class FaultKind(str, Enum):
    """The fault-model catalogue (see docs/faults.md for physics).

    Each kind names one failure mechanism of a TSV 3-D sensor stack:

    * ``TSV_OPEN`` — an inter-tier link is fully open (void, cracked
      micro-bump); the tier's frames never arrive.
    * ``TSV_RESISTIVE_DRIFT`` — electromigration/thermal cycling grows
      the via's series resistance; the link's eye closes and the bit
      error rate rises with severity (driven off ``tsv.electrical``).
    * ``BUS_BIT_FLIPS`` — coupling-noise burst flips bits in frames
      crossing the chain (severity = flips per corrupted frame).
    * ``FRAME_DROP`` — the chain's flow control drops frames with
      probability ``severity`` (marginal timing, FIFO overrun).
    * ``SENSOR_STUCK`` — the tier's sensor output freezes at its
      first faulted reading (hung FSM, latched scan chain).
    * ``SENSOR_DRIFT`` — the reading drifts by ``severity`` degC per
      round (reference aging, leaking calibration state).
    * ``SUPPLY_DROOP`` — the tier's rail sags by ``severity`` volts;
      the sensor still assumes nominal VDD, so droop shows up as
      residual temperature error (the R-F8 mechanism).
    * ``THERMAL_RUNAWAY`` — the tier's junction temperature ramps by
      ``severity`` degC per active round (failed DTM loop, leakage
      feedback) — the E8 scenario as an injectable fault.

    >>> FaultKind.TSV_OPEN.value
    'tsv_open'
    >>> FaultKind("sensor_stuck") is FaultKind.SENSOR_STUCK
    True
    """

    TSV_OPEN = "tsv_open"
    TSV_RESISTIVE_DRIFT = "tsv_resistive_drift"
    BUS_BIT_FLIPS = "bus_bit_flips"
    FRAME_DROP = "frame_drop"
    SENSOR_STUCK = "sensor_stuck"
    SENSOR_DRIFT = "sensor_drift"
    SUPPLY_DROOP = "supply_droop"
    THERMAL_RUNAWAY = "thermal_runaway"


#: Kinds injected at the TSV-bus layer (frames in transit).
BUS_KINDS = frozenset(
    {FaultKind.TSV_OPEN, FaultKind.TSV_RESISTIVE_DRIFT,
     FaultKind.BUS_BIT_FLIPS, FaultKind.FRAME_DROP}
)
#: Kinds injected at the sensor layer (environment or reading).
SENSOR_KINDS = frozenset(
    {FaultKind.SENSOR_STUCK, FaultKind.SENSOR_DRIFT,
     FaultKind.SUPPLY_DROOP, FaultKind.THERMAL_RUNAWAY}
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault: kind, target, activation window, severity.

    Attributes:
        kind: The fault model (a :class:`FaultKind` or its string value).
        tier: Target tier — matched against a sensor's ``die_id`` and the
            bus chain position.
        onset_round: First monitoring round (0-based) the fault is active.
        duration_rounds: Active rounds; ``None`` means permanent.
        severity: Kind-specific magnitude (see :class:`FaultKind`).

    >>> spec = FaultSpec(FaultKind.SUPPLY_DROOP, tier=1, onset_round=3,
    ...                  duration_rounds=4, severity=0.08)
    >>> [spec.active_at(r) for r in (2, 3, 6, 7)]
    [False, True, True, False]
    """

    kind: FaultKind
    tier: int
    onset_round: int = 0
    duration_rounds: Optional[int] = None
    severity: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", FaultKind(self.kind))
        if self.tier < 0:
            raise ValueError("tier must be non-negative")
        if self.onset_round < 0:
            raise ValueError("onset_round must be non-negative")
        if self.duration_rounds is not None and self.duration_rounds < 1:
            raise ValueError("duration_rounds must be >= 1 (or None)")
        if self.severity < 0.0:
            raise ValueError("severity must be non-negative")

    def active_at(self, round_index: int) -> bool:
        """Whether the fault is active during ``round_index``."""
        if round_index < self.onset_round:
            return False
        if self.duration_rounds is None:
            return True
        return round_index < self.onset_round + self.duration_rounds

    def rounds_active(self, round_index: int) -> int:
        """Completed active rounds before ``round_index`` (0 at onset)."""
        if not self.active_at(round_index):
            return 0
        return round_index - self.onset_round


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of fault specs.

    The empty plan (no specs) is the golden reference: activating it
    must leave every experiment bit-identical to not using the faults
    layer at all (tests/test_faults.py pins this).

    Attributes:
        specs: The faults, in declaration order.
        seed: Seed of the injector's private randomness stream (bit
            flips, frame drops).  Same seed + same specs = same schedule.
        name: Label used by campaign reports and telemetry.

    >>> plan = FaultPlan(specs=(FaultSpec(FaultKind.TSV_OPEN, tier=2),),
    ...                  name="open2")
    >>> plan.empty, plan.tiers_faulted()
    (False, {2})
    >>> FaultPlan().empty
    True
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 2012
    name: str = "plan"

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing."""
        return not self.specs

    def active(self, round_index: int) -> Tuple[FaultSpec, ...]:
        """Specs active during a round, in declaration order."""
        return tuple(s for s in self.specs if s.active_at(round_index))

    def active_for_tier(
        self, tier: int, round_index: int, kinds: Optional[Iterable[FaultKind]] = None
    ) -> Tuple[FaultSpec, ...]:
        """Active specs targeting ``tier``, optionally filtered by kind."""
        wanted = None if kinds is None else frozenset(FaultKind(k) for k in kinds)
        return tuple(
            s
            for s in self.specs
            if s.tier == tier
            and s.active_at(round_index)
            and (wanted is None or s.kind in wanted)
        )

    def tiers_faulted(self) -> set:
        """Every tier targeted by at least one spec."""
        return {s.tier for s in self.specs}

    def faulted_tier_rounds(self, rounds: int) -> Dict[int, List[int]]:
        """Tier -> sorted rounds with at least one active fault.

        The campaign scorer's ground truth for detection/misdetection
        accounting over a ``rounds``-long run.
        """
        table: Dict[int, List[int]] = {}
        for spec in self.specs:
            for r in range(rounds):
                if spec.active_at(r):
                    table.setdefault(spec.tier, []).append(r)
        return {tier: sorted(set(rs)) for tier, rs in table.items()}

    def describe(self) -> str:
        """One line per spec, for reports and logs."""
        if self.empty:
            return f"{self.name}: (no faults)"
        lines = [f"{self.name}:"]
        for s in self.specs:
            window = (
                f"round {s.onset_round}+"
                if s.duration_rounds is None
                else f"rounds {s.onset_round}..{s.onset_round + s.duration_rounds - 1}"
            )
            lines.append(
                f"  {s.kind.value} tier={s.tier} {window} severity={s.severity:g}"
            )
        return "\n".join(lines)
