"""Process-wide fault-injection state, dependency-free.

The injection seams (sensor reads, bus collection, monitor polls) live
in modules the faults package itself builds on, so the *only* thing
they import is this leaf module: the active-injector slot and its
accessors.  :func:`repro.faults.inject` is the public way to set it.
"""

from __future__ import annotations

from typing import Optional

_ACTIVE = None


def active_injector() -> Optional["FaultInjector"]:  # noqa: F821 - doc type
    """The active :class:`repro.faults.FaultInjector`, or ``None``.

    Hot-path hooks call this once per operation; while no plan is
    active the whole faults layer costs one function call returning
    ``None`` and consumes no randomness.
    """
    return _ACTIVE


def set_active(injector) -> None:
    """Install (or clear, with ``None``) the process-wide injector."""
    global _ACTIVE
    _ACTIVE = injector
