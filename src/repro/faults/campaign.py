"""Fault-injection campaigns: sweep plans, score the monitoring network.

A campaign runs one monitored N-tier stack per plan for a fixed number
of polling rounds under a deterministic temperature profile, and scores
what a resilience evaluation actually cares about:

* **detection latency** — rounds from a fault's onset until the monitor
  flags its tier (quarantine, staleness, or an alarm band);
* **misdetection rate** — flagged tier-rounds among tiers the plan
  never touches (false alarms);
* **accuracy under fault** — |sensor − truth| statistics against the
  *perturbed* ground truth (a runaway tier really is hotter);
* **degraded rounds** — how often the aggregator had to fall back from
  the fused estimate to per-tier readings.

``python -m repro faultsim`` drives :func:`run_campaign` over the
built-in plan catalogue; experiments (R-E10) reuse the same scorer.
Everything is seeded — same seed, same plans, same report.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults, telemetry
from repro.analysis.tables import render_table
from repro.config import SensorConfig
from repro.core.decoupler import ProcessLut
from repro.core.sensing_model import SensingModel
from repro.core.sensor import PTSensor
from repro.device.technology import nominal_65nm
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.network.aggregator import MonitorSnapshot, ResiliencePolicy, StackMonitor
from repro.tsv.bus import TsvSensorBus
from repro.variation.montecarlo import sample_dies

_PLANS_RUN = telemetry.counter(
    "faults.campaign_plans", unit="plans", help="Fault plans executed by campaigns"
)
_DETECTIONS = telemetry.counter(
    "faults.detections", unit="faults", help="Injected faults the monitor flagged"
)
_MISSED_FAULTS = telemetry.counter(
    "faults.missed", unit="faults", help="Injected faults never flagged"
)
_DETECTION_LATENCY = telemetry.histogram(
    "faults.detection_latency_rounds",
    unit="rounds",
    help="Rounds from fault onset to first flag",
)


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one campaign run.

    Attributes:
        tiers: Stack height (sensors + bus chain length).
        rounds: Polling rounds per plan.
        seed: Master seed (die population; plans carry their own).
        base_temp_c: Coolest tier's baseline temperature.
        tier_gradient_c: Added per tier toward the heat-sink-far end
            (tier 0 runs hottest, as in R-F5).
        swing_c: Amplitude of the slow workload swing over the run.
        warning_c: Monitor warning threshold.
        emergency_c: Monitor emergency threshold.
        policy: Resilience policy under test; ``None`` = defaults.
    """

    tiers: int = 8
    rounds: int = 40
    seed: int = 2012
    base_temp_c: float = 45.0
    tier_gradient_c: float = 4.0
    swing_c: float = 6.0
    warning_c: float = 95.0
    emergency_c: float = 110.0
    policy: Optional[ResiliencePolicy] = None

    def __post_init__(self) -> None:
        if self.tiers < 1:
            raise ValueError("tiers must be >= 1")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")

    def truth_c(self, tier: int, round_index: int) -> float:
        """Pre-fault ground-truth temperature of a tier at a round."""
        phase = 2.0 * math.pi * round_index / max(self.rounds, 1)
        return (
            self.base_temp_c
            + self.tier_gradient_c * (self.tiers - 1 - tier)
            + self.swing_c * math.sin(phase)
        )


@dataclass(frozen=True)
class PlanOutcome:
    """Scored result of one plan under one campaign config.

    Attributes:
        plan: The plan that ran.
        faults_total: Specs in the plan.
        faults_detected: Specs whose tier got flagged at/after onset.
        detection_latency_rounds: Mean rounds from onset to first flag
            over detected specs; ``None`` with nothing to detect/found.
        misdetection_rate: Flagged tier-rounds among never-faulted
            tiers, as a fraction of their total tier-rounds.
        mean_abs_error_c: Mean |reading − truth| over fresh readings.
        max_abs_error_c: Worst single fresh-reading error.
        degraded_rounds: Rounds the monitor reported ``degraded``.
        stale_served: Tier-rounds served from a stale reading.
        retries_used: Total bus re-polls across the run.
    """

    plan: FaultPlan
    faults_total: int
    faults_detected: int
    detection_latency_rounds: Optional[float]
    misdetection_rate: float
    mean_abs_error_c: float
    max_abs_error_c: float
    degraded_rounds: int
    stale_served: int
    retries_used: int

    def as_row(self) -> List[str]:
        latency = (
            "-"
            if self.detection_latency_rounds is None
            else f"{self.detection_latency_rounds:.1f}"
        )
        return [
            self.plan.name,
            f"{self.faults_detected}/{self.faults_total}",
            latency,
            f"{self.misdetection_rate:.3f}",
            f"{self.mean_abs_error_c:.2f}",
            f"{self.max_abs_error_c:.2f}",
            str(self.degraded_rounds),
            str(self.stale_served),
            str(self.retries_used),
        ]


@dataclass(frozen=True)
class CampaignReport:
    """All plan outcomes of one campaign."""

    config: CampaignConfig
    outcomes: List[PlanOutcome]

    def render(self) -> str:
        table = render_table(
            [
                "plan",
                "detected",
                "latency (rounds)",
                "misdetect rate",
                "mean |err| (degC)",
                "max |err| (degC)",
                "degraded rounds",
                "stale served",
                "retries",
            ],
            [outcome.as_row() for outcome in self.outcomes],
            title=(
                f"faultsim campaign: {self.config.tiers}-tier stack, "
                f"{self.config.rounds} rounds/plan, seed {self.config.seed}"
            ),
        )
        plans = "\n".join(o.plan.describe() for o in self.outcomes)
        return f"{table}\n\nplans:\n{plans}"

    def to_json(self) -> str:
        payload = {
            "tiers": self.config.tiers,
            "rounds": self.config.rounds,
            "seed": self.config.seed,
            "outcomes": [
                {
                    "plan": o.plan.name,
                    "faults_total": o.faults_total,
                    "faults_detected": o.faults_detected,
                    "detection_latency_rounds": o.detection_latency_rounds,
                    "misdetection_rate": round(o.misdetection_rate, 6),
                    "mean_abs_error_c": round(o.mean_abs_error_c, 4),
                    "max_abs_error_c": round(o.max_abs_error_c, 4),
                    "degraded_rounds": o.degraded_rounds,
                    "stale_served": o.stale_served,
                    "retries_used": o.retries_used,
                }
                for o in self.outcomes
            ],
        }
        return json.dumps(payload, indent=2)


def builtin_plans(tiers: int = 8, seed: int = 2012) -> List[FaultPlan]:
    """The canonical plan catalogue (docs/faults.md documents each).

    The first entry is always the empty plan — the golden zero-fault
    reference every campaign carries as its control group.
    """
    if tiers < 1:
        raise ValueError("tiers must be >= 1")
    t = lambda k: k % tiers  # noqa: E731 - tier clamp for short stacks
    return [
        FaultPlan(name="zero-fault", seed=seed),
        FaultPlan(
            name="open-tsv",
            seed=seed,
            specs=(
                FaultSpec(FaultKind.TSV_OPEN, tier=t(2), onset_round=5,
                          duration_rounds=18),
            ),
        ),
        FaultPlan(
            name="noisy-link",
            seed=seed,
            specs=(
                FaultSpec(FaultKind.BUS_BIT_FLIPS, tier=t(7), onset_round=4,
                          duration_rounds=12, severity=3.0),
            ),
        ),
        FaultPlan(
            # Even-weight bursts slip past single-bit parity: the frame
            # decodes "cleanly" with a garbage payload.  The canonical
            # demonstration of why the report's accuracy columns matter
            # even when the detection column looks healthy.
            name="stealth-flips",
            seed=seed,
            specs=(
                FaultSpec(FaultKind.BUS_BIT_FLIPS, tier=t(7), onset_round=4,
                          duration_rounds=12, severity=2.0),
            ),
        ),
        FaultPlan(
            # Accelerated electromigration wear-out: ~mohm via resistance
            # is invisible behind the 500-ohm driver until the void has
            # grown it thousands-fold, then the eye collapses within a
            # few rounds.  Severity is fractional resistance growth per
            # round; ~400 crosses the BER knee mid-campaign.
            name="drift-link",
            seed=seed,
            specs=(
                FaultSpec(FaultKind.TSV_RESISTIVE_DRIFT, tier=t(3),
                          onset_round=2, severity=400.0),
            ),
        ),
        FaultPlan(
            name="flaky-frames",
            seed=seed,
            specs=(
                FaultSpec(FaultKind.FRAME_DROP, tier=t(1), onset_round=6,
                          duration_rounds=15, severity=0.6),
            ),
        ),
        FaultPlan(
            name="stuck-sensor",
            seed=seed,
            specs=(
                FaultSpec(FaultKind.SENSOR_STUCK, tier=t(4), onset_round=8),
            ),
        ),
        FaultPlan(
            name="drifting-sensor",
            seed=seed,
            specs=(
                FaultSpec(FaultKind.SENSOR_DRIFT, tier=t(2), onset_round=5,
                          severity=0.8),
            ),
        ),
        FaultPlan(
            name="supply-droop",
            seed=seed,
            specs=(
                FaultSpec(FaultKind.SUPPLY_DROOP, tier=t(5), onset_round=10,
                          duration_rounds=12, severity=0.06),
            ),
        ),
        FaultPlan(
            name="thermal-runaway",
            seed=seed,
            specs=(
                FaultSpec(FaultKind.THERMAL_RUNAWAY, tier=0, onset_round=6,
                          severity=4.0),
            ),
        ),
        FaultPlan(
            name="pile-up",
            seed=seed,
            specs=(
                FaultSpec(FaultKind.TSV_OPEN, tier=t(6), onset_round=4,
                          duration_rounds=10),
                FaultSpec(FaultKind.BUS_BIT_FLIPS, tier=t(1), onset_round=8,
                          duration_rounds=10, severity=3.0),
                FaultSpec(FaultKind.THERMAL_RUNAWAY, tier=0, onset_round=12,
                          severity=3.0),
            ),
        ),
    ]


@lru_cache(maxsize=4)
def _campaign_design() -> Tuple[object, SensorConfig, SensingModel, ProcessLut]:
    """The shared (per-process) reference design for campaign stacks."""
    technology = nominal_65nm()
    config = SensorConfig()
    model = SensingModel(technology, config)
    lut = ProcessLut.build(model)
    return technology, config, model, lut


def _build_stack(config: CampaignConfig) -> StackMonitor:
    """A fresh monitored stack (private sensor noise streams) per plan."""
    technology, sensor_config, model, lut = _campaign_design()
    dies = sample_dies(technology, config.tiers, seed=config.seed)
    sensors = {
        tier: PTSensor(
            technology,
            config=sensor_config,
            die=die,
            die_id=tier,
            sensing_model=model,
            lut=lut,
        )
        for tier, die in enumerate(dies)
    }
    return StackMonitor(
        sensors,
        TsvSensorBus(tiers=config.tiers),
        warning_c=config.warning_c,
        emergency_c=config.emergency_c,
        policy=config.policy,
    )


def _flagged(tier: int, snapshot: MonitorSnapshot) -> bool:
    """Whether the monitor raised *any* signal about a tier this round."""
    return (
        tier in snapshot.dead_tiers
        or tier in snapshot.warnings
        or tier in snapshot.emergencies
        or snapshot.tier_quality.get(tier) in ("stale", "lost")
    )


def run_plan(plan: FaultPlan, config: CampaignConfig) -> PlanOutcome:
    """Run one plan for ``config.rounds`` and score the monitor."""
    monitor = _build_stack(config)
    snapshots: List[MonitorSnapshot] = []
    errors: List[float] = []

    with telemetry.span("faults.plan_run", plan=plan.name, tiers=config.tiers):
        with faults.inject(plan) as injector:
            for round_index in range(config.rounds):
                truths = {
                    tier: config.truth_c(tier, round_index)
                    for tier in range(config.tiers)
                }
                # Ground truth for scoring includes injected heating —
                # a runaway tier really is hotter; read it before poll()
                # advances the fault clock.
                actual = {
                    tier: injector.true_temperature_c(tier, temp)
                    for tier, temp in truths.items()
                }
                snapshot = monitor.poll(truths)
                snapshots.append(snapshot)
                errors.extend(
                    abs(reading - actual[tier])
                    for tier, reading in snapshot.temperatures_c.items()
                )
    _PLANS_RUN.inc()

    detected = 0
    latencies: List[int] = []
    for spec in plan.specs:
        first_flag = next(
            (
                r
                for r in range(spec.onset_round, config.rounds)
                if _flagged(spec.tier, snapshots[r])
            ),
            None,
        )
        if first_flag is None:
            _MISSED_FAULTS.inc()
        else:
            detected += 1
            latencies.append(first_flag - spec.onset_round)
            _DETECTIONS.inc()
            _DETECTION_LATENCY.observe(first_flag - spec.onset_round)

    clean_tiers = sorted(set(range(config.tiers)) - plan.tiers_faulted())
    clean_tier_rounds = len(clean_tiers) * config.rounds
    false_flags = sum(
        1
        for snapshot in snapshots
        for tier in clean_tiers
        if _flagged(tier, snapshot)
    )

    return PlanOutcome(
        plan=plan,
        faults_total=len(plan.specs),
        faults_detected=detected,
        detection_latency_rounds=(
            sum(latencies) / len(latencies) if latencies else None
        ),
        misdetection_rate=(
            false_flags / clean_tier_rounds if clean_tier_rounds else 0.0
        ),
        mean_abs_error_c=sum(errors) / len(errors) if errors else 0.0,
        max_abs_error_c=max(errors) if errors else 0.0,
        degraded_rounds=sum(1 for s in snapshots if s.quality == "degraded"),
        stale_served=sum(
            1 for s in snapshots for q in s.tier_quality.values() if q == "stale"
        ),
        retries_used=sum(s.retries_used for s in snapshots),
    )


def run_campaign(
    plans: Optional[Sequence[FaultPlan]] = None,
    tiers: int = 8,
    rounds: int = 40,
    seed: int = 2012,
    policy: Optional[ResiliencePolicy] = None,
) -> CampaignReport:
    """Sweep fault plans over a monitored stack and collect the scores.

    Args:
        plans: Plans to run; ``None`` uses :func:`builtin_plans`.
        tiers: Stack height.
        rounds: Polling rounds per plan.
        seed: Die-population seed (plans keep their own seeds).
        policy: Resilience policy under test; ``None`` = defaults.
    """
    config = CampaignConfig(tiers=tiers, rounds=rounds, seed=seed, policy=policy)
    if plans is None:
        plans = builtin_plans(tiers=tiers, seed=seed)
    with telemetry.span("faults.campaign", plans=len(plans), tiers=tiers):
        outcomes = [run_plan(plan, config) for plan in plans]
    return CampaignReport(config=config, outcomes=outcomes)
