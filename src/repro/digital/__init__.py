"""Event-driven simulation of the sensor's digital back-end.

The read-out package (:mod:`repro.readout`) models counters *behaviourally*
(closed-form counts and energies).  This package builds the same back-end
at the event level — a discrete-event simulator, toggle-flip-flop ripple
counters, gated oscillator sources and the conversion FSM — so the
behavioural models can be *validated* rather than trusted:

* event-driven counts match the behavioural ``WindowCounter``/
  ``PeriodTimer`` within one LSB (tests assert it);
* actual flip-flop toggle counts validate the "two toggles per increment"
  energy rule of :func:`repro.circuits.digital.ripple_counter_energy`;
* ripple-carry settle time is checked against the sampling margin.
"""

from repro.digital.conversion_fsm import ConversionResult, simulate_conversion
from repro.digital.elements import GatedOscillator, RippleCounterSim
from repro.digital.simulator import EventSimulator

__all__ = [
    "ConversionResult",
    "EventSimulator",
    "GatedOscillator",
    "RippleCounterSim",
    "simulate_conversion",
]
