"""Event-level simulation of one full sensor conversion.

Replays the conversion sequencer's schedule against real (event-driven)
oscillators and ripple counters:

1. enable PSRO-N, count its edges for one PSRO window, disable;
2. same for PSRO-P;
3. enable the TSRO and the reference-clock counter together; stop the
   reference counter when the TSRO completes its period budget
   (period-timing, as in :class:`repro.readout.PeriodTimer`).

The result carries both the counts (to cross-check the behavioural models)
and the observed flip-flop toggle totals (to validate the energy rule).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.oscillator_bank import BankFrequencies
from repro.config import SensorConfig
from repro.digital.elements import GatedOscillator, RippleCounterSim
from repro.digital.simulator import EventSimulator


@dataclass(frozen=True)
class ConversionResult:
    """Counts and event statistics of one event-level conversion.

    Attributes:
        counts_n: PSRO-N edges counted in its window.
        counts_p: PSRO-P edges counted in its window.
        counts_ref: Reference-clock ticks during the TSRO period budget.
        tsro_periods_seen: TSRO periods actually elapsed (should equal the
            configured budget).
        counter_toggles: Total flip-flop toggles across all three counters.
        conversion_time: End-to-end conversion time in seconds.
        events: Total simulator events processed.
    """

    counts_n: int
    counts_p: int
    counts_ref: int
    tsro_periods_seen: int
    counter_toggles: int
    conversion_time: float
    events: int


def simulate_conversion(
    frequencies: BankFrequencies,
    config: SensorConfig,
    phase_n: float = 0.5,
    phase_p: float = 0.5,
    phase_t: float = 0.5,
) -> ConversionResult:
    """Run one conversion at the event level.

    Args:
        frequencies: The true oscillator frequencies during the conversion
            (from the analog model; the digital back-end never sees
            frequencies, only edges).
        config: Sensor design parameters.
        phase_n: PSRO-N start phase in [0, 1) — the behavioural model's
            uniform phase variable, here an explicit input so tests can
            sweep it.
        phase_p: PSRO-P start phase.
        phase_t: TSRO start phase.

    Returns:
        The event-level :class:`ConversionResult`.
    """
    sim = EventSimulator()

    counter = RippleCounterSim(sim, bits=max(config.psro_counter_bits, config.tsro_counter_bits))
    toggles_total = 0
    counts = {}

    # Phase 1 + 2: windowed edge counting for the process rings.
    time_cursor = 0.0
    for name, frequency, phase in (
        ("n", frequencies.psro_n, phase_n),
        ("p", frequencies.psro_p, phase_p),
    ):
        counter.reset()
        osc = GatedOscillator(
            sim, period=1.0 / frequency, on_edge=counter.clock, initial_phase=phase
        )
        osc.enable()
        window_end = time_cursor + config.psro_window
        sim.run_until(window_end)
        osc.disable()
        # Let the carry chain settle before sampling, as hardware must.
        sim.run_until(window_end + counter.worst_case_settle_time())
        counts[name] = counter.value()
        toggles_total += counter.total_toggles()
        time_cursor = sim.now

    # Phase 3: period timing — count the reference clock while the TSRO
    # completes its period budget.
    counter.reset()
    ref_osc = GatedOscillator(
        sim, period=1.0 / config.ref_clock_hz, on_edge=counter.clock, initial_phase=phase_t
    )
    tsro_periods = 0
    started = [False]
    done_at = [None]

    def tsro_edge() -> None:
        # The first TSRO edge opens the timing interval (ungates the
        # reference clock); each later edge completes one period; the
        # budget-completing edge gates the reference clock again — exactly
        # the hardware's start/stop clock gate.
        nonlocal tsro_periods
        if not started[0]:
            started[0] = True
            ref_osc.enable()
            return
        tsro_periods += 1
        if tsro_periods >= config.tsro_periods and done_at[0] is None:
            done_at[0] = sim.now
            ref_osc.disable()
            tsro.disable()

    tsro = GatedOscillator(
        sim, period=1.0 / frequencies.tsro, on_edge=tsro_edge, initial_phase=0.0
    )
    tsro.enable()
    # Run until the TSRO has delivered its budget; poll in chunks.
    chunk = config.tsro_periods / frequencies.tsro
    deadline = time_cursor + 4.0 * chunk + 1e-6
    while done_at[0] is None and sim.now < deadline:
        sim.run_until(min(sim.now + chunk / 8.0, deadline))
    tsro.disable()
    ref_osc.disable()
    if done_at[0] is None:
        raise RuntimeError("TSRO failed to deliver its period budget")
    sim.run_until(sim.now + counter.worst_case_settle_time())

    counts_ref = counter.value()
    toggles_total += counter.total_toggles()

    # The conversion ends when the period budget gates the reference clock
    # and the carry chain settles — not when the polling loop happened to
    # stop (the chunked run_until may overshoot by a fraction of a chunk).
    end_time = done_at[0] + counter.worst_case_settle_time()

    return ConversionResult(
        counts_n=counts["n"],
        counts_p=counts["p"],
        counts_ref=counts_ref,
        tsro_periods_seen=tsro_periods,
        counter_toggles=toggles_total,
        conversion_time=end_time,
        events=sim.events_processed,
    )
