"""A minimal discrete-event simulator.

Classic calendar-queue design on :mod:`heapq`: events are (time, sequence,
callback) triples; the sequence number breaks ties deterministically in
scheduling order, so simulations are exactly reproducible.  Callbacks may
schedule further events (that is how oscillators free-run).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple

Event = Tuple[float, int, Callable[[], None]]


class EventSimulator:
    """Deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._now = 0.0
        self._sequence = 0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (self._now + delay, self._sequence, callback))
        self._sequence += 1

    def run_until(self, t_end: float, max_events: int = 50_000_000) -> None:
        """Process events in time order up to (and including) ``t_end``.

        Args:
            t_end: Simulation horizon in seconds.
            max_events: Runaway guard; exceeding it raises ``RuntimeError``
                (an oscillator left enabled forever would otherwise spin).
        """
        if t_end < self._now:
            raise ValueError("cannot run backwards")
        processed = 0
        while self._queue and self._queue[0][0] <= t_end:
            time, _, callback = heapq.heappop(self._queue)
            self._now = time
            callback()
            processed += 1
            self._events_processed += 1
            if processed > max_events:
                raise RuntimeError(
                    f"exceeded {max_events} events before t={t_end}; "
                    "is an oscillator left enabled?"
                )
        self._now = t_end

    def pending(self) -> int:
        """Number of queued (not yet executed) events."""
        return len(self._queue)
