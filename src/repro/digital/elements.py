"""Event-level building blocks: gated oscillators and ripple counters.

The ripple counter is built the way the silicon builds it: a chain of
toggle flip-flops where each stage clocks the next on its falling edge,
with a real clock-to-Q delay per stage.  That makes ripple-carry settle
time and per-stage toggle counts observable — the two things the
behavioural model abstracts away.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.digital.simulator import EventSimulator


class GatedOscillator:
    """A free-running edge source with an enable gate.

    Emits rising edges every ``period`` seconds while enabled.  The first
    edge after enabling arrives after ``initial_phase * period`` — exactly
    the phase uncertainty the behavioural counter models as a uniform
    random offset.
    """

    def __init__(
        self,
        sim: EventSimulator,
        period: float,
        on_edge: Callable[[], None],
        initial_phase: float = 0.5,
    ) -> None:
        if period <= 0.0:
            raise ValueError("period must be positive")
        if not 0.0 <= initial_phase < 1.0:
            raise ValueError("initial_phase must lie in [0, 1)")
        self._sim = sim
        self.period = period
        self._on_edge = on_edge
        self._initial_phase = initial_phase
        self._enabled = False
        self._generation = 0
        self.edges_emitted = 0

    def enable(self) -> None:
        """Start emitting edges (first one after the phase offset)."""
        if self._enabled:
            return
        self._enabled = True
        self._generation += 1
        generation = self._generation
        self._sim.schedule(
            self._initial_phase * self.period, lambda: self._tick(generation)
        )

    def disable(self) -> None:
        """Stop emitting edges (pending ones are dropped)."""
        self._enabled = False
        self._generation += 1

    def _tick(self, generation: int) -> None:
        if not self._enabled or generation != self._generation:
            return
        self.edges_emitted += 1
        self._on_edge()
        self._sim.schedule(self.period, lambda: self._tick(generation))


class _ToggleFlipFlop:
    """One ripple-counter bit: toggles on its clock's falling edge."""

    def __init__(self, sim: EventSimulator, clk_to_q: float) -> None:
        self._sim = sim
        self._clk_to_q = clk_to_q
        self.value = 0
        self.toggles = 0
        self.next_stage: Optional["_ToggleFlipFlop"] = None

    def clock(self) -> None:
        # Toggle after the clock-to-Q delay; the *falling* output edge
        # (1 -> 0) clocks the next stage, implementing binary carry.
        self._sim.schedule(self._clk_to_q, self._settle)

    def _settle(self) -> None:
        self.value ^= 1
        self.toggles += 1
        if self.value == 0 and self.next_stage is not None:
            self.next_stage.clock()


class RippleCounterSim:
    """An event-level asynchronous (ripple) counter.

    Attributes:
        bits: Counter width.
        clk_to_q: Per-stage clock-to-output delay in seconds.
    """

    def __init__(self, sim: EventSimulator, bits: int, clk_to_q: float = 50e-12) -> None:
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        if clk_to_q <= 0.0:
            raise ValueError("clk_to_q must be positive")
        self._sim = sim
        self.bits = bits
        self.clk_to_q = clk_to_q
        self._stages: List[_ToggleFlipFlop] = [
            _ToggleFlipFlop(sim, clk_to_q) for _ in range(bits)
        ]
        for lower, upper in zip(self._stages, self._stages[1:]):
            lower.next_stage = upper

    def clock(self) -> None:
        """One increment (an input rising edge)."""
        self._stages[0].clock()

    def value(self) -> int:
        """Current count (LSB first stage)."""
        return sum(stage.value << bit for bit, stage in enumerate(self._stages))

    def total_toggles(self) -> int:
        """Total flip-flop output transitions so far (the energy proxy)."""
        return sum(stage.toggles for stage in self._stages)

    def worst_case_settle_time(self) -> float:
        """Full carry-chain ripple time (all bits toggling)."""
        return self.bits * self.clk_to_q

    def reset(self) -> None:
        """Clear count and toggle statistics (synchronous clear)."""
        for stage in self._stages:
            stage.value = 0
            stage.toggles = 0
