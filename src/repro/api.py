"""The stable public API facade of the reproduction.

``repro.api`` is the one import surface downstream code should build
against: everything re-exported here follows the deprecation policy in
docs/architecture.md (nothing disappears without a DeprecationWarning
shim for at least one release), and the snapshot test in
``tests/test_api_surfaces.py`` fails the suite on any accidental change
to this surface.

Quickstart::

    from repro.api import PTSensor, nominal_65nm, telemetry

    sensor = PTSensor(nominal_65nm())
    with telemetry.capture() as sink:
        reading = sensor.read(65.0)
    print(reading.temperature_c, sink.spans_named("core.conversion"))

Internals (``repro.core.calibration``, ``repro.thermal.solver`` etc.)
remain importable but carry no stability promise.
"""

from __future__ import annotations

from repro import telemetry
from repro.batch.grid import EnvironmentGrid
from repro.batch.population import PopulationReadings, read_population
from repro.circuits.ring_oscillator import Environment
from repro.config import SensorConfig
from repro.core.sensor import PTSensor, SensorReading
from repro.core.tracking import TrackingPolicy, TrackingReading, TrackingSensor
from repro.device.technology import Technology, nominal_65nm
from repro.experiments.runner import (
    ExperimentOutcome,
    SuiteResult,
    run_all,
    run_experiment,
)
from repro.network.aggregator import MonitorSnapshot, StackMonitor, TierState
from repro.readout.interface import SensorFrame
from repro.tsv.bus import BusReport, TsvSensorBus
from repro.variation.montecarlo import DieSample, sample_dies

__all__ = [
    "BusReport",
    "DieSample",
    "Environment",
    "EnvironmentGrid",
    "ExperimentOutcome",
    "MonitorSnapshot",
    "PTSensor",
    "PopulationReadings",
    "SensorConfig",
    "SensorFrame",
    "SensorReading",
    "StackMonitor",
    "SuiteResult",
    "Technology",
    "TierState",
    "TrackingPolicy",
    "TrackingReading",
    "TrackingSensor",
    "TsvSensorBus",
    "nominal_65nm",
    "read_population",
    "run_all",
    "run_experiment",
    "sample_dies",
    "telemetry",
]
