"""The stable public API facade of the reproduction.

``repro.api`` is the one import surface downstream code should build
against: everything re-exported here follows the deprecation policy in
docs/architecture.md (nothing disappears without a DeprecationWarning
shim for at least one release), and the snapshot test in
``tests/test_api_surfaces.py`` fails the suite on any accidental change
to this surface.

Quickstart::

    from repro.api import PTSensor, nominal_65nm, telemetry

    sensor = PTSensor(nominal_65nm())
    with telemetry.capture() as sink:
        reading = sensor.read(65.0)
    print(reading.temperature_c, sink.spans_named("core.conversion"))

Internals (``repro.core.calibration``, ``repro.thermal.solver`` etc.)
remain importable but carry no stability promise.

Every entry in the ``__test__`` mapping below is an executable example
for one slice of this surface; CI runs them with
``pytest --doctest-modules src/repro/api.py``.  They double as the
smallest-possible usage recipes:

=====================  ==============================================
surface                exports
=====================  ==============================================
single sensor          ``PTSensor``, ``SensorReading``, ``SensorConfig``,
                       ``Technology``, ``nominal_65nm``, ``Environment``
die populations        ``DieSample``, ``sample_dies``,
                       ``read_population``, ``PopulationReadings``,
                       ``EnvironmentGrid``
tracking mode          ``TrackingSensor``, ``TrackingPolicy``,
                       ``TrackingReading``
stack monitoring       ``StackMonitor``, ``MonitorSnapshot``,
                       ``TierState``, ``ResiliencePolicy``,
                       ``TsvSensorBus``, ``BusReport``, ``SensorFrame``
fault injection        ``faults`` (module), ``FaultKind``, ``FaultPlan``,
                       ``FaultSpec``
experiments            ``run_experiment``, ``run_all``,
                       ``ExperimentOutcome``, ``SuiteResult``
observability          ``telemetry`` (module)
serving                ``serve`` (module), ``ReadRequest``, ``ReadResult``,
                       ``SensorReadService``, ``ServeConfig``,
                       ``LoadgenConfig``, ``LoadgenReport``,
                       ``run_loadgen``, ``PairedReadings``, ``read_paired``
network edge           ``edge`` (module), ``EdgeClient``, ``EdgeConfig``,
                       ``EdgeError``, ``EdgeResult``, ``EdgeServer``,
                       ``EdgeServerThread``, ``EdgeLoadgenConfig``,
                       ``run_loadgen_edge``, ``HashRing``, ``shard_seed``
elastic control plane  ``AdminClient``, ``AutoscalePolicy``,
                       ``EdgeDeployment``
streaming              ``StreamPolicy``, ``RunawayPolicy``,
                       ``StreamLoadgenConfig``, ``run_loadgen_stream``
fleet federation       ``fleet`` (module), ``FleetClient``,
                       ``FleetDirectory``, ``FleetSupervisor``,
                       ``HedgePolicy``, ``HostSpec``, ``FleetFaultPlan``,
                       ``run_fleet_bench``
thermal management     ``dtm`` (module), ``DtmPolicy``, ``DtmTable``,
                       ``DtmClient``, ``DtmService``, ``DtmServiceConfig``,
                       ``PlacementEngine``, ``FloorplanSpec``
=====================  ==============================================
"""

from __future__ import annotations

from repro import dtm, edge, faults, fleet, serve, telemetry
from repro.batch.grid import EnvironmentGrid
from repro.batch.paired import PairedReadings, read_paired
from repro.batch.population import PopulationReadings, read_population
from repro.circuits.ring_oscillator import Environment
from repro.config import SensorConfig
from repro.core.sensor import PTSensor, SensorReading
from repro.core.tracking import TrackingPolicy, TrackingReading, TrackingSensor
from repro.device.technology import Technology, nominal_65nm
from repro.dtm import (
    DtmClient,
    DtmPolicy,
    DtmService,
    DtmServiceConfig,
    DtmTable,
    FloorplanSpec,
    PlacementEngine,
)
from repro.edge import (
    AdminClient,
    AutoscalePolicy,
    EdgeClient,
    EdgeConfig,
    EdgeDeployment,
    EdgeError,
    EdgeLoadgenConfig,
    EdgeResult,
    EdgeServer,
    EdgeServerThread,
    HashRing,
    StreamLoadgenConfig,
    StreamPolicy,
    run_loadgen_edge,
    run_loadgen_stream,
    shard_seed,
)
from repro.experiments.runner import (
    ExperimentOutcome,
    SuiteResult,
    run_all,
    run_experiment,
)
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.fleet import (
    FleetClient,
    FleetDirectory,
    FleetFaultPlan,
    FleetSupervisor,
    HedgePolicy,
    HostSpec,
    run_fleet_bench,
)
from repro.network.aggregator import (
    MonitorSnapshot,
    ResiliencePolicy,
    StackMonitor,
    TierState,
)
from repro.readout.interface import SensorFrame
from repro.telemetry.runaway import RunawayPolicy
from repro.serve import (
    LoadgenConfig,
    LoadgenReport,
    ReadRequest,
    ReadResult,
    SensorReadService,
    ServeConfig,
    run_loadgen,
)
from repro.tsv.bus import BusReport, TsvSensorBus
from repro.variation.montecarlo import DieSample, sample_dies

__all__ = [
    "AdminClient",
    "AutoscalePolicy",
    "BusReport",
    "DieSample",
    "DtmClient",
    "DtmPolicy",
    "DtmService",
    "DtmServiceConfig",
    "DtmTable",
    "EdgeClient",
    "EdgeConfig",
    "EdgeDeployment",
    "EdgeError",
    "EdgeLoadgenConfig",
    "EdgeResult",
    "EdgeServer",
    "EdgeServerThread",
    "Environment",
    "EnvironmentGrid",
    "ExperimentOutcome",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FleetClient",
    "FleetDirectory",
    "FleetFaultPlan",
    "FleetSupervisor",
    "FloorplanSpec",
    "HashRing",
    "HedgePolicy",
    "HostSpec",
    "LoadgenConfig",
    "LoadgenReport",
    "MonitorSnapshot",
    "PTSensor",
    "PairedReadings",
    "PlacementEngine",
    "PopulationReadings",
    "ReadRequest",
    "ReadResult",
    "ResiliencePolicy",
    "RunawayPolicy",
    "SensorConfig",
    "SensorFrame",
    "SensorReadService",
    "SensorReading",
    "ServeConfig",
    "StackMonitor",
    "StreamLoadgenConfig",
    "StreamPolicy",
    "SuiteResult",
    "Technology",
    "TierState",
    "TrackingPolicy",
    "TrackingReading",
    "TrackingSensor",
    "TsvSensorBus",
    "dtm",
    "edge",
    "faults",
    "fleet",
    "nominal_65nm",
    "read_paired",
    "read_population",
    "run_all",
    "run_experiment",
    "run_fleet_bench",
    "run_loadgen",
    "run_loadgen_edge",
    "run_loadgen_stream",
    "sample_dies",
    "serve",
    "shard_seed",
    "telemetry",
]


# Executable examples, one per surface.  Doctest picks these up via the
# __test__ protocol; each runs in its own namespace, is deterministic
# (seeded or `deterministic=True`), and completes in well under a second.
__test__ = {
    "single_sensor": """
    A sensor on the typical die self-calibrates with no external
    reference: one `read` yields the junction temperature plus the die's
    extracted process point (near zero on the typical die).

    >>> from repro.api import PTSensor, nominal_65nm
    >>> sensor = PTSensor(nominal_65nm())
    >>> reading = sensor.read(65.0, deterministic=True)
    >>> abs(reading.temperature_c - 65.0) < 1.5   # the paper's class
    True
    >>> abs(reading.dvtn) < 2e-3 and abs(reading.dvtp) < 2e-3
    True
    >>> reading.converged and reading.energy.total < 1e-9
    True
    """,
    "environment_and_config": """
    `Environment` is the physical truth a sensor site sees; `SensorConfig`
    holds the design parameters (validated at construction).

    >>> from repro.api import Environment, SensorConfig
    >>> env = Environment(temp_k=300.0, vdd=1.2)
    >>> (env.temp_k, env.vdd)
    (300.0, 1.2)
    >>> SensorConfig().psro_stages
    13
    >>> SensorConfig(psro_stages=4)
    Traceback (most recent call last):
        ...
    ValueError: psro_stages must be an odd number >= 3
    """,
    "die_population": """
    Monte-Carlo die populations are seeded and reproducible; the batch
    engine converts a whole population in one vectorised call.

    >>> from repro.api import PTSensor, nominal_65nm, read_population, sample_dies
    >>> technology = nominal_65nm()
    >>> dies = sample_dies(technology, 3, seed=2012)
    >>> [die.index for die in dies]
    [0, 1, 2]
    >>> again = sample_dies(technology, 3, seed=2012)
    >>> again[1].corner.dvtn == dies[1].corner.dvtn
    True
    >>> sensor = PTSensor(technology, die=dies[0], die_id=0)
    >>> readings = read_population([sensor], [30.0, 60.0], deterministic=True)
    >>> readings.temperature_c.shape   # (sensors, temperatures, repeats)
    (1, 2, 1)
    """,
    "tracking_mode": """
    Tracking mode serves most samples from the cheap TSRO-only fast path
    and refreshes the stored process point on schedule.

    >>> from repro.api import PTSensor, TrackingPolicy, TrackingSensor, nominal_65nm
    >>> tracker = TrackingSensor(
    ...     PTSensor(nominal_65nm()),
    ...     TrackingPolicy(recalibration_interval=3),
    ... )
    >>> [tracker.read(40.0).mode for _ in range(4)]
    ['full', 'fast', 'fast', 'full']
    >>> tracker.read(40.0).energy_j < tracker.sensor.read(40.0).energy.total
    True
    """,
    "stack_monitoring": """
    A `StackMonitor` polls one sensor per tier over the TSV chain and
    reports per-round snapshots with explicit quality flags.

    >>> from repro.api import PTSensor, StackMonitor, TsvSensorBus, nominal_65nm
    >>> technology = nominal_65nm()
    >>> sensors = {tier: PTSensor(technology, die_id=tier) for tier in range(2)}
    >>> monitor = StackMonitor(sensors, TsvSensorBus(tiers=2))
    >>> snapshot = monitor.poll({0: 55.0, 1: 48.0})
    >>> snapshot.quality, snapshot.hottest_tier
    ('fused', 0)
    >>> abs(snapshot.fused_temperature_c - 51.5) < 2.0
    True
    """,
    "resilience_policy": """
    `ResiliencePolicy` tunes how the monitor rides through faults; the
    defaults reproduce the historical behaviour exactly.

    >>> from repro.api import ResiliencePolicy
    >>> policy = ResiliencePolicy()
    >>> (policy.retry_limit, policy.dead_after, policy.revive_after)
    (2, 3, 1)
    >>> ResiliencePolicy(backoff_base_s=1e-6).backoff_s(attempt=2)
    4e-06
    """,
    "fault_injection": """
    A `FaultPlan` declares what breaks, where and when; `faults.inject`
    activates it process-wide, and the empty plan is a golden no-op.

    >>> from repro.api import FaultKind, FaultPlan, FaultSpec, faults
    >>> plan = FaultPlan(name="demo", specs=(
    ...     FaultSpec(FaultKind.TSV_OPEN, tier=1, onset_round=0),
    ... ))
    >>> plan.tiers_faulted()
    {1}
    >>> from repro.api import TsvSensorBus
    >>> bus = TsvSensorBus(tiers=2)
    >>> from repro.readout.interface import SensorFrame, encode_frame
    >>> word = encode_frame(SensorFrame(die_id=0, dvtn=0.0, dvtp=0.0,
    ...                                 temperature_c=50.0))
    >>> with faults.inject(plan):
    ...     report = bus.collect({0: word, 1: word})
    >>> report.missing       # tier 1's frame never arrived
    [1]
    >>> clean = bus.collect({0: word, 1: word})
    >>> clean.healthy        # outside the block the bus is untouched
    True
    """,
    "telemetry_capture": """
    The telemetry layer counts what happened without perturbing any
    seeded number; `capture()` resets metrics and collects spans.

    >>> from repro.api import PTSensor, nominal_65nm, telemetry
    >>> sensor = PTSensor(nominal_65nm())
    >>> with telemetry.capture() as sink:
    ...     _ = sensor.read(65.0, deterministic=True)
    >>> telemetry.counter("core.conversions").value
    1
    >>> len(sink.spans_named("core.conversion"))
    1
    """,
    "serving": """
    The serving engine answers a coalesced batch of typed requests with
    one vectorised conversion; in deterministic mode the answers match a
    sequential scalar loop within the batch engine's tolerances.

    >>> from repro.api import ReadRequest, serve
    >>> engine = serve.ReadEngine(serve.build_stack_sensors(tiers=2, seed=2012))
    >>> results = engine.execute(
    ...     [ReadRequest.point(0, 55.0), ReadRequest.scan(40.0)], now=0.0)
    >>> [(r.status.value, len(r.readings), r.batch_size) for r in results]
    [('ok', 1, 2), ('ok', 2, 2)]
    >>> abs(results[0].readings[0].temperature_c - 55.0) < 1.5
    True
    """,
    "network_edge": """
    The network edge routes stack ids onto shard workers through a
    consistent hash ring, and every shard derives its die-population
    seed from the deployment root seed — stable across processes, hosts
    and respawns (the basis of the cross-process determinism guarantee).

    >>> from repro.api import HashRing, shard_seed
    >>> shard_seed(2012, 0) == shard_seed(2012, 0)
    True
    >>> len({shard_seed(2012, i) for i in range(4)})
    4
    >>> ring = HashRing(range(4))
    >>> owners = [ring.route(stack) for stack in range(8)]
    >>> owners == [HashRing(range(4)).route(stack) for stack in range(8)]
    True
    >>> from repro.api import EdgeError
    >>> EdgeError("backpressure", "window full").retryable
    True
    >>> EdgeError("invalid", "bad kind").retryable
    False
    """,
    "elastic_control_plane": """
    One `EdgeDeployment` declaration derives every config layer, for any
    shard index — the basis of warm spares and elastic scale-up (a shard
    joining later is bit-identical to the same index booted on day one).

    >>> from repro.api import AutoscalePolicy, EdgeDeployment
    >>> deployment = EdgeDeployment(shards=2, tiers=4, root_seed=2012)
    >>> [w.shard_index for w in deployment.worker_configs()]
    [0, 1]
    >>> deployment.worker_config(7).seed == deployment.worker_config(7).seed
    True
    >>> deployment.serve_config(0).tiers
    4
    >>> edge_config = deployment.edge_config()
    >>> EdgeDeployment.from_edge_config(edge_config) == deployment
    True
    >>> AutoscalePolicy().hysteresis >= 1
    True
    """,
    "streaming": """
    The stream plane pushes instead of answering: subscriptions over
    SSE/NDJSON/binary share one bounded-queue hub, and the online
    EWMA-slope detector turns live reads into early-warning alerts
    (docs/streaming.md).  Policies validate at construction and the
    detection comparison is seeded end to end.

    >>> from repro.api import RunawayPolicy, StreamLoadgenConfig, StreamPolicy
    >>> StreamPolicy().heartbeat_s
    5.0
    >>> RunawayPolicy().clear_slope_c < RunawayPolicy().warn_slope_c
    True
    >>> StreamPolicy(queue=0)   # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    ValueError: ...
    >>> from repro.api import run_loadgen_stream
    >>> report = run_loadgen_stream(StreamLoadgenConfig(
    ...     subscribers=50, duration_s=0.2))
    >>> report.detector_no_worse
    True
    >>> report.peak_queue_depth <= report.queue
    True
    """,
    "fleet_federation": """
    The fleet layer places replicated shards across failure domains
    (never two replicas in one domain while domains allow) and hedges
    slow reads against a secondary replica.  Placement is pure data —
    rendezvous-hashed from host names, generation-stamped — so a whole
    fleet's replica map is known before any socket opens, and the hedge
    budget adapts per host from tracked latency windows.

    >>> from repro.api import FleetDirectory, HedgePolicy, HostSpec
    >>> hosts = tuple(
    ...     HostSpec(name=f"host{i}", host="127.0.0.1", port=7000 + i,
    ...              domain=f"rack{i % 2}")
    ...     for i in range(3))
    >>> directory = FleetDirectory(hosts=hosts, shards=4, replication=2)
    >>> sorted(directory.placement()) == [0, 1, 2, 3]
    True
    >>> all(
    ...     len({directory.host(n).domain for n in names}) == 2
    ...     for names in directory.placement().values())
    True
    >>> directory.with_hosts(hosts[:2]).generation
    1
    >>> HostSpec.parse("edge9=10.0.0.9:7009@rack3").domain
    'rack3'
    >>> from repro.api import fleet
    >>> tracker = fleet.LatencyTracker(window=64)
    >>> for ms in range(1, 33):
    ...     tracker.observe("host0", float(ms))
    >>> tracker.budget_ms("host0", HedgePolicy(quantile=0.5, min_samples=8))
    17.0
    """,
    "thermal_management": """
    The DTM control plane shares one verb arithmetic between the offline
    loop and the live wire: `dtm.decide` turns a reading into a typed
    action, and a `DtmTable` applies actions idempotently by round (a
    replayed decision answers the standing scale without moving it).
    `FloorplanSpec` prunes candidate sensor sites around TSV keep-outs
    for the batch placement engine (docs/dtm.md).

    >>> from repro.api import DtmPolicy, DtmTable, dtm
    >>> policy = DtmPolicy()
    >>> dtm.decide(policy, 1.0, 92.0)       # hot reading -> throttle
    ('throttle', 0.7)
    >>> dtm.decide(policy, 1.0, 80.0)       # hysteresis band -> no verb
    (None, 1.0)
    >>> table = DtmTable(policy)
    >>> table.apply(0, 1, 0, "throttle").scale
    0.7
    >>> table.apply(0, 1, 0, "throttle").applied   # same round: idempotent
    False
    >>> table.scale(0, 1)
    0.7
    >>> from repro.api import FloorplanSpec
    >>> spec = FloorplanSpec(width=5e-3, height=5e-3, layer="tier0.si",
    ...                      per_axis=4)
    >>> len(spec.candidate_sites())
    16
    """,
    "experiments": """
    Every reconstructed table/figure is an experiment module;
    `run_experiment` runs one by id and returns its result object, whose
    `render()` prints the same rows the CLI does.

    >>> from repro.api import run_experiment
    >>> result = run_experiment("R-F1", fast=True)
    >>> "TSRO" in result.render()
    True
    >>> run_experiment("R-F99", fast=True)   # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    KeyError: "unknown experiment 'R-F99'; known: ..."
    """,
}
