"""Command-line interface: list and run the reconstructed experiments.

Usage::

    python -m repro list
    python -m repro run R-F4            # full workload
    python -m repro run R-T1 --fast     # smoke workload
    python -m repro run all --fast
    python -m repro report --jobs 4     # full report, experiments in parallel
    python -m repro report --telemetry out.jsonl   # + metrics/spans JSONL
    python -m repro telemetry summary out.jsonl    # aggregate tables
    python -m repro bench --check       # performance regression gate
    python -m repro faultsim            # fault-injection campaign (docs/faults.md)
    python -m repro faultsim --plan open-tsv thermal-runaway --rounds 60
    python -m repro serve --requests 200 --access-log access.jsonl
    python -m repro loadgen --requests 2000 --rate 200   # docs/serving.md
    python -m repro loadgen --requests 200 --fast --json
    python -m repro loadgen --edge --fast        # shard-scaling sweep (docs/edge.md)
    python -m repro loadgen --stream             # 10k-subscriber fan-out sweep
    python -m repro edge --shards 4              # serve NDJSON+HTTP on a TCP port
    python -m repro edge --smoke                 # boot, round-trip, drain, exit
    python -m repro edge-bench --shards 1 4      # wall-clock sharded throughput
    python -m repro dtm --smoke                  # live closed loop on the wire
    python -m repro dtm --bench                  # live-vs-batch + decision rate
    python -m repro dtm --place                  # placement engine at scale
    python -m repro telemetry catalogue          # the full metric table (docs)
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def _list_experiments() -> None:
    print(f"{'id':6s} module")
    for key, module in ALL_EXPERIMENTS.items():
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{key:6s} {summary}")


def _run(keys, fast: bool) -> int:
    for key in keys:
        if key not in ALL_EXPERIMENTS:
            known = ", ".join(ALL_EXPERIMENTS)
            print(f"unknown experiment {key!r}; known: {known}", file=sys.stderr)
            return 2
    for key in keys:
        started = time.time()
        result = ALL_EXPERIMENTS[key].run(fast=fast)
        elapsed = time.time() - started
        print(f"\n### {key} ({'fast' if fast else 'full'} workload, {elapsed:.1f}s)")
        print(result.render())
    return 0


def _bench(args) -> int:
    from repro import benchmark

    baseline_path = args.baseline or benchmark.DEFAULT_BASELINE_PATH
    if args.tolerance is not None and args.tolerance < 0.0:
        print("--tolerance must be non-negative", file=sys.stderr)
        return 2
    results = benchmark.run_benchmarks()
    print(benchmark.render_results(results))
    if args.update:
        benchmark.save_baseline(results, baseline_path)
        print(f"wrote baseline {baseline_path}")
    if args.check:
        try:
            baseline = benchmark.load_baseline(baseline_path)
        except FileNotFoundError:
            print(f"no baseline at {baseline_path}; run with --update first",
                  file=sys.stderr)
            return 2
        tolerance = (
            benchmark.DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
        )
        failures = benchmark.check_against_baseline(results, baseline, tolerance)
        if failures:
            print("benchmark regressions:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"benchmark check ok (tolerance +{tolerance:.0%})")
    return 0


def _faultsim(args) -> int:
    from repro.faults.campaign import builtin_plans, run_campaign

    if args.tiers < 1 or args.rounds < 1:
        print("--tiers and --rounds must be >= 1", file=sys.stderr)
        return 2
    plans = builtin_plans(tiers=args.tiers, seed=args.seed)
    if args.plan:
        by_name = {plan.name: plan for plan in plans}
        unknown = [name for name in args.plan if name not in by_name]
        if unknown:
            print(
                f"unknown plan(s): {', '.join(unknown)}; "
                f"known: {', '.join(by_name)}",
                file=sys.stderr,
            )
            return 2
        plans = [by_name[name] for name in args.plan]

    def campaign():
        return run_campaign(
            plans=plans, tiers=args.tiers, rounds=args.rounds, seed=args.seed
        )

    if args.telemetry_path:
        from repro import telemetry
        from repro.telemetry import JsonlSink

        sink = JsonlSink(args.telemetry_path)
        with telemetry.capture(sink=sink):
            report = campaign()
        sink.close()
    else:
        report = campaign()
    print(report.render())
    if args.telemetry_path:
        print(f"\nwrote telemetry {args.telemetry_path}")
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"wrote {args.json_path}")
    return 0


def _loadgen_config(args):
    from repro.serve import (
        AdmissionPolicy,
        BatchPolicy,
        LoadgenConfig,
        ServeConfig,
    )

    if args.fast:
        # CI smoke preset: small stack, closed loop so batches fill and
        # the cache gets revisited, short think time so it runs in seconds.
        tiers = min(args.tiers, 4)
        clients = args.clients or 16
        setpoints = 3
    else:
        tiers = args.tiers
        clients = args.clients
        setpoints = 6
    serve = ServeConfig(
        tiers=tiers,
        seed=args.stack_seed,
        batch=BatchPolicy(max_batch=args.max_batch, max_wait_ms=args.max_wait_ms),
        admission=AdmissionPolicy(queue_depth=args.queue_depth),
        workers=args.workers,
    )
    return LoadgenConfig(
        requests=args.requests,
        seed=args.seed,
        rate_rps=args.rate,
        clients=clients,
        think_time_s=args.think_ms / 1e3,
        serve=serve,
        setpoints=setpoints,
        deadline_ms=args.deadline_ms,
    )


def _serve(args) -> int:
    from repro.serve import run_loadgen_wall

    config = _loadgen_config(args)
    report = run_loadgen_wall(config, access_log=args.access_log)
    print(report.render())
    if args.access_log:
        print(f"\nwrote access log {args.access_log}")
    return 0 if report.errors == 0 else 1


def _loadgen(args) -> int:
    from repro.serve import run_loadgen, run_loadgen_wall

    if args.edge:
        return _loadgen_edge(args)
    if args.stream:
        return _loadgen_stream(args)
    config = _loadgen_config(args)
    report = run_loadgen_wall(config) if args.wall else run_loadgen(config)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.errors == 0 else 1


def _loadgen_edge(args) -> int:
    from repro.edge.loadgen import EdgeLoadgenConfig, run_loadgen_edge
    from repro.serve import AdmissionPolicy, BatchPolicy, ServeConfig

    # The edge sweep asks a saturation question, so the single-stack
    # loadgen defaults (50 req/s, 2000 requests) would show nothing;
    # substitute edge-scale defaults unless the user overrode them.
    rate = 500000.0 if args.rate == 50.0 else args.rate
    if args.requests == 2000:
        requests = 1500 if args.fast else 4000
    else:
        requests = args.requests
    serve = ServeConfig(
        tiers=min(args.tiers, 4) if args.fast else args.tiers,
        batch=BatchPolicy(max_batch=args.max_batch, max_wait_ms=args.max_wait_ms),
        admission=AdmissionPolicy(queue_depth=args.queue_depth),
    )
    config = EdgeLoadgenConfig(
        requests=requests,
        seed=args.seed,
        rate_rps=rate,
        shard_counts=tuple(args.shard_counts),
        stacks=args.stacks,
        root_seed=args.root_seed,
        serve=serve,
        wire=args.wire,
    )
    report = run_loadgen_edge(config)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.monotonic else 1


def _loadgen_stream(args) -> int:
    from repro.edge.stream_loadgen import StreamLoadgenConfig, run_loadgen_stream

    config = StreamLoadgenConfig(
        subscribers=args.subscribers,
        seed=args.seed,
        duration_s=1.0 if args.fast else 5.0,
    )
    report = run_loadgen_stream(config)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.detector_no_worse else 1


def _edge(args) -> int:
    from repro.edge import AdminClient, EdgeClient, EdgeConfig, EdgeServerThread
    from repro.serve.requests import ReadRequest

    config = EdgeConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        tiers=args.tiers,
        root_seed=args.root_seed,
        window=args.window,
        start_method=args.start_method,
        admin_token=args.admin_token,
        warm_spares=args.warm_spares,
    )
    with EdgeServerThread(config) as edge:
        print(f"edge: {args.shards} shard(s) on {edge.host}:{edge.port} "
              f"(NDJSON + binary frames + HTTP; see docs/edge.md)")
        if args.smoke:
            with EdgeClient(edge.host, edge.port, wire=args.wire) as client:
                checks = [
                    ("point", ReadRequest.point(0, 45.0)),
                    ("vt", ReadRequest.vt(0, 45.0)),
                    ("scan", ReadRequest.scan(55.0, tiers=(0, min(1, args.tiers - 1)))),
                    ("poll", ReadRequest.poll({t: 40.0 + t for t in range(args.tiers)})),
                ]
                for name, request in checks:
                    result = client.read(hash(name) % 1024, request)
                    if not result.ok:
                        print(f"smoke {name}: FAILED ({result.status.value})",
                              file=sys.stderr)
                        return 1
                    print(f"smoke {name}: ok "
                          f"(shard {result.shard}, {len(result.readings)} readings)")
                health = client.ping()["shards"]
            if not all(s["state"] == "healthy" for s in health):
                print(f"smoke health: FAILED ({health})", file=sys.stderr)
                return 1
            print("smoke health: all shards healthy")
            for wire in ("ndjson", "binary"):
                with AdminClient(
                    edge.host, edge.port, token=args.admin_token, wire=wire
                ) as admin:
                    status = admin.status()["status"]
                if status["shards"] != sorted(status["shards"]):
                    print(f"smoke admin/{wire}: FAILED ({status})", file=sys.stderr)
                    return 1
                print(f"smoke admin/{wire}: ok (generation "
                      f"{status['generation']}, shards {status['shards']})")
            with AdminClient(
                edge.host, edge.port, token=args.admin_token
            ) as admin:
                grown = admin.scale(args.shards + 1)["shards"]
                shrunk = admin.scale(args.shards)["shards"]
            with EdgeClient(edge.host, edge.port, wire=args.wire) as client:
                result = client.read(7, ReadRequest.point(0, 45.0))
            if not result.ok or len(shrunk) != args.shards:
                print(f"smoke reshard: FAILED (grew to {grown}, shrank to "
                      f"{shrunk}, read ok={result.ok})", file=sys.stderr)
                return 1
            print(f"smoke reshard: ok (grew to {grown}, shrank to {shrunk}, "
                  f"reads survived)")
            code = _edge_smoke_stream(edge, args)
            if code:
                return code
            print("smoke: draining")
            return 0
        try:
            while True:
                time.sleep(3600.0)
        except KeyboardInterrupt:
            print("\ndraining...")
    return 0


def _edge_smoke_stream(edge, args) -> int:
    """The streaming leg of ``edge --smoke``: push + SSE round-trips."""
    import socket
    import threading

    from repro.edge import EdgeClient
    from repro.serve.requests import ReadRequest

    # Subscribe on the smoke wire, drive a synthetic runaway from a
    # second connection, and expect reads plus the early-warning alert
    # pushed back (docs/streaming.md).
    with EdgeClient(edge.host, edge.port, wire=args.wire) as streaming, \
            EdgeClient(edge.host, edge.port) as driver:
        receiver = streaming.subscribe(kinds=["read", "alert"])
        for i in range(12):
            result = driver.read(901, ReadRequest.point(0, 45.0 + 8.0 * i))
            if not result.ok:
                print(f"smoke stream: FAILED (read {i}: "
                      f"{result.status.value})", file=sys.stderr)
                return 1
        alert = None
        seen_reads = 0
        for _ in range(60):
            event = receiver.next()
            if event["event"] == "read":
                seen_reads += 1
            elif event["event"] == "alert":
                alert = event
                break
        ack = receiver.unsubscribe()
    if alert is None or not seen_reads or not ack.get("ok"):
        print(f"smoke stream: FAILED (reads pushed {seen_reads}, "
              f"alert {alert}, unsubscribe {ack})", file=sys.stderr)
        return 1
    print(f"smoke stream/{args.wire}: ok ({seen_reads} reads pushed, "
          f"{alert['name']} at round {alert['round']}, "
          f"unsubscribed with {ack['dropped']} dropped)")

    # The SSE face: a pump keeps read events flowing while we take a
    # bounded stream over plain HTTP.
    stop = threading.Event()

    def pump() -> None:
        with EdgeClient(edge.host, edge.port) as client:
            while not stop.is_set():
                client.read(902, ReadRequest.point(0, 50.0))
                time.sleep(0.01)

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    try:
        sock = socket.create_connection((edge.host, edge.port), timeout=30.0)
        try:
            sock.sendall(b"GET /v1/stream?kinds=read&limit=2 HTTP/1.1\r\n"
                         b"Host: smoke\r\nConnection: close\r\n\r\n")
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        finally:
            sock.close()
    finally:
        stop.set()
        thread.join()
    head, _, body = data.partition(b"\r\n\r\n")
    blocks = [b for b in body.decode("utf-8").split("\n\n") if b.strip()]
    if b"text/event-stream" not in head or len(blocks) != 2:
        print(f"smoke stream/sse: FAILED (head {head[:80]!r}, "
              f"{len(blocks)} block(s))", file=sys.stderr)
        return 1
    print(f"smoke stream/sse: ok ({len(blocks)} events over "
          f"text/event-stream)")
    return 0


def _dtm(args) -> int:
    if args.place:
        return _dtm_place(args)
    if args.bench:
        return _dtm_bench(args)
    if args.smoke:
        return _dtm_smoke(args)
    print("dtm: pass --smoke, --bench or --place", file=sys.stderr)
    return 2


def _dtm_smoke(args) -> int:
    """Boot an edge + the DTM service, inject a runaway, expect a typed
    throttle observed on the wire and all three faces agreeing."""
    from repro.dtm import DtmClient, DtmPolicy, DtmService, DtmServiceConfig
    from repro.edge import EdgeClient, EdgeConfig, EdgeServerThread
    from repro.edge.stream import StreamPolicy
    from repro.serve.requests import ReadRequest

    policy = DtmPolicy()
    config = EdgeConfig(
        shards=args.shards,
        tiers=args.tiers,
        root_seed=args.root_seed,
        stream=StreamPolicy(sample_s=0.05, heartbeat_s=0.25),
        dtm=policy,
        start_method=args.start_method,
    )
    stack_id, tier = 9, 1
    with EdgeServerThread(config) as edge:
        print(
            f"dtm: {args.shards} shard(s) on {edge.host}:{edge.port}, "
            f"service on the {args.wire} wire (see docs/dtm.md)"
        )
        service = DtmService(
            edge.host,
            edge.port,
            DtmServiceConfig(policy=policy, deadline_ms=200.0, wire=args.wire),
        )
        service.start()
        try:
            with EdgeClient(edge.host, edge.port) as driver:
                for i in range(12):
                    result = driver.read(
                        stack_id, ReadRequest.point(tier, 50.0 + 5.0 * i)
                    )
                    if not result.ok:
                        print(
                            f"smoke drive: FAILED (read {i}: "
                            f"{result.status.value})",
                            file=sys.stderr,
                        )
                        return 1
                    time.sleep(0.01)
            throttle = None
            deadline = time.monotonic() + 30.0
            with DtmClient(edge.host, edge.port) as dtm:
                while throttle is None and time.monotonic() < deadline:
                    throttles = [
                        d
                        for d in dtm.decisions()["decisions"]
                        if d["stack"] == stack_id
                        and d["action"] == "throttle"
                        and d["applied"]
                    ]
                    if throttles:
                        throttle = throttles[0]
                    else:
                        time.sleep(0.05)
            if throttle is None:
                print(
                    "smoke throttle: FAILED (runaway injected but no "
                    "throttle decision reached the wire)",
                    file=sys.stderr,
                )
                return 1
            print(
                f"smoke throttle: ok (tier {throttle['tier']} throttled at "
                f"round {throttle['round']}, scale {throttle['scale']:.2f})"
            )
            faces = {}
            for wire in ("ndjson", "binary", "http"):
                with DtmClient(edge.host, edge.port, wire=wire) as dtm:
                    status = dtm.status()["status"]
                faces[wire] = (status["seq"], tuple(sorted(status["scales"].items())))
                print(
                    f"smoke dtm/{wire}: ok (seq {status['seq']}, "
                    f"{status['throttles']} throttle(s), "
                    f"scales {status['scales']})"
                )
            if len(set(faces.values())) != 1:
                print(f"smoke wires: FAILED (faces disagree: {faces})",
                      file=sys.stderr)
                return 1
            print("smoke wires: ok (one table behind all three faces)")
            stats = service.stats()
            if stats["errors"]:
                print(f"smoke service: FAILED ({stats})", file=sys.stderr)
                return 1
            print(
                f"smoke service: ok ({stats['events']} event(s) consumed, "
                f"{stats['decisions']} decision(s), "
                f"{stats['duplicates']} duplicate(s))"
            )
        finally:
            service.stop()
        print("smoke: draining")
    return 0


def _dtm_bench(args) -> int:
    from repro.dtm.bench import measure_decision_rate, run_live_vs_batch

    live = run_live_vs_batch()
    print(live.render())
    rate = measure_decision_rate()
    print(rate.render())
    return 0 if live.service_errors == 0 and live.live_no_later else 1


def _dtm_place(args) -> int:
    from repro.dtm.bench import run_placement_bench

    report = run_placement_bench(per_axis=args.per_axis, budget=args.budget)
    print(report.render())
    ok = report.parity_ok and report.tournament_ok and report.speedup >= 10.0
    return 0 if ok else 1


def _fleet(args) -> int:
    if args.bench:
        return _fleet_bench(args)
    if args.smoke:
        return _fleet_smoke(args)
    if not args.hosts:
        print(
            "fleet: pass --hosts name=host:port[@domain] ... to drive a "
            "live fleet, or --smoke / --bench for a local one",
            file=sys.stderr,
        )
        return 2
    return _fleet_drive(args)


def _fleet_drive(args) -> int:
    """Loadgen mode: hedged reads against an already-running fleet."""
    from repro.edge.protocol import EdgeError, RETRYABLE_CODES
    from repro.fleet import (
        FleetClient,
        FleetDirectory,
        FleetSupervisor,
        HostSpec,
        SupervisorPolicy,
    )
    from repro.serve.requests import ReadRequest

    specs = tuple(HostSpec.parse(spec) for spec in args.hosts)
    directory = FleetDirectory(
        hosts=specs, shards=args.fleet_shards, replication=args.replication
    )
    print(
        f"fleet: {len(specs)} host(s), {args.fleet_shards} fleet shard(s), "
        f"replication {args.replication}"
    )
    for shard, replicas in sorted(directory.placement().items()):
        print(
            f"  shard {shard}: "
            + ", ".join(
                f"{name}@{directory.host(name).domain}" for name in replicas
            )
        )
    fatal = 0
    with FleetClient(directory, wire=args.wire) as client:
        supervisor = FleetSupervisor(
            client.router, SupervisorPolicy(interval_s=0.5), wire="ndjson"
        )
        states = supervisor.check_once()
        print(
            "health: "
            + ", ".join(f"{name}={state}" for name, state in sorted(states.items()))
        )
        for i in range(args.requests):
            request = ReadRequest.point(i % args.tiers, 30.0 + 5.0 * (i % 8))
            try:
                client.read(i % args.stacks, request)
            except EdgeError as error:
                if error.code not in RETRYABLE_CODES:
                    fatal += 1
        stats = client.stats()
        print(
            f"drove {args.requests} read(s): {stats['hedges']} hedge(s), "
            f"{stats['hedge_wins']} hedge win(s), "
            f"{stats['failovers']} failover(s), "
            f"{fatal} non-retryable error(s)"
        )
        for name, summary in sorted(stats["hosts"].items()):
            print(
                f"  {name}: n={int(summary['count'])} "
                f"p50 {summary['p50_ms']:.1f}ms p99 {summary['p99_ms']:.1f}ms"
            )
    return 0 if fatal == 0 else 1


def _fleet_smoke(args) -> int:
    """Boot a local fleet, kill one host mid-traffic, expect zero
    non-retryable errors and bit-identical cross-replica answers."""
    from repro.edge.client import EdgeClient
    from repro.edge.protocol import EdgeError, RETRYABLE_CODES
    from repro.fleet import (
        FleetBenchConfig,
        FleetClient,
        FleetFaultPlan,
        FleetSupervisor,
        SupervisorPolicy,
        build_fleet,
    )
    from repro.serve.requests import ReadRequest

    config = FleetBenchConfig(
        hosts=args.local,
        shards_per_host=1,
        fleet_shards=args.fleet_shards,
        replication=args.replication,
        tiers=args.tiers,
        start_method=args.start_method,
    )
    servers, directory = build_fleet(config, FleetFaultPlan.empty())
    try:
        # Determinism probe: every replica of one stack, over both
        # wires, must return the same readings bit for bit.  cache_hit
        # is serving metadata (first read on a host misses), so it is
        # excluded from the comparison; the physics — temperatures,
        # deltas, modeled conversion time and energy — must match
        # exactly.
        probe_stack = 5
        probe = ReadRequest.point(0, 45.0)
        answers = set()
        for spec in directory.replicas_for_stack(probe_stack):
            for wire in ("ndjson", "binary"):
                with EdgeClient(spec.host, spec.port, wire=wire) as probe_client:
                    result = probe_client.read(probe_stack, probe)
                answers.add(
                    repr(
                        tuple(
                            (
                                r.tier,
                                r.temperature_c,
                                r.dvtn,
                                r.dvtp,
                                r.converged,
                                r.quality,
                                r.conversion_time,
                                r.energy_j,
                            )
                            for r in result.readings
                        )
                    )
                )
        if len(answers) != 1:
            print(f"smoke determinism: FAILED ({answers})", file=sys.stderr)
            return 1
        replicas = len(directory.replicas_for_stack(probe_stack))
        print(
            f"smoke determinism: ok ({replicas} replica(s) x 2 wires, "
            f"bit-identical readings)"
        )
        fatal = 0
        victim = directory.replicas_for_stack(0)[0].name
        kill_at = args.requests // 3
        with FleetClient(directory) as client:
            supervisor = FleetSupervisor(
                client.router,
                SupervisorPolicy(
                    interval_s=0.2, timeout_s=2.0, degraded_after=1, dead_after=2
                ),
                wire="ndjson",
            )
            supervisor.start()
            try:
                for i in range(args.requests):
                    if i == kill_at:
                        index = int(victim.removeprefix("host"))
                        servers[index].stop(drain=False)
                        print(f"smoke chaos: killed {victim} mid-traffic")
                    request = ReadRequest.point(
                        i % args.tiers, 30.0 + 5.0 * (i % 8)
                    )
                    try:
                        client.read(i % args.stacks, request)
                    except EdgeError as error:
                        if error.code not in RETRYABLE_CODES:
                            fatal += 1
            finally:
                supervisor.stop()
            stats = client.stats()
            states = supervisor.states()
        if fatal or states.get(victim) == "healthy":
            print(
                f"smoke chaos: FAILED ({fatal} non-retryable error(s), "
                f"states {states})",
                file=sys.stderr,
            )
            return 1
        print(
            f"smoke chaos: ok ({args.requests} reads, "
            f"{stats['failovers']} failover(s), {stats['hedges']} hedge(s), "
            f"0 non-retryable errors; {victim} now {states[victim]})"
        )
        return 0
    finally:
        for server in servers:
            server.stop()


def _fleet_bench(args) -> int:
    from repro.fleet import FleetBenchConfig, run_fleet_bench

    config = FleetBenchConfig(
        hosts=args.local,
        fleet_shards=args.fleet_shards,
        replication=args.replication,
        tiers=args.tiers,
        requests=args.requests,
        stall_ms=args.stall_ms,
        wire=args.wire,
        start_method=args.start_method,
    )
    report = run_fleet_bench(config)
    print(report.render())
    errors = (
        report.unhedged.non_retryable_errors + report.hedged.non_retryable_errors
    )
    if errors:
        print(f"fleet bench: {errors} non-retryable error(s)", file=sys.stderr)
        return 1
    if args.gate is not None and report.p99_ratio > args.gate:
        print(
            f"fleet bench: hedged p99 ratio {report.p99_ratio:.2f} exceeds "
            f"gate {args.gate:.2f}",
            file=sys.stderr,
        )
        return 1
    return 0


def _edge_bench(args) -> int:
    from repro.edge.bench import run_edge_bench

    report = run_edge_bench(
        shard_counts=tuple(args.shards),
        requests=args.requests,
        clients=args.clients,
        tiers=args.tiers,
        stacks=args.stacks,
        root_seed=args.root_seed,
        start_method=args.start_method,
        wire=args.wire,
    )
    print(report.render())
    expected = sum(
        p.requests for p in report.points
    )  # every request must come back ok at every shard count
    observed = sum(p.ok for p in report.points)
    return 0 if observed == expected else 1


def _add_serving_arguments(parser, loadgen: bool) -> None:
    parser.add_argument(
        "--requests", type=int, default=2000, help="requests to issue (default 2000)"
    )
    parser.add_argument(
        "--tiers", type=int, default=8, help="stack height (default 8)"
    )
    parser.add_argument(
        "--seed", type=int, default=20120612, help="arrival/mix stream seed"
    )
    parser.add_argument(
        "--stack-seed", type=int, default=2012, help="die-population seed (default 2012)"
    )
    parser.add_argument(
        "--rate", type=float, default=50.0, help="open-loop arrival rate, req/s"
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=None,
        help="closed-loop client count (default: open loop)",
    )
    parser.add_argument(
        "--think-ms", type=float, default=1.0, help="closed-loop mean think time, ms"
    )
    parser.add_argument(
        "--max-batch", type=int, default=32, help="micro-batch size bound (default 32)"
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0, help="micro-batch wait bound, ms"
    )
    parser.add_argument(
        "--queue-depth", type=int, default=256, help="admission queue bound"
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="relative request deadline, ms (enables shedding)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="service worker threads"
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI smoke preset: 4 tiers, closed loop, few setpoints",
    )
    if loadgen:
        parser.add_argument(
            "--wall",
            action="store_true",
            help="drive the real threaded service instead of the "
            "deterministic virtual-time simulation",
        )
        parser.add_argument(
            "--json", action="store_true", help="emit the report as JSON"
        )
        parser.add_argument(
            "--edge",
            action="store_true",
            help="sweep aggregate throughput vs shard count for the sharded "
            "network edge (virtual time; substitutes saturation-scale "
            "defaults for --rate/--requests unless overridden; docs/edge.md)",
        )
        parser.add_argument(
            "--stream",
            action="store_true",
            help="sweep stream fan-out with tens of thousands of virtual-time "
            "subscribers and compare streaming vs batch runaway detection "
            "(docs/streaming.md)",
        )
        parser.add_argument(
            "--subscribers",
            type=int,
            default=10_000,
            help="concurrent subscriptions to simulate with --stream "
            "(default 10000)",
        )
        parser.add_argument(
            "--shard-counts",
            type=int,
            nargs="+",
            default=[1, 2, 4],
            metavar="N",
            help="shard counts to sweep with --edge (default: 1 2 4)",
        )
        parser.add_argument(
            "--stacks",
            type=int,
            default=64,
            help="stack-id space routed over the shards with --edge (default 64)",
        )
        parser.add_argument(
            "--root-seed",
            type=int,
            default=2012,
            help="edge deployment root seed with --edge (default 2012)",
        )
        parser.add_argument(
            "--wire",
            choices=("ndjson", "binary"),
            default="binary",
            help="wire-cost profile charged to the shards with --edge "
            "(default binary, the deployed fast wire)",
        )
    else:
        parser.add_argument(
            "--access-log",
            default=None,
            metavar="PATH",
            help="write one JSON line per served request",
        )


def _telemetry_summary(path: str) -> int:
    from repro.telemetry.summary import (
        TelemetryFileError,
        load_summary_file,
        render_summary,
    )

    try:
        summary = load_summary_file(path)
    except FileNotFoundError:
        print(f"no telemetry file at {path}", file=sys.stderr)
        return 2
    except TelemetryFileError as error:
        print(f"telemetry file {path} is malformed: {error}", file=sys.stderr)
        return 1
    print(render_summary(summary))
    print(
        f"\n{summary.records} records; "
        f"{len(summary.metrics)} metrics across "
        f"{len(summary.subsystems)} subsystems; "
        f"{sum(a.count for a in summary.spans.values())} spans"
    )
    return 0


def _telemetry_catalogue(args) -> int:
    from repro.telemetry import catalogue

    if args.check:
        drift = catalogue.check_docs(args.check)
        if drift:
            print(f"metric catalogue in {args.check} has drifted "
                  f"from the registry:", file=sys.stderr)
            for line in drift:
                print(f"  {line}", file=sys.stderr)
            print("regenerate with: python -m repro telemetry catalogue "
                  f"--write {args.check}", file=sys.stderr)
            return 1
        print(f"{args.check}: metric catalogue matches the registry")
        return 0
    if args.write:
        changed = catalogue.write_docs(args.write)
        print(f"{args.write}: "
              + ("catalogue regenerated" if changed else "already current"))
        return 0
    print(catalogue.render_table())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction harness for the SOCC 2012 self-calibrated "
        "PT sensor (see DESIGN.md for the experiment index).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list all experiments")
    run_parser = sub.add_parser("run", help="run experiments by id (or 'all')")
    run_parser.add_argument("ids", nargs="+", help="experiment ids, e.g. R-F4, or 'all'")
    run_parser.add_argument(
        "--fast", action="store_true", help="reduced smoke workload"
    )
    report_parser = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report_parser.add_argument(
        "--fast", action="store_true", help="reduced smoke workload"
    )
    report_parser.add_argument(
        "--output", default="REPORT.md", help="report path (default REPORT.md)"
    )
    report_parser.add_argument(
        "--json", dest="json_path", default=None, help="also archive results as JSON"
    )
    report_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run up to N experiments concurrently (default 1, serial)",
    )
    report_parser.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="ID",
        help="restrict the report to a subset of experiment ids",
    )
    report_parser.add_argument(
        "--telemetry",
        dest="telemetry_path",
        default=None,
        metavar="PATH",
        help="stream telemetry (spans + metric snapshot) to a JSON-lines file",
    )
    telemetry_parser = sub.add_parser(
        "telemetry", help="inspect telemetry captured by report --telemetry"
    )
    telemetry_sub = telemetry_parser.add_subparsers(dest="telemetry_command",
                                                    required=True)
    summary_parser = telemetry_sub.add_parser(
        "summary", help="aggregate a telemetry JSONL file into tables"
    )
    summary_parser.add_argument("path", help="telemetry JSON-lines file")
    catalogue_parser = telemetry_sub.add_parser(
        "catalogue",
        help="render the full metric table from the live registry "
        "(the generated section of docs/telemetry.md)",
    )
    catalogue_group = catalogue_parser.add_mutually_exclusive_group()
    catalogue_group.add_argument(
        "--check",
        metavar="PATH",
        default=None,
        help="fail when PATH's generated table drifts from the registry",
    )
    catalogue_group.add_argument(
        "--write",
        metavar="PATH",
        default=None,
        help="regenerate the table between PATH's catalogue markers",
    )
    faultsim_parser = sub.add_parser(
        "faultsim",
        help="run a fault-injection campaign over a monitored stack "
        "(see docs/faults.md)",
    )
    faultsim_parser.add_argument(
        "--tiers", type=int, default=8, help="stack height (default 8)"
    )
    faultsim_parser.add_argument(
        "--rounds", type=int, default=40, help="polling rounds per plan (default 40)"
    )
    faultsim_parser.add_argument(
        "--seed", type=int, default=2012, help="campaign seed (default 2012)"
    )
    faultsim_parser.add_argument(
        "--plan",
        nargs="+",
        default=None,
        metavar="NAME",
        help="restrict to named built-in plans (default: all; see 'plans:' output)",
    )
    faultsim_parser.add_argument(
        "--json", dest="json_path", default=None, help="archive the scores as JSON"
    )
    faultsim_parser.add_argument(
        "--telemetry",
        dest="telemetry_path",
        default=None,
        metavar="PATH",
        help="stream faults.* telemetry to a JSON-lines file",
    )
    serve_parser = sub.add_parser(
        "serve",
        help="run the embedded micro-batching readout service against a "
        "synthetic request stream (see docs/serving.md)",
    )
    _add_serving_arguments(serve_parser, loadgen=False)
    loadgen_parser = sub.add_parser(
        "loadgen",
        help="deterministic load generator for the readout service "
        "(see docs/serving.md)",
    )
    _add_serving_arguments(loadgen_parser, loadgen=True)
    edge_parser = sub.add_parser(
        "edge",
        help="serve the sharded sensor-readout edge over TCP "
        "(NDJSON + HTTP; see docs/edge.md)",
    )
    edge_parser.add_argument(
        "--host", default="127.0.0.1", help="listen address (default 127.0.0.1)"
    )
    edge_parser.add_argument(
        "--port", type=int, default=0, help="listen port (default 0 = ephemeral)"
    )
    edge_parser.add_argument(
        "--shards", type=int, default=4, help="backend worker processes (default 4)"
    )
    edge_parser.add_argument(
        "--tiers", type=int, default=8, help="stack height per shard (default 8)"
    )
    edge_parser.add_argument(
        "--root-seed", type=int, default=2012, help="deployment root seed"
    )
    edge_parser.add_argument(
        "--window",
        type=int,
        default=64,
        help="outstanding requests allowed per shard (default 64)",
    )
    edge_parser.add_argument(
        "--start-method",
        choices=("spawn", "fork", "forkserver"),
        default="spawn",
        help="worker process start method (default spawn)",
    )
    edge_parser.add_argument(
        "--admin-token",
        default=None,
        help="require this token on admin.* ops (default: admin plane open)",
    )
    edge_parser.add_argument(
        "--warm-spares",
        type=int,
        default=0,
        help="pre-seeded standby workers for instant scale-up (default 0)",
    )
    edge_parser.add_argument(
        "--smoke",
        action="store_true",
        help="boot, round-trip every request kind once, reshard live, "
        "drain, exit",
    )
    edge_parser.add_argument(
        "--wire",
        choices=("ndjson", "binary"),
        default="ndjson",
        help="wire format the --smoke client speaks (default ndjson)",
    )
    edge_bench_parser = sub.add_parser(
        "edge-bench",
        help="wall-clock aggregate throughput of a real sharded edge "
        "(see docs/edge.md)",
    )
    edge_bench_parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[1, 4],
        metavar="N",
        help="shard counts to measure (default: 1 4)",
    )
    edge_bench_parser.add_argument(
        "--requests", type=int, default=400, help="requests per shard count"
    )
    edge_bench_parser.add_argument(
        "--clients", type=int, default=8, help="concurrent client threads"
    )
    edge_bench_parser.add_argument(
        "--tiers", type=int, default=4, help="stack height per shard (default 4)"
    )
    edge_bench_parser.add_argument(
        "--stacks", type=int, default=64, help="stack-id space (default 64)"
    )
    edge_bench_parser.add_argument(
        "--root-seed", type=int, default=2012, help="deployment root seed"
    )
    edge_bench_parser.add_argument(
        "--wire",
        choices=("ndjson", "binary"),
        default="ndjson",
        help="wire format the client threads speak (default ndjson)",
    )
    edge_bench_parser.add_argument(
        "--start-method",
        choices=("spawn", "fork", "forkserver"),
        default="spawn",
        help="worker process start method (default spawn)",
    )
    fleet_parser = sub.add_parser(
        "fleet",
        help="federate several edge hosts: replicated shards, hedged "
        "reads, failure-domain placement (see docs/fleet.md)",
    )
    fleet_parser.add_argument(
        "--hosts",
        nargs="+",
        default=None,
        metavar="NAME=HOST:PORT[@DOMAIN]",
        help="drive an already-running fleet (loadgen mode)",
    )
    fleet_parser.add_argument(
        "--local",
        type=int,
        default=3,
        metavar="N",
        help="local hosts booted by --smoke / --bench (default 3)",
    )
    fleet_parser.add_argument(
        "--fleet-shards", type=int, default=4, help="fleet shard count (default 4)"
    )
    fleet_parser.add_argument(
        "--replication", type=int, default=2, help="replicas per shard (default 2)"
    )
    fleet_parser.add_argument(
        "--tiers", type=int, default=4, help="stack height per shard (default 4)"
    )
    fleet_parser.add_argument(
        "--requests", type=int, default=240, help="reads to drive (default 240)"
    )
    fleet_parser.add_argument(
        "--stacks", type=int, default=64, help="stack-id space (default 64)"
    )
    fleet_parser.add_argument(
        "--stall-ms",
        type=float,
        default=50.0,
        help="--bench: injected stall on the slow host (default 50)",
    )
    fleet_parser.add_argument(
        "--gate",
        type=float,
        default=None,
        metavar="RATIO",
        help="--bench: fail when hedged p99 / unhedged p99 exceeds RATIO",
    )
    fleet_parser.add_argument(
        "--wire",
        choices=("ndjson", "binary"),
        default="ndjson",
        help="wire format for fleet reads (default ndjson)",
    )
    fleet_parser.add_argument(
        "--start-method",
        choices=("spawn", "fork", "forkserver"),
        default="fork",
        help="worker start method for local hosts (default fork)",
    )
    fleet_mode = fleet_parser.add_mutually_exclusive_group()
    fleet_mode.add_argument(
        "--smoke",
        action="store_true",
        help="boot a local fleet, kill one host mid-traffic, expect zero "
        "non-retryable errors",
    )
    fleet_mode.add_argument(
        "--bench",
        action="store_true",
        help="hedged vs unhedged p99 under one injected slow host",
    )
    dtm_parser = sub.add_parser(
        "dtm",
        help="fleet-scale DTM: live closed-loop control plane + batch "
        "placement search engine (see docs/dtm.md)",
    )
    dtm_parser.add_argument(
        "--shards", type=int, default=1, help="--smoke: backend shards (default 1)"
    )
    dtm_parser.add_argument(
        "--tiers", type=int, default=4, help="--smoke: stack height (default 4)"
    )
    dtm_parser.add_argument(
        "--root-seed", type=int, default=2012, help="--smoke: deployment root seed"
    )
    dtm_parser.add_argument(
        "--wire",
        choices=("ndjson", "binary", "http"),
        default="ndjson",
        help="--smoke: wire the DTM service issues decisions on "
        "(default ndjson)",
    )
    dtm_parser.add_argument(
        "--start-method",
        choices=("spawn", "fork", "forkserver"),
        default="spawn",
        help="--smoke: worker process start method (default spawn)",
    )
    dtm_parser.add_argument(
        "--per-axis",
        type=int,
        default=132,
        help="--place: candidate grid per axis (default 132 -> 17424 sites)",
    )
    dtm_parser.add_argument(
        "--budget", type=int, default=6, help="--place: sensor budget (default 6)"
    )
    dtm_mode = dtm_parser.add_mutually_exclusive_group()
    dtm_mode.add_argument(
        "--smoke",
        action="store_true",
        help="boot edge + DTM service, inject a runaway, expect a typed "
        "throttle on the wire over all three faces",
    )
    dtm_mode.add_argument(
        "--bench",
        action="store_true",
        help="live-vs-batch first-throttle race + decision-table rate",
    )
    dtm_mode.add_argument(
        "--place",
        action="store_true",
        help="run the batch placement engine at scale and report its "
        "speedup over the scalar path",
    )
    bench_parser = sub.add_parser(
        "bench", help="run the performance benchmarks (see repro.benchmark)"
    )
    bench_parser.add_argument(
        "--check",
        action="store_true",
        help="fail when any benchmark regresses past the baseline tolerance",
    )
    bench_parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline from this run"
    )
    bench_parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default benchmarks/BENCH_baseline.json)",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed slowdown vs baseline as a fraction (default 2.0 = 3x)",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        _list_experiments()
        return 0
    if args.command == "bench":
        return _bench(args)
    if args.command == "faultsim":
        return _faultsim(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "loadgen":
        return _loadgen(args)
    if args.command == "edge":
        return _edge(args)
    if args.command == "edge-bench":
        return _edge_bench(args)
    if args.command == "fleet":
        return _fleet(args)
    if args.command == "dtm":
        return _dtm(args)
    if args.command == "telemetry":
        if args.telemetry_command == "catalogue":
            return _telemetry_catalogue(args)
        return _telemetry_summary(args.path)
    if args.command == "report":
        from repro.experiments.runner import run_all, write_report

        if args.jobs < 1:
            print("--jobs must be >= 1", file=sys.stderr)
            return 2
        try:
            if args.telemetry_path:
                from repro import telemetry
                from repro.telemetry import JsonlSink

                sink = JsonlSink(args.telemetry_path)
                with telemetry.capture(sink=sink):
                    result = run_all(fast=args.fast, only=args.only, jobs=args.jobs)
                sink.close()
                print(f"wrote telemetry {args.telemetry_path}")
            else:
                result = run_all(fast=args.fast, only=args.only, jobs=args.jobs)
        except KeyError as error:
            print(str(error), file=sys.stderr)
            return 2
        write_report(result, args.output)
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                handle.write(result.to_json())
        print(
            f"wrote {args.output}: {len(result.outcomes)} experiments, "
            + ("all ok" if result.all_ok else "FAILURES: " + ", ".join(result.failures()))
        )
        return 0 if result.all_ok else 1
    keys = list(ALL_EXPERIMENTS) if args.ids == ["all"] else args.ids
    return _run(keys, args.fast)


if __name__ == "__main__":
    sys.exit(main())
