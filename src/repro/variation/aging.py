"""Bias-temperature-instability (BTI) aging: threshold drift over lifetime.

Transistor thresholds are not constant over a product's life: negative-BTI
raises the PMOS threshold magnitude (the dominant 65 nm mechanism) and
positive-BTI raises the NMOS threshold, both following the empirical
power law

    dV_t(t) = A * duty^0.5 * exp(Ea_like * (T - T0)) * (t / t_ref)^n

with n ~ 0.15-0.25 and A of millivolts-to-tens-of-millivolts per year of
stress at elevated temperature.

Aging is the sharpest argument for the paper's *self*-calibration: a
factory trim captures the die at time zero and goes stale as the TSRO's
own thresholds drift, while the self-calibrated sensor re-extracts the
process point at every power-on — and its V_t read-out doubles as an
in-field aging monitor (prognostics).  Experiment R-E2 measures exactly
this.

Key physical detail: BTI shifts thresholds *without* the fast-die/slow-die
mobility coupling of manufacturing variation, so aged dies sit off the
foundry correlation line.  The model preserves this, which costs the sensor
a small honest residual on heavily aged dies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.device.technology import ProcessCorner
from repro.variation.montecarlo import DieSample


@dataclass(frozen=True)
class BtiAgingModel:
    """Empirical BTI drift model.

    Attributes:
        a_nbti: PMOS threshold-magnitude drift after ``reference_years`` of
            full-duty stress at the reference temperature, volts.
        a_pbti: NMOS threshold drift under the same conditions, volts
            (smaller: PBTI is mild in 65 nm poly/SiON).
        time_exponent: Power-law exponent ``n``.
        temp_accel_per_k: Fractional drift increase per kelvin above the
            reference stress temperature (Arrhenius linearised).
        reference_years: Stress time that yields ``a_nbti``/``a_pbti``.
        reference_temp_c: Stress temperature of the reference drift.
    """

    a_nbti: float = 0.018
    a_pbti: float = 0.006
    time_exponent: float = 0.2
    temp_accel_per_k: float = 0.02
    reference_years: float = 1.0
    reference_temp_c: float = 85.0

    def __post_init__(self) -> None:
        if self.a_nbti < 0.0 or self.a_pbti < 0.0:
            raise ValueError("drift amplitudes must be non-negative")
        if not 0.0 < self.time_exponent < 1.0:
            raise ValueError("time_exponent must lie in (0, 1)")
        if self.reference_years <= 0.0:
            raise ValueError("reference_years must be positive")

    def vt_drift(
        self, years: float, duty: float = 1.0, stress_temp_c: float = None
    ) -> Tuple[float, float]:
        """Threshold drift ``(dV_tn, dV_tp)`` in volts after ``years``.

        Args:
            years: Operating time in years.
            duty: Fraction of time under bias stress (0..1); BTI relaxation
                gives the classic square-root duty dependence.
            stress_temp_c: Average junction temperature during stress;
                ``None`` uses the reference temperature.
        """
        if years < 0.0:
            raise ValueError("years must be non-negative")
        if not 0.0 <= duty <= 1.0:
            raise ValueError("duty must lie in [0, 1]")
        if years == 0.0 or duty == 0.0:
            return 0.0, 0.0
        stress_temp_c = (
            self.reference_temp_c if stress_temp_c is None else stress_temp_c
        )
        accel = 1.0 + self.temp_accel_per_k * (stress_temp_c - self.reference_temp_c)
        accel = max(0.1, accel)
        scale = duty**0.5 * accel * (years / self.reference_years) ** self.time_exponent
        return self.a_pbti * scale, self.a_nbti * scale

    def age_die(
        self,
        die: DieSample,
        years: float,
        duty: float = 1.0,
        stress_temp_c: float = None,
    ) -> DieSample:
        """Return a copy of ``die`` with BTI drift folded into its corner.

        The drift adds to the global threshold shift but deliberately does
        NOT touch the mobility scales: aging breaks the manufacturing
        threshold-mobility correlation (see module docstring).
        """
        dvtn_drift, dvtp_drift = self.vt_drift(years, duty, stress_temp_c)
        aged_corner = ProcessCorner(
            name=f"{die.corner.name}+BTI{years:g}y",
            dvtn=die.corner.dvtn + dvtn_drift,
            dvtp=die.corner.dvtp + dvtp_drift,
            mun_scale=die.corner.mun_scale,
            mup_scale=die.corner.mup_scale,
        )
        return replace(die, corner=aged_corner)
