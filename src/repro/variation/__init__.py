"""Statistical process-variation substrate.

Models the three classic layers of CMOS variability the paper's sensor must
survive:

* **die-to-die** — global threshold/mobility shifts, either the five named
  corners or continuous Monte-Carlo samples (``corners``/``montecarlo``);
* **within-die systematic** — smooth, spatially correlated threshold fields
  plus deterministic gradients across a die (``spatial``);
* **random mismatch** — Pelgrom-law per-device offsets (``mismatch``).
"""

from repro.variation.aging import BtiAgingModel
from repro.variation.corners import monte_carlo_corner, sample_global_shifts
from repro.variation.mismatch import mismatch_sigma_vt, sample_mismatch
from repro.variation.montecarlo import DieSample, sample_dies
from repro.variation.spatial import SpatialField, make_spatial_field
from repro.variation.wafer import WaferDie, WaferModel, fit_radial_signature, sample_wafer

__all__ = [
    "BtiAgingModel",
    "DieSample",
    "SpatialField",
    "WaferDie",
    "WaferModel",
    "fit_radial_signature",
    "make_spatial_field",
    "sample_wafer",
    "mismatch_sigma_vt",
    "monte_carlo_corner",
    "sample_dies",
    "sample_global_shifts",
    "sample_mismatch",
]
