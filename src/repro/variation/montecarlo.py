"""Seeded Monte-Carlo die populations.

A :class:`DieSample` bundles everything a sensor instance needs to know about
the die it sits on: the global process shift, the within-die systematic
fields for NMOS and PMOS, and an independent RNG stream for the per-device
mismatch of its circuits.  Populations are generated from a single seed so
every experiment in the reproduction is exactly repeatable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.device.technology import ProcessCorner, Technology
from repro.variation.corners import monte_carlo_corner, sample_global_shifts
from repro.variation.spatial import SpatialField, make_spatial_field


@dataclass(frozen=True)
class DieSample:
    """One Monte-Carlo die instance.

    Attributes:
        index: Position in the population (stable across runs for a seed).
        corner: Continuous global corner of this die.
        field_n: Within-die NMOS threshold-offset field.
        field_p: Within-die PMOS threshold-offset field.
        mismatch_seed: Seed for the die's local-mismatch RNG stream.
    """

    index: int
    corner: ProcessCorner
    field_n: SpatialField
    field_p: SpatialField
    mismatch_seed: int

    def vt_shifts_at(self, x: float, y: float) -> Tuple[float, float]:
        """Total systematic (dV_tn, dV_tp) at die location ``(x, y)``.

        Combines the die-global shift with the within-die fields; random
        mismatch is *not* included (circuits draw it per device).
        """
        return (
            self.corner.dvtn + self.field_n.at(x, y),
            self.corner.dvtp + self.field_p.at(x, y),
        )

    def mismatch_rng(self) -> np.random.Generator:
        """A fresh, reproducible RNG stream for this die's local mismatch."""
        return np.random.default_rng(self.mismatch_seed)


def sample_dies(
    technology: Technology,
    count: int,
    seed: int = 2012,
    sigma_vtn_global: float = 0.020,
    sigma_vtp_global: float = 0.020,
    sigma_within_die: float = 0.004,
    die_width: float = 5e-3,
    die_height: float = 5e-3,
    gradient: float = 0.003,
    rng: Optional[np.random.Generator] = None,
) -> List[DieSample]:
    """Generate a reproducible Monte-Carlo population of dies.

    Args:
        technology: Technology the dies are manufactured in (reserved for
            future technology-dependent variation scaling; sigmas are explicit
            parameters today).
        count: Number of dies.
        seed: Master seed; ignored if ``rng`` is given.
        sigma_vtn_global: Die-to-die NMOS threshold sigma, volts.
        sigma_vtp_global: Die-to-die PMOS threshold sigma, volts.
        sigma_within_die: Within-die correlated field sigma, volts.
        die_width: Die x extent in metres (5 x 5 mm matches the group's
            fabricated neural-sensing chips).
        die_height: Die y extent in metres.
        gradient: Peak-to-peak deterministic within-die tilt, volts.
        rng: Optional externally-owned generator.

    Returns:
        ``count`` :class:`DieSample` instances.
    """
    del technology  # sigmas are explicit; kept for API stability
    if rng is None:
        rng = np.random.default_rng(seed)
    shifts = sample_global_shifts(
        rng, count, sigma_vtn=sigma_vtn_global, sigma_vtp=sigma_vtp_global
    )
    dies = []
    for index in range(count):
        dvtn, dvtp = shifts[index]
        corner = monte_carlo_corner(float(dvtn), float(dvtp), label=f"MC{index}")
        field_n = make_spatial_field(
            rng,
            die_width=die_width,
            die_height=die_height,
            sigma=sigma_within_die,
            gradient=gradient,
        )
        field_p = make_spatial_field(
            rng,
            die_width=die_width,
            die_height=die_height,
            sigma=sigma_within_die,
            gradient=gradient,
        )
        mismatch_seed = int(rng.integers(0, 2**31 - 1))
        dies.append(
            DieSample(
                index=index,
                corner=corner,
                field_n=field_n,
                field_p=field_p,
                mismatch_seed=mismatch_seed,
            )
        )
    return dies
