"""Within-die systematic variation: spatially correlated threshold fields.

A die's threshold landscape has two systematic components on top of random
mismatch:

* a smooth **correlated random field** (lens aberrations, CMP, RTA
  non-uniformity) with a correlation length of a few millimetres, and
* a deterministic **gradient** across the reticle.

The correlated field is synthesised by low-pass filtering white Gaussian
noise with a kernel matched to the correlation length and re-normalising to
the target sigma — the standard construction for quadtree-style variation
models, without the quadtree bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage


@dataclass(frozen=True)
class SpatialField:
    """A sampled threshold-offset field over a die.

    Attributes:
        die_width: Die extent along x in metres.
        die_height: Die extent along y in metres.
        values: 2-D offset grid in volts, indexed ``[iy, ix]``.
    """

    die_width: float
    die_height: float
    values: np.ndarray

    def at(self, x: float, y: float) -> float:
        """Bilinear sample of the field at die coordinates ``(x, y)``.

        Coordinates outside the die are clamped to the die boundary, which is
        the physically sensible behaviour for sensors placed at the edge.
        """
        ny, nx = self.values.shape
        fx = np.clip(x / self.die_width, 0.0, 1.0) * (nx - 1)
        fy = np.clip(y / self.die_height, 0.0, 1.0) * (ny - 1)
        ix0, iy0 = int(fx), int(fy)
        ix1, iy1 = min(ix0 + 1, nx - 1), min(iy0 + 1, ny - 1)
        tx, ty = fx - ix0, fy - iy0
        top = (1 - tx) * self.values[iy0, ix0] + tx * self.values[iy0, ix1]
        bottom = (1 - tx) * self.values[iy1, ix0] + tx * self.values[iy1, ix1]
        return float((1 - ty) * top + ty * bottom)

    @property
    def sigma(self) -> float:
        """Standard deviation of the sampled field in volts."""
        return float(np.std(self.values))


def make_spatial_field(
    rng: np.random.Generator,
    die_width: float = 5e-3,
    die_height: float = 5e-3,
    sigma: float = 0.005,
    correlation_length: float = 1.5e-3,
    gradient: float = 0.0,
    resolution: int = 64,
) -> SpatialField:
    """Synthesize a correlated within-die threshold-offset field.

    Args:
        rng: Seeded generator; the field is fully reproducible.
        die_width: Die x extent in metres.
        die_height: Die y extent in metres.
        sigma: Target standard deviation of the correlated component, volts.
        correlation_length: 1/e correlation distance in metres.
        gradient: Peak-to-peak deterministic tilt across the diagonal, volts.
        resolution: Grid points per axis.

    Returns:
        A :class:`SpatialField` whose correlated part has standard deviation
        ``sigma`` (up to sampling noise) and the requested tilt added.
    """
    if sigma < 0.0 or gradient < 0.0:
        raise ValueError("sigma and gradient must be non-negative")
    if resolution < 4:
        raise ValueError("resolution must be at least 4")
    if correlation_length <= 0.0:
        raise ValueError("correlation_length must be positive")

    noise = rng.normal(0.0, 1.0, size=(resolution, resolution))
    # Kernel sigma in pixels; the Gaussian filter imposes a correlation
    # length of roughly sqrt(2) * kernel sigma on the output.
    pixel = max(die_width, die_height) / resolution
    kernel_sigma = correlation_length / (np.sqrt(2.0) * pixel)
    smooth = ndimage.gaussian_filter(noise, kernel_sigma, mode="nearest")
    spread = float(np.std(smooth))
    if spread > 0.0 and sigma > 0.0:
        smooth *= sigma / spread
    else:
        smooth = np.zeros_like(smooth)

    if gradient > 0.0:
        xs = np.linspace(-0.5, 0.5, resolution)
        tilt = gradient * (xs[None, :] + xs[:, None]) / 2.0
        smooth = smooth + tilt

    return SpatialField(die_width=die_width, die_height=die_height, values=smooth)
