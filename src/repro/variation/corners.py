"""Die-to-die (global) variation: continuous corner sampling.

The named corners of :mod:`repro.device.technology` are the sign-off
extremes; real die populations fill the ellipse between them.  This module
draws continuous global shifts with the empirically standard structure:

* ``dV_tn`` and ``dV_tp`` are jointly Gaussian with positive correlation
  (shared gate-stack and lithography causes) but far from unity (doping is
  independent), and
* mobility moves opposite to threshold (a fast corner is fast for both
  reasons).
"""

from __future__ import annotations

import numpy as np

from repro.device.technology import ProcessCorner

# Correlation between NMOS and PMOS global threshold shifts.
_VTN_VTP_CORRELATION = 0.6
# Fractional mobility change per volt of threshold shift (opposite sign).
_MU_PER_VT = -1.5


def sample_global_shifts(
    rng: np.random.Generator,
    count: int,
    sigma_vtn: float = 0.020,
    sigma_vtp: float = 0.020,
    correlation: float = _VTN_VTP_CORRELATION,
) -> np.ndarray:
    """Draw ``count`` correlated (dV_tn, dV_tp) pairs.

    Returns an array of shape ``(count, 2)`` in volts.  Default sigmas put the
    named +/-40 mV corners at the 2-sigma ellipse, the usual foundry
    convention.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if not -1.0 < correlation < 1.0:
        raise ValueError("correlation must lie strictly inside (-1, 1)")
    cov = np.array(
        [
            [sigma_vtn**2, correlation * sigma_vtn * sigma_vtp],
            [correlation * sigma_vtn * sigma_vtp, sigma_vtp**2],
        ]
    )
    return rng.multivariate_normal(np.zeros(2), cov, size=count)


def mobility_scales(dvtn, dvtp):
    """Threshold-to-mobility coupling, array-safe.

    Maps global (dV_tn, dV_tp) shifts to (mun_scale, mup_scale) with the
    standard negative coupling, accepting scalars or broadcastable arrays so
    the batch engine can evaluate whole populations in one call.
    """
    mun = np.maximum(0.5, 1.0 + _MU_PER_VT * np.asarray(dvtn, dtype=float))
    mup = np.maximum(0.5, 1.0 + _MU_PER_VT * np.asarray(dvtp, dtype=float))
    return mun, mup


def monte_carlo_corner(dvtn: float, dvtp: float, label: str = "MC") -> ProcessCorner:
    """Build a continuous-process ``ProcessCorner`` from global V_t shifts.

    Mobility tracks threshold with the standard negative coupling so that a
    low-threshold die is also a high-mobility die.
    """
    mun, mup = mobility_scales(dvtn, dvtp)
    return ProcessCorner(
        name=label,
        dvtn=dvtn,
        dvtp=dvtp,
        mun_scale=float(mun),
        mup_scale=float(mup),
    )
