"""Wafer-level variation and wafer cartography from on-chip monitors.

Die-to-die variation is not white across a wafer: thermal and deposition
gradients during processing imprint a smooth, predominantly **radial**
signature (classically a bowl — centre dies fast, edge dies slow, or the
reverse).  This module models a wafer as that radial systematic plus the
usual die-level randomness, and supports the killer application of the
paper's V_t read-out: **wafer cartography without wafer probing** — every
packaged part reports its own process point, and the population
reconstructs the wafer signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.device.technology import Technology
from repro.variation.corners import monte_carlo_corner
from repro.variation.montecarlo import DieSample, sample_dies


@dataclass(frozen=True)
class WaferDie:
    """One die with its wafer coordinates.

    Attributes:
        die: The die sample (its corner already folds in the radial
            systematic plus the die's own random component).
        row: Die row on the wafer grid.
        col: Die column on the wafer grid.
        radius_fraction: Distance from wafer centre, 0..1.
    """

    die: DieSample
    row: int
    col: int
    radius_fraction: float


@dataclass(frozen=True)
class WaferModel:
    """Wafer-level systematic-variation parameters.

    Attributes:
        bowl_dvtn: Centre-to-edge NMOS threshold bowl amplitude, volts
            (positive = edge dies slower).
        bowl_dvtp: PMOS bowl amplitude, volts.
        random_sigma: Residual die-level random sigma, volts.
    """

    bowl_dvtn: float = 0.018
    bowl_dvtp: float = 0.015
    random_sigma: float = 0.008

    def systematic(self, radius_fraction: float) -> Tuple[float, float]:
        """The radial systematic (dV_tn, dV_tp) at a wafer radius."""
        if not 0.0 <= radius_fraction <= 1.0:
            raise ValueError("radius_fraction must lie in [0, 1]")
        bowl = radius_fraction**2
        return self.bowl_dvtn * bowl, self.bowl_dvtp * bowl


def sample_wafer(
    technology: Technology,
    grid_diameter: int = 15,
    seed: int = 2012,
    model: Optional[WaferModel] = None,
) -> List[WaferDie]:
    """Sample a circular wafer of dies with radial systematic variation.

    Args:
        technology: Technology the wafer is processed in.
        grid_diameter: Dies across the wafer diameter.
        seed: Master seed.
        model: Wafer systematic model; ``None`` uses defaults.

    Returns:
        The dies inside the circular wafer mask, row-major.
    """
    if grid_diameter < 3:
        raise ValueError("grid_diameter must be >= 3")
    model = model if model is not None else WaferModel()

    # Base dies carry mismatch seeds and within-die fields; their global
    # corners are replaced by wafer-position-driven ones below.
    base = sample_dies(
        technology,
        grid_diameter * grid_diameter,
        seed=seed,
        sigma_vtn_global=model.random_sigma,
        sigma_vtp_global=model.random_sigma,
    )

    centre = (grid_diameter - 1) / 2.0
    wafer: List[WaferDie] = []
    index = 0
    for row in range(grid_diameter):
        for col in range(grid_diameter):
            radius = np.hypot(row - centre, col - centre) / centre
            if radius > 1.0:
                continue
            die = base[index]
            index += 1
            sys_n, sys_p = model.systematic(float(radius))
            corner = monte_carlo_corner(
                die.corner.dvtn + sys_n,
                die.corner.dvtp + sys_p,
                label=f"W{row}:{col}",
            )
            wafer.append(
                WaferDie(
                    die=DieSample(
                        index=die.index,
                        corner=corner,
                        field_n=die.field_n,
                        field_p=die.field_p,
                        mismatch_seed=die.mismatch_seed,
                    ),
                    row=row,
                    col=col,
                    radius_fraction=float(radius),
                )
            )
    return wafer


def fit_radial_signature(
    readings: Dict[Tuple[int, int], float], grid_diameter: int
) -> Tuple[float, float]:
    """Fit ``dVt = offset + bowl * r^2`` to per-die sensor read-outs.

    Args:
        readings: (row, col) -> extracted threshold shift, volts.
        grid_diameter: Wafer grid diameter the coordinates refer to.

    Returns:
        ``(offset, bowl_amplitude)`` in volts — the reconstructed wafer
        signature, comparable against the generating :class:`WaferModel`.
    """
    if len(readings) < 3:
        raise ValueError("need at least three dies to fit the signature")
    centre = (grid_diameter - 1) / 2.0
    r2 = []
    values = []
    for (row, col), value in readings.items():
        radius = np.hypot(row - centre, col - centre) / centre
        r2.append(radius**2)
        values.append(value)
    design = np.vstack([np.ones(len(r2)), np.asarray(r2)]).T
    coeffs, *_ = np.linalg.lstsq(design, np.asarray(values), rcond=None)
    return float(coeffs[0]), float(coeffs[1])
