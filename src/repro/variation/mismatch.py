"""Random (local) mismatch via the Pelgrom law.

Adjacent nominally identical transistors differ by a zero-mean random
threshold offset whose standard deviation shrinks with gate area:

    sigma(dV_t) = A_vt / sqrt(W L)

This is the dominant noise source limiting how finely the sensor can resolve
the die's process point, so the reproduction models it explicitly rather than
as a lumped error term.
"""

from __future__ import annotations

import numpy as np

from repro.device.mosfet import MosfetParams


def mismatch_sigma_vt(params: MosfetParams, avt: float) -> float:
    """Pelgrom sigma of the threshold offset for one device, in volts."""
    if avt <= 0.0:
        raise ValueError("Pelgrom coefficient must be positive")
    return avt / np.sqrt(params.width * params.length)


def sample_mismatch(
    rng: np.random.Generator, params: MosfetParams, avt: float, count: int = 1
) -> np.ndarray:
    """Draw ``count`` independent threshold offsets for identical devices."""
    if count < 1:
        raise ValueError("count must be >= 1")
    sigma = mismatch_sigma_vt(params, avt)
    return rng.normal(0.0, sigma, size=count)


def stage_average_mismatch(
    rng: np.random.Generator, params: MosfetParams, avt: float, stages: int
) -> float:
    """Effective threshold offset of a ring oscillator with ``stages`` stages.

    A ring averages the per-stage delays, so the frequency-visible offset is
    the mean of the per-stage offsets — its sigma shrinks by ``sqrt(stages)``.
    This averaging is why RO-based process monitors can resolve millivolt-class
    global shifts despite ~10 mV device mismatch.
    """
    if stages < 1:
        raise ValueError("stages must be >= 1")
    return float(np.mean(sample_mismatch(rng, params, avt, count=stages)))
