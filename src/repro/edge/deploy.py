"""One deployment, one config: the :class:`EdgeDeployment` builder.

Before this module, the three config layers each re-declared the same
knobs — :class:`~repro.edge.server.EdgeConfig` (deployment),
:class:`~repro.edge.worker.WorkerConfig` (one shard process) and
:class:`~repro.serve.service.ServeConfig` (the embedded service) all
carried batch policies, admission bounds and cache knobs, and the
derivation logic lived as methods *on the derived types*.  Drift was a
constructor away.

:class:`EdgeDeployment` is now the single source of truth: declare the
deployment once, derive every layer from it::

    deployment = EdgeDeployment(shards=4, tiers=8, root_seed=2012)
    edge_config = deployment.edge_config()       # the server front
    workers = deployment.worker_configs()        # one per shard
    service = deployment.serve_config(0)         # shard 0's embedded service

The old derivation constructors (``EdgeConfig.worker_configs()``,
``WorkerConfig.serve_config()``) survive as ``DeprecationWarning`` shims
delegating here; internal code never calls them (CI runs the suite with
``-W error::DeprecationWarning``).

The elastic :class:`~repro.edge.supervisor.ShardPool` uses
:meth:`EdgeDeployment.worker_config` as its shard factory: a shard
joining at scale-up time (index the deployment has never seen) gets its
config minted from the same root seed as the boot-time shards, which is
what makes warm spares and respawns bit-identical.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.edge import protocol
from repro.edge.sharding import ShardSpec
from repro.edge.stream import StreamPolicy
from repro.edge.worker import WorkerConfig
from repro.network.dtm import DtmPolicy
from repro.serve.admission import AdmissionPolicy
from repro.serve.scheduler import BatchPolicy
from repro.serve.service import ServeConfig


def serve_config_for(worker: WorkerConfig) -> ServeConfig:
    """The embedded-service config of one shard worker (canonical).

    This is the derivation ``WorkerConfig.serve_config()`` used to own;
    the shim there now delegates here.
    """
    return ServeConfig(
        tiers=worker.tiers,
        seed=worker.seed,
        batch=worker.batch,
        admission=worker.admission,
        cache_capacity=worker.cache_capacity,
        cache_ttl_s=worker.cache_ttl_s,
        deterministic=worker.deterministic,
        workers=1,
    )


@dataclass(frozen=True)
class EdgeDeployment:
    """Everything one elastic edge deployment needs, declared once.

    Field names (and defaults) deliberately match
    :class:`~repro.edge.server.EdgeConfig` — the server config is one of
    this builder's *products* (:meth:`edge_config`), and
    :meth:`from_edge_config` round-trips the other way for callers that
    still hold an ``EdgeConfig``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 4
    tiers: int = 8
    root_seed: int = 2012
    deterministic: bool = True
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    cache_capacity: int = 2048
    cache_ttl_s: float = 5.0
    window: int = 64
    ipc_batch: int = 16
    ipc_linger_s: float = 0.0005
    max_line_bytes: int = protocol.MAX_LINE_BYTES
    idle_timeout_s: float = 300.0
    status_cache_s: float = 0.0
    stall_ms: float = 0.0
    start_method: str = "spawn"
    health_interval_s: float = 1.0
    health_timeout_s: float = 5.0
    respawn_backoff_s: float = 0.05
    ring_replicas: int = 64
    shard_fault_plans: Optional[Mapping[int, object]] = None
    access_log: Optional[str] = None
    enable_chaos: bool = False
    admin_token: Optional[str] = None
    warm_spares: int = 0
    autoscale: Optional[object] = None  # AutoscalePolicy; object keeps import lazy
    stream: StreamPolicy = field(default_factory=StreamPolicy)
    dtm: DtmPolicy = field(default_factory=DtmPolicy)
    dtm_deadline_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.warm_spares < 0:
            raise ValueError("warm_spares must be >= 0")

    # ------------------------------------------------------------- derivations

    def edge_config(self):
        """The server-front config of this deployment."""
        from repro.edge.server import EdgeConfig

        values = {
            f.name: getattr(self, f.name) for f in dataclasses.fields(EdgeConfig)
        }
        return EdgeConfig(**values)

    @classmethod
    def from_edge_config(cls, config) -> "EdgeDeployment":
        """The deployment a given :class:`EdgeConfig` describes."""
        values = {f.name: getattr(config, f.name) for f in dataclasses.fields(config)}
        return cls(**values)

    def worker_config(self, index: int) -> WorkerConfig:
        """The config of shard ``index`` — any index, not just boot-time ones.

        Seeds derive from ``root_seed`` through
        :func:`~repro.edge.sharding.shard_seed`, so a shard joining at
        scale-up (or a warm spare pre-spawned for a future index) is
        bit-identical to the same index booted on day one.
        """
        spec = ShardSpec.of(index, self.root_seed, self.tiers)
        plans = dict(self.shard_fault_plans or {})
        return WorkerConfig(
            shard_index=spec.index,
            seed=spec.seed,
            tiers=spec.tiers,
            deterministic=self.deterministic,
            batch=self.batch,
            admission=self.admission,
            cache_capacity=self.cache_capacity,
            cache_ttl_s=self.cache_ttl_s,
            fault_plan=plans.get(spec.index),
            access_log=self.access_log,
            enable_chaos=self.enable_chaos,
        )

    def worker_configs(self) -> Tuple[WorkerConfig, ...]:
        """One :class:`WorkerConfig` per boot-time shard."""
        return tuple(self.worker_config(i) for i in range(self.shards))

    def serve_config(self, index: int = 0) -> ServeConfig:
        """The embedded-service config shard ``index`` runs."""
        return serve_config_for(self.worker_config(index))
