"""Shard identity: per-shard seeds and stack-id-consistent routing.

Each backend worker process owns one seeded die stack.  Two properties
make the pool reproducible and operable:

* **Seeds derive, never collide.**  :func:`shard_seed` expands the
  deployment's root seed through a :class:`numpy.random.SeedSequence`
  spawn key, so shard ``i`` builds the same die population in any
  process, on any host, at any respawn — the foundation of the golden
  cross-process determinism test.
* **Routing is consistent, not modular.**  :class:`HashRing` places
  every shard at ``replicas`` SHA-256 points on a ring and routes a
  stack id to the next point clockwise.  Growing the pool from N to N+1
  shards remaps only ~1/(N+1) of the stack-id space (a plain
  ``stack_id % shards`` would remap almost all of it), so clients keep
  their cache- and fault-locality across resizes.
* **Topologies are versioned.**  A ring carries a ``generation``
  number; the elastic :class:`~repro.edge.supervisor.ShardPool`
  republishes a fresh ring (generation + 1) on every reshard, so
  late-arriving work and mid-reshard respawns can tell a stale topology
  from the live one.  :func:`remapped_fraction` measures how much of
  the stack-id space two rings disagree on — the number the reshard
  benchmark gates against the ~1/(N+1) theory.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


def shard_seed(root_seed: int, shard_index: int) -> int:
    """The die-population seed of shard ``shard_index``.

    Deterministic in ``(root_seed, shard_index)`` and stable across
    processes and platforms (SeedSequence is specified arithmetic, not
    ``hash()``).
    """
    if shard_index < 0:
        raise ValueError("shard_index must be >= 0")
    sequence = np.random.SeedSequence(entropy=root_seed, spawn_key=(shard_index,))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def _ring_point(token: str) -> int:
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent stack-id → shard routing over one frozen shard set.

    A ring never mutates; elastic topologies are a *sequence* of rings,
    each stamped with the ``generation`` it was published at.
    """

    def __init__(
        self, shards: Sequence[int], replicas: int = 64, generation: int = 0
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shards = tuple(shards)
        self.replicas = replicas
        self.generation = generation
        points: List[int] = []
        owners: Dict[int, int] = {}
        for shard in self.shards:
            for replica in range(replicas):
                point = _ring_point(f"shard-{shard}:{replica}")
                # SHA-256 collisions on 64-bit prefixes are not a design
                # concern; first writer keeps the point.
                if point not in owners:
                    owners[point] = shard
                    points.append(point)
        points.sort()
        self._points = points
        self._owners = owners

    def route(self, stack_id: int) -> int:
        """The shard owning ``stack_id``."""
        point = _ring_point(f"stack:{stack_id}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def successor(self, shards: Sequence[int], replicas: int = 64) -> "HashRing":
        """A new ring over ``shards`` published at the next generation."""
        return HashRing(shards, replicas=replicas, generation=self.generation + 1)


# Sample size of :func:`remapped_fraction`; also the probe set the
# supervisor counts ``edge.remapped_keys`` over at each republish.
REMAP_SAMPLE = 1024


def remapped_fraction(
    old: HashRing, new: HashRing, sample: int = REMAP_SAMPLE
) -> float:
    """Fraction of a stack-id probe set whose owner differs between rings.

    Consistent hashing promises growing N → N+1 moves ~1/(N+1) of the
    key space; this measures the actual figure over ``sample`` probe
    stack ids (deterministic — the probe ids are just 0..sample-1).
    """
    if sample < 1:
        raise ValueError("sample must be >= 1")
    moved = sum(
        1 for stack_id in range(sample) if old.route(stack_id) != new.route(stack_id)
    )
    return moved / sample


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity, as the supervisor and loadgen both build it."""

    index: int
    seed: int
    tiers: int

    @classmethod
    def of(cls, index: int, root_seed: int, tiers: int) -> "ShardSpec":
        return cls(index=index, seed=shard_seed(root_seed, index), tiers=tiers)
