"""The asyncio network edge: NDJSON, binary frames + HTTP on one port.

:class:`EdgeServer` is the remote front door of a sharded sensor-readout
deployment.  One listening socket speaks three protocols — the first
byte of a connection decides:

* ``{`` opens the newline-delimited JSON protocol of
  :mod:`repro.edge.protocol` (pipelined ops, answers matched by id);
* ``0xB7`` (the frame magic) opens the length-prefixed binary frame
  protocol — same operations and error vocabulary, struct-packed
  fixed-field bodies for the hot ``read`` path, negotiated simply by
  the client sending its first frame;
* anything else is parsed as HTTP/1.1 with **keep-alive** (the 1.1
  default: many exchanges per connection, pipelining honoured), a
  minimal adapter with routes ``POST /v1/read``, ``GET /healthz``
  (shard supervision state), ``GET /metrics`` (the process-wide
  telemetry registry in Prometheus text format), plus the control
  plane: ``GET /v1/admin/status`` and ``POST /v1/admin/<verb>``
  (``scale``, ``drain_shard``, ``restart``), token-gated when the
  deployment configures ``admin_token``.

Connections idle longer than ``idle_timeout_s`` are closed; the
``/healthz`` and ``/metrics`` bodies can be cached for
``status_cache_s`` so aggressive scrapers don't make the edge render
its registry per probe.

Requests route through the :class:`~repro.edge.supervisor.ShardPool`;
every failure a client can see is typed (`docs/edge.md` lists the
vocabulary) and the connection always survives a bad line — malformed
JSON, unknown ops and oversized payloads are answered, not punished
with a reset.

Threading model: the asyncio loop owns sockets and framing; the pool
owns processes and pipes; ``asyncio.wrap_future`` bridges the two.  A
blocking helper (:class:`EdgeServerThread`) runs the whole server on a
background thread for the sync CLI, tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import telemetry
from repro.edge import protocol
from repro.edge.autoscale import Autoscaler
from repro.edge.deploy import EdgeDeployment
from repro.edge.protocol import EdgeError
from repro.edge.stream import StreamPlane, StreamPolicy, clamp_queue, format_sse
from repro.edge.supervisor import ShardPool, ShardState
from repro.edge.worker import WorkerConfig
from repro.dtm.table import DtmTable
from repro.network.dtm import DtmPolicy
from repro.telemetry.rollup import ROLLUP_TIERS
from repro.serve.admission import AdmissionPolicy
from repro.serve.scheduler import BatchPolicy

_CONNECTIONS = telemetry.counter(
    "edge.connections", unit="connections", help="TCP connections accepted"
)
_REQUESTS = telemetry.counter(
    "edge.requests", unit="requests", help="NDJSON read operations received"
)
_HTTP_REQUESTS = telemetry.counter(
    "edge.http_requests", unit="requests", help="HTTP requests received"
)
_ERRORS = telemetry.counter(
    "edge.errors", unit="responses", help="Typed error responses sent to clients"
)
_REQUEST_MS = telemetry.histogram(
    "edge.request_ms", unit="ms", help="Edge-side end-to-end read latency"
)
_BYTES_IN = telemetry.counter(
    "edge.bytes_in", unit="bytes", help="Bytes read from client connections"
)
_BYTES_OUT = telemetry.counter(
    "edge.bytes_out", unit="bytes", help="Bytes written to client connections"
)
_CPU_US = telemetry.histogram(
    "edge.cpu_us_per_request",
    unit="us",
    help="Edge CPU time spent decoding + encoding one read exchange "
    "(wire cost only; shard time excluded)",
)

_HTTP_METHODS = (b"GET", b"POST", b"PUT", b"HEAD", b"DELETE", b"OPTIONS", b"PATCH")


@dataclass(frozen=True)
class EdgeConfig:
    """One edge deployment, fully specified.

    Attributes:
        host / port: Listening address (port ``0`` picks an ephemeral
            port, exposed as :attr:`EdgeServer.port` once started).
        shards: Backend worker-process count.
        tiers: Stack height of every shard's die stack.
        root_seed: Deployment seed; shard ``i`` serves the stack seeded
            with ``shard_seed(root_seed, i)``.
        deterministic: Serve deterministic conversions (the default and
            the mode the cross-process determinism guarantee covers).
        batch / admission: Per-shard embedded-service policies.
        cache_capacity / cache_ttl_s: Per-shard result-cache knobs.
        window: Bound on requests outstanding per shard at the edge —
            the remote face of admission control.
        ipc_batch: Routed reads coalesced per worker pipe message (1
            restores one-message-per-read IPC).
        ipc_linger_s: Longest a part-filled IPC batch waits to fill
            before flushing to the worker pipe.
        max_line_bytes: NDJSON line / binary frame body / HTTP body
            bound; beyond it the client gets a typed ``oversized``
            error.
        idle_timeout_s: Close connections that stay silent this long
            between reads (``0`` disables the timeout).
        status_cache_s: Serve ``/healthz`` and ``/metrics`` from a
            cached render no older than this (``0``, the default,
            renders fresh per request).
        stall_ms: Artificial delay added to every read answer (fault
            injection for fleet/hedging tests — a deterministic "slow
            host"; ``0`` disables it).
        start_method: Multiprocessing start method of the workers
            (``spawn`` is the safe default; ``fork`` starts faster).
        health_interval_s / health_timeout_s / respawn_backoff_s:
            Supervision cadence.
        shard_fault_plans: Optional ``shard index -> FaultPlan`` map;
            each named shard activates its plan at startup (per-shard
            fault targeting).
        access_log: Optional per-shard access-log path; use the
            ``{pid}`` / ``{instance}`` placeholders to keep one file per
            worker process.
        enable_chaos: Let clients stage worker crashes/hangs (tests).
        admin_token: Shared secret gating the ``admin.*`` control-plane
            ops (``None``, the default, leaves them open — suitable for
            loopback deployments only).
        warm_spares: Pre-seeded standby workers kept outside the ring so
            scale-up is a ring-join, not a cold spawn.
        autoscale: Optional
            :class:`~repro.edge.autoscale.AutoscalePolicy`; when set,
            the server runs an :class:`~repro.edge.autoscale.Autoscaler`
            loop against its own pool.
        stream: The streaming plane's knobs (sampler cadence, heartbeat,
            subscriber queue bound, rollup windows, detector thresholds);
            see :class:`~repro.edge.stream.StreamPolicy`.
        dtm: Hysteresis policy of the ``dtm.*`` control plane's decision
            table (see :class:`~repro.network.dtm.DtmPolicy`); the live
            controller's policy must match it for exact mirroring.
        dtm_deadline_ms: Decision-latency budget; decisions reporting a
            larger measured latency are counted as deadline misses.
    """

    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 4
    tiers: int = 8
    root_seed: int = 2012
    deterministic: bool = True
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    cache_capacity: int = 2048
    cache_ttl_s: float = 5.0
    window: int = 64
    ipc_batch: int = 16
    ipc_linger_s: float = 0.0005
    max_line_bytes: int = protocol.MAX_LINE_BYTES
    idle_timeout_s: float = 300.0
    status_cache_s: float = 0.0
    stall_ms: float = 0.0
    start_method: str = "spawn"
    health_interval_s: float = 1.0
    health_timeout_s: float = 5.0
    respawn_backoff_s: float = 0.05
    ring_replicas: int = 64
    shard_fault_plans: Optional[Mapping[int, object]] = None
    access_log: Optional[str] = None
    enable_chaos: bool = False
    admin_token: Optional[str] = None
    warm_spares: int = 0
    autoscale: Optional[object] = None  # AutoscalePolicy; object keeps it picklable-lazy
    stream: StreamPolicy = field(default_factory=StreamPolicy)
    dtm: DtmPolicy = field(default_factory=DtmPolicy)
    dtm_deadline_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.dtm_deadline_ms <= 0.0:
            raise ValueError("dtm_deadline_ms must be positive")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.warm_spares < 0:
            raise ValueError("warm_spares must be >= 0")
        if self.max_line_bytes < 1024:
            raise ValueError("max_line_bytes must be >= 1024")
        if self.ipc_batch < 1:
            raise ValueError("ipc_batch must be >= 1")
        if self.ipc_linger_s < 0.0:
            raise ValueError("ipc_linger_s must be non-negative")
        if self.idle_timeout_s < 0.0:
            raise ValueError("idle_timeout_s must be non-negative")
        if self.status_cache_s < 0.0:
            raise ValueError("status_cache_s must be non-negative")
        if self.stall_ms < 0.0:
            raise ValueError("stall_ms must be non-negative")

    def worker_configs(self) -> Tuple[WorkerConfig, ...]:
        """Deprecated: build configs through :class:`EdgeDeployment`.

        The derivation moved to
        :meth:`repro.edge.deploy.EdgeDeployment.worker_configs`; this
        shim delegates and warns.
        """
        import warnings

        warnings.warn(
            "EdgeConfig.worker_configs() is deprecated; use "
            "EdgeDeployment.from_edge_config(config).worker_configs()",
            DeprecationWarning,
            stacklevel=2,
        )
        return EdgeDeployment.from_edge_config(self).worker_configs()


def metrics_text(
    registry=None,
    labelled: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> str:
    """The telemetry registry in Prometheus exposition text format.

    Dotted metric names become underscore-joined with a ``repro_``
    prefix; histograms export ``_count`` / ``_sum`` plus min/max gauges.

    ``labelled`` maps a dotted metric name to ``{label_expr: value}``
    children (e.g. ``{"edge.shards": {'state="healthy"': 4}}``); each
    child renders as ``name{label_expr} value`` grouped under its
    family, right after the aggregate sample.  The registry itself
    stays label-free — labelled breakdowns are computed at render time
    from live state (shard lifecycle, fleet membership).
    """
    if registry is None:
        registry = telemetry.get().registry
    labelled = labelled or {}
    lines = []
    for record in registry.snapshot():
        name = "repro_" + record["name"].replace(".", "_")
        kind = record["kind"]
        if kind == "histogram":
            lines.append(f"# TYPE {name} summary")
            lines.append(f"{name}_count {record['count']}")
            lines.append(f"{name}_sum {record['sum']}")
            for stat in ("min", "max", "mean", "p50", "p90"):
                if record.get(stat) is not None:
                    lines.append(f"{name}_{stat} {record[stat]}")
            continue
        prom_kind = "counter" if kind == "counter" else "gauge"
        value = record["value"]
        lines.append(f"# TYPE {name} {prom_kind}")
        lines.append(f"{name} {0 if value is None else value}")
        for label_expr, child_value in labelled.get(record["name"], {}).items():
            lines.append(f"{name}{{{label_expr}}} {child_value}")
    return "\n".join(lines) + "\n"


class EdgeServer:
    """The asyncio TCP/HTTP edge over a supervised shard pool."""

    def __init__(self, config: EdgeConfig = EdgeConfig()) -> None:
        self.config = config
        deployment = EdgeDeployment.from_edge_config(config)
        self.pool = ShardPool(
            deployment.worker_configs(),
            window=config.window,
            start_method=config.start_method,
            health_interval_s=config.health_interval_s,
            health_timeout_s=config.health_timeout_s,
            respawn_backoff_s=config.respawn_backoff_s,
            ring_replicas=config.ring_replicas,
            ipc_batch=config.ipc_batch,
            ipc_linger_s=config.ipc_linger_s,
            config_factory=deployment.worker_config,
            warm_spares=config.warm_spares,
        )
        self.autoscaler: Optional[Autoscaler] = None
        if config.autoscale is not None:
            self.autoscaler = Autoscaler(self.pool, config.autoscale)
        self.plane = StreamPlane(config.stream)
        self.dtm = DtmTable(config.dtm, deadline_ms=config.dtm_deadline_ms)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._closing = False
        self.port: Optional[int] = None
        # target -> (rendered_at, status, content_type, blob); see
        # EdgeConfig.status_cache_s.
        self._status_cache: Dict[str, Tuple[float, int, str, bytes]] = {}

    # -------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Spawn the shard pool and open the listening socket."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.pool.start)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.plane.start(loop)
        if self.autoscaler is not None:
            self.autoscaler.start()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self, drain: bool = True, connection_grace_s: float = 5.0) -> None:
        """Graceful drain: stop accepting, finish in-flight, stop shards.

        Connections still open after ``connection_grace_s`` (an idle
        client holding its socket) are cancelled — drain waits for
        *work*, not for clients to hang up.
        """
        self._closing = True
        await self.plane.stop()
        if self.autoscaler is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.autoscaler.stop)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            done, stragglers = await asyncio.wait(
                list(self._connections),
                timeout=connection_grace_s if drain else 0.1,
            )
            for task in stragglers:
                task.cancel()
            if stragglers:
                await asyncio.gather(*stragglers, return_exceptions=True)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: self.pool.close(drain=drain))

    # ------------------------------------------------------------ connections

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        _CONNECTIONS.inc()
        write_lock = asyncio.Lock()
        inflight: set = set()
        # subscription id -> (Subscription, pusher task); the connection
        # owns its pushers and tears them down on any exit path.
        pushers: Dict[int, Tuple[Any, asyncio.Task]] = {}
        try:
            first = await self._read_some(reader)
            if first:
                buffer = bytearray(first)
                if buffer.startswith(b"{"):
                    await self._serve_ndjson(
                        reader, writer, buffer, write_lock, inflight, pushers
                    )
                elif buffer[0] == protocol.BINARY_MAGIC:
                    await self._serve_binary(
                        reader, writer, buffer, write_lock, inflight, pushers
                    )
                else:
                    await self._serve_http(reader, writer, buffer)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away; in-flight work still completes below
        except asyncio.CancelledError:
            pass  # drain grace expired; fall through to cleanup
        finally:
            self._connections.discard(task)
            try:
                for sub, pusher in pushers.values():
                    self.plane.hub.unsubscribe(sub)
                    pusher.cancel()
                if pushers:
                    await asyncio.gather(
                        *(p for _, p in pushers.values()), return_exceptions=True
                    )
                if inflight:
                    await asyncio.gather(*list(inflight), return_exceptions=True)
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_some(self, reader) -> bytes:
        """One chunk from the client, idle-timeout bounded; ``b''`` closes."""
        if self.config.idle_timeout_s > 0.0:
            try:
                chunk = await asyncio.wait_for(
                    reader.read(65536), timeout=self.config.idle_timeout_s
                )
            except asyncio.TimeoutError:
                return b""
        else:
            chunk = await reader.read(65536)
        if chunk:
            _BYTES_IN.inc(len(chunk))
        return chunk

    async def _send(
        self,
        writer,
        write_lock,
        payload: Mapping[str, Any],
        encode: Callable[[Mapping[str, Any]], bytes] = protocol.encode,
    ) -> None:
        await self._send_raw(writer, write_lock, encode(payload))

    async def _send_raw(self, writer, write_lock, blob: bytes) -> None:
        async with write_lock:
            writer.write(blob)
            _BYTES_OUT.inc(len(blob))
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass  # reader hung up mid-answer; nothing left to say

    # ------------------------------------------------------------------ NDJSON

    async def _serve_ndjson(
        self, reader, writer, buffer: bytearray, write_lock, inflight, pushers
    ) -> None:
        """The newline-delimited JSON face: one op per line, pipelined."""
        dropping = False
        while True:
            newline = buffer.find(b"\n")
            if newline < 0:
                if dropping:
                    buffer.clear()
                elif len(buffer) > self.config.max_line_bytes:
                    await self._send(
                        writer,
                        write_lock,
                        protocol.error_payload(
                            None,
                            EdgeError(
                                protocol.OVERSIZED,
                                f"line exceeds {self.config.max_line_bytes} bytes",
                            ),
                        ),
                    )
                    _ERRORS.inc()
                    dropping = True
                    buffer.clear()
                chunk = await self._read_some(reader)
                if not chunk:
                    return
                buffer += chunk
                continue
            line = bytes(buffer[:newline])
            del buffer[: newline + 1]
            if dropping:
                dropping = False  # the runt tail of an oversized line
                continue
            if not line.strip():
                continue
            if len(line) > self.config.max_line_bytes:
                await self._send(
                    writer,
                    write_lock,
                    protocol.error_payload(
                        None,
                        EdgeError(
                            protocol.OVERSIZED,
                            f"line exceeds {self.config.max_line_bytes} bytes",
                        ),
                    ),
                )
                _ERRORS.inc()
                continue
            await self._handle_line(line, writer, write_lock, inflight, pushers)

    async def _handle_line(
        self, line, writer, write_lock, inflight, pushers
    ) -> None:
        """Decode one NDJSON line and dispatch its operation."""
        started = time.perf_counter()
        try:
            payload = protocol.decode_line(line)
        except EdgeError as error:
            _ERRORS.inc()
            await self._send(writer, write_lock, protocol.error_payload(None, error))
            return
        decode_s = time.perf_counter() - started
        await self._dispatch(
            payload, writer, write_lock, inflight, pushers, protocol.encode, decode_s
        )

    # ----------------------------------------------------------- binary frames

    async def _serve_binary(
        self, reader, writer, buffer: bytearray, write_lock, inflight, pushers
    ) -> None:
        """The length-prefixed binary-frame face: same ops, packed bodies.

        Framing errors follow the NDJSON answer-don't-reset discipline
        wherever a resync point exists: an unsupported version or an
        oversized frame is answered typed and its declared body skipped;
        bad magic means framing is lost, so the error is answered and
        the connection closed.  A header truncated at EOF closes
        quietly.
        """
        encode = protocol.encode_frame
        while True:
            while len(buffer) < protocol.FRAME_HEADER_SIZE:
                chunk = await self._read_some(reader)
                if not chunk:
                    return  # clean close (or truncated header) at EOF
                buffer += chunk
            header = bytes(buffer[: protocol.FRAME_HEADER_SIZE])
            started = time.perf_counter()
            try:
                _version, kind, length = protocol.decode_frame_header(header)
            except EdgeError as error:
                _ERRORS.inc()
                await self._send(
                    writer, write_lock, protocol.error_payload(None, error), encode
                )
                if error.code == protocol.MALFORMED:
                    return  # bad magic: no resync point in the stream
                # Unsupported version: the header layout (and so the
                # length field) still holds — skip the body and survive.
                length = protocol.FRAME_HEADER.unpack(header)[3]
                del buffer[: protocol.FRAME_HEADER_SIZE]
                if not await self._skip_bytes(reader, buffer, length):
                    return
                continue
            decode_s = time.perf_counter() - started
            del buffer[: protocol.FRAME_HEADER_SIZE]
            if length > self.config.max_line_bytes:
                _ERRORS.inc()
                await self._send(
                    writer,
                    write_lock,
                    protocol.error_payload(
                        None,
                        EdgeError(
                            protocol.OVERSIZED,
                            f"frame body of {length} bytes exceeds "
                            f"{self.config.max_line_bytes}",
                        ),
                    ),
                    encode,
                )
                if not await self._skip_bytes(reader, buffer, length):
                    return
                continue
            while len(buffer) < length:
                chunk = await self._read_some(reader)
                if not chunk:
                    return  # body truncated at EOF
                buffer += chunk
            body = bytes(buffer[:length])
            del buffer[:length]
            started = time.perf_counter()
            try:
                payload = protocol.decode_frame_body(kind, body)
            except EdgeError as error:
                _ERRORS.inc()
                await self._send(
                    writer, write_lock, protocol.error_payload(None, error), encode
                )
                continue
            decode_s += time.perf_counter() - started
            await self._dispatch(
                payload, writer, write_lock, inflight, pushers, encode, decode_s
            )

    async def _skip_bytes(self, reader, buffer: bytearray, count: int) -> bool:
        """Discard ``count`` declared body bytes; ``False`` means EOF."""
        while count > 0:
            if buffer:
                taken = min(count, len(buffer))
                del buffer[:taken]
                count -= taken
                continue
            chunk = await self._read_some(reader)
            if not chunk:
                return False
            buffer += chunk
        return True

    # --------------------------------------------------------------- dispatch

    async def _dispatch(
        self, payload, writer, write_lock, inflight, pushers, encode, decode_s: float
    ) -> None:
        """Route one decoded operation; answers with ``encode``'s format."""
        request_id = payload.get("id")
        op = payload.get("op", "read")
        if op == "read":
            task = asyncio.ensure_future(
                self._answer_read(
                    payload, request_id, writer, write_lock, encode, decode_s
                )
            )
            inflight.add(task)
            task.add_done_callback(inflight.discard)
            return
        if op == "ping":
            await self._send(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": True,
                    "pong": "edge",
                    "draining": self._closing,
                    "shards": self.pool.health(),
                },
                encode,
            )
            return
        if op == "stats":
            loop = asyncio.get_running_loop()
            stats = await loop.run_in_executor(None, self.pool.shard_stats)
            await self._send(
                writer,
                write_lock,
                {"id": request_id, "ok": True, "shards": stats},
                encode,
            )
            return
        if op in protocol.ADMIN_OPS:
            # Reshapes drain shards and spawn processes — seconds, not
            # microseconds; they run off the connection loop so data ops
            # keep flowing on this and every other connection.
            task = asyncio.ensure_future(
                self._answer_admin(payload, request_id, writer, write_lock, encode)
            )
            inflight.add(task)
            task.add_done_callback(inflight.discard)
            return
        if op in protocol.STREAM_OPS:
            await self._answer_stream(
                payload, request_id, writer, write_lock, pushers, encode
            )
            return
        if op in protocol.DTM_OPS:
            # Pure in-memory table ops — microseconds, answered inline.
            await self._send(
                writer, write_lock, self._dtm_execute(payload, request_id), encode
            )
            return
        if op == "chaos" and self.config.enable_chaos:
            try:
                self.pool.chaos(int(payload.get("shard", 0)), payload.get("kind", "exit"))
                await self._send(
                    writer, write_lock, {"id": request_id, "ok": True}, encode
                )
            except (EdgeError, ValueError, KeyError) as error:
                await self._send(
                    writer,
                    write_lock,
                    protocol.error_payload(
                        request_id, EdgeError(protocol.INTERNAL, str(error))
                    ),
                    encode,
                )
            return
        _ERRORS.inc()
        await self._send(
            writer,
            write_lock,
            protocol.error_payload(
                request_id,
                EdgeError(
                    protocol.UNKNOWN_OP,
                    f"unknown op {op!r}; known: read, ping, stats, "
                    + ", ".join(
                        sorted(
                            protocol.ADMIN_OPS
                            | protocol.STREAM_OPS
                            | protocol.DTM_OPS
                        )
                    ),
                ),
            ),
            encode,
        )

    # ------------------------------------------------------------ admin plane

    async def _answer_admin(
        self, payload, request_id, writer, write_lock, encode
    ) -> None:
        answer = await self._admin_execute(payload, request_id)
        await self._send(writer, write_lock, answer, encode)

    async def _admin_execute(self, payload, request_id) -> Dict[str, Any]:
        """Run one ``admin.*`` op; returns the (typed) answer payload.

        Wire-agnostic: the NDJSON/binary dispatcher and the HTTP adapter
        both funnel here, so every verb behaves identically on every
        wire.  Token failures answer ``invalid`` (the vocabulary stays
        closed) and are terminal, not retryable.
        """
        op = payload.get("op")
        token = self.config.admin_token
        if token is not None and payload.get("token") != token:
            _ERRORS.inc()
            return protocol.error_payload(
                request_id,
                EdgeError(
                    protocol.INVALID,
                    "admin ops need a valid 'token' on this deployment",
                    retryable=False,
                ),
            )
        loop = asyncio.get_running_loop()
        try:
            if op == protocol.ADMIN_STATUS:
                return {"id": request_id, "ok": True, "status": self._admin_status()}
            if op == protocol.ADMIN_SCALE:
                shards = payload.get("shards")
                if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
                    raise EdgeError(
                        protocol.INVALID,
                        "admin.scale needs a positive integer 'shards'",
                    )
                indices = await loop.run_in_executor(
                    None, lambda: self.pool.scale_to(shards)
                )
                return {
                    "id": request_id,
                    "ok": True,
                    "shards": indices,
                    "generation": self.pool.generation,
                }
            if op == protocol.ADMIN_DRAIN_SHARD:
                shard = payload.get("shard")
                if not isinstance(shard, int) or isinstance(shard, bool):
                    raise EdgeError(
                        protocol.INVALID,
                        "admin.drain_shard needs an integer 'shard'",
                    )
                await loop.run_in_executor(
                    None, lambda: self.pool.remove_shard(shard)
                )
                return {
                    "id": request_id,
                    "ok": True,
                    "shards": self.pool.shard_indices,
                    "generation": self.pool.generation,
                }
            if op == protocol.ADMIN_RESTART:
                shard = payload.get("shard")
                if shard is None:
                    restarted = await loop.run_in_executor(
                        None, self.pool.rolling_restart
                    )
                elif isinstance(shard, int) and not isinstance(shard, bool):
                    await loop.run_in_executor(
                        None, lambda: self.pool.restart_shard(shard)
                    )
                    restarted = [shard]
                else:
                    raise EdgeError(
                        protocol.INVALID,
                        "admin.restart 'shard' must be an integer when present",
                    )
                return {
                    "id": request_id,
                    "ok": True,
                    "restarted": restarted,
                    "generation": self.pool.generation,
                }
            raise EdgeError(protocol.UNKNOWN_OP, f"unknown admin op {op!r}")
        except EdgeError as error:
            _ERRORS.inc()
            return protocol.error_payload(request_id, error)
        except ValueError as error:
            _ERRORS.inc()
            return protocol.error_payload(
                request_id, EdgeError(protocol.INVALID, str(error))
            )

    def _admin_status(self) -> Dict[str, Any]:
        status = self.pool.status()
        status["draining"] = self._closing
        status["autoscaler"] = (
            None if self.autoscaler is None else self.autoscaler.status()
        )
        status["stream"] = self.plane.status()
        status["dtm"] = self.dtm.status()
        return status

    # -------------------------------------------------------------- dtm plane

    def _dtm_execute(self, payload, request_id) -> Dict[str, Any]:
        """Run one ``dtm.*`` op; returns the (typed) answer payload.

        Wire-agnostic like :meth:`_admin_execute`: the NDJSON/binary
        dispatcher and the HTTP adapter both funnel here.  Decision verbs
        are idempotent by round (see :class:`~repro.dtm.table.DtmTable`),
        so at-least-once delivery is safe on every wire.
        """
        op = payload.get("op")
        try:
            if op == protocol.DTM_STATUS:
                return {"id": request_id, "ok": True, "status": self.dtm.status()}
            if op in (protocol.DTM_THROTTLE, protocol.DTM_RELEASE):
                stack = payload.get("stack")
                tier = payload.get("tier")
                round_index = payload.get("round")
                for name, value in (("stack", stack), ("tier", tier), ("round", round_index)):
                    if not isinstance(value, int) or isinstance(value, bool):
                        raise EdgeError(
                            protocol.INVALID,
                            f"{op} needs an integer '{name}'",
                        )
                latency_ms = payload.get("latency_ms")
                if latency_ms is not None and (
                    not isinstance(latency_ms, (int, float))
                    or isinstance(latency_ms, bool)
                    or latency_ms < 0
                ):
                    raise EdgeError(
                        protocol.INVALID,
                        "latency_ms must be a non-negative number when present",
                    )
                action = op.split(".", 1)[1]
                decision = self.dtm.apply(
                    stack,
                    tier,
                    round_index,
                    action,
                    latency_ms=None if latency_ms is None else float(latency_ms),
                )
                return {
                    "id": request_id,
                    "ok": True,
                    "decision": decision.to_record(),
                }
            if op == protocol.DTM_DECISIONS:
                since = payload.get("since", 0)
                if not isinstance(since, int) or isinstance(since, bool) or since < 0:
                    raise EdgeError(
                        protocol.INVALID,
                        "dtm.decisions 'since' must be a non-negative integer",
                    )
                return {
                    "id": request_id,
                    "ok": True,
                    "decisions": self.dtm.decisions_since(since),
                }
            if op == protocol.DTM_RESET:
                return {"id": request_id, "ok": True, "seq": self.dtm.reset()}
            raise EdgeError(protocol.UNKNOWN_OP, f"unknown dtm op {op!r}")
        except EdgeError as error:
            _ERRORS.inc()
            return protocol.error_payload(request_id, error)
        except ValueError as error:
            _ERRORS.inc()
            return protocol.error_payload(
                request_id, EdgeError(protocol.INVALID, str(error))
            )

    # ----------------------------------------------------------- stream plane

    def _parse_subscribe(self, payload) -> Tuple[Any, Any, int]:
        """Validate subscribe fields -> (kinds, metrics, queue)."""
        kinds = payload.get("kinds")
        if kinds is not None and not (
            isinstance(kinds, list) and all(isinstance(k, str) for k in kinds)
        ):
            raise EdgeError(
                protocol.INVALID, "'kinds' must be a list of event kinds"
            )
        metrics = payload.get("metrics")
        if metrics is not None and not (
            isinstance(metrics, list) and all(isinstance(m, str) for m in metrics)
        ):
            raise EdgeError(
                protocol.INVALID, "'metrics' must be a list of name prefixes"
            )
        try:
            queue = clamp_queue(payload.get("queue"), self.config.stream.queue)
        except ValueError as error:
            raise EdgeError(protocol.INVALID, str(error)) from error
        return kinds, metrics, queue

    async def _answer_stream(
        self, payload, request_id, writer, write_lock, pushers, encode
    ) -> None:
        """``stream.subscribe`` / ``stream.unsubscribe`` on a data wire.

        Subscribing attaches a pusher task to this connection: event
        objects (``{"event": ..., "seq": ..., "sub": ...}`` — no ``id``
        field, so request/answer matching is unaffected) interleave with
        answers under the connection write lock; on the binary wire they
        ride JSON-body frames.  The subscription dies with the
        connection, on unsubscribe, or when its queue policy says the
        consumer is too slow (events drop, typed — never the socket).
        """
        op = payload.get("op")
        if op == protocol.STREAM_SUBSCRIBE:
            try:
                kinds, metrics, queue = self._parse_subscribe(payload)
            except EdgeError as error:
                _ERRORS.inc()
                await self._send(
                    writer, write_lock,
                    protocol.error_payload(request_id, error), encode,
                )
                return
            loop = asyncio.get_running_loop()
            flag = asyncio.Event()
            sub = self.plane.hub.subscribe(
                kinds=kinds,
                metrics=metrics,
                queue=queue,
                notify=lambda: loop.call_soon_threadsafe(flag.set),
            )
            # Ack first, then start pushing: the subscriber must see its
            # subscription id before the first event referencing it.
            await self._send(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": True,
                    "subscription": sub.id,
                    "queue": sub.maxlen,
                },
                encode,
            )
            task = asyncio.ensure_future(
                self._push_events(sub, flag, writer, write_lock, encode)
            )
            pushers[sub.id] = (sub, task)
            return
        sub_id = payload.get("subscription")
        entry = pushers.pop(sub_id, None) if isinstance(sub_id, int) else None
        if entry is None:
            _ERRORS.inc()
            await self._send(
                writer,
                write_lock,
                protocol.error_payload(
                    request_id,
                    EdgeError(
                        protocol.INVALID,
                        "stream.unsubscribe needs the integer 'subscription' "
                        "id of a live subscription on this connection",
                    ),
                ),
                encode,
            )
            return
        sub, task = entry
        self.plane.hub.unsubscribe(sub)
        task.cancel()
        await asyncio.gather(task, return_exceptions=True)
        await self._send(
            writer,
            write_lock,
            {
                "id": request_id,
                "ok": True,
                "subscription": sub.id,
                "dropped": sub.dropped,
            },
            encode,
        )

    async def _push_events(self, sub, flag, writer, write_lock, encode) -> None:
        """One subscription's pusher: drain-or-heartbeat until torn down."""
        heartbeat_s = self.config.stream.heartbeat_s
        try:
            while not (self._closing or sub.closed):
                try:
                    await asyncio.wait_for(flag.wait(), timeout=heartbeat_s)
                    flag.clear()
                except asyncio.TimeoutError:
                    await self._send(
                        writer,
                        write_lock,
                        {"event": "heartbeat", "sub": sub.id},
                        encode,
                    )
                    continue
                for event in sub.poll():
                    record = event.to_wire()
                    record["sub"] = sub.id
                    await self._send(writer, write_lock, record, encode)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self.plane.hub.unsubscribe(sub)

    async def _answer_read(
        self, payload, request_id, writer, write_lock, encode, decode_s: float
    ) -> None:
        answer = await self._route_read(payload, request_id)
        started = time.perf_counter()
        blob = encode(answer)
        _CPU_US.observe((decode_s + time.perf_counter() - started) * 1e6)
        await self._send_raw(writer, write_lock, blob)

    async def _route_read(self, payload, request_id) -> Dict[str, Any]:
        """Route one read through its shard; always returns an answer."""
        _REQUESTS.inc()
        loop = asyncio.get_running_loop()
        started = loop.time()
        if self.config.stall_ms > 0.0:
            # Injected slow-host fault: every answer sits out the stall,
            # so a hedging fleet client sees a fat per-host tail.
            await asyncio.sleep(self.config.stall_ms / 1e3)
        stack_id = payload.get("stack", 0)
        if not isinstance(stack_id, int):
            _ERRORS.inc()
            return protocol.error_payload(
                request_id,
                EdgeError(protocol.INVALID, "stack must be an integer stack id"),
            )
        wire_request = payload.get("request")
        if not isinstance(wire_request, dict):
            _ERRORS.inc()
            return protocol.error_payload(
                request_id,
                EdgeError(protocol.INVALID, "read needs a 'request' object"),
            )
        shard = self.pool.route(stack_id)
        with telemetry.span(
            "edge.request", id=request_id, stack=stack_id, shard=shard
        ) as span:
            try:
                future = self.pool.submit_read(stack_id, wire_request)
                reply = await asyncio.wrap_future(future)
            except EdgeError as error:
                _ERRORS.inc()
                span.set(error=error.code)
                return protocol.error_payload(request_id, error, shard=shard)
            _REQUEST_MS.observe((loop.time() - started) * 1e3)
            if reply.get("ok"):
                span.set(status=reply["result"]["status"])
                self.plane.ingest_read(stack_id, reply["result"], loop.time())
                return protocol.result_payload(request_id, reply["result"], shard)
            _ERRORS.inc()
            error = EdgeError.from_wire(reply.get("error", {}))
            span.set(error=error.code)
            return protocol.error_payload(request_id, error, shard=shard)

    # -------------------------------------------------------------------- HTTP

    async def _serve_http(self, reader, writer, buffer: bytearray) -> None:
        """Serve HTTP/1.1 exchanges until the connection is done.

        Keep-alive is the HTTP/1.1 default: the loop answers request
        after request on one connection (honouring ``Connection:
        close`` / ``keep-alive``, with HTTP/1.0 defaulting to close),
        and pipelined requests already buffered are answered in order.
        Unframable requests (bad request line, oversized or unreadable
        bodies) are still *answered* typed, but end the connection —
        the stream offers no safe resync point past them.
        """
        try:
            while True:
                while b"\r\n\r\n" not in buffer:
                    if len(buffer) > self.config.max_line_bytes:
                        await self._http_error(
                            writer,
                            EdgeError(protocol.OVERSIZED, "headers too large"),
                            keep_alive=False,
                        )
                        return
                    chunk = await self._read_some(reader)
                    if not chunk:
                        return
                    buffer += chunk
                _HTTP_REQUESTS.inc()
                header_blob, _, _rest = bytes(buffer).partition(b"\r\n\r\n")
                del buffer[: len(header_blob) + 4]
                request_line, *header_lines = header_blob.split(b"\r\n")
                try:
                    method, target, version = request_line.decode("latin-1").split(
                        " ", 2
                    )
                except ValueError:
                    await self._http_error(
                        writer,
                        EdgeError(protocol.MALFORMED, "bad HTTP request line"),
                        keep_alive=False,
                    )
                    return
                headers = {}
                for header_line in header_lines:
                    name, _, value = header_line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                keep_alive = version.strip().upper() != "HTTP/1.0"
                connection = headers.get("connection", "").lower()
                if connection == "close":
                    keep_alive = False
                elif connection == "keep-alive":
                    keep_alive = True
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    await self._http_error(
                        writer,
                        EdgeError(protocol.MALFORMED, "bad Content-Length"),
                        keep_alive=False,
                    )
                    return
                if length > self.config.max_line_bytes:
                    # Answered, not reset — but the unread body poisons
                    # the stream, so this exchange is the connection's
                    # last.
                    await self._http_error(
                        writer,
                        EdgeError(
                            protocol.OVERSIZED,
                            f"body exceeds {self.config.max_line_bytes} bytes",
                        ),
                        keep_alive=False,
                    )
                    return
                while len(buffer) < length:
                    chunk = await self._read_some(reader)
                    if not chunk:
                        return
                    buffer += chunk
                body = bytes(buffer[:length])
                del buffer[:length]
                consumed = await self._http_route(
                    writer, method, target, body, keep_alive, headers
                )
                if consumed or not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def _http_route(
        self,
        writer,
        method: str,
        target: str,
        body: bytes,
        keep_alive: bool,
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        if target == "/v1/admin/status" and method == "GET":
            await self._http_admin(
                writer, protocol.ADMIN_STATUS, b"", keep_alive, headers
            )
            return
        if target.startswith("/v1/admin/") and method == "POST":
            op = "admin." + target[len("/v1/admin/") :]
            if op not in protocol.ADMIN_OPS:
                _ERRORS.inc()
                await self._http_error(
                    writer,
                    EdgeError(
                        protocol.UNKNOWN_OP,
                        f"no admin route {target}; verbs: "
                        + ", ".join(
                            sorted(o.split(".", 1)[1] for o in protocol.ADMIN_OPS)
                        ),
                    ),
                    keep_alive,
                )
                return
            await self._http_admin(writer, op, body, keep_alive, headers)
            return
        if target == "/v1/dtm/status" and method == "GET":
            await self._http_dtm(writer, protocol.DTM_STATUS, b"", keep_alive)
            return
        if target.startswith("/v1/dtm/") and method == "POST":
            op = "dtm." + target[len("/v1/dtm/") :]
            if op not in protocol.DTM_OPS:
                _ERRORS.inc()
                await self._http_error(
                    writer,
                    EdgeError(
                        protocol.UNKNOWN_OP,
                        f"no dtm route {target}; verbs: "
                        + ", ".join(
                            sorted(o.split(".", 1)[1] for o in protocol.DTM_OPS)
                        ),
                    ),
                    keep_alive,
                )
                return
            await self._http_dtm(writer, op, body, keep_alive)
            return
        if method == "POST" and target == "/v1/read":
            started = time.perf_counter()
            try:
                payload = protocol.decode_line(body)
            except EdgeError as error:
                _ERRORS.inc()
                await self._http_error(writer, error, keep_alive)
                return
            decode_s = time.perf_counter() - started
            answer = await self._route_read(payload, payload.get("id"))
            started = time.perf_counter()
            blob = json.dumps(answer, separators=(",", ":")).encode("utf-8")
            _CPU_US.observe((decode_s + time.perf_counter() - started) * 1e6)
            if answer.get("ok"):
                status = 200
            else:
                status = protocol.HTTP_STATUS.get(answer["error"]["code"], 500)
            await self._http_write(
                writer, status, "application/json", blob, keep_alive
            )
            return
        if method == "GET" and target in ("/healthz", "/metrics"):
            status, content_type, blob = self._status_body(target)
            await self._http_write(writer, status, content_type, blob, keep_alive)
            return
        path = target.split("?", 1)[0]
        if method == "GET" and path == "/v1/stream":
            # The SSE response has no length; it owns the connection
            # until the stream ends, so this exchange is the last.
            await self._http_stream(writer, target, headers)
            return True
        if method == "GET" and path == "/v1/rollup":
            await self._http_rollup(writer, target, keep_alive)
            return
        _ERRORS.inc()
        await self._http_error(
            writer,
            EdgeError(
                protocol.UNKNOWN_OP,
                f"no route {method} {target}; try POST /v1/read, "
                "GET /healthz, GET /metrics, GET /v1/stream, "
                "GET /v1/rollup, GET /v1/admin/status, "
                "POST /v1/admin/<verb>, GET /v1/dtm/status, "
                "POST /v1/dtm/<verb>",
            ),
            keep_alive,
        )

    async def _http_admin(
        self,
        writer,
        op: str,
        body: bytes,
        keep_alive: bool,
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        """The HTTP face of the admin plane: same executor, typed answers.

        The token travels as an ``X-Admin-Token`` header (or a ``token``
        field in the JSON body); the answer is the wire payload of the
        equivalent NDJSON op, status-mapped through
        :data:`~repro.edge.protocol.HTTP_STATUS`.
        """
        payload: Dict[str, Any] = {}
        if body.strip():
            try:
                payload = protocol.decode_line(body)
            except EdgeError as error:
                _ERRORS.inc()
                await self._http_error(writer, error, keep_alive)
                return
        payload["op"] = op
        header_token = (headers or {}).get("x-admin-token")
        if header_token is not None and "token" not in payload:
            payload["token"] = header_token
        answer = await self._admin_execute(payload, payload.get("id"))
        if answer.get("ok"):
            status = 200
        else:
            status = protocol.HTTP_STATUS.get(answer["error"]["code"], 500)
        await self._http_respond(writer, status, answer, keep_alive)

    async def _http_dtm(
        self, writer, op: str, body: bytes, keep_alive: bool
    ) -> None:
        """The HTTP face of the dtm plane: same funnel, typed answers."""
        payload: Dict[str, Any] = {}
        if body.strip():
            try:
                payload = protocol.decode_line(body)
            except EdgeError as error:
                _ERRORS.inc()
                await self._http_error(writer, error, keep_alive)
                return
        payload["op"] = op
        answer = self._dtm_execute(payload, payload.get("id"))
        if answer.get("ok"):
            status = 200
        else:
            status = protocol.HTTP_STATUS.get(answer["error"]["code"], 500)
        await self._http_respond(writer, status, answer, keep_alive)

    async def _http_stream(
        self,
        writer,
        target: str,
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        """``GET /v1/stream`` — the SSE face of the subscription plane.

        Query parameters: ``metrics`` (comma-separated name prefixes),
        ``kinds`` (comma-separated event kinds), ``queue`` (bound),
        ``heartbeat`` (seconds), ``limit`` (end the stream after this
        many events — 0, the default, streams until either side goes
        away).  The response is ``text/event-stream`` with no
        Content-Length and ``Connection: close``: the stream *is* the
        rest of the connection.

        A reconnect carrying ``Last-Event-ID`` (the standard SSE resume
        header; our ids are the hub sequence numbers) replays retained
        events past that id from the hub's replay ring before going
        live; history that fell off the ring is announced with a typed
        ``notice`` event (``code: "gap"``) instead of being skipped
        silently.  Non-integer ids are ignored (fresh stream).
        """
        query = parse_qs(urlsplit(target).query)

        def csv(key):
            values = [v for raw in query.get(key, []) for v in raw.split(",") if v]
            return values or None

        try:
            queue_raw = query.get("queue")
            queue = clamp_queue(
                int(queue_raw[0]) if queue_raw else None, self.config.stream.queue
            )
            heartbeat_s = float(
                query.get("heartbeat", [self.config.stream.heartbeat_s])[0]
            )
            limit = int(query.get("limit", ["0"])[0])
            if heartbeat_s <= 0 or limit < 0:
                raise ValueError("heartbeat must be > 0 and limit >= 0")
        except ValueError as error:
            _ERRORS.inc()
            await self._http_error(
                writer, EdgeError(protocol.INVALID, str(error)), keep_alive=False
            )
            return
        loop = asyncio.get_running_loop()
        flag = asyncio.Event()
        sub = self.plane.hub.subscribe(
            kinds=csv("kinds"),
            metrics=csv("metrics"),
            queue=queue,
            notify=lambda: loop.call_soon_threadsafe(flag.set),
        )
        last_event_id: Optional[int] = None
        raw_last = (headers or {}).get("last-event-id", "").strip()
        if raw_last:
            try:
                last_event_id = int(raw_last)
            except ValueError:
                last_event_id = None
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        sent = 0
        replayed_max = 0
        try:
            writer.write(head)
            _BYTES_OUT.inc(len(head))
            await writer.drain()
            if last_event_id is not None:
                # Subscribe-then-replay: the subscription was registered
                # above, so anything published from here on is queued —
                # the replay covers the disconnect window and the live
                # loop drops the overlap by sequence number.
                events, gap = self.plane.hub.replay_since(
                    last_event_id, sub.matches
                )
                if gap:
                    blob = format_sse(
                        {
                            "event": "notice",
                            "sub": sub.id,
                            "code": "gap",
                            "resume": last_event_id,
                        }
                    )
                    writer.write(blob)
                    _BYTES_OUT.inc(len(blob))
                for event in events:
                    record = event.to_wire()
                    record["sub"] = sub.id
                    record["replay"] = True
                    blob = format_sse(record)
                    writer.write(blob)
                    _BYTES_OUT.inc(len(blob))
                    replayed_max = event.seq
                    sent += 1
                    if limit and sent >= limit:
                        break
                await writer.drain()
                if limit and sent >= limit:
                    return
            while not (self._closing or sub.closed):
                try:
                    await asyncio.wait_for(flag.wait(), timeout=heartbeat_s)
                    flag.clear()
                except asyncio.TimeoutError:
                    blob = format_sse({"event": "heartbeat", "sub": sub.id})
                    writer.write(blob)
                    _BYTES_OUT.inc(len(blob))
                    await writer.drain()
                    continue
                for event in sub.poll():
                    if event.seq <= replayed_max:
                        continue  # already sent during the resume replay
                    record = event.to_wire()
                    record["sub"] = sub.id
                    blob = format_sse(record)
                    writer.write(blob)
                    _BYTES_OUT.inc(len(blob))
                    sent += 1
                    if limit and sent >= limit:
                        break
                await writer.drain()
                if limit and sent >= limit:
                    return
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # subscriber went away; the finally drops the subscription
        except asyncio.CancelledError:
            pass
        finally:
            self.plane.hub.unsubscribe(sub)

    async def _http_rollup(self, writer, target: str, keep_alive: bool) -> None:
        """``GET /v1/rollup`` — sealed time-series windows as JSON.

        Query parameters: ``metric`` (comma-separated exact names;
        default all series), ``last`` (newest n windows per series) and
        ``tier`` (``fine`` — the default — or ``coarse``, the
        downsampled long-retention ring).
        """
        query = parse_qs(urlsplit(target).query)
        names = [
            name for raw in query.get("metric", []) for name in raw.split(",") if name
        ] or None
        try:
            last_raw = query.get("last")
            last = int(last_raw[0]) if last_raw else None
            if last is not None and last < 1:
                raise ValueError("last must be >= 1")
            tier_raw = query.get("tier")
            tier = tier_raw[0] if tier_raw else "fine"
            if tier not in ROLLUP_TIERS:
                raise ValueError(
                    f"tier must be one of {ROLLUP_TIERS}, not {tier!r}"
                )
        except ValueError as error:
            _ERRORS.inc()
            await self._http_error(
                writer, EdgeError(protocol.INVALID, str(error)), keep_alive
            )
            return
        body = self.plane.rollup_snapshot(names=names, last=last, tier=tier)
        await self._http_respond(writer, 200, body, keep_alive)

    def _status_body(self, target: str) -> Tuple[int, str, bytes]:
        """Render (or re-serve) a status route, cached ``status_cache_s``."""
        cached = self._status_cache.get(target)
        now = time.monotonic()
        if cached is not None and now - cached[0] < self.config.status_cache_s:
            return cached[1], cached[2], cached[3]
        if target == "/healthz":
            shards = self.pool.health()
            all_healthy = all(s["state"] == "healthy" for s in shards)
            status = 200 if all_healthy else 503
            content_type = "application/json"
            blob = json.dumps(
                {
                    "status": "ok" if all_healthy else "degraded",
                    "draining": self._closing,
                    "shards": shards,
                },
                separators=(",", ":"),
            ).encode("utf-8")
        else:
            status = 200
            content_type = "text/plain; version=0.0.4"
            # Per-state shard breakdown, every lifecycle state present
            # (zeroes included) so scrapers see a stable label set and a
            # fleet health check can tell draining from quarantined.
            by_state = {state.value: 0 for state in ShardState}
            for entry in self.pool.health():
                by_state[entry["state"]] = by_state.get(entry["state"], 0) + 1
            labelled = {
                "edge.shards": {
                    f'state="{state}"': count for state, count in by_state.items()
                }
            }
            blob = metrics_text(labelled=labelled).encode("utf-8")
        if self.config.status_cache_s > 0.0:
            self._status_cache[target] = (now, status, content_type, blob)
        return status, content_type, blob

    async def _http_error(
        self, writer, error: EdgeError, keep_alive: bool
    ) -> None:
        await self._http_respond(
            writer,
            protocol.HTTP_STATUS.get(error.code, 500),
            protocol.error_payload(None, error),
            keep_alive,
        )

    async def _http_respond(
        self, writer, status: int, payload: Mapping[str, Any], keep_alive: bool
    ) -> None:
        blob = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        await self._http_write(writer, status, "application/json", blob, keep_alive)

    async def _http_write(
        self, writer, status: int, content_type: str, blob: bytes, keep_alive: bool
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  413: "Payload Too Large", 500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(blob)}\r\n"
        )
        if status == 503:
            head += "Retry-After: 1\r\n"
        head += (
            "Connection: keep-alive\r\n\r\n"
            if keep_alive
            else "Connection: close\r\n\r\n"
        )
        data = head.encode("latin-1") + blob
        writer.write(data)
        _BYTES_OUT.inc(len(data))
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class EdgeServerThread:
    """A running :class:`EdgeServer` on a background event loop.

    The bridge between the asyncio server and synchronous callers (CLI,
    tests, benchmarks)::

        with EdgeServerThread(EdgeConfig(shards=2, port=0)) as edge:
            client = EdgeClient(edge.host, edge.port)
            ...

    ``start()`` blocks until the pool is probed and the socket is bound;
    ``stop()`` drains gracefully.
    """

    def __init__(self, config: EdgeConfig = EdgeConfig()) -> None:
        self.config = config
        self.server: Optional[EdgeServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        if self.server is None or self.server.port is None:
            raise RuntimeError("edge server is not running")
        return self.server.port

    def start(self, timeout: float = 120.0) -> "EdgeServerThread":
        self._thread = threading.Thread(
            target=self._run, name="edge-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("edge server did not start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        server = EdgeServer(self.config)

        async def boot():
            try:
                await server.start()
                self.server = server
            except BaseException as error:  # noqa: BLE001 - reported to starter
                self._startup_error = error
            finally:
                self._started.set()

        loop.run_until_complete(boot())
        if self._startup_error is None:
            try:
                loop.run_forever()
            finally:
                loop.close()
        else:
            loop.close()

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        if self._loop is None or self.server is None:
            return
        done = threading.Event()

        def shutdown():
            task = asyncio.ensure_future(self.server.close(drain=drain))
            task.add_done_callback(lambda _t: (done.set(), self._loop.stop()))

        self._loop.call_soon_threadsafe(shutdown)
        done.wait(timeout)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        self._loop = None

    def __enter__(self) -> "EdgeServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)
