"""The asyncio network edge: NDJSON + minimal HTTP over one TCP port.

:class:`EdgeServer` is the remote front door of a sharded sensor-readout
deployment.  One listening socket speaks both protocols — the first byte
of a connection decides:

* ``{`` opens the newline-delimited JSON protocol of
  :mod:`repro.edge.protocol` (pipelined ops, answers matched by id);
* anything else is parsed as HTTP/1.1, a minimal adapter with three
  routes: ``POST /v1/read`` (one read per request/response),
  ``GET /healthz`` (shard supervision state) and ``GET /metrics``
  (the process-wide telemetry registry in Prometheus text format).

Requests route through the :class:`~repro.edge.supervisor.ShardPool`;
every failure a client can see is typed (`docs/edge.md` lists the
vocabulary) and the connection always survives a bad line — malformed
JSON, unknown ops and oversized payloads are answered, not punished
with a reset.

Threading model: the asyncio loop owns sockets and framing; the pool
owns processes and pipes; ``asyncio.wrap_future`` bridges the two.  A
blocking helper (:class:`EdgeServerThread`) runs the whole server on a
background thread for the sync CLI, tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import telemetry
from repro.edge import protocol
from repro.edge.protocol import EdgeError
from repro.edge.sharding import ShardSpec
from repro.edge.supervisor import ShardPool
from repro.edge.worker import WorkerConfig
from repro.serve.admission import AdmissionPolicy
from repro.serve.scheduler import BatchPolicy

_CONNECTIONS = telemetry.counter(
    "edge.connections", unit="connections", help="TCP connections accepted"
)
_REQUESTS = telemetry.counter(
    "edge.requests", unit="requests", help="NDJSON read operations received"
)
_HTTP_REQUESTS = telemetry.counter(
    "edge.http_requests", unit="requests", help="HTTP requests received"
)
_ERRORS = telemetry.counter(
    "edge.errors", unit="responses", help="Typed error responses sent to clients"
)
_REQUEST_MS = telemetry.histogram(
    "edge.request_ms", unit="ms", help="Edge-side end-to-end read latency"
)

_HTTP_METHODS = (b"GET", b"POST", b"PUT", b"HEAD", b"DELETE", b"OPTIONS", b"PATCH")


@dataclass(frozen=True)
class EdgeConfig:
    """One edge deployment, fully specified.

    Attributes:
        host / port: Listening address (port ``0`` picks an ephemeral
            port, exposed as :attr:`EdgeServer.port` once started).
        shards: Backend worker-process count.
        tiers: Stack height of every shard's die stack.
        root_seed: Deployment seed; shard ``i`` serves the stack seeded
            with ``shard_seed(root_seed, i)``.
        deterministic: Serve deterministic conversions (the default and
            the mode the cross-process determinism guarantee covers).
        batch / admission: Per-shard embedded-service policies.
        cache_capacity / cache_ttl_s: Per-shard result-cache knobs.
        window: Bound on requests outstanding per shard at the edge —
            the remote face of admission control.
        max_line_bytes: NDJSON line / HTTP body bound; beyond it the
            client gets a typed ``oversized`` error.
        start_method: Multiprocessing start method of the workers
            (``spawn`` is the safe default; ``fork`` starts faster).
        health_interval_s / health_timeout_s / respawn_backoff_s:
            Supervision cadence.
        shard_fault_plans: Optional ``shard index -> FaultPlan`` map;
            each named shard activates its plan at startup (per-shard
            fault targeting).
        access_log: Optional per-shard access-log path; use the
            ``{pid}`` / ``{instance}`` placeholders to keep one file per
            worker process.
        enable_chaos: Let clients stage worker crashes/hangs (tests).
    """

    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 4
    tiers: int = 8
    root_seed: int = 2012
    deterministic: bool = True
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    cache_capacity: int = 2048
    cache_ttl_s: float = 5.0
    window: int = 64
    max_line_bytes: int = protocol.MAX_LINE_BYTES
    start_method: str = "spawn"
    health_interval_s: float = 1.0
    health_timeout_s: float = 5.0
    respawn_backoff_s: float = 0.05
    ring_replicas: int = 64
    shard_fault_plans: Optional[Mapping[int, object]] = None
    access_log: Optional[str] = None
    enable_chaos: bool = False

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.max_line_bytes < 1024:
            raise ValueError("max_line_bytes must be >= 1024")

    def worker_configs(self) -> Tuple[WorkerConfig, ...]:
        """One :class:`WorkerConfig` per shard, seeds derived."""
        plans = dict(self.shard_fault_plans or {})
        return tuple(
            WorkerConfig(
                shard_index=spec.index,
                seed=spec.seed,
                tiers=spec.tiers,
                deterministic=self.deterministic,
                batch=self.batch,
                admission=self.admission,
                cache_capacity=self.cache_capacity,
                cache_ttl_s=self.cache_ttl_s,
                fault_plan=plans.get(spec.index),
                access_log=self.access_log,
                enable_chaos=self.enable_chaos,
            )
            for spec in (
                ShardSpec.of(i, self.root_seed, self.tiers)
                for i in range(self.shards)
            )
        )


def metrics_text(registry=None) -> str:
    """The telemetry registry in Prometheus exposition text format.

    Dotted metric names become underscore-joined with a ``repro_``
    prefix; histograms export ``_count`` / ``_sum`` plus min/max gauges.
    """
    if registry is None:
        registry = telemetry.get().registry
    lines = []
    for record in registry.snapshot():
        name = "repro_" + record["name"].replace(".", "_")
        kind = record["kind"]
        if kind == "histogram":
            lines.append(f"# TYPE {name} summary")
            lines.append(f"{name}_count {record['count']}")
            lines.append(f"{name}_sum {record['sum']}")
            for stat in ("min", "max", "mean", "p50", "p90"):
                if record.get(stat) is not None:
                    lines.append(f"{name}_{stat} {record[stat]}")
            continue
        prom_kind = "counter" if kind == "counter" else "gauge"
        value = record["value"]
        lines.append(f"# TYPE {name} {prom_kind}")
        lines.append(f"{name} {0 if value is None else value}")
    return "\n".join(lines) + "\n"


class EdgeServer:
    """The asyncio TCP/HTTP edge over a supervised shard pool."""

    def __init__(self, config: EdgeConfig = EdgeConfig()) -> None:
        self.config = config
        self.pool = ShardPool(
            config.worker_configs(),
            window=config.window,
            start_method=config.start_method,
            health_interval_s=config.health_interval_s,
            health_timeout_s=config.health_timeout_s,
            respawn_backoff_s=config.respawn_backoff_s,
            ring_replicas=config.ring_replicas,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._closing = False
        self.port: Optional[int] = None

    # -------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Spawn the shard pool and open the listening socket."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.pool.start)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self, drain: bool = True, connection_grace_s: float = 5.0) -> None:
        """Graceful drain: stop accepting, finish in-flight, stop shards.

        Connections still open after ``connection_grace_s`` (an idle
        client holding its socket) are cancelled — drain waits for
        *work*, not for clients to hang up.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            done, stragglers = await asyncio.wait(
                list(self._connections),
                timeout=connection_grace_s if drain else 0.1,
            )
            for task in stragglers:
                task.cancel()
            if stragglers:
                await asyncio.gather(*stragglers, return_exceptions=True)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: self.pool.close(drain=drain))

    # ------------------------------------------------------------ connections

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        _CONNECTIONS.inc()
        write_lock = asyncio.Lock()
        inflight: set = set()
        try:
            buffer = bytearray()
            dropping = False
            http = None  # undecided until the first byte
            while True:
                newline = buffer.find(b"\n")
                if newline < 0:
                    if http is None and buffer:
                        http = not buffer.startswith(b"{")
                    if http:
                        await self._handle_http(reader, writer, bytes(buffer))
                        return
                    if dropping:
                        buffer.clear()
                    elif len(buffer) > self.config.max_line_bytes:
                        await self._send(
                            writer,
                            write_lock,
                            protocol.error_payload(
                                None,
                                EdgeError(
                                    protocol.OVERSIZED,
                                    f"line exceeds {self.config.max_line_bytes} bytes",
                                ),
                            ),
                        )
                        _ERRORS.inc()
                        dropping = True
                        buffer.clear()
                    chunk = await reader.read(65536)
                    if not chunk:
                        return
                    buffer += chunk
                    continue
                if http is None:
                    http = not buffer.startswith(b"{")
                    if http:
                        await self._handle_http(reader, writer, bytes(buffer))
                        return
                line = bytes(buffer[:newline])
                del buffer[: newline + 1]
                if dropping:
                    dropping = False  # the runt tail of an oversized line
                    continue
                if not line.strip():
                    continue
                if len(line) > self.config.max_line_bytes:
                    await self._send(
                        writer,
                        write_lock,
                        protocol.error_payload(
                            None,
                            EdgeError(
                                protocol.OVERSIZED,
                                f"line exceeds {self.config.max_line_bytes} bytes",
                            ),
                        ),
                    )
                    _ERRORS.inc()
                    continue
                done = await self._handle_line(line, writer, write_lock, inflight)
                if done:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away; in-flight work still completes below
        except asyncio.CancelledError:
            pass  # drain grace expired; fall through to cleanup
        finally:
            self._connections.discard(task)
            try:
                if inflight:
                    await asyncio.gather(*list(inflight), return_exceptions=True)
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(self, writer, write_lock, payload: Mapping[str, Any]) -> None:
        async with write_lock:
            writer.write(protocol.encode(payload))
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass  # reader hung up mid-answer; nothing left to say

    # ------------------------------------------------------------------ NDJSON

    async def _handle_line(self, line, writer, write_lock, inflight) -> bool:
        """Dispatch one NDJSON operation; True means: close the connection."""
        try:
            payload = protocol.decode_line(line)
        except EdgeError as error:
            _ERRORS.inc()
            await self._send(writer, write_lock, protocol.error_payload(None, error))
            return False
        request_id = payload.get("id")
        op = payload.get("op", "read")
        if op == "read":
            task = asyncio.ensure_future(
                self._answer_read(payload, request_id, writer, write_lock)
            )
            inflight.add(task)
            task.add_done_callback(inflight.discard)
            return False
        if op == "ping":
            await self._send(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": True,
                    "pong": "edge",
                    "draining": self._closing,
                    "shards": self.pool.health(),
                },
            )
            return False
        if op == "stats":
            loop = asyncio.get_running_loop()
            stats = await loop.run_in_executor(None, self.pool.shard_stats)
            await self._send(
                writer,
                write_lock,
                {"id": request_id, "ok": True, "shards": stats},
            )
            return False
        if op == "chaos" and self.config.enable_chaos:
            try:
                self.pool.chaos(int(payload.get("shard", 0)), payload.get("kind", "exit"))
                await self._send(writer, write_lock, {"id": request_id, "ok": True})
            except (EdgeError, ValueError, KeyError) as error:
                await self._send(
                    writer,
                    write_lock,
                    protocol.error_payload(
                        request_id, EdgeError(protocol.INTERNAL, str(error))
                    ),
                )
            return False
        _ERRORS.inc()
        await self._send(
            writer,
            write_lock,
            protocol.error_payload(
                request_id,
                EdgeError(
                    protocol.UNKNOWN_OP,
                    f"unknown op {op!r}; known: read, ping, stats",
                ),
            ),
        )
        return False

    async def _answer_read(self, payload, request_id, writer, write_lock) -> None:
        answer = await self._route_read(payload, request_id)
        await self._send(writer, write_lock, answer)

    async def _route_read(self, payload, request_id) -> Dict[str, Any]:
        """Route one read through its shard; always returns an answer."""
        _REQUESTS.inc()
        loop = asyncio.get_running_loop()
        started = loop.time()
        stack_id = payload.get("stack", 0)
        if not isinstance(stack_id, int):
            _ERRORS.inc()
            return protocol.error_payload(
                request_id,
                EdgeError(protocol.INVALID, "stack must be an integer stack id"),
            )
        wire_request = payload.get("request")
        if not isinstance(wire_request, dict):
            _ERRORS.inc()
            return protocol.error_payload(
                request_id,
                EdgeError(protocol.INVALID, "read needs a 'request' object"),
            )
        shard = self.pool.route(stack_id)
        with telemetry.span(
            "edge.request", id=request_id, stack=stack_id, shard=shard
        ) as span:
            try:
                future = self.pool.submit_read(stack_id, wire_request)
                reply = await asyncio.wrap_future(future)
            except EdgeError as error:
                _ERRORS.inc()
                span.set(error=error.code)
                return protocol.error_payload(request_id, error, shard=shard)
            _REQUEST_MS.observe((loop.time() - started) * 1e3)
            if reply.get("ok"):
                span.set(status=reply["result"]["status"])
                return protocol.result_payload(request_id, reply["result"], shard)
            _ERRORS.inc()
            error = EdgeError.from_wire(reply.get("error", {}))
            span.set(error=error.code)
            return protocol.error_payload(request_id, error, shard=shard)

    # -------------------------------------------------------------------- HTTP

    async def _handle_http(self, reader, writer, head: bytes) -> None:
        """Serve one HTTP/1.1 exchange, then close (Connection: close)."""
        _HTTP_REQUESTS.inc()
        try:
            data = bytearray(head)
            while b"\r\n\r\n" not in data:
                if len(data) > self.config.max_line_bytes:
                    await self._http_error(
                        writer, EdgeError(protocol.OVERSIZED, "headers too large")
                    )
                    return
                chunk = await reader.read(65536)
                if not chunk:
                    return
                data += chunk
            header_blob, _, body = data.partition(b"\r\n\r\n")
            request_line, *header_lines = header_blob.split(b"\r\n")
            try:
                method, target, _version = request_line.decode("latin-1").split(" ", 2)
            except ValueError:
                await self._http_error(
                    writer, EdgeError(protocol.MALFORMED, "bad HTTP request line")
                )
                return
            headers = {}
            for header_line in header_lines:
                name, _, value = header_line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > self.config.max_line_bytes:
                await self._http_error(
                    writer,
                    EdgeError(
                        protocol.OVERSIZED,
                        f"body exceeds {self.config.max_line_bytes} bytes",
                    ),
                )
                return
            body = bytearray(body)
            while len(body) < length:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                body += chunk
            await self._http_route(writer, method, target, bytes(body[:length]))
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def _http_route(self, writer, method: str, target: str, body: bytes) -> None:
        if method == "POST" and target == "/v1/read":
            try:
                payload = protocol.decode_line(body)
            except EdgeError as error:
                _ERRORS.inc()
                await self._http_error(writer, error)
                return
            answer = await self._route_read(payload, payload.get("id"))
            if answer.get("ok"):
                await self._http_respond(writer, 200, answer)
            else:
                code = answer["error"]["code"]
                await self._http_respond(
                    writer, protocol.HTTP_STATUS.get(code, 500), answer
                )
            return
        if method == "GET" and target == "/healthz":
            shards = self.pool.health()
            all_healthy = all(s["state"] == "healthy" for s in shards)
            await self._http_respond(
                writer,
                200 if all_healthy else 503,
                {
                    "status": "ok" if all_healthy else "degraded",
                    "draining": self._closing,
                    "shards": shards,
                },
            )
            return
        if method == "GET" and target == "/metrics":
            await self._http_respond_text(writer, 200, metrics_text())
            return
        _ERRORS.inc()
        await self._http_error(
            writer,
            EdgeError(
                protocol.UNKNOWN_OP,
                f"no route {method} {target}; try POST /v1/read, "
                "GET /healthz, GET /metrics",
            ),
        )

    async def _http_error(self, writer, error: EdgeError) -> None:
        await self._http_respond(
            writer,
            protocol.HTTP_STATUS.get(error.code, 500),
            protocol.error_payload(None, error),
        )

    async def _http_respond(self, writer, status: int, payload: Mapping[str, Any]) -> None:
        blob = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        await self._http_write(writer, status, "application/json", blob)

    async def _http_respond_text(self, writer, status: int, text: str) -> None:
        await self._http_write(
            writer, status, "text/plain; version=0.0.4", text.encode("utf-8")
        )

    async def _http_write(self, writer, status: int, content_type: str, blob: bytes) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  413: "Payload Too Large", 500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(blob)}\r\n"
        )
        if status == 503:
            head += "Retry-After: 1\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + blob)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class EdgeServerThread:
    """A running :class:`EdgeServer` on a background event loop.

    The bridge between the asyncio server and synchronous callers (CLI,
    tests, benchmarks)::

        with EdgeServerThread(EdgeConfig(shards=2, port=0)) as edge:
            client = EdgeClient(edge.host, edge.port)
            ...

    ``start()`` blocks until the pool is probed and the socket is bound;
    ``stop()`` drains gracefully.
    """

    def __init__(self, config: EdgeConfig = EdgeConfig()) -> None:
        self.config = config
        self.server: Optional[EdgeServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        if self.server is None or self.server.port is None:
            raise RuntimeError("edge server is not running")
        return self.server.port

    def start(self, timeout: float = 120.0) -> "EdgeServerThread":
        self._thread = threading.Thread(
            target=self._run, name="edge-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("edge server did not start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        server = EdgeServer(self.config)

        async def boot():
            try:
                await server.start()
                self.server = server
            except BaseException as error:  # noqa: BLE001 - reported to starter
                self._startup_error = error
            finally:
                self._started.set()

        loop.run_until_complete(boot())
        if self._startup_error is None:
            try:
                loop.run_forever()
            finally:
                loop.close()
        else:
            loop.close()

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        if self._loop is None or self.server is None:
            return
        done = threading.Event()

        def shutdown():
            task = asyncio.ensure_future(self.server.close(drain=drain))
            task.add_done_callback(lambda _t: (done.set(), self._loop.stop()))

        self._loop.call_soon_threadsafe(shutdown)
        done.wait(timeout)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        self._loop = None

    def __enter__(self) -> "EdgeServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)
