"""The edge's streaming plane: sampler, rollups and the alert detector.

:class:`StreamPlane` bundles everything the server-push surface needs,
per :class:`~repro.edge.server.EdgeServer` instance:

* a :class:`~repro.telemetry.stream.StreamHub` subscribers attach to
  (over SSE, NDJSON ``stream.subscribe`` or binary frames — the server
  owns the sockets, the plane owns the fan-out);
* a *sampler* task that, while anyone is subscribed, publishes ``metric``
  events from the process-wide registry every ``sample_s`` and feeds
  counter deltas / gauge values into the rollup table;
* a :class:`~repro.telemetry.rollup.RollupTable` fed raw hot-path
  observations (request latency, per-tier temperatures) and served over
  ``GET /v1/rollup``;
* a :class:`~repro.telemetry.runaway.RunawayDetector` ingesting every
  successful read and publishing ``alert.*`` events onto the hub.

The hot-path contract: with no subscribers, :meth:`ingest_read` costs a
handful of float ops (rollups + detector — both lock-plus-arithmetic)
and the hub check is one attribute read.  Publishing never blocks on a
consumer; slow subscribers drop (typed, counted) per
:mod:`repro.telemetry.stream`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro import telemetry
from repro.telemetry.rollup import RollupPolicy, RollupTable
from repro.telemetry.runaway import RunawayDetector, RunawayPolicy
from repro.telemetry.stream import DEFAULT_QUEUE, StreamHub

#: Queue bound ceiling a client may request per subscription.
MAX_SUBSCRIBER_QUEUE = 65536

#: Event kinds a subscription may filter on at the edge.
EVENT_KINDS = ("metric", "read", "alert", "heartbeat", "notice")


@dataclass(frozen=True)
class StreamPolicy:
    """Knobs of the edge streaming plane.

    Attributes:
        sample_s: Sampler cadence — how often ``metric`` events are
            published and counter/gauge samples are rolled up while at
            least one subscriber is attached.
        heartbeat_s: Idle push cadence: a subscriber that has seen no
            event for this long gets a ``heartbeat`` so it can tell a
            quiet stream from a dead connection.
        queue: Default per-subscriber queue bound (events); clients may
            ask for more, capped at :data:`MAX_SUBSCRIBER_QUEUE`.
        replay: Events retained in the hub's replay ring, the window an
            SSE reconnect with ``Last-Event-ID`` can resume across
            without a gap notice (``0`` disables resume).
        rollup: Window width / ring depth of the rollup table.
        detector: Early-warning thresholds (see
            :class:`~repro.telemetry.runaway.RunawayPolicy`).
    """

    sample_s: float = 0.25
    heartbeat_s: float = 5.0
    queue: int = DEFAULT_QUEUE
    replay: int = 1024
    rollup: RollupPolicy = field(default_factory=RollupPolicy)
    detector: RunawayPolicy = field(default_factory=RunawayPolicy)

    def __post_init__(self) -> None:
        if self.sample_s <= 0:
            raise ValueError(f"sample_s must be > 0, got {self.sample_s}")
        if self.heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be > 0, got {self.heartbeat_s}")
        if not 1 <= self.queue <= MAX_SUBSCRIBER_QUEUE:
            raise ValueError(
                f"queue must lie in [1, {MAX_SUBSCRIBER_QUEUE}], got {self.queue}")
        if self.replay < 0:
            raise ValueError(f"replay must be >= 0, got {self.replay}")


class StreamPlane:
    """Hub + rollups + detector + sampler behind one edge server."""

    def __init__(self, policy: Optional[StreamPolicy] = None) -> None:
        self.policy = policy if policy is not None else StreamPolicy()
        self.hub = StreamHub(replay=self.policy.replay)
        self.rollups = RollupTable(self.policy.rollup)
        self.detector = RunawayDetector(self.policy.detector, hub=self.hub)
        self._rounds: Dict[int, int] = {}
        self._counter_last: Dict[str, float] = {}
        self._sampler_task = None

    # ------------------------------------------------------------ lifecycle

    def start(self, loop) -> None:
        """Start the sampler on the server's event loop."""
        self._sampler_task = loop.create_task(self._sample_forever())

    async def stop(self) -> None:
        """Cancel the sampler and drop every subscription."""
        task = self._sampler_task
        self._sampler_task = None
        if task is not None:
            task.cancel()
            try:
                await task
            except BaseException:
                pass
        self.hub.close()

    async def _sample_forever(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.policy.sample_s)
            self.sample(loop.time())

    # ------------------------------------------------------------- ingestion

    def sample(self, t: float) -> int:
        """One sampler tick: publish metric events, roll up samples.

        Counters contribute their per-tick delta (a rate shape), gauges
        their current value; histograms are covered by the registry's
        own quantiles and by the raw hot-path rollup feeds.  Costs
        nothing beyond the rollup arithmetic when nobody subscribes.
        """
        active = self.hub.active
        published = 0
        for record in telemetry.get().registry.snapshot():
            name = record["name"]
            kind = record["kind"]
            if kind == "counter":
                value = float(record["value"])
                delta = value - self._counter_last.get(name, 0.0)
                self._counter_last[name] = value
                self.rollups.observe(name, delta, t)
            elif kind == "gauge":
                if record["value"] is None:
                    continue
                value = float(record["value"])
                self.rollups.observe(name, value, t)
            else:
                if not active:
                    continue
                self.hub.publish("metric", {
                    "name": name, "kind": kind, "count": record["count"],
                    "mean": record["mean"], "p90": record["p90"],
                })
                published += 1
                continue
            if active:
                self.hub.publish(
                    "metric", {"name": name, "kind": kind, "value": value})
                published += 1
        self.rollups.advance(t)
        return published

    def ingest_read(
        self, stack_id: int, result: Mapping[str, Any], t: float
    ) -> List[dict]:
        """Feed one successful read (wire-form result) into the plane.

        Rolls up the edge-observed latency and each tier's temperature,
        advances the stack's logical round clock, runs the detector, and
        (when subscribed) publishes a compact ``read`` event.  Returns
        any alerts that fired.
        """
        latency_ms = result.get("latency_ms")
        if isinstance(latency_ms, (int, float)):
            self.rollups.observe("read.latency_ms", float(latency_ms), t)
        temps: Dict[int, float] = {}
        for reading in result.get("readings", ()):
            tier = reading.get("tier")
            temp = reading.get("temperature_c")
            if isinstance(tier, int) and isinstance(temp, (int, float)):
                temps[tier] = float(temp)
                self.rollups.observe("read.temperature_c", float(temp), t)
        round_index = self._rounds.get(stack_id, 0)
        self._rounds[stack_id] = round_index + 1
        alerts = self.detector.observe_reading(stack_id, temps, round_index)
        if self.hub.active:
            self.hub.publish("read", {
                "stack": stack_id,
                "round": round_index,
                "temps_c": {str(tier): temps[tier] for tier in sorted(temps)},
            })
        return alerts

    # --------------------------------------------------------------- queries

    def rollup_snapshot(
        self,
        names: Optional[List[str]] = None,
        last: Optional[int] = None,
        tier: str = "fine",
    ) -> Dict[str, Any]:
        """The ``GET /v1/rollup`` body (``tier`` picks the retention ring)."""
        policy = self.policy.rollup
        coarse = tier == "coarse"
        return {
            "ok": True,
            "tier": tier,
            "window_s": policy.coarse_window_s if coarse else policy.window_s,
            "ring": policy.coarse_ring if coarse else policy.ring,
            "rollups": self.rollups.snapshot(names=names, last=last, tier=tier),
        }

    def status(self) -> Dict[str, Any]:
        """Streaming-plane numbers for admin status surfaces."""
        return {
            "subscribers": self.hub.subscribers,
            "alerts": len(self.detector.alerts),
            "rollup_series": len(self.rollups.names()),
        }


def clamp_queue(requested: Optional[int], default: int) -> int:
    """Validate a client-requested queue bound."""
    if requested is None:
        return default
    if (
        not isinstance(requested, int)
        or isinstance(requested, bool)
        or not 1 <= requested <= MAX_SUBSCRIBER_QUEUE
    ):
        raise ValueError(
            f"queue must be an integer in [1, {MAX_SUBSCRIBER_QUEUE}]")
    return requested


def format_sse(record: Mapping[str, Any]) -> bytes:
    """One event object as an SSE block (``event:`` / ``id:`` / ``data:``)."""
    kind = record.get("event", "message")
    seq = record.get("seq")
    lines = [f"event: {kind}"]
    if seq is not None:
        lines.append(f"id: {seq}")
    lines.append("data: " + json.dumps(record, separators=(",", ":")))
    return ("\n".join(lines) + "\n\n").encode("utf-8")
