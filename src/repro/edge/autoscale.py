"""Telemetry-driven elastic scaling: the :class:`Autoscaler` loop.

The autoscaler closes the loop between the metrics registry and the
elastic :class:`~repro.edge.supervisor.ShardPool`: it periodically reads

* **queue depth** — the ``edge.inflight`` gauge over the pool's
  aggregate window (how full the per-shard outstanding windows are), and
* **tail latency** — p99 of the ``edge.request_ms`` histogram,

and grows or shrinks the pool one shard at a time through
``pool.scale_to``.  Two dampers keep it from flapping:

* **hysteresis** — a signal must stay over (or under) its threshold for
  ``hysteresis`` consecutive evaluation ticks before any action;
* **cooldown** — after an action, no further action for ``cooldown_s``
  (a reshard shifts load; judging the new topology too early would
  oscillate).

Scale-up is deliberately more eager than scale-down: *either* signal
(depth or p99) being hot grows the pool, while shrinking requires the
depth signal alone to be cold — tail latency can stay noisy at low
traffic without causing a shrink/grow cycle.

The decision step (:meth:`Autoscaler.step`) is a pure-ish function of
the current signals, callable directly with an injected clock — that is
what the unit tests drive; :meth:`Autoscaler.start` merely runs it on a
daemon thread every ``interval_s``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import monotonic
from typing import Any, Dict, Optional

from repro import telemetry


@dataclass(frozen=True)
class AutoscalePolicy:
    """Knobs of the telemetry-driven scaling loop.

    Attributes:
        min_shards / max_shards: Hard bounds on the active shard count.
        interval_s: Evaluation cadence of the background loop.
        scale_up_utilisation: Grow when aggregate window utilisation
            (``edge.inflight`` / (active shards x window)) stays at or
            above this.
        scale_down_utilisation: Shrink when utilisation stays at or
            below this.
        scale_up_p99_ms: Grow when the ``edge.request_ms`` p99 stays at
            or above this (0 disables the latency signal).
        hysteresis: Consecutive hot (or cold) ticks required before an
            action.
        cooldown_s: Quiet period after any scale action.
    """

    min_shards: int = 1
    max_shards: int = 8
    interval_s: float = 1.0
    scale_up_utilisation: float = 0.75
    scale_down_utilisation: float = 0.15
    scale_up_p99_ms: float = 250.0
    hysteresis: int = 3
    cooldown_s: float = 10.0

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ValueError("min_shards must be >= 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if not 0.0 <= self.scale_down_utilisation < self.scale_up_utilisation:
            raise ValueError(
                "need 0 <= scale_down_utilisation < scale_up_utilisation"
            )
        if self.hysteresis < 1:
            raise ValueError("hysteresis must be >= 1")
        if self.interval_s <= 0.0:
            raise ValueError("interval_s must be positive")
        if self.cooldown_s < 0.0:
            raise ValueError("cooldown_s must be non-negative")


class Autoscaler:
    """Drives ``pool.scale_to`` from registry signals, damped.

    ``pool`` needs three members: ``active_count`` (int property),
    ``window`` (int attribute) and ``scale_to(n)``; the elastic
    :class:`~repro.edge.supervisor.ShardPool` provides all three.
    """

    def __init__(
        self,
        pool,
        policy: AutoscalePolicy = AutoscalePolicy(),
        registry=None,
        clock=monotonic,
    ) -> None:
        self.pool = pool
        self.policy = policy
        self.registry = registry if registry is not None else telemetry.get().registry
        self.clock = clock
        self._hot_ticks = 0
        self._cold_ticks = 0
        self._last_action_at: Optional[float] = None
        self._last_action: Optional[str] = None
        self._actions = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # --------------------------------------------------------------- signals

    def signals(self) -> Dict[str, Any]:
        """The current inputs of the decision, as the loop reads them."""
        inflight_gauge = self.registry.get("edge.inflight")
        inflight = 0.0
        if inflight_gauge is not None and inflight_gauge.value is not None:
            inflight = float(inflight_gauge.value)
        latency = self.registry.get("edge.request_ms")
        p99 = latency.quantile(0.99) if latency is not None else None
        active = self.pool.active_count
        capacity = max(1, active * self.pool.window)
        return {
            "active": active,
            "inflight": inflight,
            "utilisation": inflight / capacity,
            "p99_ms": p99,
        }

    # -------------------------------------------------------------- decision

    def step(self, now: Optional[float] = None) -> Optional[str]:
        """One evaluation tick; returns ``"up"``, ``"down"`` or ``None``."""
        policy = self.policy
        now = self.clock() if now is None else now
        sig = self.signals()
        hot = sig["utilisation"] >= policy.scale_up_utilisation or (
            policy.scale_up_p99_ms > 0.0
            and sig["p99_ms"] is not None
            and sig["p99_ms"] >= policy.scale_up_p99_ms
        )
        cold = sig["utilisation"] <= policy.scale_down_utilisation
        self._hot_ticks = self._hot_ticks + 1 if hot else 0
        self._cold_ticks = self._cold_ticks + 1 if cold else 0
        in_cooldown = (
            self._last_action_at is not None
            and now - self._last_action_at < policy.cooldown_s
        )
        if in_cooldown:
            return None
        active = sig["active"]
        if self._hot_ticks >= policy.hysteresis and active < policy.max_shards:
            self._act("up", active + 1, now)
            return "up"
        if (
            self._cold_ticks >= policy.hysteresis
            and not hot
            and active > policy.min_shards
        ):
            self._act("down", active - 1, now)
            return "down"
        return None

    def _act(self, direction: str, target: int, now: float) -> None:
        self._hot_ticks = 0
        self._cold_ticks = 0
        self._last_action_at = now
        self._last_action = direction
        self._actions += 1
        self.pool.scale_to(target)

    def status(self) -> Dict[str, Any]:
        """Loop state for ``admin.status`` / debugging."""
        return {
            "running": self._thread is not None and self._thread.is_alive(),
            "actions": self._actions,
            "last_action": self._last_action,
            "hot_ticks": self._hot_ticks,
            "cold_ticks": self._cold_ticks,
            "policy": {
                "min_shards": self.policy.min_shards,
                "max_shards": self.policy.max_shards,
                "interval_s": self.policy.interval_s,
                "scale_up_utilisation": self.policy.scale_up_utilisation,
                "scale_down_utilisation": self.policy.scale_down_utilisation,
                "scale_up_p99_ms": self.policy.scale_up_p99_ms,
                "hysteresis": self.policy.hysteresis,
                "cooldown_s": self.policy.cooldown_s,
            },
        }

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "Autoscaler":
        """Run the loop on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="edge-autoscaler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.policy.interval_s):
            try:
                self.step()
            except Exception:  # noqa: BLE001 - a failed reshard must not kill the loop
                pass

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
