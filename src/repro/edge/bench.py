"""Wall-clock benchmarking of a real edge deployment.

Where :mod:`repro.edge.loadgen` answers the scaling question in virtual
time (deterministic, CI-pinnable), :func:`run_edge_bench` measures the
real thing: spawned shard processes, real sockets, real pickling — the
end-to-end plumbing cost.  ``python -m repro edge-bench`` is its CLI.

Wall-clock numbers are only as stable as the host; treat them as a
smoke-with-a-stopwatch, not a regression gate (the gate is the
virtual-time benchmark in ``benchmarks/bench_edge.py``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.edge.client import EdgeClient
from repro.edge.server import EdgeConfig, EdgeServerThread
from repro.serve.requests import ReadRequest


def _request_stream(tiers: int, count: int) -> List[ReadRequest]:
    """A deterministic mixed-kind request list (no RNG, no clock)."""
    setpoints = (25.0, 35.0, 45.0, 55.0, 65.0, 75.0)
    requests: List[ReadRequest] = []
    for i in range(count):
        temp = setpoints[i % len(setpoints)]
        kind = i % 10
        tier = i % tiers
        if kind < 7:
            requests.append(ReadRequest.point(tier, temp))
        elif kind == 7:
            requests.append(ReadRequest.vt(tier, temp))
        elif kind == 8:
            scan = tuple(range(0, tiers, 2)) or (0,)
            requests.append(ReadRequest.scan(temp, tiers=scan))
        else:
            requests.append(
                ReadRequest.poll({t: temp + 0.5 * t for t in range(tiers)})
            )
    return requests


@dataclass(frozen=True)
class EdgeBenchPoint:
    """One wall-clock measurement at one shard count."""

    shards: int
    requests: int
    ok: int
    retried: int
    duration_s: float
    throughput_rps: float
    scaling_vs_one: float


@dataclass(frozen=True)
class EdgeBenchReport:
    """The wall-clock shard sweep of one run."""

    points: Tuple[EdgeBenchPoint, ...]

    def render(self) -> str:
        lines = [
            "edge bench (wall clock, real processes):",
            "  shards  requests     ok  retried  duration   throughput  scaling",
        ]
        for p in self.points:
            lines.append(
                f"  {p.shards:>6}  {p.requests:>8}  {p.ok:>5}  {p.retried:>7}  "
                f"{p.duration_s:>7.2f}s  {p.throughput_rps:>8.0f}/s  "
                f"{p.scaling_vs_one:>6.2f}x"
            )
        return "\n".join(lines)


def run_edge_bench(
    shard_counts: Sequence[int] = (1, 4),
    requests: int = 400,
    clients: int = 8,
    tiers: int = 4,
    stacks: int = 64,
    root_seed: int = 2012,
    start_method: str = "spawn",
    wire: str = "ndjson",
) -> EdgeBenchReport:
    """Measure aggregate wall-clock throughput at each shard count.

    ``clients`` threads, each with its own connection, split ``requests``
    requests round-robin over ``stacks`` stack ids.  ``wire`` picks the
    client wire format (``"ndjson"`` or ``"binary"``).
    """
    stream = _request_stream(tiers, requests)
    points: List[EdgeBenchPoint] = []
    base: float = 0.0
    for shards in shard_counts:
        config = EdgeConfig(
            shards=shards,
            port=0,
            tiers=tiers,
            root_seed=root_seed,
            start_method=start_method,
        )
        counters: Dict[str, int] = {"ok": 0, "retried": 0}
        counter_lock = threading.Lock()
        with EdgeServerThread(config) as edge:

            def worker(offset: int) -> None:
                ok = retried = 0
                with EdgeClient(edge.host, edge.port, wire=wire) as client:
                    for i in range(offset, len(stream), clients):
                        result = client.read(i % stacks, stream[i])
                        if result.ok:
                            ok += 1
                        if result.attempts > 1:
                            retried += 1
                with counter_lock:
                    counters["ok"] += ok
                    counters["retried"] += retried

            threads = [
                threading.Thread(target=worker, args=(offset,), daemon=True)
                for offset in range(clients)
            ]
            started = time.monotonic()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            duration = time.monotonic() - started
        throughput = requests / duration if duration > 0.0 else 0.0
        if not points:
            base = throughput
        points.append(
            EdgeBenchPoint(
                shards=shards,
                requests=requests,
                ok=counters["ok"],
                retried=counters["retried"],
                duration_s=duration,
                throughput_rps=throughput,
                scaling_vs_one=throughput / base if base > 0.0 else 0.0,
            )
        )
    return EdgeBenchReport(points=tuple(points))
