"""Virtual-time load generation for the sharded edge: throughput vs shards.

``python -m repro loadgen --edge`` answers one question reproducibly:
*how does aggregate readout throughput scale as the shard pool grows?*

The simulation reuses the serving stack's virtual-time machinery
(:mod:`repro.serve.loadgen`): one seeded arrival stream of
``(arrival time, stack id, request)`` is generated **once**, then for
each shard count ``N`` it is partitioned by the same
:class:`~repro.edge.sharding.HashRing` the real edge uses, and each
shard's slice is served by a real :class:`~repro.serve.engine.ReadEngine`
over that shard's seeded die stack with the exact micro-batching policy,
clock advanced analytically.  Identical stream across shard counts means
the scaling curve measures *sharding*, nothing else; identical seeds
with the real edge means the simulated shards serve the same stacks the
deployed workers do.

Aggregate throughput at ``N`` shards is total served requests divided by
the makespan (first arrival to last completion across all shards).  The
report pins the scaling factors and whether the curve is monotonic —
which CI and ``bench --check`` assert on.
"""

from __future__ import annotations

import heapq
import json
import math
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.edge.sharding import HashRing, remapped_fraction, shard_seed
from repro.serve.cache import ResultCache
from repro.serve.engine import ReadEngine
from repro.serve.loadgen import (
    CostModel,
    LoadgenConfig,
    RequestMix,
    _percentile,
    batch_service_time,
)
from repro.serve.requests import ReadRequest, ReadResult, ResultStatus
from repro.serve.service import ServeConfig, build_stack_sensors


@dataclass(frozen=True)
class WireCostModel:
    """Per-request wire + IPC CPU occupancy of one shard's serving path.

    The virtual-time sweep charges each shard for the protocol work the
    real deployment does per request — decoding it off the wire,
    encoding its result, and the worker-pipe message carrying it.  The
    constants are calibrated against the real codecs by
    ``benchmarks/bench_wire.py``.

    Attributes:
        decode_request_s: CPU seconds to decode one read off the wire.
        encode_result_s: CPU seconds to encode one result onto the wire.
        ipc_message_s: CPU seconds per worker pipe message (pickle +
            syscall + wakeup).
        ipc_batch: Requests coalesced per pipe message (1 = a message
            per request, the uncoalesced wire).
    """

    decode_request_s: float
    encode_result_s: float
    ipc_message_s: float
    ipc_batch: int = 1

    def __post_init__(self) -> None:
        if self.ipc_batch < 1:
            raise ValueError("ipc_batch must be >= 1")

    def batch_cost_s(self, take: int) -> float:
        """Wire occupancy of serving one batch of ``take`` requests."""
        messages = math.ceil(take / self.ipc_batch)
        return (
            take * (self.decode_request_s + self.encode_result_s)
            + messages * self.ipc_message_s
        )


#: The two deployment profiles the sweep can model, calibrated from
#: ``benchmarks/bench_wire.py`` on the reference machine: ``ndjson`` is
#: the legacy slow wire (JSON lines, one pipe message per read);
#: ``binary`` is the fast wire (packed frames + IPC coalesced 16-deep).
WIRE_COSTS: Dict[str, WireCostModel] = {
    "ndjson": WireCostModel(
        decode_request_s=2.7e-6,
        encode_result_s=7.8e-6,
        ipc_message_s=2.0e-6,
        ipc_batch=1,
    ),
    "binary": WireCostModel(
        decode_request_s=1.6e-6,
        encode_result_s=2.4e-6,
        ipc_message_s=2.0e-6,
        ipc_batch=16,
    ),
}


@dataclass(frozen=True)
class EdgeLoadgenConfig:
    """One edge-scaling run, fully specified (and fully seeded).

    Attributes:
        requests: Arrival-stream length (shared by every shard count).
        seed: Seed of the arrival/mix/stack-id stream.
        rate_rps: Open-loop Poisson arrival rate.  The default
            deliberately exceeds one shard's service capacity — the
            scaling question is only meaningful under saturation.
        shard_counts: The pool sizes to sweep, ascending.
        stacks: Size of the stack-id space clients address (routing
            keys; hashed onto shards by the ring).
        root_seed: Deployment root seed; shard ``i`` serves the stack
            seeded with :func:`~repro.edge.sharding.shard_seed`.
        serve: Per-shard serving policies (tiers, batch, admission,
            cache).  ``serve.seed`` is ignored — shards derive their own.
        cost: Virtual-time service-cost model.
        wire: Which :data:`WIRE_COSTS` profile to charge shards with
            (``"binary"``, the deployed default, or ``"ndjson"``).
        wire_cost: Explicit :class:`WireCostModel` overriding ``wire``'s
            profile (``None`` resolves from :data:`WIRE_COSTS`).
        edge_overhead_s: Edge-side routing/framing cost per request,
            added to each request's latency (not to shard occupancy —
            the edge front end is not the bottleneck being modelled).
        ring_replicas: Virtual nodes per shard on the routing ring.
    """

    requests: int = 4000
    seed: int = 20120612
    rate_rps: float = 500000.0
    shard_counts: Tuple[int, ...] = (1, 2, 4)
    stacks: int = 64
    root_seed: int = 2012
    serve: ServeConfig = field(default_factory=ServeConfig)
    cost: CostModel = field(default_factory=CostModel)
    wire: str = "binary"
    wire_cost: Optional[WireCostModel] = None
    edge_overhead_s: float = 20e-6
    ring_replicas: int = 64

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.rate_rps <= 0.0:
            raise ValueError("rate_rps must be positive")
        if not self.shard_counts:
            raise ValueError("need at least one shard count")
        if any(n < 1 for n in self.shard_counts):
            raise ValueError("shard counts must be >= 1")
        if tuple(sorted(self.shard_counts)) != tuple(self.shard_counts):
            raise ValueError("shard_counts must be ascending")
        if self.stacks < 1:
            raise ValueError("stacks must be >= 1")
        if self.wire not in WIRE_COSTS:
            raise ValueError(
                f"wire must be one of {tuple(WIRE_COSTS)}, not {self.wire!r}"
            )

    def resolve_wire_cost(self) -> WireCostModel:
        """The wire-cost model in force (explicit override or profile)."""
        return self.wire_cost if self.wire_cost is not None else WIRE_COSTS[self.wire]


@dataclass(frozen=True)
class ShardScalingPoint:
    """What the sweep measured at one shard count."""

    shards: int
    served: int
    rejected: int
    shed: int
    errors: int
    throughput_rps: float
    makespan_s: float
    latency_ms: Dict[str, float]
    mean_batch_size: float
    cache_hit_rate: float
    per_shard_served: Tuple[int, ...]
    scaling_vs_one: float
    # Fraction of the key space that re-homed when the ring grew from
    # the previous swept shard count to this one (None for the first
    # point) — ties the scaling curve to the reshard cost it implies.
    remap_from_prev: Optional[float] = None


@dataclass(frozen=True)
class EdgeLoadgenReport:
    """The shard-scaling curve of one seeded arrival stream."""

    requests: int
    rate_rps: float
    stacks: int
    seed: int
    root_seed: int
    wire: str
    points: Tuple[ShardScalingPoint, ...]
    monotonic: bool

    @property
    def scaling(self) -> Dict[int, float]:
        return {point.shards: point.scaling_vs_one for point in self.points}

    def point(self, shards: int) -> ShardScalingPoint:
        for candidate in self.points:
            if candidate.shards == shards:
                return candidate
        raise KeyError(f"no scaling point for {shards} shards")

    def to_json(self) -> str:
        payload = {
            "requests": self.requests,
            "rate_rps": self.rate_rps,
            "stacks": self.stacks,
            "seed": self.seed,
            "root_seed": self.root_seed,
            "wire": self.wire,
            "monotonic": self.monotonic,
            "points": [
                {
                    "shards": p.shards,
                    "served": p.served,
                    "rejected": p.rejected,
                    "shed": p.shed,
                    "errors": p.errors,
                    "throughput_rps": p.throughput_rps,
                    "makespan_s": p.makespan_s,
                    "latency_ms": p.latency_ms,
                    "mean_batch_size": p.mean_batch_size,
                    "cache_hit_rate": p.cache_hit_rate,
                    "per_shard_served": list(p.per_shard_served),
                    "scaling_vs_one": p.scaling_vs_one,
                    "remap_from_prev": p.remap_from_prev,
                }
                for p in self.points
            ],
        }
        return json.dumps(payload, sort_keys=True)

    def render(self) -> str:
        lines = [
            f"edge loadgen: {self.requests} requests @ {self.rate_rps:.0f} req/s "
            f"over {self.stacks} stacks, {self.wire} wire "
            f"(seed {self.seed}, root seed {self.root_seed})",
            "  shards  served  rejected  throughput   p50 ms   p95 ms  "
            "batch  cache%  scaling  remap%",
        ]
        for p in self.points:
            remap = (
                "     -"
                if p.remap_from_prev is None
                else f"{p.remap_from_prev * 100:>5.1f}"
            )
            lines.append(
                f"  {p.shards:>6}  {p.served:>6}  {p.rejected:>8}  "
                f"{p.throughput_rps:>8.0f}/s  {p.latency_ms['p50']:>7.3f}  "
                f"{p.latency_ms['p95']:>7.3f}  {p.mean_batch_size:>5.2f}  "
                f"{p.cache_hit_rate * 100:>5.1f}  {p.scaling_vs_one:>6.2f}x  "
                f"{remap}"
            )
        lines.append(
            "  scaling is monotonic"
            if self.monotonic
            else "  WARNING: scaling is NOT monotonic"
        )
        return "\n".join(lines)


# ------------------------------------------------------------ the simulation


def _generate_stream(
    config: EdgeLoadgenConfig,
) -> List[Tuple[float, int, int, ReadRequest]]:
    """The seeded arrival stream: (arrival, sequence, stack id, request).

    Generated once and shared by every shard count, so the scaling sweep
    compares pools on identical traffic.
    """
    serve = config.serve
    tiers = tuple(range(serve.tiers))
    mix = RequestMix(
        LoadgenConfig(
            requests=config.requests,
            seed=config.seed,
            rate_rps=config.rate_rps,
            serve=serve,
            cost=config.cost,
        ),
        tiers,
    )
    arrival_rng = np.random.default_rng(config.seed + 1)
    stack_rng = np.random.default_rng(config.seed + 2)
    stream = []
    t = 0.0
    for sequence in range(config.requests):
        t += float(arrival_rng.exponential(1.0 / config.rate_rps))
        stack_id = int(stack_rng.integers(config.stacks))
        stream.append((t, sequence, stack_id, mix.next(t)))
    return stream


@dataclass
class _ShardOutcome:
    served: List[ReadResult] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    batch_histogram: TallyCounter = field(default_factory=TallyCounter)
    rejected: int = 0
    cache_hits: int = 0
    cache_lookups: int = 0
    first_arrival: Optional[float] = None
    last_finish: float = 0.0


def _simulate_shard(
    arrivals: Sequence[Tuple[float, int, ReadRequest]],
    shard_index: int,
    config: EdgeLoadgenConfig,
) -> _ShardOutcome:
    """Serve one shard's arrival slice with the real engine, virtual clock.

    Same fill-or-timeout batching semantics as
    :func:`repro.serve.loadgen.run_loadgen`, over this shard's own seeded
    die stack.
    """
    serve = config.serve
    sensors = build_stack_sensors(serve.tiers, shard_seed(config.root_seed, shard_index))
    cache = (
        ResultCache(
            capacity=serve.cache_capacity,
            ttl_s=serve.cache_ttl_s,
            temp_resolution_c=serve.temp_resolution_c,
            vdd_resolution_v=serve.vdd_resolution_v,
        )
        if serve.cache_capacity and serve.deterministic
        else None
    )
    engine = ReadEngine(sensors, cache=cache, deterministic=serve.deterministic)
    policy = serve.batch
    depth = serve.admission.queue_depth
    wire_cost = config.resolve_wire_cost()
    outcome = _ShardOutcome()

    events: List[Tuple[float, int, ReadRequest]] = list(arrivals)
    heapq.heapify(events)
    queue: List[Tuple[float, ReadRequest]] = []
    free_at = 0.0

    def ingest(until: float) -> None:
        while events and events[0][0] <= until:
            when, _, request = heapq.heappop(events)
            if len(queue) >= depth:
                outcome.rejected += 1
                continue
            queue.append((when, request))

    while events or queue:
        if not queue:
            ingest(events[0][0])
            if not queue:
                continue
        head_at = queue[0][0]
        ready = max(free_at, head_at)
        if outcome.first_arrival is None:
            outcome.first_arrival = head_at
        close = max(ready, head_at + policy.max_wait_s)
        ingest(ready)
        if len(queue) >= policy.max_batch:
            close = ready
        while len(queue) < policy.max_batch and events and events[0][0] <= close:
            when, _, request = heapq.heappop(events)
            if len(queue) >= depth:
                outcome.rejected += 1
                continue
            queue.append((when, request))
            if len(queue) >= policy.max_batch:
                close = max(ready, when)
        start = close
        take = min(policy.max_batch, len(queue))
        batch = queue[:take]
        del queue[:take]
        results = engine.execute([request for _, request in batch], now=start)
        service = batch_service_time(results, config.cost) + wire_cost.batch_cost_s(
            take
        )
        finish = start + service
        free_at = finish
        outcome.last_finish = max(outcome.last_finish, finish)
        outcome.batch_histogram[take] += 1
        for (arrived, _), result in zip(batch, results):
            outcome.served.append(result)
            if result.status in (ResultStatus.OK, ResultStatus.DEGRADED):
                outcome.latencies.append(
                    finish - arrived + config.edge_overhead_s
                )
    if cache is not None:
        stats = cache.stats()
        outcome.cache_hits = stats.hits
        outcome.cache_lookups = stats.hits + stats.misses
    return outcome


def run_loadgen_edge(config: EdgeLoadgenConfig = EdgeLoadgenConfig()) -> EdgeLoadgenReport:
    """Sweep the shard counts over one shared arrival stream."""
    stream = _generate_stream(config)
    points: List[ShardScalingPoint] = []
    base_throughput: Optional[float] = None
    previous_ring: Optional[HashRing] = None
    for shards in config.shard_counts:
        ring = HashRing(range(shards), replicas=config.ring_replicas)
        remap_from_prev = (
            None
            if previous_ring is None
            else remapped_fraction(previous_ring, ring)
        )
        previous_ring = ring
        slices: Dict[int, List[Tuple[float, int, ReadRequest]]] = {
            shard: [] for shard in range(shards)
        }
        for arrival, sequence, stack_id, request in stream:
            slices[ring.route(stack_id)].append((arrival, sequence, request))
        outcomes = [
            _simulate_shard(slices[shard], shard, config) for shard in range(shards)
        ]
        served = [r for o in outcomes for r in o.served]
        latencies = sorted(x for o in outcomes for x in o.latencies)
        first = min(
            (o.first_arrival for o in outcomes if o.first_arrival is not None),
            default=0.0,
        )
        last = max((o.last_finish for o in outcomes), default=0.0)
        makespan = max(last - first, 0.0)
        throughput = len(served) / makespan if makespan > 0.0 else 0.0
        if base_throughput is None:
            base_throughput = throughput
        histogram: TallyCounter = TallyCounter()
        for o in outcomes:
            histogram.update(o.batch_histogram)
        total_batched = sum(size * n for size, n in histogram.items())
        total_batches = sum(histogram.values())
        hits = sum(o.cache_hits for o in outcomes)
        lookups = sum(o.cache_lookups for o in outcomes)
        statuses = TallyCounter(result.status for result in served)
        points.append(
            ShardScalingPoint(
                shards=shards,
                served=len(served),
                rejected=sum(o.rejected for o in outcomes),
                shed=statuses[ResultStatus.SHED],
                errors=statuses[ResultStatus.ERROR],
                throughput_rps=throughput,
                makespan_s=makespan,
                latency_ms={
                    "p50": _percentile(latencies, 0.50) * 1e3,
                    "p95": _percentile(latencies, 0.95) * 1e3,
                    "p99": _percentile(latencies, 0.99) * 1e3,
                    "mean": (sum(latencies) / len(latencies) * 1e3)
                    if latencies
                    else 0.0,
                    "max": latencies[-1] * 1e3 if latencies else 0.0,
                },
                mean_batch_size=total_batched / total_batches if total_batches else 0.0,
                cache_hit_rate=hits / lookups if lookups else 0.0,
                per_shard_served=tuple(len(o.served) for o in outcomes),
                scaling_vs_one=throughput / base_throughput
                if base_throughput and base_throughput > 0.0
                else 0.0,
                remap_from_prev=remap_from_prev,
            )
        )
    monotonic = all(
        later.throughput_rps >= earlier.throughput_rps
        for earlier, later in zip(points, points[1:])
    )
    return EdgeLoadgenReport(
        requests=config.requests,
        rate_rps=config.rate_rps,
        stacks=config.stacks,
        seed=config.seed,
        root_seed=config.root_seed,
        wire=config.wire,
        points=tuple(points),
        monotonic=monotonic,
    )


__all__ = [
    "EdgeLoadgenConfig",
    "EdgeLoadgenReport",
    "ShardScalingPoint",
    "WIRE_COSTS",
    "WireCostModel",
    "run_loadgen_edge",
]
