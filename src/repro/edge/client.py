"""Typed clients for the edge protocol: sync sockets and asyncio.

:class:`EdgeClient` is the blocking client — one socket, one outstanding
operation at a time, the natural fit for scripts, tests and per-thread
benchmark workers.  :class:`AsyncEdgeClient` multiplexes: any number of
coroutines may await reads on one connection; a background reader task
matches pipelined answers to callers by ``id``.

Both speak either wire format — ``wire="ndjson"`` (the default,
line-delimited JSON) or ``wire="binary"`` (length-prefixed packed
frames; the server detects the format from the first byte, so no
handshake round-trip is spent negotiating).

Both retry **retryable** failures (``backpressure``, ``shard_down``)
with capped exponential backoff and raise
:class:`~repro.edge.protocol.EdgeError` once attempts are exhausted or
immediately for non-retryable codes.  A successful retry is visible in
:attr:`EdgeResult.attempts`.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.edge import protocol
from repro.edge.protocol import EdgeError, EdgeResult
from repro.serve.requests import ReadRequest


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff-and-resend behaviour for retryable edge errors.

    ``attempts`` counts total tries (1 = never retry).  Waits grow as
    ``backoff_s * 2**n`` capped at ``max_backoff_s``.
    """

    attempts: int = 4
    backoff_s: float = 0.05
    max_backoff_s: float = 1.0

    def wait_s(self, attempt: int) -> float:
        return min(self.backoff_s * (2 ** attempt), self.max_backoff_s)


WIRE_FORMATS = ("ndjson", "binary")


def _check_wire(wire: str) -> str:
    if wire not in WIRE_FORMATS:
        raise ValueError(f"wire must be one of {WIRE_FORMATS}, not {wire!r}")
    return wire


class EdgeClient:
    """Blocking client for one edge server (NDJSON or binary frames)."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        retry: RetryPolicy = RetryPolicy(),
        wire: str = "ndjson",
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry = retry
        self.wire = _check_wire(wire)
        self._ids = itertools.count(1)
        self._sock: Optional[socket.socket] = None
        self._file = None

    def _next_id(self):
        # Packed binary frames carry integer ids; NDJSON keeps the
        # readable string form.
        n = next(self._ids)
        return n if self.wire == "binary" else f"c{n}"

    # ---------------------------------------------------------------- wiring

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        self._file = self._sock.makefile("rb")

    def _ensure(self) -> None:
        if self._sock is None:
            self._connect()

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "EdgeClient":
        self._ensure()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _exchange(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one operation, return its answer; reconnect on a dead socket."""
        request_id = payload["id"]
        try:
            self._ensure()
            if self.wire == "binary":
                self._sock.sendall(protocol.encode_frame(payload))
                while True:
                    answer = self._read_frame()
                    if answer.get("id") == request_id:
                        return answer
                    # Not ours (an id-less framing warning); keep reading.
            self._sock.sendall(protocol.encode(payload))
            while True:
                line = self._file.readline()
                if not line:
                    raise EdgeError(
                        protocol.SHARD_DOWN, "connection closed by server"
                    )
                if not line.endswith(b"\n"):
                    # A fragment at EOF: the server died mid-response.
                    # Typed and retryable — never a JSON decode crash.
                    raise EdgeError(
                        protocol.CLOSED,
                        "connection closed mid-response by server",
                        retryable=True,
                    )
                answer = protocol.decode_line(line)
                if answer.get("id") == request_id:
                    return answer
                # An unsolicited line (e.g. an id-less oversized warning
                # meant for a different writer) — not ours, keep reading.
        except (OSError, EdgeError):
            self.close()
            raise
        except Exception:
            self.close()
            raise

    def _read_frame(self) -> Dict[str, Any]:
        """Read exactly one binary frame off the socket file."""
        header = self._read_exactly(protocol.FRAME_HEADER_SIZE, "frame header")
        _version, kind, length = protocol.decode_frame_header(header)
        body = self._read_exactly(length, "frame body")
        return protocol.decode_frame_body(kind, body)

    def _read_exactly(self, count: int, what: str) -> bytes:
        chunks = []
        remaining = count
        while remaining > 0:
            chunk = self._file.read(remaining)
            if not chunk:
                if len(chunks) == 0 and remaining == count and what == "frame header":
                    raise EdgeError(
                        protocol.SHARD_DOWN, "connection closed by server"
                    )
                raise EdgeError(
                    protocol.CLOSED,
                    f"connection closed mid-{what} by server",
                    retryable=True,
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # ------------------------------------------------------------------- ops

    def read(
        self,
        stack_id: int,
        request: ReadRequest,
        deadline_ms: Optional[float] = None,
    ) -> EdgeResult:
        """Serve one :class:`ReadRequest` against ``stack_id``'s shard.

        Retries retryable failures per the client's :class:`RetryPolicy`;
        raises :class:`EdgeError` when they are exhausted (or at once for
        non-retryable codes).
        """
        wire = protocol.request_to_wire(request, deadline_ms=deadline_ms)
        last_error: Optional[EdgeError] = None
        for attempt in range(self.retry.attempts):
            if attempt:
                time.sleep(self.retry.wait_s(attempt - 1))
            payload = {
                "v": protocol.PROTOCOL_VERSION,
                "id": self._next_id(),
                "op": "read",
                "stack": stack_id,
                "request": wire,
            }
            try:
                answer = self._exchange(payload)
            except EdgeError as error:
                last_error = error
                if not error.retryable:
                    raise
                continue
            except OSError as error:
                last_error = EdgeError(
                    protocol.SHARD_DOWN, f"connection failed: {error}"
                )
                continue
            if answer.get("ok"):
                return protocol.wire_to_edge_result(answer, attempts=attempt + 1)
            error = EdgeError.from_wire(answer.get("error", {}))
            if not error.retryable:
                raise error
            last_error = error
        raise last_error if last_error is not None else EdgeError(
            protocol.INTERNAL, "retries exhausted without an error"
        )

    def ping(self) -> Dict[str, Any]:
        answer = self._exchange({"id": self._next_id(), "op": "ping"})
        if not answer.get("ok"):
            raise EdgeError.from_wire(answer.get("error", {}))
        return answer

    def stats(self) -> Dict[str, Any]:
        answer = self._exchange({"id": self._next_id(), "op": "stats"})
        if not answer.get("ok"):
            raise EdgeError.from_wire(answer.get("error", {}))
        return answer

    def raw(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One arbitrary operation, no retries — protocol tests and chaos."""
        payload = dict(payload)
        payload.setdefault("id", self._next_id())
        return self._exchange(payload)

    def subscribe(
        self,
        kinds: Optional[list] = None,
        metrics: Optional[list] = None,
        queue: Optional[int] = None,
    ) -> "StreamReceiver":
        """Open a server-push subscription on this connection.

        Returns a :class:`StreamReceiver`.  While the subscription is
        live the connection belongs to the stream: pushed events
        interleave with answers, so issue reads from a *different*
        client and consume here with :meth:`StreamReceiver.next` /
        :meth:`StreamReceiver.take` until
        :meth:`StreamReceiver.unsubscribe`.
        """
        payload: Dict[str, Any] = {"id": self._next_id(), "op": protocol.STREAM_SUBSCRIBE}
        if kinds is not None:
            payload["kinds"] = list(kinds)
        if metrics is not None:
            payload["metrics"] = list(metrics)
        if queue is not None:
            payload["queue"] = queue
        answer = self._exchange(payload)
        if not answer.get("ok"):
            raise EdgeError.from_wire(answer.get("error", {}))
        return StreamReceiver(self, answer["subscription"])

    def _read_payload(self) -> Dict[str, Any]:
        """One pushed object or answer off the wire (either format)."""
        self._ensure()
        if self.wire == "binary":
            return self._read_frame()
        line = self._file.readline()
        if not line:
            raise EdgeError(protocol.SHARD_DOWN, "connection closed by server")
        if not line.endswith(b"\n"):
            raise EdgeError(
                protocol.CLOSED,
                "connection closed mid-response by server",
                retryable=True,
            )
        return protocol.decode_line(line)


class StreamReceiver:
    """The consuming half of one :meth:`EdgeClient.subscribe` call.

    Yields pushed event objects (``{"event": ..., "seq": ..., "sub": ...}``
    — including ``heartbeat`` and the typed ``notice`` a slow consumer
    earns) until :meth:`unsubscribe`, which returns the server's final
    accounting (``dropped``).
    """

    def __init__(self, client: EdgeClient, subscription: int) -> None:
        self.client = client
        self.subscription = subscription
        self.closed = False

    def next(self) -> Dict[str, Any]:
        """Block for the next pushed event on this connection."""
        while True:
            payload = self.client._read_payload()
            if "event" in payload:
                return payload
            # An answer to someone else's op on this connection; with the
            # documented one-op-at-a-time discipline this does not happen,
            # but skipping is strictly safer than crashing the stream.

    def take(self, count: int, ignore: Tuple[str, ...] = ("heartbeat",)) -> list:
        """Collect ``count`` events, skipping kinds in ``ignore``."""
        events = []
        while len(events) < count:
            event = self.next()
            if event.get("event") in ignore:
                continue
            events.append(event)
        return events

    def unsubscribe(self) -> Dict[str, Any]:
        """End the subscription; returns the ack (with ``dropped``)."""
        if self.closed:
            return {"ok": True, "subscription": self.subscription, "dropped": 0}
        self.closed = True
        request_id = self.client._next_id()
        payload = {
            "id": request_id,
            "op": protocol.STREAM_UNSUBSCRIBE,
            "subscription": self.subscription,
        }
        encode = (
            protocol.encode_frame if self.client.wire == "binary" else protocol.encode
        )
        self.client._ensure()
        self.client._sock.sendall(encode(payload))
        while True:
            answer = self.client._read_payload()
            if answer.get("id") == request_id:
                if not answer.get("ok"):
                    raise EdgeError.from_wire(answer.get("error", {}))
                return answer

    def __enter__(self) -> "StreamReceiver":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.unsubscribe()


#: Wires the admin client speaks; the data wires plus the HTTP adapter.
ADMIN_WIRES = ("ndjson", "binary", "http")


class AdminClient:
    """Typed client for the ``admin.*`` control plane, over any wire.

    One verb per method::

        with AdminClient(host, port, token="s3cret") as admin:
            admin.scale(4)              # reshape the pool
            admin.drain_shard(3)        # drain + remove one shard
            admin.restart()             # rolling restart, one shard at a time
            admin.status()["status"]    # topology, generation, health

    ``wire`` may be ``"ndjson"``, ``"binary"`` (the op rides a JSON-body
    frame) or ``"http"`` (``POST /v1/admin/<verb>`` /
    ``GET /v1/admin/status``, token in the ``X-Admin-Token`` header).
    Admin ops are **not retried**: a reshape is not idempotent, so a
    failure surfaces to the operator instead of being resent.
    """

    def __init__(
        self,
        host: str,
        port: int,
        token: Optional[str] = None,
        wire: str = "ndjson",
        timeout_s: float = 120.0,
    ) -> None:
        if wire not in ADMIN_WIRES:
            raise ValueError(f"wire must be one of {ADMIN_WIRES}, not {wire!r}")
        self.host = host
        self.port = port
        self.token = token
        self.wire = wire
        self.timeout_s = timeout_s
        self._client: Optional[EdgeClient] = None
        if wire in WIRE_FORMATS:
            self._client = EdgeClient(
                host,
                port,
                timeout_s=timeout_s,
                retry=RetryPolicy(attempts=1),
                wire=wire,
            )

    def close(self) -> None:
        if self._client is not None:
            self._client.close()

    def __enter__(self) -> "AdminClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ verbs

    def status(self) -> Dict[str, Any]:
        """Topology, ring generation, spares and per-shard health."""
        return self._call(protocol.ADMIN_STATUS)

    def scale(self, shards: int) -> Dict[str, Any]:
        """Reshape the pool to ``shards`` active shards."""
        return self._call(protocol.ADMIN_SCALE, shards=shards)

    def drain_shard(self, shard: int) -> Dict[str, Any]:
        """Drain one shard's in-flight reads, then remove it."""
        return self._call(protocol.ADMIN_DRAIN_SHARD, shard=shard)

    def restart(self, shard: Optional[int] = None) -> Dict[str, Any]:
        """Rolling restart (or recycle just ``shard`` when given)."""
        return self._call(protocol.ADMIN_RESTART, shard=shard)

    # --------------------------------------------------------------- plumbing

    def _call(self, op: str, **fields: Any) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": op}
        payload.update({k: v for k, v in fields.items() if v is not None})
        if self.token is not None:
            payload["token"] = self.token
        if self.wire == "http":
            answer = self._http_call(op, payload)
        else:
            answer = self._client.raw(payload)
        if not answer.get("ok"):
            raise EdgeError.from_wire(answer.get("error", {}))
        return answer

    def _http_call(self, op: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        import http.client
        import json

        headers = {"Content-Type": "application/json"}
        if self.token is not None:
            headers["X-Admin-Token"] = self.token
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            if op == protocol.ADMIN_STATUS:
                connection.request("GET", "/v1/admin/status", headers=headers)
            else:
                verb = op.split(".", 1)[1]
                body = json.dumps(
                    {k: v for k, v in payload.items() if k != "op"},
                    separators=(",", ":"),
                ).encode("utf-8")
                connection.request(
                    "POST", f"/v1/admin/{verb}", body=body, headers=headers
                )
            response = connection.getresponse()
            blob = response.read()
        finally:
            connection.close()
        return protocol.decode_line(blob)


class AsyncEdgeClient:
    """Asyncio edge client; pipelines any number of concurrent reads."""

    def __init__(
        self,
        host: str,
        port: int,
        retry: RetryPolicy = RetryPolicy(),
        wire: str = "ndjson",
        resolve: Optional[Callable[[], Tuple[str, int]]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.retry = retry
        self.wire = _check_wire(wire)
        #: Re-queried before every (re)connect, so a retry can follow the
        #: target when it moves — fleet failover points this at the
        #: router instead of burning the retry budget on a dead host.
        self.resolve = resolve
        self._ids = itertools.count(1)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[Any, "asyncio.Future[Dict[str, Any]]"] = {}
        self._subscriptions: Dict[int, "asyncio.Queue[Dict[str, Any]]"] = {}
        self._reader_task: Optional["asyncio.Task"] = None
        self._write_lock: Optional[asyncio.Lock] = None

    def _next_id(self):
        n = next(self._ids)
        return n if self.wire == "binary" else f"a{n}"

    async def connect(self) -> "AsyncEdgeClient":
        if self.resolve is not None:
            self.host, self.port = self.resolve()
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._reader_task = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
        self._fail_pending(EdgeError(protocol.CLOSED, "client closed"))

    async def __aenter__(self) -> "AsyncEdgeClient":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def _fail_pending(self, error: EdgeError) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def _read_loop(self) -> None:
        try:
            while True:
                if self.wire == "binary":
                    try:
                        header = await self._reader.readexactly(
                            protocol.FRAME_HEADER_SIZE
                        )
                    except asyncio.IncompleteReadError:
                        break
                    _version, kind, length = protocol.decode_frame_header(header)
                    body = await self._reader.readexactly(length)
                    answer = protocol.decode_frame_body(kind, body)
                else:
                    line = await self._reader.readline()
                    if not line:
                        break
                    answer = protocol.decode_line(line)
                if "event" in answer and "id" not in answer:
                    self._route_event(answer)
                    continue
                future = self._pending.pop(answer.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(answer)
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 - connection-level failure
            pass
        finally:
            # Tear the dead connection down *here*, not lazily: the next
            # ``_exchange`` must see ``_writer is None`` and reconnect
            # (re-resolving the address) rather than write into a socket
            # the server already closed.
            writer, self._writer = self._writer, None
            self._reader = None
            if writer is not None:
                try:
                    writer.close()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass
            self._fail_pending(
                EdgeError(protocol.SHARD_DOWN, "connection closed by server")
            )
            subscriptions, self._subscriptions = self._subscriptions, {}
            for sub_id, queue in subscriptions.items():
                self._route_event_closed(queue, sub_id)

    @staticmethod
    def _route_event_closed(queue: "asyncio.Queue", sub_id: int) -> None:
        """Tell a subscription consumer the connection is gone."""
        notice = {"event": "notice", "sub": sub_id, "code": protocol.CLOSED}
        while True:
            try:
                queue.put_nowait(notice)
                return
            except asyncio.QueueFull:
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:
                    pass

    async def _exchange(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self._writer is None:
            await self.connect()
        future = asyncio.get_running_loop().create_future()
        self._pending[payload["id"]] = future
        encode = protocol.encode_frame if self.wire == "binary" else protocol.encode
        async with self._write_lock:
            self._writer.write(encode(payload))
            await self._writer.drain()
        return await future

    async def read(
        self,
        stack_id: int,
        request: ReadRequest,
        deadline_ms: Optional[float] = None,
    ) -> EdgeResult:
        wire = protocol.request_to_wire(request, deadline_ms=deadline_ms)
        last_error: Optional[EdgeError] = None
        for attempt in range(self.retry.attempts):
            if attempt:
                await asyncio.sleep(self.retry.wait_s(attempt - 1))
            payload = {
                "v": protocol.PROTOCOL_VERSION,
                "id": self._next_id(),
                "op": "read",
                "stack": stack_id,
                "request": wire,
            }
            try:
                answer = await self._exchange(payload)
            except EdgeError as error:
                last_error = error
                if not error.retryable:
                    raise
                continue
            except OSError as error:
                # Connect/write failure (host down, connection refused):
                # retryable, and the next attempt re-resolves the target.
                self._pending.pop(payload["id"], None)
                last_error = EdgeError(protocol.SHARD_DOWN, str(error))
                continue
            if answer.get("ok"):
                return protocol.wire_to_edge_result(answer, attempts=attempt + 1)
            error = EdgeError.from_wire(answer.get("error", {}))
            if not error.retryable:
                raise error
            last_error = error
        raise last_error if last_error is not None else EdgeError(
            protocol.INTERNAL, "retries exhausted without an error"
        )

    async def ping(self) -> Dict[str, Any]:
        answer = await self._exchange({"id": self._next_id(), "op": "ping"})
        if not answer.get("ok"):
            raise EdgeError.from_wire(answer.get("error", {}))
        return answer

    # ------------------------------------------------------------- streaming

    def _route_event(self, event: Dict[str, Any]) -> None:
        """Deliver one pushed event to its subscription's local queue.

        The local queue is bounded like the server side: on overflow the
        oldest locally-buffered event is discarded so a paused consumer
        cannot grow the client without bound (the server's own drop
        accounting still produces the typed ``notice``).
        """
        queue = self._subscriptions.get(event.get("sub"))
        if queue is None:
            return
        while True:
            try:
                queue.put_nowait(event)
                return
            except asyncio.QueueFull:
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:
                    pass

    async def subscribe(
        self,
        kinds: Optional[list] = None,
        metrics: Optional[list] = None,
        queue: Optional[int] = None,
    ) -> "AsyncSubscription":
        """Open a server-push subscription multiplexed on this connection.

        Pushed events are routed off the shared reader into a per-
        subscription queue, so reads and other ops keep working
        concurrently.  Iterate the returned handle (``async for``) or
        await :meth:`AsyncSubscription.next`.
        """
        payload: Dict[str, Any] = {
            "id": self._next_id(),
            "op": protocol.STREAM_SUBSCRIBE,
        }
        if kinds is not None:
            payload["kinds"] = list(kinds)
        if metrics is not None:
            payload["metrics"] = list(metrics)
        if queue is not None:
            payload["queue"] = queue
        answer = await self._exchange(payload)
        if not answer.get("ok"):
            raise EdgeError.from_wire(answer.get("error", {}))
        sub_id = answer["subscription"]
        queue_obj: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue(
            maxsize=answer["queue"]
        )
        self._subscriptions[sub_id] = queue_obj
        return AsyncSubscription(self, sub_id, queue_obj)

    async def unsubscribe(self, subscription: int) -> Dict[str, Any]:
        """End a subscription; returns the ack (with ``dropped``)."""
        answer = await self._exchange({
            "id": self._next_id(),
            "op": protocol.STREAM_UNSUBSCRIBE,
            "subscription": subscription,
        })
        self._subscriptions.pop(subscription, None)
        if not answer.get("ok"):
            raise EdgeError.from_wire(answer.get("error", {}))
        return answer


class AsyncSubscription:
    """Consuming handle for one :meth:`AsyncEdgeClient.subscribe`."""

    def __init__(
        self,
        client: AsyncEdgeClient,
        subscription: int,
        queue: "asyncio.Queue[Dict[str, Any]]",
    ) -> None:
        self.client = client
        self.subscription = subscription
        self._queue = queue
        self.closed = False

    async def next(self) -> Dict[str, Any]:
        """Await the next pushed event for this subscription.

        When the connection dies mid-subscription the final event is a
        synthesized ``notice`` with ``{"code": "closed"}``.
        """
        return await self._queue.get()

    async def take(
        self, count: int, ignore: Tuple[str, ...] = ("heartbeat",)
    ) -> list:
        """Collect ``count`` events, skipping kinds in ``ignore``."""
        events = []
        while len(events) < count:
            event = await self.next()
            if event.get("event") in ignore:
                continue
            events.append(event)
        return events

    async def unsubscribe(self) -> Dict[str, Any]:
        if self.closed:
            return {"ok": True, "subscription": self.subscription, "dropped": 0}
        self.closed = True
        return await self.client.unsubscribe(self.subscription)

    async def __aenter__(self) -> "AsyncSubscription":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            await self.unsubscribe()
