"""The shard backend: one process, one die stack, one readout service.

:func:`worker_main` is the entry point of every backend worker process
the supervisor spawns.  Each worker

* builds its **own** die stack from its :func:`~repro.edge.sharding`
  seed (derived from the deployment root seed, so a respawned worker is
  bit-identical to the one it replaces),
* optionally activates a per-shard :class:`~repro.faults.FaultPlan`
  (fault-injection campaigns can target one shard of a pool),
* embeds a full :class:`~repro.serve.service.SensorReadService` —
  micro-batching, result cache, admission control, access log — and
* answers its parent over a :mod:`multiprocessing` pipe: every inbound
  message carries a ``seq``; every reply echoes it.

The pipe protocol is *internal* (parent ↔ child, pickled dicts); the
public NDJSON protocol lives in :mod:`repro.edge.protocol` and only its
``request`` payloads pass through here untouched, so deadlines are
anchored against the worker's own clock at decode time.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.edge.protocol import (
    BACKPRESSURE,
    CLOSED,
    EdgeError,
    INTERNAL,
    result_to_wire,
    wire_to_request,
)
from repro.serve.admission import (
    AdmissionPolicy,
    QueueFullError,
    ServiceClosedError,
)
from repro.serve.scheduler import BatchPolicy
from repro.serve.service import SensorReadService, ServeConfig


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one shard worker needs, picklable for any start method.

    Attributes:
        shard_index: Position of this shard in the pool.
        seed: Die-population seed (already shard-derived).
        tiers: Stack height served by this shard.
        deterministic: Serve deterministic conversions (required for the
            cross-process determinism guarantee and for caching).
        batch: Micro-batching policy of the embedded service.
        admission: Admission policy of the embedded service.
        cache_capacity / cache_ttl_s: Result-cache knobs.
        fault_plan: Optional fault plan activated in this worker only —
            per-shard fault targeting for resilience drills.
        access_log: Optional access-log path (supports the ``{pid}`` /
            ``{instance}`` placeholders of
            :func:`repro.serve.service.resolve_access_log_path`).
        enable_chaos: Accept the ``exit`` / ``hang`` chaos ops used by
            resilience tests.  Off in production configurations.
    """

    shard_index: int
    seed: int
    tiers: int = 8
    deterministic: bool = True
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    cache_capacity: int = 2048
    cache_ttl_s: float = 5.0
    fault_plan: Optional[object] = None  # FaultPlan; object keeps pickling lazy
    access_log: Optional[str] = None
    enable_chaos: bool = False

    def serve_config(self) -> ServeConfig:
        """Deprecated: use :func:`repro.edge.deploy.serve_config_for`.

        The derivation moved into :mod:`repro.edge.deploy` so every
        config layer derives from one :class:`EdgeDeployment` source of
        truth; this shim delegates and warns.
        """
        import warnings

        warnings.warn(
            "WorkerConfig.serve_config() is deprecated; use "
            "repro.edge.deploy.serve_config_for(config) or build configs "
            "through EdgeDeployment",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.edge.deploy import serve_config_for

        return serve_config_for(self)


def _stats_payload(service: SensorReadService, config: WorkerConfig) -> Dict[str, Any]:
    stats = service.stats()
    return {
        "shard": config.shard_index,
        "pid": os.getpid(),
        "seed": config.seed,
        "tiers": config.tiers,
        "served": stats.served,
        "errors": stats.errors,
        "degraded": stats.degraded,
        "batches": stats.batches,
        "batch_size_histogram": {
            str(k): v for k, v in sorted(stats.batch_size_histogram.items())
        },
        "queue_length": stats.queue_length,
        "backpressure": stats.backpressure,
        "admission": {
            "admitted": stats.admission.admitted,
            "rejected": stats.admission.rejected,
            "shed": stats.admission.shed,
        },
        "cache": None
        if stats.cache is None
        else {
            "hits": stats.cache.hits,
            "misses": stats.cache.misses,
            "evictions": stats.cache.evictions,
            "expirations": stats.cache.expirations,
            "entries": stats.cache.entries,
            "hit_rate": stats.cache.hit_rate,
        },
    }


def _serve_read_batch(service: SensorReadService, items, send) -> None:
    """Serve one coalesced pipe message of routed reads.

    The whole batch is handed to the service in one
    :meth:`~repro.serve.service.SensorReadService.submit_many` call so
    the micro-batcher sees a real batch, not a trickle of singletons.
    A bad item fails alone: decode errors and per-item admission
    rejections are answered for that ``seq`` only, and the rest of the
    batch is still served.
    """
    now = service.clock()
    decoded = []  # (seq, request) pairs that survived decoding
    for item in items:
        seq = item.get("seq")
        try:
            decoded.append((seq, wire_to_request(item.get("request"), now=now)))
        except EdgeError as error:
            send({"seq": seq, "ok": False, "error": error.to_wire()})
    outcomes = service.submit_many(
        [(request, seq) for seq, request in decoded]
    )
    for (seq, _), outcome in zip(decoded, outcomes):
        if isinstance(outcome, QueueFullError):
            send(
                {
                    "seq": seq,
                    "ok": False,
                    "error": EdgeError(BACKPRESSURE, str(outcome)).to_wire(),
                }
            )
        elif isinstance(outcome, ServiceClosedError):
            send(
                {
                    "seq": seq,
                    "ok": False,
                    "error": EdgeError(CLOSED, str(outcome)).to_wire(),
                }
            )
        # PendingResult outcomes are answered through on_result/on_fail.


def worker_main(config: WorkerConfig, conn) -> None:
    """Run one shard worker until shutdown or parent death.

    ``conn`` is the child end of a :func:`multiprocessing.Pipe`.  Replies
    are sent from two threads (the service's worker thread answers
    ``read`` ops through the ``on_result`` hook; the main thread answers
    control ops), serialised by one send lock.
    """
    send_lock = threading.Lock()

    def send(payload: Dict[str, Any]) -> None:
        with send_lock:
            try:
                conn.send(payload)
            except (BrokenPipeError, OSError):  # parent died; nothing to tell
                pass

    def on_result(pending, result) -> None:
        send({"seq": pending.context, "ok": True, "result": result_to_wire(result)})

    def on_fail(pending, error) -> None:
        if isinstance(error, ServiceClosedError):
            edge_error = EdgeError(CLOSED, "shard closed before serving")
        else:
            edge_error = EdgeError(INTERNAL, f"{type(error).__name__}: {error}")
        send({"seq": pending.context, "ok": False, "error": edge_error.to_wire()})

    if config.fault_plan is not None and not config.fault_plan.empty:
        from repro.faults.injector import FaultInjector
        from repro.faults.runtime import set_active

        set_active(FaultInjector(config.fault_plan))

    from repro.edge.deploy import serve_config_for

    service = SensorReadService(
        config=serve_config_for(config),
        access_log=config.access_log,
        on_result=on_result,
        on_fail=on_fail,
    )

    drain = True
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                drain = False  # parent is gone; answers have no reader
                return
            seq = message.get("seq")
            op = message.get("op")
            try:
                if op == "read_batch":
                    _serve_read_batch(service, message.get("items", ()), send)
                elif op == "read":
                    try:
                        request = wire_to_request(
                            message.get("request"), now=service.clock()
                        )
                        service.submit(request, context=seq)
                    except EdgeError as error:
                        send({"seq": seq, "ok": False, "error": error.to_wire()})
                    except QueueFullError as error:
                        send(
                            {
                                "seq": seq,
                                "ok": False,
                                "error": EdgeError(BACKPRESSURE, str(error)).to_wire(),
                            }
                        )
                    except ServiceClosedError as error:
                        send(
                            {
                                "seq": seq,
                                "ok": False,
                                "error": EdgeError(CLOSED, str(error)).to_wire(),
                            }
                        )
                elif op == "ping":
                    send(
                        {
                            "seq": seq,
                            "ok": True,
                            "pong": config.shard_index,
                            "pid": os.getpid(),
                            "served": service.stats().served,
                        }
                    )
                elif op == "stats":
                    send({"seq": seq, "ok": True, "stats": _stats_payload(service, config)})
                elif op == "shutdown":
                    drain = bool(message.get("drain", True))
                    service.close(drain=drain)
                    send({"seq": seq, "ok": True, "bye": True})
                    return
                elif op == "exit" and config.enable_chaos:
                    os._exit(17)
                elif op == "hang" and config.enable_chaos:
                    send({"seq": seq, "ok": True, "hanging": True})
                    time.sleep(3600.0)
                else:
                    send(
                        {
                            "seq": seq,
                            "ok": False,
                            "error": EdgeError(
                                INTERNAL, f"unknown worker op {op!r}"
                            ).to_wire(),
                        }
                    )
            except Exception as error:  # noqa: BLE001 - worker must not die
                send(
                    {
                        "seq": seq,
                        "ok": False,
                        "error": EdgeError(
                            INTERNAL, f"{type(error).__name__}: {error}"
                        ).to_wire(),
                    }
                )
    finally:
        try:
            service.close(drain=drain)
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass
        try:
            conn.close()
        except OSError:
            pass
