"""repro.edge: the network edge of the sharded sensor-readout deployment.

The subsystem that turns the in-process serving stack
(:mod:`repro.serve`) into a deployable service:

* :mod:`~repro.edge.protocol` — the typed NDJSON wire protocol, the
  length-prefixed binary frame format, and their shared closed error
  vocabulary;
* :mod:`~repro.edge.sharding` — per-shard seed derivation and the
  consistent-hash ring routing stack ids to shards;
* :mod:`~repro.edge.worker` — the backend worker process, one seeded
  die stack + embedded :class:`~repro.serve.service.SensorReadService`
  per shard;
* :mod:`~repro.edge.supervisor` — the health-checked, **elastic** shard
  pool (spawn, probe, quarantine, respawn, drain; live add/remove via
  atomic ring republish, warm spares, rolling restarts) with per-shard
  bounded outstanding-request windows;
* :mod:`~repro.edge.deploy` — the :class:`~repro.edge.deploy.EdgeDeployment`
  builder deriving every config layer (edge / worker / embedded
  service) from one declaration;
* :mod:`~repro.edge.autoscale` — the telemetry-driven
  :class:`~repro.edge.autoscale.Autoscaler` loop (queue depth + p99,
  hysteresis + cooldown) over the elastic pool;
* :mod:`~repro.edge.server` — the asyncio TCP front end speaking NDJSON,
  binary frames and a keep-alive HTTP/1.1 adapter on one port (the
  protocol is sniffed from the first byte of each connection);
* :mod:`~repro.edge.client` — typed sync and asyncio clients
  (``wire="ndjson"`` or ``"binary"``) with retry/backoff on retryable
  failures;
* :mod:`~repro.edge.stream` — the server-push plane behind one edge
  instance: the fan-out hub subscribers attach to (SSE, NDJSON or
  binary), windowed rollups over ``GET /v1/rollup``, and the streaming
  thermal-runaway early-warning detector;
* :mod:`~repro.edge.loadgen` — the virtual-time shard-scaling sweep
  behind ``python -m repro loadgen --edge``;
* :mod:`~repro.edge.stream_loadgen` — the 10k-subscriber fan-out sweep
  behind ``python -m repro loadgen --stream``.

See ``docs/edge.md`` for the protocol reference and failure semantics,
``docs/streaming.md`` for the subscription plane.
"""

from repro.edge.autoscale import AutoscalePolicy, Autoscaler
from repro.edge.client import (
    ADMIN_WIRES,
    WIRE_FORMATS,
    AdminClient,
    AsyncEdgeClient,
    AsyncSubscription,
    EdgeClient,
    RetryPolicy,
    StreamReceiver,
)
from repro.edge.deploy import EdgeDeployment, serve_config_for
from repro.edge.loadgen import (
    WIRE_COSTS,
    EdgeLoadgenConfig,
    EdgeLoadgenReport,
    ShardScalingPoint,
    WireCostModel,
    run_loadgen_edge,
)
from repro.edge.protocol import (
    ADMIN_OPS,
    DTM_OPS,
    STREAM_OPS,
    ERROR_CODES,
    HTTP_STATUS,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    EdgeError,
    EdgeResult,
)
from repro.edge.server import EdgeConfig, EdgeServer, EdgeServerThread, metrics_text
from repro.edge.sharding import HashRing, ShardSpec, remapped_fraction, shard_seed
from repro.edge.stream import (
    EVENT_KINDS,
    MAX_SUBSCRIBER_QUEUE,
    StreamPlane,
    StreamPolicy,
)
from repro.edge.stream_loadgen import (
    FanoutCostModel,
    StreamLoadgenConfig,
    StreamLoadgenReport,
    run_loadgen_stream,
)
from repro.edge.supervisor import ShardPool, ShardState
from repro.edge.worker import WorkerConfig, worker_main

__all__ = [
    "ADMIN_OPS",
    "ADMIN_WIRES",
    "AdminClient",
    "AsyncEdgeClient",
    "AsyncSubscription",
    "AutoscalePolicy",
    "Autoscaler",
    "DTM_OPS",
    "EdgeClient",
    "EdgeConfig",
    "EdgeDeployment",
    "EdgeError",
    "EdgeLoadgenConfig",
    "EdgeLoadgenReport",
    "EdgeResult",
    "EdgeServer",
    "EdgeServerThread",
    "ERROR_CODES",
    "FanoutCostModel",
    "EVENT_KINDS",
    "HashRing",
    "HTTP_STATUS",
    "MAX_LINE_BYTES",
    "MAX_SUBSCRIBER_QUEUE",
    "PROTOCOL_VERSION",
    "RetryPolicy",
    "RETRYABLE_CODES",
    "STREAM_OPS",
    "ShardPool",
    "ShardScalingPoint",
    "ShardSpec",
    "ShardState",
    "StreamLoadgenConfig",
    "StreamLoadgenReport",
    "StreamPlane",
    "StreamPolicy",
    "StreamReceiver",
    "WIRE_COSTS",
    "WIRE_FORMATS",
    "WireCostModel",
    "WorkerConfig",
    "metrics_text",
    "remapped_fraction",
    "run_loadgen_edge",
    "run_loadgen_stream",
    "serve_config_for",
    "shard_seed",
    "worker_main",
]
