"""Virtual-time load generation for the streaming plane: fan-out at 10k.

``python -m repro loadgen --stream`` answers two questions reproducibly:

* **Does fan-out stay bounded at tens of thousands of subscribers?**
  The hub's publish path is an append per matching subscriber — cost
  linear in subscriber count, memory capped at ``queue`` events per
  subscriber, and a slow consumer *drops* (typed, counted) instead of
  blocking the publisher.  The sweep evolves every subscriber's queue
  occupancy through a seeded fluid model in virtual time and charges
  the publisher with per-delivery CPU constants calibrated against the
  real :class:`~repro.telemetry.stream.StreamHub` by
  ``benchmarks/bench_stream.py``.
* **Does the streaming detector beat the batch baseline?**  For each
  swept severity a ``thermal_runaway`` trajectory (the exact compounding
  model from :mod:`repro.faults.models`) is fed to a real
  :class:`~repro.telemetry.runaway.RunawayDetector` and compared with
  the post-hoc absolute-band baseline
  (:func:`~repro.telemetry.runaway.batch_alarm_round`).

Everything is seeded and clock-free: the same config yields the same
report bit for bit, which is what lets ``bench --check`` gate on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.models import thermal_runaway_offset_c
from repro.telemetry.runaway import (
    RunawayPolicy,
    batch_alarm_round,
    streaming_alert_round,
)
from repro.telemetry.stream import DEFAULT_QUEUE


@dataclass(frozen=True)
class FanoutCostModel:
    """Per-event CPU occupancy of the hub's publish path.

    Calibrated against the real hub by ``benchmarks/bench_stream.py``
    on the reference machine: publishing one event costs a fixed
    overhead (sequence bump, snapshot read, event construction) plus a
    per-matching-subscriber delivery (match check + locked deque
    append).

    Attributes:
        publish_overhead_s: Fixed CPU seconds per published event.
        delivery_s: CPU seconds per subscriber delivery.
        event_bytes: Approximate resident size of one queued event —
            what bounds a subscriber's memory at ``queue`` events.
    """

    publish_overhead_s: float = 2.0e-6
    delivery_s: float = 1.4e-6
    event_bytes: int = 400

    def publish_cost_s(self, subscribers: int) -> float:
        """CPU occupancy of one publish fanned out to ``subscribers``."""
        return self.publish_overhead_s + subscribers * self.delivery_s


@dataclass(frozen=True)
class StreamLoadgenConfig:
    """One streaming fan-out run, fully specified (and fully seeded).

    Attributes:
        subscribers: Concurrent subscriptions to sweep (the acceptance
            scale is 10k).
        seed: Seed of the drain-rate and arrival-jitter draws.
        duration_s: Virtual seconds of streaming simulated.
        publish_rps: Events published per virtual second (every
            subscriber matches every event — the worst-case fan-out).
        queue: Per-subscriber queue bound (events).
        tick_s: Fluid-model step width.
        slow_fraction: Fraction of subscribers whose drain rate sits
            below the publish rate — they must *drop*, never stall.
        slow_drain_factor: Slow subscribers drain at this multiple of
            ``publish_rps`` (< 1).
        fast_drain_factor: Healthy subscribers drain at this multiple
            of ``publish_rps`` (> 1), with seeded lognormal spread.
        cost: Per-delivery CPU constants (see :class:`FanoutCostModel`).
        detector: Early-warning policy used for the detection-latency
            comparison.
        severities: ``thermal_runaway`` severities swept.
        base_temp_c: Steady temperature before the fault activates.
        onset_round: Round the injected fault activates.
        rounds: Length of each synthetic trajectory.
    """

    subscribers: int = 10_000
    seed: int = 20120613
    duration_s: float = 5.0
    publish_rps: float = 200.0
    queue: int = DEFAULT_QUEUE
    tick_s: float = 0.05
    slow_fraction: float = 0.05
    slow_drain_factor: float = 0.3
    fast_drain_factor: float = 2.0
    cost: FanoutCostModel = field(default_factory=FanoutCostModel)
    detector: RunawayPolicy = field(default_factory=RunawayPolicy)
    severities: Tuple[float, ...] = (1.0, 1.5, 2.0, 3.0)
    base_temp_c: float = 60.0
    onset_round: int = 4
    rounds: int = 40

    def __post_init__(self) -> None:
        if self.subscribers < 1:
            raise ValueError("subscribers must be >= 1")
        if self.duration_s <= 0 or self.tick_s <= 0:
            raise ValueError("duration_s and tick_s must be positive")
        if self.publish_rps <= 0:
            raise ValueError("publish_rps must be positive")
        if self.queue < 1:
            raise ValueError("queue must be >= 1")
        if not 0.0 <= self.slow_fraction <= 1.0:
            raise ValueError("slow_fraction must lie in [0, 1]")
        if not self.severities:
            raise ValueError("need at least one severity")
        if self.rounds <= self.onset_round:
            raise ValueError("rounds must exceed onset_round")


@dataclass(frozen=True)
class DetectionPoint:
    """Streaming vs batch detection at one runaway severity."""

    severity: float
    batch_round: Optional[int]
    stream_round: Optional[int]

    @property
    def lead_rounds(self) -> Optional[int]:
        """Rounds of warning the stream buys over the batch baseline."""
        if self.batch_round is None or self.stream_round is None:
            return None
        return self.batch_round - self.stream_round


@dataclass(frozen=True)
class StreamLoadgenReport:
    """What one seeded fan-out sweep measured."""

    subscribers: int
    seed: int
    duration_s: float
    publish_rps: float
    queue: int
    events_published: int
    deliveries: int
    dropped: int
    drop_fraction: float
    slow_subscribers: int
    dropping_subscribers: int
    peak_queue_depth: int
    subscriber_memory_bytes: int
    publish_cpu_s: float
    publish_us_per_event: float
    fanout_events_per_s: float
    detection: Tuple[DetectionPoint, ...]
    detector_no_worse: bool

    def to_json(self) -> str:
        payload = {
            "subscribers": self.subscribers,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "publish_rps": self.publish_rps,
            "queue": self.queue,
            "events_published": self.events_published,
            "deliveries": self.deliveries,
            "dropped": self.dropped,
            "drop_fraction": self.drop_fraction,
            "slow_subscribers": self.slow_subscribers,
            "dropping_subscribers": self.dropping_subscribers,
            "peak_queue_depth": self.peak_queue_depth,
            "subscriber_memory_bytes": self.subscriber_memory_bytes,
            "publish_cpu_s": self.publish_cpu_s,
            "publish_us_per_event": self.publish_us_per_event,
            "fanout_events_per_s": self.fanout_events_per_s,
            "detector_no_worse": self.detector_no_worse,
            "detection": [
                {
                    "severity": p.severity,
                    "batch_round": p.batch_round,
                    "stream_round": p.stream_round,
                    "lead_rounds": p.lead_rounds,
                }
                for p in self.detection
            ],
        }
        return json.dumps(payload, sort_keys=True)

    def render(self) -> str:
        lines = [
            f"stream loadgen: {self.subscribers} subscribers x "
            f"{self.publish_rps:.0f} events/s for {self.duration_s:.1f}s "
            f"virtual (queue {self.queue}, seed {self.seed})",
            f"  published {self.events_published} events -> "
            f"{self.deliveries} deliveries, {self.dropped} dropped "
            f"({self.drop_fraction * 100:.2f}%) across "
            f"{self.dropping_subscribers} slow subscriber(s)",
            f"  peak queue depth {self.peak_queue_depth}/{self.queue} "
            f"(bounded: {self.subscriber_memory_bytes // 1024} KiB/sub), "
            f"publish {self.publish_us_per_event:.1f} us/event -> "
            f"{self.fanout_events_per_s:.0f} events/s sustainable",
            "  detection (streaming EWMA-slope vs batch absolute band):",
            "    severity  batch@  stream@  lead",
        ]
        for p in self.detection:
            lines.append(
                f"    {p.severity:>8.2f}  {str(p.batch_round):>6}  "
                f"{str(p.stream_round):>7}  {str(p.lead_rounds):>4}"
            )
        lines.append(
            "  streaming detector is never later than the batch baseline"
            if self.detector_no_worse
            else "  WARNING: streaming detector is LATER than the batch baseline"
        )
        return "\n".join(lines)


def runaway_trajectory(config: StreamLoadgenConfig, severity: float) -> List[float]:
    """One synthetic per-round tier trace under a compounding runaway."""
    temps = []
    for round_index in range(config.rounds):
        offset = 0.0
        if round_index >= config.onset_round:
            offset = thermal_runaway_offset_c(
                severity, round_index - config.onset_round
            )
        temps.append(config.base_temp_c + offset)
    return temps


def run_loadgen_stream(
    config: StreamLoadgenConfig = StreamLoadgenConfig(),
) -> StreamLoadgenReport:
    """Run the seeded fan-out sweep; see the module docstring."""
    rng = np.random.default_rng(config.seed)
    n = config.subscribers

    # Seeded drain rates: a slow tail that must shed load, a healthy
    # majority with lognormal spread above the publish rate.
    slow = rng.random(n) < config.slow_fraction
    drain = np.where(
        slow,
        config.publish_rps * config.slow_drain_factor,
        config.publish_rps
        * config.fast_drain_factor
        * np.exp(rng.normal(0.0, 0.25, n)),
    )

    # Fluid queue model, stepped in virtual time: occupancy rises by the
    # tick's arrivals, falls by each subscriber's drain, and clips at the
    # bound — the clipped excess is exactly what the real hub drops
    # (oldest-first) without ever blocking the publisher.
    ticks = int(round(config.duration_s / config.tick_s))
    occupancy = np.zeros(n)
    dropped_per_sub = np.zeros(n)
    peak = 0.0
    events_published = 0
    deliveries = 0
    for _ in range(ticks):
        arrivals = int(rng.poisson(config.publish_rps * config.tick_s))
        events_published += arrivals
        deliveries += arrivals * n
        occupancy += arrivals
        occupancy -= drain * config.tick_s
        np.clip(occupancy, 0.0, None, out=occupancy)
        overflow = np.clip(occupancy - config.queue, 0.0, None)
        dropped_per_sub += overflow
        occupancy -= overflow
        peak = max(peak, float(occupancy.max()))

    dropped = int(round(float(dropped_per_sub.sum())))
    publish_cpu_s = events_published * config.cost.publish_cost_s(n)
    per_event_s = config.cost.publish_cost_s(n)

    detection = []
    for severity in config.severities:
        temps = runaway_trajectory(config, severity)
        detection.append(
            DetectionPoint(
                severity=severity,
                batch_round=batch_alarm_round(
                    temps, config.detector.batch_alarm_c
                ),
                stream_round=streaming_alert_round(temps, config.detector),
            )
        )
    detector_no_worse = all(
        p.stream_round is not None
        and (p.batch_round is None or p.stream_round <= p.batch_round)
        for p in detection
    )

    return StreamLoadgenReport(
        subscribers=n,
        seed=config.seed,
        duration_s=config.duration_s,
        publish_rps=config.publish_rps,
        queue=config.queue,
        events_published=events_published,
        deliveries=deliveries,
        dropped=dropped,
        drop_fraction=dropped / max(deliveries, 1),
        slow_subscribers=int(slow.sum()),
        dropping_subscribers=int((dropped_per_sub > 0).sum()),
        peak_queue_depth=int(round(peak)),
        subscriber_memory_bytes=config.queue * config.cost.event_bytes,
        publish_cpu_s=publish_cpu_s,
        publish_us_per_event=per_event_s * 1e6,
        fanout_events_per_s=1.0 / per_event_s,
        detection=tuple(detection),
        detector_no_worse=detector_no_worse,
    )


__all__ = [
    "DetectionPoint",
    "FanoutCostModel",
    "StreamLoadgenConfig",
    "StreamLoadgenReport",
    "run_loadgen_stream",
    "runaway_trajectory",
]
